//! The paper's second motivating scenario (§1): *file compression* on
//! an energy-proportional storage node.
//!
//! Files arrive over time, each with a transfer deadline. Before
//! storing, the node may run a compression probe (the query, load
//! `c_j`) that determines the compressed size `w*_j`; skipping the
//! probe stores the raw `w_j` bytes. The node's link/CPU is
//! speed-scalable with power `s^α`. We stream a day of traffic through
//! the three online algorithms — AVRQ, BKPQ, OAQ — and report energy
//! and peak speed.
//!
//! Run with: `cargo run --release -p qbss-cli --example file_compression`

use qbss_core::online::{avrq, bkpq, oaq};
use qbss_core::{QbssInstance, QbssOutcome};
use qbss_instances::gen::{generate, Compressibility, GenConfig, QueryModel, TimeModel};

fn report(name: &str, out: &QbssOutcome, inst: &QbssInstance, alpha: f64) {
    let queried = out.decisions.iter().filter(|d| d.queried).count();
    println!(
        "  {:<6} energy {:>9.2} (x{:.2} vs OPT)   peak speed {:>7.3} (x{:.2})   probes {}/{}",
        name,
        out.energy(alpha),
        out.energy_ratio(inst, alpha),
        out.max_speed(),
        out.speed_ratio(inst),
        queried,
        inst.len()
    );
}

fn main() {
    let alpha = 3.0;
    let files = 200;

    println!("Storage node: {files} files/day, probe = compression estimate at 10-25% of file size\n");

    for (traffic, compress) in [
        ("log files (compress 10-100x)", Compressibility::FullyCompressible),
        ("documents (mixed)", Compressibility::Bimodal { p_compressible: 0.7 }),
        ("media (already compressed)", Compressibility::Incompressible),
    ] {
        let cfg = GenConfig {
            n: files,
            seed: 99,
            time: TimeModel::Online { horizon: 24.0, min_len: 0.25, max_len: 3.0 },
            min_w: 0.1,
            max_w: 5.0,
            query: QueryModel::UniformFraction { lo: 0.10, hi: 0.25 },
            compress,
        };
        let inst = generate(&cfg);
        println!("{traffic}:");
        for (name, out) in [
            ("AVRQ", avrq(&inst)),
            ("BKPQ", bkpq(&inst)),
            ("OAQ", oaq(&inst)),
        ] {
            out.validate(&inst).expect("valid outcome");
            report(name, &out, &inst, alpha);
        }
        println!("  OPT    energy {:>9.2}                peak speed {:>7.3}\n",
            inst.opt_energy(alpha), inst.opt_max_speed());
    }

    println!("Notes:");
    println!("  * AVRQ always probes; BKPQ/OAQ probe iff c <= w/phi. Probes here cost");
    println!("    10-25% of the file, well under w/phi ~ 0.62w, so the golden rule also");
    println!("    probes everything — raise the probe cost and the probe counts diverge;");
    println!("  * BKPQ's e-factor speed padding buys the best *worst-case* guarantees");
    println!("    (Corollary 5.5), while OAQ — the paper's open question — tends to win");
    println!("    on average traffic.");
}
