//! The paper's motivating scenario (§1): a *code optimizer* as a query.
//!
//! A nightly build farm must compile a batch of translation units by a
//! deadline on a speed-scalable core. Each unit can optionally run an
//! optimizer pass (load `c_j`) that shrinks the remaining compile work
//! from the nominal `w_j` to an a-priori-unknown `w*_j`. We compare the
//! three query policies — never / always / golden-ratio — inside the
//! CRCD algorithm (everything shares the batch window), across corpora
//! of different "optimizability".
//!
//! Run with: `cargo run --release -p qbss-cli --example code_optimizer`

use qbss_core::offline::crcd_with_rule;
use qbss_core::QueryRule;
use qbss_instances::gen::{generate, Compressibility, GenConfig, QueryModel, TimeModel};

fn main() {
    let alpha = 3.0;
    let deadline_hours = 8.0;
    let units = 64;

    println!("Nightly build farm: {units} translation units, {deadline_hours}h window, P = s^{alpha}");
    println!("query = optimizer pass costing 5-95% of the unit's nominal compile work\n");

    let corpora = [
        ("template-heavy (optimizer shines)", Compressibility::HeavyTail),
        ("mixed corpus", Compressibility::Bimodal { p_compressible: 0.5 }),
        ("hand-tuned already (incompressible)", Compressibility::Incompressible),
    ];
    let policies = [
        ("never query", QueryRule::Never),
        ("always query", QueryRule::Always),
        ("golden ratio", QueryRule::GoldenRatio),
    ];

    println!(
        "{:<38} {:>14} {:>14} {:>14} {:>10}",
        "corpus", "never", "always", "golden", "OPT"
    );
    for (corpus, compress) in corpora {
        let cfg = GenConfig {
            n: units,
            seed: 2024,
            time: TimeModel::CommonDeadline { d: deadline_hours },
            min_w: 0.25,
            max_w: 2.0,
            query: QueryModel::UniformFraction { lo: 0.05, hi: 0.95 },
            compress,
        };
        let inst = generate(&cfg);
        let mut row = format!("{corpus:<38}");
        for (_, rule) in policies {
            let out = crcd_with_rule(&inst, rule);
            out.validate(&inst).expect("valid outcome");
            row.push_str(&format!(" {:>14.2}", out.energy(alpha)));
        }
        row.push_str(&format!(" {:>10.2}", inst.opt_energy(alpha)));
        println!("{row}");
    }

    println!("\nReading the table:");
    println!("  * on optimizable corpora, 'never' wastes energy recompiling bloat the");
    println!("    optimizer would have removed;");
    println!("  * on hand-tuned corpora, 'always' pays optimizer passes for nothing;");
    println!("  * the golden-ratio rule (query iff c <= w/phi) is the provable hedge:");
    println!("    its executed load never exceeds phi ~ 1.618x the clairvoyant load");
    println!("    (Lemma 3.1), and CRCD turns that into a min(2^(a-1) phi^a, 2^a)");
    println!("    energy guarantee (Theorem 4.6).");
}
