//! Multi-machine QBSS (§6): a rack of speed-scalable workers.
//!
//! A scheduler dispatches compressible jobs onto `m` identical
//! speed-scalable machines with free migration, running AVRQ(m). We
//! sweep the rack size and show: total energy, the fluid lower bound on
//! the clairvoyant optimum, the per-machine peak speeds (machine 0 is
//! always the fastest — the invariant behind Theorem 6.3), and the
//! pointwise factor-2 comparison against AVR*(m).
//!
//! Run with: `cargo run --release -p qbss-cli --example datacenter_multimachine`

use qbss_core::online::{avr_star_m, avrq_m};
use qbss_instances::gen::{generate, GenConfig};
use speed_scaling::multi::opt_lower_bound;

fn main() {
    let alpha = 3.0;
    let inst = generate(&GenConfig::online_default(120, 4242));
    let clair = inst.clairvoyant_instance();

    println!("Rack scheduler: 120 jobs, AVRQ(m) with free migration, P = s^3\n");
    println!(
        "{:>3} {:>12} {:>12} {:>8} {:>14} {:>22}",
        "m", "energy", "fluid LB", "E/LB", "peak speed", "max_t s_i / s_i^AVR*"
    );

    for m in [1usize, 2, 4, 8, 16] {
        let res = avrq_m(&inst, m);
        res.outcome.validate(&inst).expect("valid outcome");
        let star = avr_star_m(&inst, m);

        // Worst pointwise per-machine factor vs AVR*(m) — Theorem 6.3
        // proves this never exceeds 2.
        let mut worst_factor = 0.0f64;
        for (a, s) in res.machine_profiles.iter().zip(&star.machine_profiles) {
            // Scan the union grid.
            let mut events: Vec<f64> = a.breakpoints().to_vec();
            events.extend_from_slice(s.breakpoints());
            events.sort_by(|x, y| x.partial_cmp(y).unwrap());
            for w in events.windows(2) {
                let t = 0.5 * (w[0] + w[1]);
                let (sa, ss) = (a.speed_at(t), s.speed_at(t));
                if ss > 1e-9 {
                    worst_factor = worst_factor.max(sa / ss);
                }
            }
        }

        let lb = opt_lower_bound(&clair, m, alpha);
        println!(
            "{:>3} {:>12.2} {:>12.2} {:>8.2} {:>14.3} {:>22.3}",
            m,
            res.energy(alpha),
            lb,
            res.energy(alpha) / lb,
            res.max_speed(),
            worst_factor,
        );
        assert!(worst_factor <= 2.0 + 1e-6, "Theorem 6.3 violated");
    }

    println!("\nReading the table:");
    println!("  * adding machines collapses energy ~ m^(1-a) (fluid scaling): speeds halve");
    println!("    when work spreads over twice the machines, and P = s^3 rewards it;");
    println!("  * the last column stays <= 2 everywhere — Theorem 6.3's machine-by-machine");
    println!("    guarantee for the always-query midpoint split;");
    println!("  * E/LB is conservative: the fluid bound lets OPT parallelize single jobs,");
    println!("    which no real schedule can (DESIGN.md section 5).");
}
