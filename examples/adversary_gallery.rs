//! A guided tour of the paper's lower-bound constructions (§4.1).
//!
//! Each stop builds the adversarial instance, plays the game against
//! the relevant policy, and shows the achieved ratio next to the proven
//! bound — the fastest way to *feel* why explorable uncertainty costs
//! a golden ratio.
//!
//! Run with: `cargo run --release -p qbss-cli --example adversary_gallery`

use qbss_core::oracle::{cost_no_query, cost_opt, cost_query_at, cost_query_oracle, ratios};
use qbss_core::PHI;
use qbss_instances::adversary::{
    equal_window_cascade, lemma_4_1_instance, lemma_4_2_instance, lemma_4_3_instance,
    RandomizedGame,
};

fn main() {
    let alpha = 3.0;
    println!("QBSS adversary gallery (alpha = {alpha})\n");

    // ---- Stop 1: Lemma 4.1 — never querying is a disaster ----
    println!("1. Lemma 4.1 — the never-query catastrophe");
    println!("   One job, query and exact load both eps*w. Skip the query and you");
    println!("   execute w instead of 2*eps*w:");
    for eps in [0.1, 0.01, 0.001] {
        let inst = lemma_4_1_instance(eps);
        let j = &inst.jobs[0];
        let r = ratios(cost_no_query(j, alpha), cost_opt(j, alpha));
        println!("     eps = {eps:<6}  speed ratio {:>8.1}   energy ratio {:>14.1}", r.speed, r.energy);
    }
    println!("   -> unbounded as eps -> 0. Querying is not optional in this model.\n");

    // ---- Stop 2: Lemma 4.2 — the golden ratio is unavoidable ----
    println!("2. Lemma 4.2 — even an oracle-split algorithm pays phi");
    println!("   One job with c = 1, w = phi. The adversary answers your decision:");
    for queried in [false, true] {
        let inst = lemma_4_2_instance(queried);
        let j = &inst.jobs[0];
        let alg = if queried { cost_query_oracle(j, alpha) } else { cost_no_query(j, alpha) };
        let r = ratios(alg, cost_opt(j, alpha));
        println!(
            "     you {}  -> adversary sets w* = {}  -> speed ratio {:.4} (= phi)",
            if queried { "QUERY" } else { "SKIP " },
            j.reveal_exact(),
            r.speed
        );
    }
    println!("   -> phi = {PHI:.4} is the exact price of not knowing w*.\n");

    // ---- Stop 3: Lemma 4.3 — the split is a second trap ----
    println!("3. Lemma 4.3 — wherever you split, the adversary strikes the bigger half");
    println!("   One job with c = 1, w = 2 (split game, energy ratios):");
    for x in [0.25, 0.5, 0.75] {
        let inst = lemma_4_3_instance(Some(x));
        let j = &inst.jobs[0];
        let r = ratios(cost_query_at(j, x, alpha), cost_opt(j, alpha));
        println!(
            "     split x = {x:<5} -> adversary sets w* = {} -> energy ratio {:>7.3}",
            j.reveal_exact(),
            r.energy
        );
    }
    println!(
        "   -> minimized at x = 1/2 with 2^(a-1) = {}; equal windows are minimax.\n",
        2.0f64.powf(alpha - 1.0)
    );

    // ---- Stop 4: Lemma 4.4 — coins don't save you (much) ----
    println!("4. Lemma 4.4 — randomization helps, but boundedly");
    let sg = RandomizedGame::speed_game();
    let (rho_s, v_s) = sg.speed_game_value();
    let eg = RandomizedGame::energy_game();
    let (rho_e, v_e) = eg.energy_game_value(alpha);
    println!("     speed game  (c=1, w=2):   best rho = {rho_s:.3}, value = {v_s:.4} (= 4/3)");
    println!(
        "     energy game (c=1, w=phi): best rho = {rho_e:.3}, value = {v_e:.4} (= (1+phi^a)/2)"
    );
    println!("   -> vs deterministic phi / phi^a: coins buy you a constant, not the game.\n");

    // ---- Stop 5: Lemma 4.5 — equal windows have their own adversary ----
    println!("5. Lemma 4.5 — the cascade that punishes equal windows");
    println!("   Nested jobs, each released exactly at the previous one's midpoint.");
    println!("   The equal-window exact loads pile up before the shared deadline:");
    let inst = equal_window_cascade(&[2.0, 2.0], 2.0, 1e-9);
    // Equal-window geometry: job 0's exact work on (1,2] at speed 2,
    // job 1's on (1.5,2] at speed 4 -> peak 2 + 4 = 6.
    let alg_peak = 2.0 + 2.0 * 2.0;
    let opt_peak = inst.opt_max_speed();
    println!("     equal-window peak speed: {alg_peak:.3}");
    println!("     clairvoyant peak speed:  {opt_peak:.3}");
    println!("     ratio: {:.3} -> 3 as eps -> 0 (the lemma's bound)", alg_peak / opt_peak);
    println!("\nEnd of the gallery. The experiment binaries (exp_lower_bounds, ...) run");
    println!("these games across full alpha sweeps with parameter search.");
}
