//! Quickstart: the QBSS model in five minutes.
//!
//! Three jobs arrive online; each can optionally be *queried* (a
//! preprocessing pass of load `c`) to reveal its exact workload
//! `w* ≤ w`. We run the paper's BKPQ algorithm, print its decisions and
//! schedule, and compare against the clairvoyant optimum.
//!
//! Run with: `cargo run --release -p qbss-cli --example quickstart`

use qbss_core::model::{QJob, QbssInstance};
use qbss_core::online::bkpq;

fn main() {
    // (id, release, deadline, query load c, upper bound w, exact w*)
    //
    // Job 0: highly compressible — querying (c = 0.3) reveals w* = 0.5,
    //        much less than the nominal w = 3.
    // Job 1: the query is almost as expensive as the job — not worth it.
    // Job 2: incompressible (w* = w) — querying is pure overhead, but
    //        an online algorithm cannot know that in advance.
    let inst = QbssInstance::new(vec![
        QJob::new(0, 0.0, 4.0, 0.3, 3.0, 0.5),
        QJob::new(1, 1.0, 3.0, 0.9, 1.0, 0.2),
        QJob::new(2, 2.0, 6.0, 0.4, 2.0, 2.0),
    ]);
    inst.validate().expect("well-formed instance");

    let out = bkpq(&inst);
    out.validate(&inst).expect("outcome validated against the information model");

    println!("BKPQ decisions (query iff c <= w/phi, split at the window midpoint):");
    for dec in &out.decisions {
        let j = inst.job(dec.job).unwrap();
        match dec.split {
            Some(tau) => println!(
                "  job {}: QUERY  (c = {} <= w/phi = {:.3}); query in ({}, {}], exact work in ({}, {}]",
                j.id,
                j.query_load,
                j.upper_bound / qbss_core::PHI,
                j.release,
                tau,
                tau,
                j.deadline
            ),
            None => println!(
                "  job {}: SKIP   (c = {} > w/phi = {:.3}); runs the full w = {}",
                j.id,
                j.query_load,
                j.upper_bound / qbss_core::PHI,
                j.upper_bound
            ),
        }
    }

    println!("\nSchedule slices (machine runs one job at a time, preemption allowed):");
    let mut slices = out.schedule.slices.clone();
    slices.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
    for s in &slices {
        println!(
            "  ({:>5.2}, {:>5.2}]  job {}  speed {:.3}",
            s.start, s.end, s.job, s.speed
        );
    }

    println!("\nGantt view (60 columns):");
    print!("{}", speed_scaling::render::schedule_report(&out.schedule));

    let alpha = 3.0; // cube-law CMOS power
    println!("\nEnergy (alpha = {alpha}):");
    println!("  BKPQ:                 {:.4}", out.energy(alpha));
    println!("  clairvoyant optimum:  {:.4}", inst.opt_energy(alpha));
    println!("  ratio:                {:.4}", out.energy_ratio(&inst, alpha));
    println!("\nMax speed:");
    println!("  BKPQ:                 {:.4}", out.max_speed());
    println!("  clairvoyant optimum:  {:.4}", inst.opt_max_speed());
    println!(
        "  ratio:                {:.4}  (bound: (2+phi)e = {:.3})",
        out.speed_ratio(&inst),
        (2.0 + qbss_core::PHI) * std::f64::consts::E
    );
}
