//! Extending the library: plug your own query policy into the online
//! simulator.
//!
//! The paper's algorithms commit to a fixed rule (always / golden
//! ratio). Downstream users often have side information — say, a
//! per-job *predicted* compressibility from a cheap model. This example
//! implements a prediction-guided policy against the
//! `qbss_core::sim::OnlinePolicy` trait, runs it through the
//! information-faithful simulator, and compares it with the paper's
//! rules. (With perfect predictions it approaches the clairvoyant query
//! decisions; with adversarial predictions it degrades gracefully to
//! the upper-bound workloads it actually executes.)
//!
//! Run with: `cargo run --release -p qbss-cli --example custom_policy`

use qbss_core::decision::Decision;
use qbss_core::model::{QbssInstance, VisibleJob};
use qbss_core::sim::{simulate, OnlinePolicy, StrategyPolicy, Substrate};
use qbss_core::Strategy;
use qbss_instances::gen::{generate, Compressibility, GenConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Queries iff the predicted executed load `c + ŵ*` beats `w`, where
/// `ŵ*` is an external prediction (here: the true `w*` perturbed by
/// noise — the classic "algorithms with predictions" setup).
struct PredictionPolicy {
    /// Predicted exact load per job id.
    predictions: Vec<(u32, f64)>,
}

impl OnlinePolicy for PredictionPolicy {
    fn on_arrival(&mut self, job: &VisibleJob) -> Decision {
        let predicted = self
            .predictions
            .iter()
            .find(|(id, _)| *id == job.id)
            .map(|(_, p)| *p)
            .unwrap_or(job.upper_bound);
        if job.query_load + predicted < job.upper_bound {
            Decision::query(job.id, 0.5 * (job.release + job.deadline))
        } else {
            Decision::no_query(job.id)
        }
    }
}

fn main() {
    let alpha = 3.0;
    let inst: QbssInstance = generate(&GenConfig {
        compress: Compressibility::Bimodal { p_compressible: 0.5 },
        ..GenConfig::online_default(40, 77)
    });

    println!("Prediction-guided queries vs the paper's fixed rules (AVR substrate, alpha = 3)\n");
    println!("{:<28} {:>10} {:>12}", "policy", "queries", "energy");

    let report = |name: &str, profile: &speed_scaling::SpeedProfile, queries: usize| {
        println!("{name:<28} {queries:>7}/40 {:>12.2}", profile.energy(alpha));
    };

    // Paper rules through the same simulator.
    for (name, strategy) in [
        ("always query (AVRQ)", Strategy::always_equal()),
        ("golden ratio", Strategy::golden_equal()),
    ] {
        let mut policy = StrategyPolicy::new(strategy);
        let sim = simulate(&inst, &mut policy, Substrate::Avr);
        let q = sim.decisions.iter().filter(|d| d.queried).count();
        report(name, &sim.profile, q);
    }

    // Prediction-guided, with increasing noise.
    let mut rng = StdRng::seed_from_u64(1);
    for noise in [0.0, 0.25, 1.0] {
        let predictions: Vec<(u32, f64)> = inst
            .jobs
            .iter()
            .map(|j| {
                let eps: f64 = rng.gen_range(-noise..=noise);
                (j.id, (j.reveal_exact() * (1.0 + eps)).max(0.0))
            })
            .collect();
        let mut policy = PredictionPolicy { predictions };
        let sim = simulate(&inst, &mut policy, Substrate::Avr);
        let q = sim.decisions.iter().filter(|d| d.queried).count();
        report(&format!("predictions (noise ±{noise})"), &sim.profile, q);
    }

    println!("\nNotes:");
    println!("  * the simulator reveals w* only after the query window, so even this");
    println!("    custom policy cannot peek — predictions enter from the outside;");
    println!("  * with exact predictions the policy queries exactly when the clairvoyant");
    println!("    optimum would; noise degrades it toward the fixed rules;");
    println!("  * the golden-ratio rule needs no predictions at all and is minimax-optimal");
    println!("    among thresholds (exp_ablation_threshold).");
}
