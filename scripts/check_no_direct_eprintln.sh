#!/usr/bin/env bash
# Library crates must route diagnostics through qbss-telemetry events
# (leveled, filterable, JSONL-safe), not ad-hoc stderr writes.
#
# Allowlisted:
#   crates/cli            — user-facing stderr is the CLI's job
#   crates/bench/src/bin  — standalone experiment binaries
#   crates/telemetry/src/sink.rs — the stderr sink itself (the rest
#                         of the telemetry crate, lib.rs included, is
#                         scanned like any other library code)
set -euo pipefail
cd "$(dirname "$0")/.."

violations=$(grep -rn 'eprintln!' crates/*/src --include='*.rs' \
  | grep -v '^crates/cli/' \
  | grep -v '^crates/bench/src/bin/' \
  | grep -v '^crates/telemetry/src/sink.rs:' \
  || true)

if [ -n "$violations" ]; then
  echo "direct eprintln! in library code (use qbss_telemetry events instead):"
  echo "$violations"
  exit 1
fi
echo "OK: no direct eprintln! in library crates"
