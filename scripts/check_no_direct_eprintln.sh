#!/usr/bin/env bash
# Library crates must route diagnostics through qbss-telemetry events
# (leveled, filterable, JSONL-safe), not ad-hoc stderr writes.
#
# Allowlisted:
#   crates/cli/src/main.rs, commands.rs — user-facing stderr is the
#                         CLI front end's job; the rest of the cli
#                         crate (serve.rs included: the server speaks
#                         telemetry events, never raw stderr) is
#                         scanned like library code
#   crates/bench/src/bin  — standalone experiment binaries
#   crates/telemetry/src/sink.rs — the stderr sink itself (the rest
#                         of the telemetry crate, lib.rs included, is
#                         scanned like any other library code)
set -euo pipefail
cd "$(dirname "$0")/.."

violations=$(grep -rn 'eprintln!' crates/*/src --include='*.rs' \
  | grep -v '^crates/cli/src/main\.rs:' \
  | grep -v '^crates/cli/src/commands\.rs:' \
  | grep -v '^crates/bench/src/bin/' \
  | grep -v '^crates/telemetry/src/sink.rs:' \
  || true)

if [ -n "$violations" ]; then
  echo "direct eprintln! in library code (use qbss_telemetry events instead):"
  echo "$violations"
  exit 1
fi
echo "OK: no direct eprintln! in library crates"
