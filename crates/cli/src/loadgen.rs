//! `qbss loadgen` — a seeded open-loop load generator that proves the
//! serve plane degrades instead of dying.
//!
//! The harness is **open-loop**: arrivals follow a Poisson process at
//! `--rps` (exponential interarrival times from a seeded `StdRng`), so
//! a slow server does not slow the offered load down — exactly the
//! regime where closed-loop harnesses flatter the system under test.
//! The whole schedule (arrival times, targets, payload bodies) is built
//! up front from the seed, making runs reproducible: same seed, same
//! `--rps`/`--duration-s` → byte-identical schedule, summarized by an
//! FNV-1a hash the determinism tests compare.
//!
//! Payloads come from the workspace's own generators: `/evaluate`
//! bodies are `GenConfig::online_default` instances, `/sweep` bodies
//! are small fixed-shape grids. `--adversarial` adds burst trains —
//! clusters of simultaneous arrivals carrying the Lemma 4.x lower-bound
//! constructions from `qbss_instances::adversary` — on top of the
//! Poisson background, the Dürr-et-al.-style adversary pointed at the
//! serving edge instead of the query rule.
//!
//! Execution is real TCP: `--connections` sender threads walk the
//! shared schedule, each request on a fresh `Connection: close` stream.
//! Latencies feed a [`Histogram`] over [`DURATION_US_BOUNDS`] (the same
//! percentile machinery `/metrics` uses), statuses are tallied per
//! code, and `429`s are checked for `Retry-After`. The report is
//! canonical JSON (`qbss-loadgen-report/1`) so blessed runs can be
//! committed as `BENCH_serve.json` and diffed across PRs.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use qbss_instances::adversary;
use qbss_instances::gen::{self, GenConfig};
use qbss_instances::io;
use qbss_telemetry::{json_f64, Registry, DURATION_US_BOUNDS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which work endpoints the generated traffic exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mix {
    /// Only `POST /evaluate` (cost 1 each).
    Evaluate,
    /// Only `POST /sweep` (cost = cells of the fixed small grid).
    Sweep,
    /// Mostly evaluates with sweeps mixed in (the default).
    Mixed,
}

impl Mix {
    /// Parses the `--mix` flag value.
    pub fn from_name(name: &str) -> Option<Mix> {
        match name {
            "evaluate" => Some(Mix::Evaluate),
            "sweep" => Some(Mix::Sweep),
            "mixed" => Some(Mix::Mixed),
            _ => None,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            Mix::Evaluate => "evaluate",
            Mix::Sweep => "sweep",
            Mix::Mixed => "mixed",
        }
    }
}

/// Everything that determines the schedule (and therefore its hash).
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Offered load in requests per second.
    pub rps: f64,
    /// Length of the arrival window in seconds.
    pub duration_s: f64,
    /// Seed for the arrival process and payload generators.
    pub seed: u64,
    /// Endpoint mix.
    pub mix: Mix,
    /// Add Lemma 4.x burst trains on top of the Poisson background.
    pub adversarial: bool,
    /// Sender threads.
    pub connections: usize,
    /// Jobs per generated `/evaluate` instance.
    pub n: usize,
}

/// One planned request: fire at `at_us` (relative to the run start),
/// POST `body` to `target`.
#[derive(Debug, Clone)]
pub struct Planned {
    /// Scheduled send time, microseconds after the run starts.
    pub at_us: u64,
    /// Path + query, e.g. `/evaluate?alg=avrq&alpha=3`.
    pub target: String,
    /// Request body (JSON).
    pub body: String,
}

/// Requests per adversarial burst: enough simultaneous arrivals to
/// overrun a small worker pool in one tick.
const BURST_SIZE: usize = 8;
/// Seconds between adversarial bursts.
const BURST_PERIOD_S: f64 = 0.5;

/// A seed split: decorrelates per-request payload seeds from the
/// arrival process (splitmix64's odd multiplier).
fn derive_seed(seed: u64, index: u64) -> u64 {
    seed.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15)).wrapping_mul(0xBF58_476D_1CE4_E5B9)
}

fn evaluate_planned(at_us: u64, n: usize, payload_seed: u64) -> Result<Planned, String> {
    let inst = gen::generate(&GenConfig::online_default(n.max(2), payload_seed));
    let body = io::to_json(&inst)
        .map_err(|e| format!("generated instance failed validation: {e}"))?;
    Ok(Planned { at_us, target: "/evaluate?alg=avrq&alpha=3".to_string(), body })
}

fn sweep_planned(at_us: u64, n: usize, payload_seed: u64) -> Planned {
    // A fixed small grid (3 × 2 × 2 = 12 cells): heavy enough to make
    // cost-aware admission meaningful, light enough to finish fast.
    let body = format!(
        "{{\"count\": 3, \"n\": {}, \"seed\": {}, \"alg\": \"avrq,bkpq\", \"alpha\": [2, 3]}}",
        n.max(2),
        // Keep the seed in the sweep engine's comfortable range.
        payload_seed % 100_000
    );
    Planned { at_us, target: "/sweep".to_string(), body }
}

/// The Lemma 4.x lower-bound constructions, cycled through burst
/// trains. Each is a hand-built worst case from the paper's §4 proofs —
/// the instances designed to make an algorithm look as bad as possible.
fn adversarial_body(index: usize) -> Result<String, String> {
    let inst = match index % 7 {
        0 => adversary::lemma_4_1_instance(0.2),
        1 => adversary::lemma_4_1_instance(0.35),
        2 => adversary::lemma_4_2_instance(true),
        3 => adversary::lemma_4_2_instance(false),
        4 => adversary::lemma_4_3_instance(None),
        5 => adversary::lemma_4_3_instance(Some(0.3)),
        _ => adversary::lemma_4_3_instance(Some(0.7)),
    };
    io::to_json(&inst).map_err(|e| format!("lemma instance failed validation: {e}"))
}

/// Builds the full deterministic request schedule: Poisson arrivals
/// over `[0, duration)`, plus (with `adversarial`) burst trains every
/// [`BURST_PERIOD_S`]. Sorted by arrival time, stable.
pub fn build_schedule(cfg: &LoadgenConfig) -> Result<Vec<Planned>, String> {
    if !(cfg.rps.is_finite() && cfg.rps > 0.0) {
        return Err("rps must be a positive number".to_string());
    }
    if !(cfg.duration_s.is_finite() && cfg.duration_s > 0.0) {
        return Err("duration must be a positive number".to_string());
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut schedule = Vec::new();
    let mut t = 0.0_f64;
    let mut index: u64 = 0;
    loop {
        // Exponential interarrival: -ln(1-U)/λ, the Poisson process.
        let u: f64 = rng.gen_range(0.0..1.0);
        t += -(1.0 - u).ln() / cfg.rps;
        if t >= cfg.duration_s {
            break;
        }
        let at_us = (t * 1e6) as u64;
        let payload_seed = derive_seed(cfg.seed, index);
        let use_sweep = match cfg.mix {
            Mix::Evaluate => false,
            Mix::Sweep => true,
            Mix::Mixed => rng.gen_bool(0.25),
        };
        schedule.push(if use_sweep {
            sweep_planned(at_us, cfg.n, payload_seed)
        } else {
            evaluate_planned(at_us, cfg.n, payload_seed)?
        });
        index += 1;
    }
    if cfg.adversarial {
        // Burst trains: BURST_SIZE simultaneous arrivals every
        // BURST_PERIOD_S, carrying the paper's lower-bound instances.
        let mut burst_t = BURST_PERIOD_S.min(cfg.duration_s / 2.0);
        let mut k = 0usize;
        while burst_t < cfg.duration_s {
            let at_us = (burst_t * 1e6) as u64;
            for _ in 0..BURST_SIZE {
                schedule.push(Planned {
                    at_us,
                    target: "/evaluate?alg=avrq&alpha=3".to_string(),
                    body: adversarial_body(k)?,
                });
                k += 1;
            }
            burst_t += BURST_PERIOD_S;
        }
    }
    schedule.sort_by_key(|p| p.at_us);
    Ok(schedule)
}

/// FNV-1a 64 over the schedule's `(at_us, target, body)` triples — the
/// fingerprint the determinism tests compare across runs.
pub fn schedule_hash(schedule: &[Planned]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    for p in schedule {
        eat(&p.at_us.to_le_bytes());
        eat(p.target.as_bytes());
        eat(&[0]);
        eat(p.body.as_bytes());
        eat(&[0]);
    }
    h
}

/// The deterministic plan summary printed by `--plan-only`: everything
/// about the schedule, nothing about the wall clock.
pub fn plan_json(cfg: &LoadgenConfig, schedule: &[Planned]) -> String {
    let evaluates = schedule.iter().filter(|p| p.target.starts_with("/evaluate")).count();
    let sweeps = schedule.len() - evaluates;
    format!(
        "{{\"schema\": \"qbss-loadgen-plan/1\", \"requests\": {}, \
         \"hash\": \"{:016x}\", \"evaluate\": {}, \"sweep\": {}, \
         \"first_at_us\": {}, \"last_at_us\": {}, {}}}",
        schedule.len(),
        schedule_hash(schedule),
        evaluates,
        sweeps,
        schedule.first().map_or(0, |p| p.at_us),
        schedule.last().map_or(0, |p| p.at_us),
        config_json_fields(cfg),
    )
}

fn config_json_fields(cfg: &LoadgenConfig) -> String {
    format!(
        "\"config\": {{\"rps\": {}, \"duration_s\": {}, \"seed\": {}, \"mix\": \"{}\", \
         \"adversarial\": {}, \"connections\": {}, \"n\": {}}}",
        json_f64(cfg.rps),
        json_f64(cfg.duration_s),
        cfg.seed,
        cfg.mix.as_str(),
        cfg.adversarial,
        cfg.connections,
        cfg.n,
    )
}

// ---------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------

/// The outcome of one planned request.
struct Sample {
    /// HTTP status, or `None` on a transport-level failure (refused,
    /// reset, unparseable response) — the "connection-level 5xx" class
    /// the acceptance criteria require to be zero.
    status: Option<u16>,
    latency_us: u64,
    /// How far behind schedule the send actually started.
    slip_us: u64,
    /// Whether a `Retry-After` header accompanied the response.
    retry_after: bool,
}

fn fire(addr: &str, planned: &Planned, io_timeout: Duration) -> (Option<u16>, bool, u64) {
    let started = Instant::now();
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return (None, false, started.elapsed().as_micros() as u64);
    };
    let _ = stream.set_read_timeout(Some(io_timeout));
    let _ = stream.set_write_timeout(Some(io_timeout));
    let req = format!(
        "POST {} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        planned.target,
        planned.body.len(),
        planned.body
    );
    if stream.write_all(req.as_bytes()).is_err() {
        return (None, false, started.elapsed().as_micros() as u64);
    }
    let mut raw = String::new();
    if stream.read_to_string(&mut raw).is_err() || raw.is_empty() {
        return (None, false, started.elapsed().as_micros() as u64);
    }
    let latency_us = started.elapsed().as_micros() as u64;
    let status = raw
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|tok| tok.parse::<u16>().ok());
    let head = raw.split("\r\n\r\n").next().unwrap_or("");
    let retry_after = head
        .lines()
        .any(|l| l.to_ascii_lowercase().starts_with("retry-after:"));
    (status, retry_after, latency_us)
}

/// What a load run produced: the canonical report plus the headline
/// numbers callers branch on.
pub struct RunOutcome {
    /// The canonical `qbss-loadgen-report/1` JSON.
    pub report: String,
    /// Requests fired.
    pub sent: u64,
    /// Requests that got *any* HTTP response back.
    pub completed: u64,
}

/// Runs the schedule against `addr` with `connections` open-loop sender
/// threads and returns the canonical JSON report.
pub fn run_schedule(
    addr: &str,
    cfg: &LoadgenConfig,
    schedule: &[Planned],
    io_timeout: Duration,
) -> RunOutcome {
    let next = AtomicUsize::new(0);
    let start = Instant::now();
    let threads = cfg.connections.max(1).min(schedule.len().max(1));
    let mut samples: Vec<Sample> = Vec::with_capacity(schedule.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let next = &next;
            handles.push(scope.spawn(move || {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(planned) = schedule.get(i) else { break };
                    let due = Duration::from_micros(planned.at_us);
                    let now = start.elapsed();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                    let slip_us =
                        (start.elapsed().as_micros() as u64).saturating_sub(planned.at_us);
                    let (status, retry_after, latency_us) = fire(addr, planned, io_timeout);
                    local.push(Sample { status, latency_us, slip_us, retry_after });
                }
                local
            }));
        }
        for handle in handles {
            if let Ok(local) = handle.join() {
                samples.extend(local);
            }
        }
    });
    let wall_s = start.elapsed().as_secs_f64();
    let sent = samples.len() as u64;
    let completed = samples.iter().filter(|s| s.status.is_some()).count() as u64;
    RunOutcome { report: report_json(cfg, schedule, &samples, wall_s), sent, completed }
}

fn report_json(
    cfg: &LoadgenConfig,
    schedule: &[Planned],
    samples: &[Sample],
    wall_s: f64,
) -> String {
    // A run-local registry (not the process-global one): the latency
    // histogram belongs to this report, not to /metrics.
    let registry = Registry::new();
    let latency = registry.histogram("loadgen.latency_us", &DURATION_US_BOUNDS);
    let mut status_counts: BTreeMap<u16, u64> = BTreeMap::new();
    let mut transport_errors = 0u64;
    let mut status_5xx = 0u64;
    let mut shed = 0u64;
    let mut retry_after_429 = 0u64;
    let mut max_slip_us = 0u64;
    for s in samples {
        max_slip_us = max_slip_us.max(s.slip_us);
        match s.status {
            None => transport_errors += 1,
            Some(code) => {
                *status_counts.entry(code).or_insert(0) += 1;
                latency.record(s.latency_us as f64);
                if code >= 500 {
                    status_5xx += 1;
                }
                if code == 429 {
                    shed += 1;
                    if s.retry_after {
                        retry_after_429 += 1;
                    }
                }
            }
        }
    }
    let completed = samples.len() as u64 - transport_errors;
    let status_json = status_counts
        .iter()
        .map(|(code, n)| format!("\"{code}\": {n}"))
        .collect::<Vec<_>>()
        .join(", ");
    let sent = samples.len() as u64;
    let shed_rate = if sent == 0 { 0.0 } else { shed as f64 / sent as f64 };
    let q = |p: f64| latency.quantile(p) / 1e3;
    // The build fingerprint pins blessed reports to the binary that
    // produced them (informational: comparisons ignore it).
    let build = qbss_bench::BuildInfo::capture();
    format!(
        "{{\"schema\": \"qbss-loadgen-report/1\", \
         \"build\": {{\"version\": \"{}\", \"git\": \"{}\"}}, {}, \
         \"schedule\": {{\"requests\": {}, \"hash\": \"{:016x}\"}}, \
         \"results\": {{\"sent\": {sent}, \"completed\": {completed}, \
         \"transport_errors\": {transport_errors}, \"wall_s\": {}, \
         \"throughput_rps\": {}, \"status\": {{{status_json}}}, \
         \"status_5xx\": {status_5xx}, \"shed\": {shed}, \"shed_rate\": {}, \
         \"retry_after_on_429\": {}, \
         \"latency_ms\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}, \"mean\": {}, \"max\": {}}}, \
         \"max_start_slip_ms\": {}}}}}",
        qbss_telemetry::json_escape(&build.version),
        qbss_telemetry::json_escape(&build.git),
        config_json_fields(cfg),
        schedule.len(),
        schedule_hash(schedule),
        json_f64(wall_s),
        json_f64(if wall_s > 0.0 { completed as f64 / wall_s } else { 0.0 }),
        json_f64(shed_rate),
        shed == retry_after_429,
        json_f64(q(0.50)),
        json_f64(q(0.95)),
        json_f64(q(0.99)),
        json_f64(latency.mean() / 1e3),
        json_f64(latency.max() / 1e3),
        json_f64(max_slip_us as f64 / 1e3),
    )
}

// ---------------------------------------------------------------------
// Spawned in-process server (for `--spawn`)
// ---------------------------------------------------------------------

/// A server spawned in-process for self-contained loadgen runs: bound
/// on an ephemeral loopback port, drained and joined on drop.
pub struct SpawnedServer {
    addr: String,
    handle: Option<std::thread::JoinHandle<Result<(), String>>>,
}

impl SpawnedServer {
    /// Binds `127.0.0.1:0` and runs `serve::run` on a background thread
    /// with a fast accept tick (the loadgen is latency-sensitive).
    pub fn start(budget: u64, request_timeout_ms: u64) -> Result<SpawnedServer, String> {
        let listener = std::net::TcpListener::bind("127.0.0.1:0")
            .map_err(|e| format!("cannot bind a loopback port: {e}"))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("cannot read the bound address: {e}"))?
            .to_string();
        crate::serve::reset_shutdown();
        let cfg = crate::serve::ServeConfig {
            budget,
            request_timeout_ms,
            accept_tick_ms: 5,
            ..crate::serve::ServeConfig::new(qbss_telemetry::RingSink::default())
        };
        let handle = std::thread::spawn(move || crate::serve::run(listener, cfg));
        // The listener is bound before the thread starts, so connects
        // succeed immediately; no readiness poll needed.
        Ok(SpawnedServer { addr, handle: Some(handle) })
    }

    /// The server's `host:port`.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Requests a drain and joins the server thread.
    pub fn stop(mut self) -> Result<(), String> {
        self.shutdown()
    }

    fn shutdown(&mut self) -> Result<(), String> {
        crate::serve::request_shutdown();
        match self.handle.take() {
            None => Ok(()),
            Some(h) => h.join().map_err(|_| "server thread panicked".to_string())?,
        }
    }
}

impl Drop for SpawnedServer {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(seed: u64) -> LoadgenConfig {
        LoadgenConfig {
            rps: 200.0,
            duration_s: 0.5,
            seed,
            mix: Mix::Mixed,
            adversarial: false,
            connections: 4,
            n: 6,
        }
    }

    #[test]
    fn schedules_are_deterministic_in_the_seed() {
        let a = build_schedule(&cfg(7)).expect("builds");
        let b = build_schedule(&cfg(7)).expect("builds");
        assert_eq!(schedule_hash(&a), schedule_hash(&b));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.at_us, &x.target, &x.body), (y.at_us, &y.target, &y.body));
        }
        let c = build_schedule(&cfg(8)).expect("builds");
        assert_ne!(schedule_hash(&a), schedule_hash(&c), "different seeds differ");
    }

    #[test]
    fn schedule_is_sorted_and_inside_the_window() {
        let s = build_schedule(&cfg(3)).expect("builds");
        assert!(!s.is_empty(), "200 rps over 0.5 s yields arrivals");
        assert!(s.windows(2).all(|w| w[0].at_us <= w[1].at_us), "sorted by arrival");
        assert!(s.iter().all(|p| p.at_us < 500_000), "inside the window");
    }

    #[test]
    fn mix_controls_the_targets() {
        let mut only_eval = cfg(1);
        only_eval.mix = Mix::Evaluate;
        let s = build_schedule(&only_eval).expect("builds");
        assert!(s.iter().all(|p| p.target.starts_with("/evaluate")));
        let mut only_sweep = cfg(1);
        only_sweep.mix = Mix::Sweep;
        let s = build_schedule(&only_sweep).expect("builds");
        assert!(s.iter().all(|p| p.target == "/sweep"));
    }

    #[test]
    fn adversarial_mode_adds_burst_trains() {
        let mut adv = cfg(5);
        adv.adversarial = true;
        let plain = build_schedule(&cfg(5)).expect("builds");
        let bursty = build_schedule(&adv).expect("builds");
        assert!(bursty.len() > plain.len(), "bursts add arrivals");
        // Bursts are simultaneous: some timestamp repeats BURST_SIZE times.
        let mut counts: BTreeMap<u64, usize> = BTreeMap::new();
        for p in &bursty {
            *counts.entry(p.at_us).or_insert(0) += 1;
        }
        assert!(
            counts.values().any(|&c| c >= BURST_SIZE),
            "a burst of {BURST_SIZE} simultaneous arrivals exists"
        );
        // Lemma payloads are valid instance JSON.
        for k in 0..7 {
            let body = adversarial_body(k).expect("valid lemma instance");
            io::from_json(&body).expect("round-trips");
        }
    }

    #[test]
    fn plan_json_is_wall_clock_free() {
        let c = cfg(11);
        let s = build_schedule(&c).expect("builds");
        let p1 = plan_json(&c, &s);
        let p2 = plan_json(&c, &build_schedule(&c).expect("builds"));
        assert_eq!(p1, p2, "plans are byte-identical across runs");
        assert!(p1.contains("\"schema\": \"qbss-loadgen-plan/1\""), "{p1}");
        assert!(p1.contains("\"hash\": \""), "{p1}");
    }

    #[test]
    fn bad_configs_are_rejected() {
        let mut c = cfg(0);
        c.rps = 0.0;
        assert!(build_schedule(&c).is_err());
        let mut c = cfg(0);
        c.duration_s = -1.0;
        assert!(build_schedule(&c).is_err());
    }

    #[test]
    fn fnv_hash_is_order_sensitive() {
        let a = Planned { at_us: 1, target: "/a".into(), body: "x".into() };
        let b = Planned { at_us: 2, target: "/b".into(), body: "y".into() };
        assert_ne!(
            schedule_hash(&[a.clone(), b.clone()]),
            schedule_hash(&[b, a]),
            "hash must see ordering"
        );
    }

    #[test]
    fn empty_report_is_well_formed() {
        let c = cfg(0);
        let json = report_json(&c, &[], &[], 0.0);
        assert!(json.contains("\"sent\": 0"), "{json}");
        assert!(json.contains("\"shed_rate\": 0"), "{json}");
        qbss_telemetry::json_parse(&json).expect("canonical JSON parses");
    }
}
