//! Implementation of the `qbss` subcommands.
//!
//! Every subcommand returns a [`CliError`], which the `main` wrapper
//! maps onto the process exit-code contract:
//!
//! | code | meaning                                              |
//! |------|------------------------------------------------------|
//! | 0    | success                                              |
//! | 1    | the algorithm pipeline failed ([`CliError::Algorithm`]) |
//! | 2    | bad input: flags, instance data ([`CliError::Input`]) |
//! | 3    | file-system failure ([`CliError::Io`]) or a perf-gate regression ([`CliError::Gate`]) |
//!
//! Flags are uniform across subcommands — `--alg`, `--alpha`, `--m`,
//! `--seed`, `--format table|json|csv` — parsed by the typed [`Flags`]
//! helper: each command declares its known flags and unknown ones are
//! errors. The pre-redesign spellings (`--algorithm`, `--machines`)
//! were removed after a deprecation period; they are unknown flags now.

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};

use qbss_bench::engine::{run_sweep_audited, EngineReport, InstanceSource, SweepSpec};
use qbss_bench::perf::{self, Baseline, PerfConfig, Threshold};
use qbss_bench::complexity::{self, ComplexityBaseline};
use qbss_bench::quality::{self, QualityBaseline};
use qbss_bench::{BuildInfo, StreamSession};
use qbss_telemetry::profile::Profile;
use qbss_telemetry::{Config, Filter, InitError, JsonValue, RingSink, SinkTarget};
use qbss_core::error::{AlgorithmError, QbssError};
use qbss_core::model::{QJob, QbssInstance};
use qbss_core::offline::is_power_of_two_deadline;
use qbss_core::pipeline::{run_evaluated, Algorithm, DEFAULT_FW_ITERS, DEFAULT_MACHINES};
use qbss_instances::gen::{self, Compressibility, GenConfig, QueryModel, TimeModel};
use qbss_instances::io::{self, IoError};
use speed_scaling::render::{timeline_html, TimelineBand};
use speed_scaling::OptCache;

/// Top-level usage text.
pub const USAGE: &str = "\
qbss — speed scaling with explorable uncertainty (SPAA 2021)

USAGE:
  qbss generate [--n N] [--seed S] [--family online|poisson|common|p2|arbitrary]
                [--compress uniform|bimodal|heavytail|incompressible|full]
                [--events] [--out FILE] [--trace FILE]
                  (--events emits the JSONL arrival stream for `qbss stream`)
  qbss run      --alg ALG --in FILE [--alpha A] [--m M] [--format table|json|csv]
                [--gantt true] [--save-outcome FILE] [--trace FILE]
                  ALG: avrq | bkpq | oaq | crcd | crp2d | crad
                     | avrq-m[:M] | avrq-m-nonmig[:M] | oaq-m[:M[:ITERS]]
  qbss stream   --alg avrq|bkpq|oaq [--alpha A] [--in FILE] [--format table|json|csv]
                [--trace FILE]
                  (JSONL events from --in FILE or stdin: {\"type\": \"arrive\", ...},
                   {\"type\": \"advance\", \"t\": T}, {\"type\": \"finish\"}; EOF finishes)
  qbss compare  --in FILE [--alpha A] [--format table|json|csv] [--trace FILE]
  qbss explain  --alg ALG (--in FILE | [--n N] [--seed S] [--family F] [--compress C])
                [--alpha A] [--format table|json] [--html FILE] [--trace FILE]
                  (factor the cell's ratio into query × split × sched losses,
                   print per-job decision rows, render an ALG-vs-OPT timeline)
  qbss sweep    [--count K] [--n N] [--seed S] [--family F] [--compress C]
                [--alg LIST|all] [--alpha LIST] [--m M] [--fw-iters I]
                [--shards S] [--opt-fw-iters I] [--format json|csv] [--out FILE]
                [--audit] [--trace FILE]
  qbss serve    [--addr HOST:PORT] [--workers N] [--ring-capacity N]
                [--slow-ms MS] [--budget CELLS] [--request-timeout-ms MS]
                [--io-timeout-ms MS] [--accept-tick-ms MS]
  qbss loadgen  [--addr HOST:PORT | --spawn] [--rps R] [--duration-s S]
                [--seed S] [--mix evaluate|sweep|mixed] [--adversarial]
                [--connections N] [--n N] [--budget CELLS]
                [--request-timeout-ms MS] [--out FILE] [--plan-only]
  qbss bounds   [--alpha A]
  qbss rho
  qbss trace    summarize FILE [--top K] [--format text|json]
  qbss trace    report FILE [--out FILE]
                  (trace FILE may be `-` to read stdin)
  qbss perf     record  [--out FILE] [--scenarios LIST] [--repeats N]
                        [--warmup N] [--shards S] [--profile] [--trace FILE]
  qbss perf     compare BASE NEW [--mad-factor X] [--min-rel X]
  qbss perf     gate    --base FILE [--new FILE] [--mad-factor X] [--min-rel X] [--explain]
  qbss quality  record  [--out FILE] [--scenarios LIST] [--shards S] [--trace FILE]
  qbss quality  compare BASE NEW
  qbss quality  gate    --base FILE [--new FILE] [--shards S] [--explain]
                  (pinned competitive-ratio scenarios; the gate is exact —
                   any worsened max ratio or bound headroom exits 3)
  qbss complexity record  [--out FILE] [--scenarios LIST] [--format json|csv]
                          [--trace FILE]
  qbss complexity compare BASE NEW
  qbss complexity gate    --base FILE [--new FILE] [--explain]
                  (deterministic op counters swept over n-grids; the gate
                   is exact — any increased count at any grid point or a
                   fitted-exponent increase beyond +0.05 exits 3)
  qbss prof     record  (--trace FILE | --scenario NAME [--repeats N] [--warmup N]
                        [--shards S]) [--collapse LIST] [--counts-only] [--out FILE]
  qbss prof     diff    BASE NEW [--top K]
  qbss prof     flame   (--trace FILE | --folded FILE) [--title T] [--out FILE]
  qbss --version
  qbss help

OBSERVABILITY:
  --trace FILE   record a JSONL trace (spans + events + metrics records)
  --audit        validate every sweep schedule against the paper's
                 invariants (feasibility, query rule, Lemma 3.1 loads,
                 proven energy/speed bounds); breaches raise `error!`
                 events and the `audit.violations` counter
  QBSS_LOG       event filter: `level` or `target=level`, comma-separated
                 (off|error|warn|info|debug|trace); a bad spec is bad input

EXIT CODES:
  0 success | 1 algorithm failure | 2 bad input
  3 I/O failure or a perf/quality/complexity-gate regression
  (`qbss serve` exits 0 on SIGTERM/ctrl-c after draining in-flight requests)";

/// A subcommand failure, carrying its exit code.
#[derive(Debug)]
pub enum CliError {
    /// Malformed command line or instance data (exit code 2).
    Input(String),
    /// The algorithm pipeline rejected or failed the run (exit code 1).
    Algorithm(QbssError),
    /// The file system failed (exit code 3).
    Io(String),
    /// `qbss perf gate`, `qbss quality gate`, or `qbss complexity
    /// gate` found a regression (exit code 3, like a CI infrastructure
    /// failure: the build is not acceptable as-is).
    Gate(String),
}

impl CliError {
    /// The process exit code this error maps to.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Algorithm(_) => 1,
            CliError::Input(_) => 2,
            CliError::Io(_) | CliError::Gate(_) => 3,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Input(m) | CliError::Io(m) | CliError::Gate(m) => f.write_str(m),
            CliError::Algorithm(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Algorithm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QbssError> for CliError {
    fn from(e: QbssError) -> Self {
        CliError::Algorithm(e)
    }
}

impl From<IoError> for CliError {
    fn from(e: IoError) -> Self {
        match e {
            IoError::File { .. } => CliError::Io(e.to_string()),
            // Syntax and model errors in an instance file are bad
            // *input*, not an I/O failure.
            _ => CliError::Input(e.to_string()),
        }
    }
}

fn input(msg: impl Into<String>) -> CliError {
    CliError::Input(msg.into())
}

// ---------------------------------------------------------------------
// Telemetry plumbing
// ---------------------------------------------------------------------

/// RAII handle for one command's telemetry pipeline: shuts it down
/// (flushing file sinks) when the command returns on any path.
struct Telemetry;

impl Drop for Telemetry {
    fn drop(&mut self) {
        qbss_telemetry::shutdown();
    }
}

/// The event filter for a command: the `QBSS_LOG` spec when set (a
/// malformed spec is bad *input*, exit 2), else `info` when tracing to
/// a file, else everything off.
fn filter_from_spec(spec: Option<&str>, tracing: bool) -> Result<Filter, CliError> {
    match spec {
        Some(s) => Filter::parse(s).map_err(|e| input(e.to_string())),
        None if tracing => Ok(Filter::default()),
        None => Ok(Filter::off()),
    }
}

/// Installs telemetry for one command from `--trace` and `QBSS_LOG`.
///
/// With neither present this is a no-op and every probe in the library
/// crates stays on its one-atomic-load disabled path. `--trace FILE`
/// routes spans, events and metrics records to `FILE` as JSONL; a bare
/// `QBSS_LOG` streams events to stderr (one JSONL record per line).
fn init_telemetry(flags: &Flags) -> Result<Telemetry, CliError> {
    let trace_path = flags.get("trace");
    let spec = std::env::var("QBSS_LOG").ok();
    let filter = filter_from_spec(spec.as_deref(), trace_path.is_some())?;
    if trace_path.is_none() && filter.max_level().is_none() {
        return Ok(Telemetry);
    }
    let sink = match trace_path {
        Some(p) => SinkTarget::File(PathBuf::from(p)),
        None => SinkTarget::Stderr,
    };
    match qbss_telemetry::init(Config { filter, sink, spans: trace_path.is_some() }) {
        Ok(()) => Ok(Telemetry),
        // In-process callers (tests) may already hold a pipeline; the
        // command then logs into it instead of failing.
        Err(InitError::AlreadyInitialized) => Ok(Telemetry),
        Err(e @ InitError::Io(_)) => Err(CliError::Io(e.to_string())),
    }
}

/// Profile-capture ring capacity: large enough to hold every span of
/// one timed repeat of the heaviest built-in scenario (the profiler
/// drains between repeats, so one repeat is the high-water mark).
const PROFILE_RING_CAPACITY: usize = 1 << 18;

/// Installs the span-capture pipeline for profiled runs: spans into a
/// fresh private ring, leveled events off. Returns the ring read
/// handle plus the RAII shutdown guard. A pipeline that is already
/// live (an in-process caller holding a sink) cannot be rerouted into
/// the profile ring, so that is bad input rather than silent
/// mis-capture.
fn init_profile_ring() -> Result<(RingSink, Telemetry), CliError> {
    let ring = RingSink::new(PROFILE_RING_CAPACITY);
    let config =
        Config { filter: Filter::off(), sink: SinkTarget::Ring(ring.clone()), spans: true };
    match qbss_telemetry::init(config) {
        Ok(()) => Ok((ring, Telemetry)),
        Err(InitError::AlreadyInitialized) => {
            Err(input("cannot profile: a telemetry pipeline is already active in this process"))
        }
        Err(e @ InitError::Io(_)) => Err(CliError::Io(e.to_string())),
    }
}

/// Routes a cautionary user-facing note: a `warn` event when the
/// telemetry pipeline is live (so a JSONL stderr stream stays
/// machine-parsable), a plain stderr note otherwise.
fn warn_user(msg: &str) {
    if qbss_telemetry::active() {
        qbss_telemetry::warn!("cli", "{msg}");
    } else {
        eprintln!("note: {msg}");
    }
}

/// Routes a human status line ("wrote N jobs to F") the same way, at
/// `info` level.
fn status_user(msg: &str) {
    if qbss_telemetry::active() {
        qbss_telemetry::info!("cli", "{msg}");
    } else {
        eprintln!("{msg}");
    }
}

// ---------------------------------------------------------------------
// Flag parsing
// ---------------------------------------------------------------------

/// Typed `--key value` flags with a per-command vocabulary.
#[derive(Debug)]
struct Flags {
    values: HashMap<String, String>,
}

impl Flags {
    /// Parses `--key value` pairs. `known` is the command's canonical
    /// vocabulary: unknown flags are bad input.
    fn parse(args: &[String], known: &[&str]) -> Result<Flags, CliError> {
        Self::parse_with_switches(args, known, &[])
    }

    /// Like [`Flags::parse`], but flags named in `switches` may appear
    /// bare (`--audit`) and then read as `"true"`; an explicit value
    /// (`--audit false`) still works.
    fn parse_with_switches(
        args: &[String],
        known: &[&str],
        switches: &[&str],
    ) -> Result<Flags, CliError> {
        let mut values = HashMap::new();
        let mut it = args.iter().peekable();
        while let Some(key) = it.next() {
            let Some(name) = key.strip_prefix("--") else {
                return Err(input(format!("expected --flag, got `{key}`")));
            };
            if !known.contains(&name) {
                return Err(input(format!(
                    "unknown flag --{name} (expected one of: {})",
                    known.iter().map(|k| format!("--{k}")).collect::<Vec<_>>().join(", ")
                )));
            }
            let value = if switches.contains(&name) {
                match it.peek() {
                    Some(v) if !v.starts_with("--") => {
                        it.next().cloned().unwrap_or_else(|| "true".to_string())
                    }
                    _ => "true".to_string(),
                }
            } else {
                let Some(value) = it.next() else {
                    return Err(input(format!("--{name} needs a value")));
                };
                value.clone()
            };
            values.insert(name.to_string(), value);
        }
        Ok(Flags { values })
    }

    /// Reads a boolean switch set via [`Flags::parse_with_switches`].
    fn switch(&self, name: &str) -> Result<bool, CliError> {
        match self.get(name) {
            None => Ok(false),
            Some("true") => Ok(true),
            Some("false") => Ok(false),
            Some(v) => Err(input(format!("--{name}: expected true or false, got `{v}`"))),
        }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    fn f64(&self, name: &str, default: f64) -> Result<f64, CliError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| input(format!("--{name}: not a number: `{v}`"))),
        }
    }

    fn usize(&self, name: &str, default: usize) -> Result<usize, CliError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| input(format!("--{name}: not an integer: `{v}`"))),
        }
    }

    fn u64(&self, name: &str, default: u64) -> Result<u64, CliError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| input(format!("--{name}: not an integer: `{v}`"))),
        }
    }

    /// Parses `--alpha` and enforces the model's `α > 1` (finite)
    /// contract up front, so a bad exponent is a bad-input error
    /// (exit 2), not an algorithm failure.
    fn alpha(&self) -> Result<f64, CliError> {
        let a = self.f64("alpha", 3.0)?;
        if !a.is_finite() || a <= 1.0 {
            return Err(input("alpha must be finite and exceed 1"));
        }
        Ok(a)
    }

    /// `--format` with a per-command default and allowed set.
    fn format(&self, default: &'static str, allowed: &[&str]) -> Result<String, CliError> {
        let f = self.get("format").unwrap_or(default);
        if !allowed.contains(&f) {
            return Err(input(format!(
                "--format: unknown format `{f}` (expected {})",
                allowed.join("|")
            )));
        }
        Ok(f.to_string())
    }

    /// `--alg`, through the canonical [`Algorithm`] parser; an explicit
    /// `--m` overrides the machine count of bare multi-machine names.
    fn algorithm(&self) -> Result<Algorithm, CliError> {
        let name = self.get("alg").ok_or_else(|| input("--alg ALG is required"))?;
        let alg: Algorithm = name.parse().map_err(|e: qbss_core::pipeline::ParseAlgorithmError| {
            input(e.to_string())
        })?;
        match self.get("m") {
            None => Ok(alg),
            Some(_) => Ok(with_machines(alg, self.usize("m", DEFAULT_MACHINES)?)?),
        }
    }
}

/// Rebinds a multi-machine algorithm to `m` machines (no-op on
/// single-machine algorithms).
fn with_machines(alg: Algorithm, m: usize) -> Result<Algorithm, CliError> {
    if m == 0 {
        return Err(input("--m: machine count must be at least 1"));
    }
    Ok(alg.with_machines(m))
}

fn load_instance(flags: &Flags) -> Result<QbssInstance, CliError> {
    let path = flags.get("in").ok_or_else(|| input("--in FILE is required"))?;
    Ok(io::read_file(Path::new(path))?)
}

fn time_model_for(name: &str, n: usize) -> Result<TimeModel, CliError> {
    TimeModel::from_name(name, n).ok_or_else(|| {
        input(format!("unknown family `{name}` (one of: {})", TimeModel::NAMES.join(", ")))
    })
}

fn compress_for(name: &str) -> Result<Compressibility, CliError> {
    Compressibility::from_name(name).ok_or_else(|| {
        input(format!(
            "unknown compressibility `{name}` (one of: {})",
            Compressibility::NAMES.join(", ")
        ))
    })
}

// ---------------------------------------------------------------------
// Subcommands
// ---------------------------------------------------------------------

/// Renders an instance as the JSONL arrival-event stream `qbss stream`
/// consumes, in canonical arrival order (release, then id).
fn events_jsonl(inst: &QbssInstance) -> String {
    let mut s = String::new();
    for j in qbss_core::stream::arrival_ordered(inst) {
        s.push_str(&format!(
            "{{\"type\": \"arrive\", \"id\": {}, \"release\": {}, \"deadline\": {}, \
             \"query_load\": {}, \"upper_bound\": {}, \"exact\": {}}}\n",
            j.id,
            j.release,
            j.deadline,
            j.query_load,
            j.upper_bound,
            j.reveal_exact()
        ));
    }
    s
}

/// `qbss generate`.
pub fn generate(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse_with_switches(
        args,
        &["n", "seed", "family", "compress", "out", "events", "trace"],
        &["events"],
    )?;
    let _telemetry = init_telemetry(&flags)?;
    let _span = qbss_telemetry::span!("cli.generate");
    let n = flags.usize("n", 50)?;
    let seed = flags.u64("seed", 0)?;
    let time = time_model_for(flags.get("family").unwrap_or("online"), n)?;
    let compress = compress_for(flags.get("compress").unwrap_or("uniform"))?;
    let cfg = GenConfig {
        n,
        seed,
        time,
        min_w: 0.5,
        max_w: 4.0,
        query: QueryModel::UniformFraction { lo: 0.1, hi: 0.6 },
        compress,
    };
    let inst = gen::generate(&cfg);
    // `--events` emits the JSONL arrival stream `qbss stream` consumes
    // instead of an instance document.
    if flags.switch("events")? {
        let body = events_jsonl(&inst);
        match flags.get("out") {
            Some(path) => {
                std::fs::write(path, &body)
                    .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
                status_user(&format!("wrote {n} arrival events to {path}"));
            }
            None => print!("{body}"),
        }
        return Ok(());
    }
    match flags.get("out") {
        Some(path) => {
            io::write_file(&inst, Path::new(path))?;
            status_user(&format!("wrote {n} jobs to {path}"));
        }
        None => println!("{}", io::to_json(&inst)?),
    }
    Ok(())
}

/// One evaluated row of `run`/`compare` output: the pipeline's gate
/// costs next to the cached clairvoyant baseline — nothing is
/// re-integrated for printing.
struct CostRow {
    algorithm: String,
    energy: f64,
    energy_ratio: f64,
    max_speed: f64,
    speed_ratio: f64,
    queried: usize,
}

fn cost_row(
    inst: &QbssInstance,
    alpha: f64,
    algorithm: Algorithm,
    opt: &OptCache,
) -> Result<(CostRow, qbss_core::QbssOutcome), CliError> {
    let ev = run_evaluated(inst, alpha, algorithm)?;
    let queried = ev.outcome.decisions.iter().filter(|d| d.queried).count();
    let row = CostRow {
        algorithm: ev.outcome.algorithm.clone(),
        energy: ev.energy,
        energy_ratio: ev.energy / opt.energy(alpha),
        max_speed: ev.max_speed,
        speed_ratio: ev.max_speed / opt.max_speed(),
        queried,
    };
    Ok((row, ev.outcome))
}

const ROW_CSV_HEADER: &str = "algorithm,energy,energy_ratio,max_speed,speed_ratio,queried";

fn row_csv(r: &CostRow) -> String {
    format!(
        "{},{},{},{},{},{}",
        r.algorithm, r.energy, r.energy_ratio, r.max_speed, r.speed_ratio, r.queried
    )
}

fn row_json(r: &CostRow) -> String {
    format!(
        "{{\"algorithm\": \"{}\", \"energy\": {}, \"energy_ratio\": {}, \"max_speed\": {}, \
         \"speed_ratio\": {}, \"queried\": {}}}",
        r.algorithm, r.energy, r.energy_ratio, r.max_speed, r.speed_ratio, r.queried
    )
}

/// `qbss run`.
pub fn run(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(
        args,
        &["alg", "in", "alpha", "m", "format", "gantt", "save-outcome", "trace"],
    )?;
    let _telemetry = init_telemetry(&flags)?;
    let mut span = qbss_telemetry::span!("cli.run");
    let inst = load_instance(&flags)?;
    let alpha = flags.alpha()?;
    let algorithm = flags.algorithm()?;
    span.record("algorithm", algorithm.to_string());
    span.record("alpha", alpha);
    span.record("jobs", inst.len());
    let format = flags.format("table", &["table", "json", "csv"])?;
    // The YDS baseline is computed once and shared by every line below.
    let opt = inst.opt_cache();
    let (row, outcome) = cost_row(&inst, alpha, algorithm, &opt)?;
    match format.as_str() {
        "json" => println!("{}", row_json(&row)),
        "csv" => println!("{ROW_CSV_HEADER}\n{}", row_csv(&row)),
        _ => {
            println!("algorithm:     {}", row.algorithm);
            println!("jobs:          {} ({} queried)", inst.len(), row.queried);
            println!("energy:        {:.4} (alpha = {alpha})", row.energy);
            println!("opt energy:    {:.4}", opt.energy(alpha));
            println!("energy ratio:  {:.4}", row.energy_ratio);
            println!("max speed:     {:.4}", row.max_speed);
            println!("opt max speed: {:.4}", opt.max_speed());
            println!("speed ratio:   {:.4}", row.speed_ratio);
            println!("slices:        {}", outcome.schedule.slices.len());
        }
    }
    if flags.get("gantt") == Some("true") {
        println!("\n{}", speed_scaling::render::schedule_report(&outcome.schedule));
    }
    if let Some(path) = flags.get("save-outcome") {
        let json = io::outcome_to_json(&outcome);
        std::fs::write(path, json)
            .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
        status_user(&format!("wrote outcome (decisions + schedule) to {path}"));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// `qbss stream` — incremental arrivals through the streaming engine
// ---------------------------------------------------------------------

/// One parsed JSONL stream event (DESIGN.md §14).
enum StreamEvent {
    /// A job arrives at its release time.
    Arrive(QJob),
    /// The stream clock moves forward with no arrival.
    Advance(f64),
    /// End of stream (EOF implies it).
    Finish,
}

/// Parses one JSONL event line: `{"type": "arrive", "id": …,
/// "release": …, "deadline": …, "query_load": …, "upper_bound": …,
/// "exact": …}`, `{"type": "advance", "t": …}` or `{"type": "finish"}`.
/// Job fields are *not* model-validated here — the streaming engine
/// rejects malformed jobs with its typed errors.
fn parse_event(line: &str) -> Result<StreamEvent, String> {
    let v = qbss_telemetry::json_parse(line).map_err(|e| format!("not a JSON event: {e}"))?;
    let ty = v
        .get("type")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| "event needs a string `type` field".to_string())?;
    let num = |name: &str| {
        v.get(name)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("`{ty}` event needs a number field `{name}`"))
    };
    match ty {
        "arrive" => {
            let id = v
                .get("id")
                .and_then(JsonValue::as_u64)
                .filter(|&id| id <= u64::from(u32::MAX))
                .ok_or_else(|| "`arrive` event needs an integer `id`".to_string())?;
            Ok(StreamEvent::Arrive(QJob::new_unchecked(
                id as u32,
                num("release")?,
                num("deadline")?,
                num("query_load")?,
                num("upper_bound")?,
                num("exact")?,
            )))
        }
        "advance" => Ok(StreamEvent::Advance(num("t")?)),
        "finish" => Ok(StreamEvent::Finish),
        other => Err(format!("unknown event type `{other}` (arrive|advance|finish)")),
    }
}

/// `qbss stream` — feeds JSONL arrival events from a file or stdin
/// through the incremental [`StreamSession`] engine and prints the
/// evaluated summary. A malformed or rejected event is bad input with
/// its line number (exit 2); a failure at finish (infeasible schedule,
/// empty stream) is an algorithm failure (exit 1).
pub fn stream(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args, &["alg", "alpha", "in", "format", "trace"])?;
    let _telemetry = init_telemetry(&flags)?;
    let mut span = qbss_telemetry::span!("cli.stream");
    let alpha = flags.alpha()?;
    let algorithm = flags.algorithm()?;
    let format = flags.format("table", &["table", "json", "csv"])?;
    let file = flags.get("in").unwrap_or("-");
    let text = if file == "-" {
        std::io::read_to_string(std::io::stdin())
            .map_err(|e| CliError::Io(format!("cannot read stdin: {e}")))?
    } else {
        std::fs::read_to_string(file)
            .map_err(|e| CliError::Io(format!("cannot read {file}: {e}")))?
    };
    let label = if file == "-" { "stdin" } else { file };
    span.record("algorithm", algorithm.to_string());
    span.record("alpha", alpha);

    // A batch-only `--alg` is a flag error, knowable before any event.
    let mut session = StreamSession::new(algorithm, alpha).map_err(|e| match e {
        QbssError::Algorithm(inner @ AlgorithmError::UnsupportedStructure { .. }) => {
            input(format!("--alg: {inner}"))
        }
        other => CliError::Algorithm(other),
    })?;
    let (mut arrivals, mut advances) = (0u64, 0u64);
    let mut finished = false;
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if finished {
            return Err(input(format!("{label} line {lineno}: event after `finish`")));
        }
        let event = parse_event(line).map_err(|e| input(format!("{label} line {lineno}: {e}")))?;
        match event {
            StreamEvent::Arrive(job) => {
                session.arrive(job).map_err(|e| input(format!("{label} line {lineno}: {e}")))?;
                arrivals += 1;
            }
            StreamEvent::Advance(t) => {
                session
                    .advance_to(t)
                    .map_err(|e| input(format!("{label} line {lineno}: {e}")))?;
                advances += 1;
            }
            StreamEvent::Finish => finished = true,
        }
    }
    // EOF implies `finish`: the solver runs out its horizon either way.
    let jobs = session.jobs();
    span.record("jobs", jobs);
    let ev = session.finish()?;
    let queried = ev.outcome.decisions.iter().filter(|d| d.queried).count();
    match format.as_str() {
        "json" => println!(
            "{{\"algorithm\": \"{}\", \"arrivals\": {arrivals}, \"advances\": {advances}, \
             \"jobs\": {jobs}, \"queried\": {queried}, \"energy\": {}, \"max_speed\": {}}}",
            ev.outcome.algorithm, ev.energy, ev.max_speed
        ),
        "csv" => println!(
            "algorithm,arrivals,advances,jobs,queried,energy,max_speed\n\
             {},{arrivals},{advances},{jobs},{queried},{},{}",
            ev.outcome.algorithm, ev.energy, ev.max_speed
        ),
        _ => {
            println!("algorithm: {}", ev.outcome.algorithm);
            println!(
                "events:    {} ({arrivals} arrivals, {advances} advances)",
                arrivals + advances
            );
            println!("jobs:      {jobs} ({queried} queried)");
            println!("energy:    {:.4} (alpha = {alpha})", ev.energy);
            println!("max speed: {:.4}", ev.max_speed);
            println!("slices:    {}", ev.outcome.schedule.slices.len());
        }
    }
    Ok(())
}

/// The algorithms applicable to an instance's structure (every online
/// algorithm, plus the offline family where the instance is in scope).
fn applicable(inst: &QbssInstance) -> Vec<Algorithm> {
    let mut candidates = vec![Algorithm::Avrq, Algorithm::Bkpq, Algorithm::Oaq];
    if inst.has_common_release(0.0) {
        candidates.push(Algorithm::Crad);
        if inst.jobs.iter().all(|j| is_power_of_two_deadline(j.deadline)) {
            candidates.push(Algorithm::Crp2d);
        }
        if inst.common_deadline().is_some() {
            candidates.push(Algorithm::Crcd);
        }
    }
    candidates
}

/// `qbss compare`.
pub fn compare(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args, &["in", "alpha", "format", "trace"])?;
    let _telemetry = init_telemetry(&flags)?;
    let mut span = qbss_telemetry::span!("cli.compare");
    let inst = load_instance(&flags)?;
    let alpha = flags.alpha()?;
    span.record("alpha", alpha);
    span.record("jobs", inst.len());
    let format = flags.format("table", &["table", "json", "csv"])?;
    // One clairvoyant solve serves every candidate row.
    let opt = inst.opt_cache();
    let rows: Vec<CostRow> = applicable(&inst)
        .into_iter()
        .map(|alg| cost_row(&inst, alpha, alg, &opt).map(|(row, _)| row))
        .collect::<Result<_, _>>()?;
    match format.as_str() {
        "json" => {
            let body: Vec<String> = rows.iter().map(row_json).collect();
            println!("[{}]", body.join(", "));
        }
        "csv" => {
            println!("{ROW_CSV_HEADER}");
            for r in &rows {
                println!("{}", row_csv(r));
            }
        }
        _ => {
            println!(
                "{:<8} {:>12} {:>10} {:>12} {:>10} {:>9}",
                "alg", "energy", "E-ratio", "max speed", "s-ratio", "queries"
            );
            for r in &rows {
                println!(
                    "{:<8} {:>12.4} {:>10.4} {:>12.4} {:>10.4} {:>6}/{}",
                    r.algorithm,
                    r.energy,
                    r.energy_ratio,
                    r.max_speed,
                    r.speed_ratio,
                    r.queried,
                    inst.len()
                );
            }
            println!(
                "{:<8} {:>12.4} {:>10} {:>12.4}",
                "OPT",
                opt.energy(alpha),
                "1.0000",
                opt.max_speed()
            );
        }
    }
    Ok(())
}

/// Parses the sweep's `--alg` list: `all` expands to every
/// configuration at `(m, fw_iters)`; otherwise a comma-separated list
/// of canonical names, with bare multi-machine names bound to `--m`.
fn parse_alg_list(list: &str, m: usize, fw_iters: usize) -> Result<Vec<Algorithm>, CliError> {
    if list.trim() == "all" {
        return Ok(Algorithm::all(m, fw_iters));
    }
    list.split(',')
        .map(|token| {
            let alg: Algorithm = token
                .parse()
                .map_err(|e: qbss_core::pipeline::ParseAlgorithmError| input(e.to_string()))?;
            // A bare family name takes the sweep-level machine count.
            if !token.contains(':') {
                with_machines(alg, m)
            } else {
                Ok(alg)
            }
        })
        .collect()
}

fn parse_alpha_list(list: &str) -> Result<Vec<f64>, CliError> {
    list.split(',')
        .map(|tok| {
            let a: f64 =
                tok.parse().map_err(|_| input(format!("--alpha: not a number: `{tok}`")))?;
            if !a.is_finite() || a <= 1.0 {
                return Err(input(format!("--alpha: {tok} must be finite and exceed 1")));
            }
            Ok(a)
        })
        .collect()
}

/// Flattens an [`EngineReport`] aggregate into CSV (one row per
/// algorithm × α group).
fn sweep_csv(report: &EngineReport) -> String {
    let mut s = String::from(
        "algorithm,alpha,ok,errors,energy_ratio_mean,energy_ratio_p50,energy_ratio_p99,\
         energy_ratio_max,peak_speed_max,speed_ratio_max,energy_bound,energy_violations,\
         speed_bound,speed_violations\n",
    );
    let opt = |v: Option<f64>| v.map_or(String::new(), |x| format!("{x}"));
    for g in &report.groups {
        s.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            g.algorithm,
            g.alpha,
            g.ok,
            g.errors,
            opt(g.energy_ratio.map(|d| d.mean)),
            opt(g.energy_ratio.map(|d| d.p50)),
            opt(g.energy_ratio.map(|d| d.p99)),
            opt(g.energy_ratio.map(|d| d.max)),
            opt(g.peak_speed.map(|d| d.max)),
            opt(g.speed_ratio.map(|d| d.max)),
            opt(g.energy_bound),
            g.energy_violations,
            opt(g.speed_bound),
            g.speed_violations,
        ));
    }
    s
}

/// `qbss sweep` — a declarative batch run on the sharded engine.
pub fn sweep(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse_with_switches(
        args,
        &[
            "count", "n", "seed", "family", "compress", "alg", "alpha", "m", "fw-iters",
            "shards", "opt-fw-iters", "format", "out", "audit", "trace",
        ],
        &["audit"],
    )?;
    let _telemetry = init_telemetry(&flags)?;
    let mut span = qbss_telemetry::span!("cli.sweep");
    let count = flags.u64("count", 100)?;
    let n = flags.usize("n", 20)?;
    let seed = flags.u64("seed", 0)?;
    // Default family `common`: the one structure every algorithm —
    // offline and online — is in scope for, so `--alg all` yields no
    // per-cell errors out of the box.
    let time = time_model_for(flags.get("family").unwrap_or("common"), n)?;
    let compress = compress_for(flags.get("compress").unwrap_or("uniform"))?;
    let m = flags.usize("m", DEFAULT_MACHINES)?;
    let fw_iters = flags.usize("fw-iters", DEFAULT_FW_ITERS)?;
    let algorithms = parse_alg_list(flags.get("alg").unwrap_or("all"), m, fw_iters)?;
    let alphas = parse_alpha_list(flags.get("alpha").unwrap_or("3"))?;
    let shards = flags.usize("shards", 0)?;
    let opt_fw_iters = flags.usize("opt-fw-iters", 8)?;
    let format = flags.format("json", &["json", "csv"])?;

    let spec = SweepSpec {
        source: InstanceSource::Generated {
            base: GenConfig {
                n,
                seed: 0,
                time,
                min_w: 0.5,
                max_w: 4.0,
                query: QueryModel::UniformFraction { lo: 0.1, hi: 0.6 },
                compress,
            },
            seeds: seed..seed.saturating_add(count),
        },
        algorithms,
        alphas,
        opt_fw_iters,
    };
    span.record("count", count);
    span.record("algorithms", spec.algorithms.len());
    span.record("alphas", spec.alphas.len());
    // The auditor is strictly side-band: it reads each evaluated cell
    // and writes only telemetry, so audited aggregates stay
    // byte-identical to unaudited ones.
    let auditor = if flags.switch("audit")? { Some(qbss_core::Auditor::new()) } else { None };
    let report =
        run_sweep_audited(&spec, shards, auditor.as_ref()).map_err(|e| input(e.to_string()))?;

    let body = match format.as_str() {
        "csv" => sweep_csv(&report),
        _ => report.aggregate_json(),
    };
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, &body)
                .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
            // Wall-clock instrumentation goes *next to* the results, so
            // recorded aggregates stay byte-reproducible.
            let instr_path = format!("{path}.instr.json");
            std::fs::write(&instr_path, report.instrumentation_json())
                .map_err(|e| CliError::Io(format!("cannot write {instr_path}: {e}")))?;
            status_user(&format!("wrote aggregate to {path}, instrumentation to {instr_path}"));
        }
        None => {
            // Results own stdout unconditionally (a piped `--format
            // csv` stays pure); instrumentation is side-band output on
            // stderr — except when a JSONL stream owns stderr, where
            // the trace already carries the same numbers as an
            // `engine`-scoped metrics record.
            print!("{body}");
            if !qbss_telemetry::stderr_sink_active() {
                eprint!("{}", report.instrumentation_json());
            }
        }
    }
    let i = &report.instrumentation;
    status_user(&format!(
        "swept {} cells on {} shard(s) in {:.2}s ({:.0} cells/s, cache hit rate {:.1}%)",
        i.cells,
        i.shards,
        i.wall.as_secs_f64(),
        i.cells_per_sec,
        100.0 * i.cache_hit_rate()
    ));
    for v in report.violations() {
        if qbss_telemetry::active() {
            qbss_telemetry::warn!("cli.sweep", "{v}");
        } else {
            eprintln!("warning: {v}");
        }
    }
    if let Some(a) = &auditor {
        status_user(&format!(
            "audit: checked {} schedule(s), {} violation(s)",
            a.checked(),
            a.violations()
        ));
        if a.violations() > 0 {
            warn_user(&format!(
                "audit found {} invariant violation(s); see `error!` events on `qbss.audit`",
                a.violations()
            ));
        }
    }
    Ok(())
}

/// `qbss serve` — the long-lived observability/evaluation server (see
/// `crate::serve`). Parses flags, installs a ring-sink telemetry
/// pipeline (so `/tracez` always has records and an event stream never
/// competes with stderr), binds, and hands the listener to the server
/// loop. A clean SIGTERM/ctrl-c drain returns `Ok` — exit 0.
pub fn serve_cmd(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(
        args,
        &[
            "addr",
            "workers",
            "ring-capacity",
            "slow-ms",
            "budget",
            "request-timeout-ms",
            "io-timeout-ms",
            "accept-tick-ms",
        ],
    )?;
    let addr = flags.get("addr").unwrap_or("127.0.0.1:7878");
    let workers = flags.usize("workers", 4)?;
    if workers == 0 {
        return Err(input("--workers: need at least 1 worker"));
    }
    let ring_capacity = flags.usize("ring-capacity", qbss_telemetry::RING_DEFAULT_CAPACITY)?;
    let slow_ms = flags.u64("slow-ms", 1_000)?;
    // Overload knobs: the admission budget in sweep cells (0 = no
    // admission control), the per-request wall-clock deadline, the
    // socket inactivity timeout, and the accept-loop tick.
    let budget = flags.u64("budget", crate::serve::DEFAULT_BUDGET)?;
    let request_timeout_ms =
        flags.u64("request-timeout-ms", crate::serve::DEFAULT_REQUEST_TIMEOUT_MS)?;
    let io_timeout_ms = flags.u64("io-timeout-ms", crate::serve::DEFAULT_IO_TIMEOUT_MS)?;
    let accept_tick_ms = flags.u64("accept-tick-ms", crate::serve::DEFAULT_ACCEPT_TICK_MS)?;
    if request_timeout_ms == 0 || io_timeout_ms == 0 || accept_tick_ms == 0 {
        return Err(input("--request-timeout-ms/--io-timeout-ms/--accept-tick-ms: must be >= 1"));
    }

    // Serve mode always records into a bounded ring: spans on (they
    // back `/tracez`), events per QBSS_LOG (default `info`).
    let spec = std::env::var("QBSS_LOG").ok();
    let filter = filter_from_spec(spec.as_deref(), true)?;
    let ring = qbss_telemetry::RingSink::new(ring_capacity);
    match qbss_telemetry::init(Config {
        filter,
        sink: SinkTarget::Ring(ring.clone()),
        spans: true,
    }) {
        // In-process callers (tests) may already hold a pipeline; the
        // server then records into it, and `/tracez` serves whatever
        // landed in this (unused) ring.
        Ok(()) | Err(InitError::AlreadyInitialized) => {}
        Err(e @ InitError::Io(_)) => return Err(CliError::Io(e.to_string())),
    }
    let _telemetry = Telemetry;
    let listener = std::net::TcpListener::bind(addr)
        .map_err(|e| CliError::Io(format!("cannot bind {addr}: {e}")))?;
    let local = listener
        .local_addr()
        .map_err(|e| CliError::Io(format!("cannot read the bound address: {e}")))?;
    // The ring owns the telemetry stream, so stderr is free for the one
    // human-facing line scripts and the smoke test key on.
    eprintln!("qbss serve: listening on {local} ({workers} workers)");
    crate::serve::run(
        listener,
        crate::serve::ServeConfig {
            workers,
            slow_ms,
            ring,
            budget,
            request_timeout_ms,
            io_timeout_ms,
            accept_tick_ms,
        },
    )
    .map_err(CliError::Io)
}

/// `qbss loadgen` — the seeded open-loop load generator (see
/// `crate::loadgen`). Builds a deterministic request schedule from the
/// seed, fires it over real TCP against `--addr` (or an in-process
/// server with `--spawn`), and prints the canonical JSON report to
/// stdout (`--out FILE` also writes it to a file). `--plan-only`
/// prints the wall-clock-free schedule summary instead of running —
/// the determinism tests diff that output byte for byte.
pub fn loadgen(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse_with_switches(
        args,
        &[
            "addr",
            "spawn",
            "rps",
            "duration-s",
            "seed",
            "mix",
            "adversarial",
            "connections",
            "n",
            "budget",
            "request-timeout-ms",
            "out",
            "plan-only",
        ],
        &["spawn", "adversarial", "plan-only"],
    )?;
    let mix_name = flags.get("mix").unwrap_or("mixed");
    let mix = crate::loadgen::Mix::from_name(mix_name)
        .ok_or_else(|| input(format!("--mix: unknown mix `{mix_name}` (evaluate|sweep|mixed)")))?;
    let cfg = crate::loadgen::LoadgenConfig {
        rps: flags.f64("rps", 50.0)?,
        duration_s: flags.f64("duration-s", 2.0)?,
        seed: flags.u64("seed", 0)?,
        mix,
        adversarial: flags.switch("adversarial")?,
        connections: flags.usize("connections", 4)?,
        n: flags.usize("n", 8)?,
    };
    if cfg.connections == 0 {
        return Err(input("--connections: need at least 1 sender"));
    }
    let schedule = crate::loadgen::build_schedule(&cfg).map_err(input)?;
    if flags.switch("plan-only")? {
        println!("{}", crate::loadgen::plan_json(&cfg, &schedule));
        return Ok(());
    }

    let budget = flags.u64("budget", crate::serve::DEFAULT_BUDGET)?;
    let request_timeout_ms =
        flags.u64("request-timeout-ms", crate::serve::DEFAULT_REQUEST_TIMEOUT_MS)?;
    let spawn = flags.switch("spawn")?;
    let external = flags.get("addr").map(String::from);
    if spawn && external.is_some() {
        return Err(input("--spawn and --addr are mutually exclusive"));
    }
    if !spawn && external.is_none() {
        return Err(input("need a target: --addr HOST:PORT or --spawn"));
    }
    if !spawn && flags.get("budget").is_some() {
        warn_user("--budget only shapes a --spawn server; the external server keeps its own");
    }
    // The sender's socket timeout must outlast the server's own request
    // deadline, so a slow-but-alive response is recorded, not dropped.
    let io_timeout = std::time::Duration::from_millis(request_timeout_ms.saturating_add(2_000));
    let spawned = if spawn {
        Some(crate::loadgen::SpawnedServer::start(budget, request_timeout_ms)
            .map_err(CliError::Io)?)
    } else {
        None
    };
    let addr = spawned
        .as_ref()
        .map(|s| s.addr().to_string())
        .or(external)
        .expect("checked above");
    eprintln!(
        "qbss loadgen: {} requests over {}s at {} rps -> {addr}",
        schedule.len(),
        cfg.duration_s,
        cfg.rps
    );
    let outcome = crate::loadgen::run_schedule(&addr, &cfg, &schedule, io_timeout);
    if let Some(server) = spawned {
        server.stop().map_err(CliError::Io)?;
    }
    if let Some(path) = flags.get("out") {
        std::fs::write(path, format!("{}\n", outcome.report))
            .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
    }
    println!("{}", outcome.report);
    if outcome.sent > 0 && outcome.completed == 0 {
        return Err(CliError::Io(format!(
            "none of the {} requests got a response — is {addr} a qbss server?",
            outcome.sent
        )));
    }
    Ok(())
}

const TRACE_USAGE: &str = "usage: qbss trace summarize FILE [--top K] [--format text|json]\n       \
                           qbss trace report FILE [--out FILE]\n       \
                           (FILE may be `-` to read the trace from stdin)";

/// Loads and parses a JSONL trace: `-` reads stdin (so a running
/// server's `/tracez?format=jsonl` pipes straight in), otherwise a
/// missing file is an I/O failure; a schema violation is bad input
/// (with the line number).
fn load_trace(file: &str) -> Result<Vec<qbss_telemetry::trace::TraceRecord>, CliError> {
    let text = if file == "-" {
        std::io::read_to_string(std::io::stdin())
            .map_err(|e| CliError::Io(format!("cannot read stdin: {e}")))?
    } else {
        std::fs::read_to_string(file)
            .map_err(|e| CliError::Io(format!("cannot read {file}: {e}")))?
    };
    let label = if file == "-" { "stdin" } else { file };
    qbss_telemetry::trace::parse_trace(&text).map_err(|e| input(format!("{label}: {e}")))
}

/// `qbss trace` — operations on recorded JSONL traces.
pub fn trace(args: &[String]) -> Result<(), CliError> {
    let Some((action, rest)) = args.split_first() else {
        return Err(input(TRACE_USAGE));
    };
    match action.as_str() {
        "summarize" | "report" => {}
        other => return Err(input(format!("unknown trace action `{other}`\n{TRACE_USAGE}"))),
    }
    let Some((file, flag_args)) = rest.split_first() else {
        return Err(input(format!("trace {action} needs a FILE\n{TRACE_USAGE}")));
    };
    match action.as_str() {
        "summarize" => {
            let flags = Flags::parse(flag_args, &["top", "format"])?;
            let top = flags.usize("top", 5)?;
            let format = flags.format("text", &["text", "json"])?;
            let summary = qbss_telemetry::trace::summarize(&load_trace(file)?);
            match format.as_str() {
                "json" => println!("{}", summary.to_json()),
                _ => print!("{}", summary.render(top)),
            }
        }
        _ => {
            let flags = Flags::parse(flag_args, &["out"])?;
            let html = qbss_telemetry::trace::render_html(&load_trace(file)?);
            match flags.get("out") {
                Some(path) => {
                    std::fs::write(path, &html)
                        .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
                    status_user(&format!("wrote HTML report to {path}"));
                }
                None => print!("{html}"),
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// `qbss perf` — statistical baselines and the regression gate
// ---------------------------------------------------------------------

const PERF_USAGE: &str = "usage: qbss perf record  [--out FILE] [--scenarios LIST] [--repeats N]\n                         \
                          [--warmup N] [--shards S] [--profile] [--trace FILE]\n       \
                          qbss perf compare BASE NEW [--mad-factor X] [--min-rel X]\n       \
                          qbss perf gate    --base FILE [--new FILE] [--mad-factor X] [--min-rel X]\n                         \
                          [--explain]";

/// Loads and parses a perf baseline: a missing file is an I/O failure,
/// a schema violation is bad input.
fn load_baseline(path: &str) -> Result<Baseline, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Io(format!("cannot read {path}: {e}")))?;
    Baseline::parse(&text).map_err(|e| input(format!("{path}: {e}")))
}

/// `--mad-factor` / `--min-rel` with the library defaults (3×MAD,
/// 25% floor); both must be finite and non-negative.
fn threshold_from(flags: &Flags) -> Result<Threshold, CliError> {
    let d = Threshold::default();
    let t = Threshold {
        mad_factor: flags.f64("mad-factor", d.mad_factor)?,
        min_rel: flags.f64("min-rel", d.min_rel)?,
    };
    for (name, v) in [("mad-factor", t.mad_factor), ("min-rel", t.min_rel)] {
        if !v.is_finite() || v < 0.0 {
            return Err(input(format!("--{name} must be finite and non-negative")));
        }
    }
    Ok(t)
}

fn perf_record(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse_with_switches(
        args,
        &["out", "scenarios", "repeats", "warmup", "shards", "trace", "profile"],
        &["profile"],
    )?;
    let names: Vec<String> = flags.get("scenarios").map_or_else(Vec::new, |s| {
        s.split(',').map(str::trim).filter(|t| !t.is_empty()).map(String::from).collect()
    });
    let d = PerfConfig::default();
    let config = PerfConfig {
        warmup: flags.usize("warmup", d.warmup)?,
        repeats: flags.usize("repeats", d.repeats)?,
        shards: flags.usize("shards", d.shards)?,
    };
    if config.repeats == 0 {
        return Err(input("--repeats must be at least 1"));
    }
    let baseline = if flags.switch("profile")? {
        if flags.get("trace").is_some() {
            return Err(input(
                "--profile and --trace are mutually exclusive (the profiler owns the span \
                 sink; fold an existing trace with `qbss prof record --trace FILE`)",
            ));
        }
        if std::env::var("QBSS_LOG").is_ok() {
            warn_user("QBSS_LOG is ignored under --profile: spans go to the profile ring");
        }
        let (baseline, dropped) = {
            let (ring, _telemetry) = init_profile_ring()?;
            let b = perf::record_profiled(&names, config, Some(&ring))
                .map_err(|e| input(e.to_string()))?;
            (b, ring.dropped())
        };
        if dropped > 0 {
            warn_user(&format!(
                "profile ring dropped {dropped} span record(s); the folded profiles are \
                 truncated"
            ));
        }
        baseline
    } else {
        let _telemetry = init_telemetry(&flags)?;
        let _span = qbss_telemetry::span!("cli.perf.record");
        perf::record(&names, config).map_err(|e| input(e.to_string()))?
    };
    let json = baseline.to_json();
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, &json)
                .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
            status_user(&format!(
                "wrote perf baseline ({} scenario(s), {} repeat(s) each) to {path}",
                baseline.scenarios.len(),
                config.repeats
            ));
        }
        None => print!("{json}"),
    }
    Ok(())
}

fn perf_compare(args: &[String]) -> Result<(), CliError> {
    let Some((base_path, rest)) = args.split_first() else {
        return Err(input(format!("perf compare needs BASE and NEW files\n{PERF_USAGE}")));
    };
    let Some((new_path, flag_args)) = rest.split_first() else {
        return Err(input(format!("perf compare needs a NEW file\n{PERF_USAGE}")));
    };
    let flags = Flags::parse(flag_args, &["mad-factor", "min-rel"])?;
    let threshold = threshold_from(&flags)?;
    let base = load_baseline(base_path)?;
    let new = load_baseline(new_path)?;
    print!("{}", perf::compare(&base, &new, threshold).render());
    Ok(())
}

fn perf_gate(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse_with_switches(
        args,
        &["base", "new", "mad-factor", "min-rel", "repeats", "warmup", "shards", "explain"],
        &["explain"],
    )?;
    let base_path = flags.get("base").ok_or_else(|| input("--base FILE is required"))?;
    let threshold = threshold_from(&flags)?;
    let base = load_baseline(base_path)?;
    let new = match flags.get("new") {
        Some(path) => load_baseline(path)?,
        // No --new: re-measure the baseline's own scenarios live, with
        // its recording config (each knob individually overridable).
        None => {
            let names: Vec<String> = base.scenarios.keys().cloned().collect();
            let config = PerfConfig {
                warmup: flags.usize("warmup", base.config.warmup)?,
                repeats: flags.usize("repeats", base.config.repeats.max(1))?,
                shards: flags.usize("shards", base.config.shards)?,
            };
            if base.profiles.is_empty() {
                perf::record(&names, config).map_err(|e| input(e.to_string()))?
            } else {
                // A profiled base gets a profiled re-measure, so
                // `--explain` can attribute any regression to the call
                // paths that moved.
                match init_profile_ring() {
                    Ok((ring, _telemetry)) => {
                        perf::record_profiled(&names, config, Some(&ring))
                            .map_err(|e| input(e.to_string()))?
                    }
                    Err(CliError::Input(_)) => {
                        warn_user(
                            "telemetry already active: re-measuring without profile attribution",
                        );
                        perf::record(&names, config).map_err(|e| input(e.to_string()))?
                    }
                    Err(e) => return Err(e),
                }
            }
        }
    };
    let report = perf::compare(&base, &new, threshold);
    // `--explain` swaps the one-line-per-scenario view for the full
    // diagnostic table (base median/MAD, new median, limit, delta), so
    // a CI failure is readable from the log without a local rerun.
    if flags.switch("explain")? {
        print!("{}", report.render_explain(threshold));
    } else {
        print!("{}", report.render());
    }
    if report.regressions().is_empty() {
        return Ok(());
    }
    // An intentional slowdown (algorithmic change, heavier scenario) is
    // accepted by re-recording the baseline, not by editing thresholds.
    if std::env::var("QBSS_BLESS").is_ok_and(|v| v == "1") {
        std::fs::write(base_path, new.to_json())
            .map_err(|e| CliError::Io(format!("cannot write {base_path}: {e}")))?;
        status_user(&format!("QBSS_BLESS=1: re-blessed {base_path} with the new measurements"));
        return Ok(());
    }
    Err(CliError::Gate(format!(
        "{} scenario(s) regressed against {base_path} (rerun with QBSS_BLESS=1 to re-bless)",
        report.regressions().len()
    )))
}

/// `qbss perf` — record statistical baselines, diff them, gate CI.
pub fn perf(args: &[String]) -> Result<(), CliError> {
    let Some((action, rest)) = args.split_first() else {
        return Err(input(PERF_USAGE));
    };
    match action.as_str() {
        "record" => perf_record(rest),
        "compare" => perf_compare(rest),
        "gate" => perf_gate(rest),
        other => Err(input(format!("unknown perf action `{other}`\n{PERF_USAGE}"))),
    }
}

// ---------------------------------------------------------------------
// `qbss quality` — pinned competitive-ratio baselines, exact gate
// ---------------------------------------------------------------------

const QUALITY_USAGE: &str = "usage: qbss quality record  [--out FILE] [--scenarios LIST] [--shards S] [--trace FILE]\n       \
                              qbss quality compare BASE NEW\n       \
                              qbss quality gate    --base FILE [--new FILE] [--shards S] [--explain]";

/// Loads and parses a quality baseline: a missing file is an I/O
/// failure, a schema violation is bad input.
fn load_quality_baseline(path: &str) -> Result<QualityBaseline, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Io(format!("cannot read {path}: {e}")))?;
    QualityBaseline::parse(&text).map_err(|e| input(format!("{path}: {e}")))
}

/// `--scenarios a,b,c` (empty = all scenarios).
fn scenario_names(flags: &Flags) -> Vec<String> {
    flags.get("scenarios").map_or_else(Vec::new, |s| {
        s.split(',').map(str::trim).filter(|t| !t.is_empty()).map(String::from).collect()
    })
}

fn quality_record(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args, &["out", "scenarios", "shards", "trace"])?;
    let _telemetry = init_telemetry(&flags)?;
    let _span = qbss_telemetry::span!("cli.quality.record");
    let names = scenario_names(&flags);
    let shards = flags.usize("shards", 0)?;
    let baseline = quality::record(&names, shards).map_err(|e| input(e.to_string()))?;
    let json = baseline.to_json();
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, &json)
                .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
            status_user(&format!(
                "wrote quality baseline ({} scenario(s)) to {path}",
                baseline.scenarios.len()
            ));
        }
        None => print!("{json}"),
    }
    Ok(())
}

fn quality_compare(args: &[String]) -> Result<(), CliError> {
    let Some((base_path, rest)) = args.split_first() else {
        return Err(input(format!("quality compare needs BASE and NEW files\n{QUALITY_USAGE}")));
    };
    let Some((new_path, flag_args)) = rest.split_first() else {
        return Err(input(format!("quality compare needs a NEW file\n{QUALITY_USAGE}")));
    };
    Flags::parse(flag_args, &[])?;
    let base = load_quality_baseline(base_path)?;
    let new = load_quality_baseline(new_path)?;
    print!("{}", quality::compare(&base, &new).render());
    Ok(())
}

fn quality_gate(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse_with_switches(
        args,
        &["base", "new", "shards", "explain", "trace"],
        &["explain"],
    )?;
    let _telemetry = init_telemetry(&flags)?;
    let _span = qbss_telemetry::span!("cli.quality.gate");
    let base_path = flags.get("base").ok_or_else(|| input("--base FILE is required"))?;
    let base = load_quality_baseline(base_path)?;
    let new = match flags.get("new") {
        Some(path) => load_quality_baseline(path)?,
        // No --new: re-evaluate the baseline's own scenarios live. The
        // seeds are pinned, so a clean gate means byte-equal statistics.
        None => {
            let names: Vec<String> = base.scenarios.keys().cloned().collect();
            quality::record(&names, flags.usize("shards", 0)?)
                .map_err(|e| input(e.to_string()))?
        }
    };
    let report = quality::compare(&base, &new);
    // `--explain` names the reproducible worst cell (scenario, seed,
    // instance) for every regression, so a CI failure can be
    // regenerated and `qbss explain`-ed offline.
    if flags.switch("explain")? {
        print!("{}", report.render_explain());
    } else {
        print!("{}", report.render());
    }
    if report.is_clean() {
        return Ok(());
    }
    // An intentional ratio change (algorithm fix, new scenario shape)
    // is accepted by re-recording the baseline, never by loosening the
    // comparison — the gate is exact.
    if std::env::var("QBSS_BLESS").is_ok_and(|v| v == "1") {
        std::fs::write(base_path, new.to_json())
            .map_err(|e| CliError::Io(format!("cannot write {base_path}: {e}")))?;
        status_user(&format!("QBSS_BLESS=1: re-blessed {base_path} with the new measurements"));
        return Ok(());
    }
    Err(CliError::Gate(format!(
        "{} quality regression(s) against {base_path} (rerun with QBSS_BLESS=1 to re-bless)",
        report.regressions.len()
    )))
}

/// `qbss quality` — record pinned competitive-ratio baselines, diff
/// them, gate CI exactly.
pub fn quality_cmd(args: &[String]) -> Result<(), CliError> {
    let Some((action, rest)) = args.split_first() else {
        return Err(input(QUALITY_USAGE));
    };
    match action.as_str() {
        "record" => quality_record(rest),
        "compare" => quality_compare(rest),
        "gate" => quality_gate(rest),
        other => Err(input(format!("unknown quality action `{other}`\n{QUALITY_USAGE}"))),
    }
}

// ---------------------------------------------------------------------
// `qbss complexity` — deterministic op counters, exact asymptotic gate
// ---------------------------------------------------------------------

const COMPLEXITY_USAGE: &str = "usage: qbss complexity record  [--out FILE] [--scenarios LIST] [--format json|csv] [--trace FILE]\n       \
                                 qbss complexity compare BASE NEW\n       \
                                 qbss complexity gate    --base FILE [--new FILE] [--explain]";

/// Loads and parses a complexity baseline: a missing file is an I/O
/// failure, a schema violation is bad input.
fn load_complexity_baseline(path: &str) -> Result<ComplexityBaseline, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Io(format!("cannot read {path}: {e}")))?;
    ComplexityBaseline::parse(&text).map_err(|e| input(format!("{path}: {e}")))
}

fn complexity_record(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args, &["out", "scenarios", "format", "trace"])?;
    let _telemetry = init_telemetry(&flags)?;
    let _span = qbss_telemetry::span!("cli.complexity.record");
    let names = scenario_names(&flags);
    let baseline = complexity::record(&names).map_err(|e| input(e.to_string()))?;
    let body = match flags.get("format").unwrap_or("json") {
        "json" => baseline.to_json(),
        "csv" => baseline.to_csv(),
        other => return Err(input(format!("unknown format `{other}` (expected json|csv)"))),
    };
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, &body)
                .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
            status_user(&format!(
                "wrote complexity baseline ({} scenario(s)) to {path}",
                baseline.scenarios.len()
            ));
        }
        None => print!("{body}"),
    }
    Ok(())
}

fn complexity_compare(args: &[String]) -> Result<(), CliError> {
    let Some((base_path, rest)) = args.split_first() else {
        return Err(input(format!(
            "complexity compare needs BASE and NEW files\n{COMPLEXITY_USAGE}"
        )));
    };
    let Some((new_path, flag_args)) = rest.split_first() else {
        return Err(input(format!("complexity compare needs a NEW file\n{COMPLEXITY_USAGE}")));
    };
    Flags::parse(flag_args, &[])?;
    let base = load_complexity_baseline(base_path)?;
    let new = load_complexity_baseline(new_path)?;
    print!("{}", complexity::compare(&base, &new).render());
    Ok(())
}

fn complexity_gate(args: &[String]) -> Result<(), CliError> {
    let flags =
        Flags::parse_with_switches(args, &["base", "new", "explain", "trace"], &["explain"])?;
    let _telemetry = init_telemetry(&flags)?;
    let _span = qbss_telemetry::span!("cli.complexity.gate");
    let base_path = flags.get("base").ok_or_else(|| input("--base FILE is required"))?;
    let base = load_complexity_baseline(base_path)?;
    let new = match flags.get("new") {
        Some(path) => load_complexity_baseline(path)?,
        // No --new: re-count the baseline's own scenarios live. The
        // counters are deterministic, so a clean gate means byte-equal
        // counts at every grid point.
        None => {
            let names: Vec<String> = base.scenarios.keys().cloned().collect();
            complexity::record(&names).map_err(|e| input(e.to_string()))?
        }
    };
    let report = complexity::compare(&base, &new);
    // `--explain` names the counter, grid point, and old → new counts
    // for every regression.
    if flags.switch("explain")? {
        print!("{}", report.render_explain());
    } else {
        print!("{}", report.render());
    }
    if report.is_clean() {
        return Ok(());
    }
    // An intentional work change (algorithm rewrite, new scenario
    // shape) is accepted by re-recording the baseline, never by
    // loosening the comparison — the gate is exact.
    if std::env::var("QBSS_BLESS").is_ok_and(|v| v == "1") {
        std::fs::write(base_path, new.to_json())
            .map_err(|e| CliError::Io(format!("cannot write {base_path}: {e}")))?;
        status_user(&format!("QBSS_BLESS=1: re-blessed {base_path} with the new counts"));
        return Ok(());
    }
    Err(CliError::Gate(format!(
        "{} complexity regression(s) against {base_path} (rerun with QBSS_BLESS=1 to re-bless)",
        report.regressions.len()
    )))
}

/// `qbss complexity` — record deterministic op-count curves, diff them,
/// gate CI exactly on any extra work.
pub fn complexity_cmd(args: &[String]) -> Result<(), CliError> {
    let Some((action, rest)) = args.split_first() else {
        return Err(input(COMPLEXITY_USAGE));
    };
    match action.as_str() {
        "record" => complexity_record(rest),
        "compare" => complexity_compare(rest),
        "gate" => complexity_gate(rest),
        other => Err(input(format!("unknown complexity action `{other}`\n{COMPLEXITY_USAGE}"))),
    }
}

// ---------------------------------------------------------------------
// `qbss explain` — per-job decision attribution for one cell
// ---------------------------------------------------------------------

/// `qbss explain` — factors one `(instance, algorithm, α)` cell's
/// energy ratio into query-decision × splitting-point × scheduling
/// losses, prints the per-job decision rows with the blame job, and
/// optionally renders the ALG-vs-OPT speed timeline as self-contained
/// HTML.
pub fn explain(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(
        args,
        &["alg", "in", "n", "seed", "family", "compress", "alpha", "m", "format", "html", "trace"],
    )?;
    let _telemetry = init_telemetry(&flags)?;
    let mut span = qbss_telemetry::span!("cli.explain");
    let alpha = flags.alpha()?;
    let algorithm = flags.algorithm()?;
    let inst = if flags.get("in").is_some() {
        for flag in ["n", "seed", "family", "compress"] {
            if flags.get(flag).is_some() {
                return Err(input(format!("--in and --{flag} are mutually exclusive")));
            }
        }
        load_instance(&flags)?
    } else {
        let n = flags.usize("n", 12)?;
        if n == 0 {
            return Err(input("--n must be at least 1"));
        }
        let time = time_model_for(flags.get("family").unwrap_or("online"), n)?;
        let compress = compress_for(flags.get("compress").unwrap_or("uniform"))?;
        gen::generate(&GenConfig {
            n,
            seed: flags.u64("seed", 0)?,
            time,
            min_w: 0.5,
            max_w: 4.0,
            query: QueryModel::UniformFraction { lo: 0.1, hi: 0.6 },
            compress,
        })
    };
    span.record("algorithm", algorithm.to_string());
    span.record("alpha", alpha);
    span.record("jobs", inst.len());
    let format = flags.format("table", &["table", "json"])?;
    let opt = inst.opt_cache();
    let ev = run_evaluated(&inst, alpha, algorithm)?;
    let att = qbss_core::attribute_with_opt(&inst, alpha, algorithm, &ev, Some(opt.energy(alpha)))
        .map_err(|e| input(e.to_string()))?;
    if let Err(err) = att.check_identity() {
        warn_user(&format!("attribution identity reconstruction error {err:.3e}"));
    }
    match format.as_str() {
        "json" => println!("{}", att.to_json()),
        _ => {
            println!("algorithm:    {} (alpha = {alpha})", att.algorithm);
            println!(
                "energy ratio: {:.6} = query {:.6} × split {:.6} × sched {:.6}",
                att.ratio(),
                att.query_loss,
                att.split_loss,
                att.sched_loss
            );
            println!();
            println!(
                "{:>4}  {:>7}  {:>8}  {:>8}  {:>8}  {:>8}  {:>11}",
                "job", "queried", "tau", "p", "p*", "p/p*", "lemma slack"
            );
            let opt_num = |v: Option<f64>| v.map_or("-".to_string(), |x| format!("{x:.4}"));
            for r in &att.jobs {
                let blame = if att.blame == Some(r.job) { "  <- blame" } else { "" };
                println!(
                    "{:>4}  {:>7}  {:>8}  {:>8.4}  {:>8.4}  {:>8.4}  {:>11}{blame}",
                    r.job,
                    if r.queried { "yes" } else { "no" },
                    opt_num(r.tau),
                    r.load,
                    r.p_star,
                    r.load_ratio(),
                    opt_num(r.lemma_slack),
                );
            }
        }
    }
    if let Some(path) = flags.get("html") {
        let alg_profile = ev.outcome.schedule.machine_profile(0);
        let mut bands = Vec::new();
        for r in &att.jobs {
            let Some(j) = inst.job(r.job) else { continue };
            // A queried job's query window: release up to the splitting
            // point where the test result lands.
            if let Some(tau) = r.tau {
                bands.push(TimelineBand {
                    label: format!("q{}", r.job),
                    start: j.release,
                    end: tau,
                    highlight: false,
                });
            }
            if att.blame == Some(r.job) {
                bands.push(TimelineBand {
                    label: format!("blame job {}", r.job),
                    start: j.release,
                    end: j.deadline,
                    highlight: true,
                });
            }
        }
        let title = format!(
            "qbss explain — {} @ alpha = {} (ratio {:.4})",
            att.algorithm,
            alpha,
            att.ratio()
        );
        let html = timeline_html(&title, &[("ALG", &alg_profile), ("OPT", opt.profile())], &bands);
        std::fs::write(path, &html)
            .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
        status_user(&format!("wrote schedule timeline to {path}"));
    }
    Ok(())
}

/// `qbss --version` — crate version plus the git state of the build
/// tree, for pinning baselines and reports to a build.
pub fn version() -> Result<(), CliError> {
    println!("{}", BuildInfo::capture().render());
    Ok(())
}

// ---------------------------------------------------------------------
// `qbss prof` — folded profiles and flamegraphs from span traces
// ---------------------------------------------------------------------

const PROF_USAGE: &str = "usage: qbss prof record (--trace FILE | --scenario NAME [--repeats N] [--warmup N]\n                        \
                          [--shards S]) [--collapse LIST] [--counts-only] [--out FILE]\n       \
                          qbss prof diff   BASE NEW [--top K]\n       \
                          qbss prof flame  (--trace FILE | --folded FILE) [--title T] [--out FILE]\n       \
                          (trace FILE may be `-` to read stdin; folded files hold\n                        \
                          `path;to;frame self_us count` lines, as written by prof record)";

/// Loads a folded-stack profile file (`a;b;c self_us count` lines): a
/// missing file is an I/O failure, a malformed line is bad input.
fn load_folded(path: &str) -> Result<Profile, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Io(format!("cannot read {path}: {e}")))?;
    Profile::parse_folded(&text).map_err(|e| input(format!("{path}: {e}")))
}

/// `--collapse LIST`: comma-separated frame names removed from every
/// call path, their self time accruing to the surviving parent frame.
/// The canonical use is `--collapse par.shard`, which removes the
/// scheduling fan-out layer so folded output is shard-count
/// independent.
fn apply_collapse(profile: Profile, flags: &Flags) -> Profile {
    match flags.get("collapse") {
        None => profile,
        Some(list) => {
            let frames: Vec<&str> =
                list.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
            profile.collapse(&frames)
        }
    }
}

/// Writes `text` to `--out` (with a status note) or stdout.
fn write_text_out(flags: &Flags, text: &str, what: &str) -> Result<(), CliError> {
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, text)
                .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
            status_user(&format!("wrote {what} to {path}"));
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn prof_record(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse_with_switches(
        args,
        &["trace", "scenario", "repeats", "warmup", "shards", "collapse", "counts-only", "out"],
        &["counts-only"],
    )?;
    let profile = match (flags.get("trace"), flags.get("scenario")) {
        (Some(_), Some(_)) => {
            return Err(input("choose one of --trace FILE or --scenario NAME, not both"));
        }
        (Some(file), None) => Profile::from_records(&load_trace(file)?),
        (None, Some(name)) => {
            let config = PerfConfig {
                // One warm-up, one measured pass: a deterministic
                // single-run profile, not a statistical baseline.
                warmup: flags.usize("warmup", 1)?,
                repeats: flags.usize("repeats", 1)?,
                shards: flags.usize("shards", PerfConfig::default().shards)?,
            };
            if config.repeats == 0 {
                return Err(input("--repeats must be at least 1"));
            }
            let name = name.to_string();
            let (profile, dropped) = {
                let (ring, _telemetry) = init_profile_ring()?;
                let mut baseline =
                    perf::record_profiled(std::slice::from_ref(&name), config, Some(&ring))
                        .map_err(|e| input(e.to_string()))?;
                let p = baseline.profiles.remove(&name).ok_or_else(|| {
                    CliError::Io(format!("scenario {name} produced no profile"))
                })?;
                (p, ring.dropped())
            };
            if dropped > 0 {
                warn_user(&format!(
                    "profile ring dropped {dropped} span record(s); the profile is truncated"
                ));
            }
            profile
        }
        (None, None) => {
            return Err(input(format!(
                "prof record needs --trace FILE or --scenario NAME\n{PROF_USAGE}"
            )));
        }
    };
    let profile = apply_collapse(profile, &flags);
    // `--counts-only` drops the wall-clock column: call-path shape and
    // counts are deterministic for a seeded scenario, timings are
    // measurement. CI byte-compares the counts-only form.
    let folded =
        if flags.switch("counts-only")? { profile.fold_counts() } else { profile.fold() };
    write_text_out(&flags, &folded, "folded profile")
}

fn prof_diff(args: &[String]) -> Result<(), CliError> {
    let Some((base_path, rest)) = args.split_first() else {
        return Err(input(format!("prof diff needs BASE and NEW folded files\n{PROF_USAGE}")));
    };
    let Some((new_path, flag_args)) = rest.split_first() else {
        return Err(input(format!("prof diff needs a NEW folded file\n{PROF_USAGE}")));
    };
    let flags = Flags::parse(flag_args, &["top"])?;
    let top = flags.usize("top", 20)?;
    let base = load_folded(base_path)?;
    let new = load_folded(new_path)?;
    let deltas = Profile::diff(&base, &new);
    if deltas.is_empty() {
        println!("no call paths in either profile");
        return Ok(());
    }
    println!("{:>12} {:>12} {:>12}  {:>9}  path", "base self", "new self", "delta", "count");
    for d in deltas.iter().take(top) {
        println!(
            "{:>10}us {:>10}us {:>+10}us  {:>4}>{:<4}  {}",
            d.base_self_us,
            d.new_self_us,
            d.delta_us(),
            d.base_count,
            d.new_count,
            d.path_str()
        );
    }
    if deltas.len() > top {
        println!("... {} more call path(s) (raise --top)", deltas.len() - top);
    }
    Ok(())
}

fn prof_flame(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args, &["trace", "folded", "title", "out"])?;
    let profile = match (flags.get("trace"), flags.get("folded")) {
        (Some(_), Some(_)) => {
            return Err(input("choose one of --trace FILE or --folded FILE, not both"));
        }
        (Some(file), None) => Profile::from_records(&load_trace(file)?),
        (None, Some(path)) => load_folded(path)?,
        (None, None) => {
            return Err(input(format!(
                "prof flame needs --trace FILE or --folded FILE\n{PROF_USAGE}"
            )));
        }
    };
    let html = profile.render_flamegraph_html(flags.get("title").unwrap_or("qbss profile"));
    write_text_out(&flags, &html, "flamegraph")
}

/// `qbss prof` — fold span traces into canonical profiles, diff two
/// folded profiles, render flamegraphs.
pub fn prof(args: &[String]) -> Result<(), CliError> {
    let Some((action, rest)) = args.split_first() else {
        return Err(input(PROF_USAGE));
    };
    match action.as_str() {
        "record" => prof_record(rest),
        "diff" => prof_diff(rest),
        "flame" => prof_flame(rest),
        other => Err(input(format!("unknown prof action `{other}`\n{PROF_USAGE}"))),
    }
}

/// `qbss bounds`.
pub fn bounds(args: &[String]) -> Result<(), CliError> {
    use qbss_analysis::bounds as b;
    let flags = Flags::parse(args, &["alpha"])?;
    let a = flags.alpha()?;
    println!("Table 1 of the paper at alpha = {a}\n");
    println!("offline (energy):");
    println!("  oracle LB            {:.4}", b::oracle_energy_lb(a));
    println!("  deterministic LB     {:.4}", b::offline_energy_lb(a));
    println!("  randomized LB        {:.4}", b::randomized_energy_lb(a));
    println!("  equal-window LB      {:.4}", b::equal_window_energy_lb(a));
    println!("  CRCD UB              {:.4}", b::crcd_energy_ub(a));
    println!("  CRP2D UB             {:.4}", b::crp2d_energy_ub(a));
    println!("  CRAD UB              {:.4}", b::crad_energy_ub(a));
    println!("online (energy):");
    println!("  AVRQ   LB / UB       {:.4} / {:.4}", b::avrq_energy_lb(a), b::avrq_energy_ub(a));
    println!("  BKPQ   LB / UB       {:.4} / {:.4}", b::bkpq_energy_lb(a), b::bkpq_energy_ub(a));
    println!("  AVRQ(m) LB / UB      {:.4} / {:.4}", b::avrq_m_energy_lb(a), b::avrq_m_energy_ub(a));
    println!("max speed:");
    println!("  oracle LB {:.4} | det LB {:.4} | rand LB {:.4} | CRCD UB {:.4} | BKPQ UB {:.4}",
        b::oracle_speed_lb(), b::offline_speed_lb(), b::randomized_speed_lb(),
        b::crcd_speed_ub(), b::bkpq_speed_ub());
    Ok(())
}

/// `qbss rho`.
pub fn rho(args: &[String]) -> Result<(), CliError> {
    let _ = Flags::parse(args, &[])?;
    println!("alpha   rho1     rho2     rho3");
    for row in qbss_analysis::rho::rho_table() {
        let r3 = if row.rho3 == 0.0 { "   -".to_string() } else { format!("{:.3}", row.rho3) };
        println!("{:<5} {:>7.3} {:>8.3} {:>8}", row.alpha, row.rho1, row.rho2, r3);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbss_core::model::QJob;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    const RUN_FLAGS: &[&str] = &["alg", "in", "alpha", "m", "format", "gantt", "save-outcome"];

    #[test]
    fn parse_flags_pairs() {
        let f = Flags::parse(&args(&["--n", "10", "--seed", "3"]), &["n", "seed"]).unwrap();
        assert_eq!(f.get("n"), Some("10"));
        assert_eq!(f.get("seed"), Some("3"));
    }

    #[test]
    fn parse_flags_rejects_bare_values() {
        assert!(Flags::parse(&args(&["n", "10"]), &["n"]).is_err());
    }

    #[test]
    fn parse_flags_rejects_missing_value() {
        let err = Flags::parse(&args(&["--n"]), &["n"]).unwrap_err();
        assert!(err.to_string().contains("needs a value"));
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn parse_flags_rejects_unknown_flag() {
        let err = Flags::parse(&args(&["--bogus", "1"]), &["n", "seed"]).unwrap_err();
        assert!(err.to_string().contains("--bogus"), "{err}");
        assert!(err.to_string().contains("--seed"), "lists the vocabulary: {err}");
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn removed_aliases_are_unknown_flags() {
        // The deprecation period for --algorithm/--machines is over:
        // both are plain unknown flags now (exit 2).
        for alias in [&["--algorithm", "avrq"], &["--machines", "4"]] {
            let err = Flags::parse(&args(alias), RUN_FLAGS).unwrap_err();
            assert_eq!(err.exit_code(), 2, "{err}");
            assert!(err.to_string().contains("unknown flag"), "{err}");
        }
    }

    #[test]
    fn flag_parsers_defaults_and_errors() {
        let f = Flags::parse(&args(&["--alpha", "2.5", "--m", "x"]), &["alpha", "m"]).unwrap();
        assert_eq!(f.f64("alpha", 3.0).unwrap(), 2.5);
        assert_eq!(f.f64("missing", 3.0).unwrap(), 3.0);
        assert!(f.usize("m", 1).is_err());
    }

    #[test]
    fn algorithm_flag_honours_m_override() {
        let f = Flags::parse(&args(&["--alg", "avrq-m", "--m", "4"]), RUN_FLAGS).unwrap();
        assert_eq!(f.algorithm().unwrap(), Algorithm::AvrqM { m: 4 });
        // Explicit parameters win when --m is absent.
        let f = Flags::parse(&args(&["--alg", "oaq-m:8:5"]), RUN_FLAGS).unwrap();
        assert_eq!(f.algorithm().unwrap(), Algorithm::OaqM { m: 8, fw_iters: 5 });
        // --m rebinds machine count, keeps fw_iters.
        let f = Flags::parse(&args(&["--alg", "oaq-m:8:5", "--m", "3"]), RUN_FLAGS).unwrap();
        assert_eq!(f.algorithm().unwrap(), Algorithm::OaqM { m: 3, fw_iters: 5 });
        let f = Flags::parse(&args(&["--alg", "nope"]), RUN_FLAGS).unwrap();
        assert_eq!(f.algorithm().unwrap_err().exit_code(), 2);
    }

    #[test]
    fn run_algorithm_dispatch() {
        let inst = qbss_core::QbssInstance::new(vec![QJob::new(0, 0.0, 2.0, 0.5, 2.0, 0.5)]);
        let opt = inst.opt_cache();
        for alg in ["avrq", "bkpq", "oaq", "crcd", "crp2d", "crad", "avrq-m"] {
            let algorithm: Algorithm = alg.parse().unwrap();
            let (_, out) = cost_row(&inst, 3.0, algorithm, &opt)
                .unwrap_or_else(|e| panic!("{alg}: {e}"));
            out.validate(&inst).unwrap_or_else(|e| panic!("{alg}: {e}"));
        }
        assert!("nope".parse::<Algorithm>().is_err());
    }

    #[test]
    fn run_algorithm_scope_checks() {
        // Non-zero release: crp2d/crad must refuse with a typed
        // algorithm error (exit code 1); crcd supports any common
        // window `(r0, D]`.
        let inst = qbss_core::QbssInstance::new(vec![QJob::new(0, 1.0, 2.0, 0.5, 2.0, 0.5)]);
        let opt = inst.opt_cache();
        for alg in [Algorithm::Crp2d, Algorithm::Crad] {
            let err = cost_row(&inst, 3.0, alg, &opt).map(|_| ()).expect_err(alg.name());
            assert!(matches!(err, CliError::Algorithm(_)), "{alg}: {err}");
            assert_eq!(err.exit_code(), 1, "{alg}");
        }
        assert!(cost_row(&inst, 3.0, Algorithm::Crcd, &opt).is_ok());
        // Non-power-of-two deadline: crp2d refuses, crad rounds.
        let inst = qbss_core::QbssInstance::new(vec![QJob::new(0, 0.0, 3.0, 0.5, 2.0, 0.5)]);
        let opt = inst.opt_cache();
        assert!(cost_row(&inst, 3.0, Algorithm::Crp2d, &opt).is_err());
        assert!(cost_row(&inst, 3.0, Algorithm::Crad, &opt).is_ok());
    }

    #[test]
    fn malformed_instances_never_panic_the_cli() {
        // A NaN smuggled past the constructors must surface as a typed
        // model error through the pipeline, not a panic.
        let inst = qbss_core::QbssInstance::new(vec![QJob::new_unchecked(
            0,
            0.0,
            2.0,
            f64::NAN,
            2.0,
            0.5,
        )]);
        let opt = inst.opt_cache();
        for alg in ["avrq", "bkpq", "oaq", "crcd", "crp2d", "crad", "avrq-m"] {
            let algorithm: Algorithm = alg.parse().unwrap();
            let err = cost_row(&inst, 3.0, algorithm, &opt).map(|_| ()).expect_err(alg);
            assert_eq!(err.exit_code(), 1, "{alg}: {err}");
        }
    }

    #[test]
    fn generate_and_reload_via_tempfile() {
        let dir = std::env::temp_dir().join("qbss-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gen.json");
        generate(&args(&[
            "--n", "12", "--seed", "9", "--family", "p2", "--out",
            path.to_str().unwrap(),
        ]))
        .expect("generate");
        let inst = io::read_file(&path).expect("reload");
        assert_eq!(inst.len(), 12);
        assert!(inst
            .jobs
            .iter()
            .all(|j| qbss_core::offline::is_power_of_two_deadline(j.deadline)));
    }

    #[test]
    fn stream_consumes_generated_jsonl_events() {
        let dir = std::env::temp_dir().join("qbss-cli-stream-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let p = path.to_str().unwrap();
        generate(&args(&["--n", "10", "--seed", "4", "--events", "--out", p]))
            .expect("generate --events");
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 10);
        assert!(text.lines().all(|l| l.contains("\"type\": \"arrive\"")), "{text}");
        for alg in ["avrq", "bkpq", "oaq"] {
            stream(&args(&["--alg", alg, "--in", p])).expect(alg);
        }
        // An explicit finish (and advances) work too.
        let mut with_advance = String::from("{\"type\": \"advance\", \"t\": 0.0}\n");
        with_advance.push_str(&text);
        with_advance.push_str("{\"type\": \"finish\"}\n");
        let path2 = dir.join("events2.jsonl");
        std::fs::write(&path2, &with_advance).unwrap();
        stream(&args(&["--alg", "oaq", "--in", path2.to_str().unwrap()])).expect("finish event");
    }

    #[test]
    fn stream_rejects_bad_events_with_line_numbers() {
        let dir = std::env::temp_dir().join("qbss-cli-stream-bad-test");
        std::fs::create_dir_all(&dir).unwrap();
        let run = |body: &str| {
            let path = dir.join("bad.jsonl");
            std::fs::write(&path, body).unwrap();
            stream(&args(&["--alg", "oaq", "--in", path.to_str().unwrap()]))
        };
        let arrive = "{\"type\": \"arrive\", \"id\": 0, \"release\": 1, \"deadline\": 3, \
                      \"query_load\": 0.5, \"upper_bound\": 2, \"exact\": 1}\n";
        // Unknown event type, non-JSON line, missing field: bad input
        // with the (comment-inclusive) line number.
        for body in ["{\"type\": \"bogus\"}\n", "not json\n", "{\"type\": \"advance\"}\n"] {
            let err = run(&format!("# comment\n{body}")).unwrap_err();
            assert_eq!(err.exit_code(), 2, "{err}");
            assert!(err.to_string().contains("line 2"), "{err}");
        }
        // An out-of-order arrival is rejected by the engine, same code.
        let past = "{\"type\": \"arrive\", \"id\": 1, \"release\": 0, \"deadline\": 3, \
                    \"query_load\": 0.5, \"upper_bound\": 2, \"exact\": 1}\n";
        let err = run(&format!("{arrive}{past}")).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        assert!(err.to_string().contains("line 2"), "{err}");
        // Events after `finish` are rejected.
        let err = run(&format!("{arrive}{{\"type\": \"finish\"}}\n{arrive}")).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        // A batch-only algorithm is a flag error; an empty stream is an
        // algorithm failure; a missing file is I/O.
        let err = run(arrive).map(|()| {
            stream(&args(&["--alg", "crcd", "--in", dir.join("bad.jsonl").to_str().unwrap()]))
                .unwrap_err()
        });
        assert_eq!(err.expect("stream ok").exit_code(), 2);
        assert_eq!(run("").unwrap_err().exit_code(), 1);
        assert_eq!(
            stream(&args(&["--alg", "oaq", "--in", "/no/such/file"])).unwrap_err().exit_code(),
            3
        );
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let f = Flags::parse(&args(&["--in", "/definitely/not/a/file.json"]), &["in"]).unwrap();
        let err = load_instance(&f).unwrap_err();
        assert!(matches!(err, CliError::Io(_)), "{err}");
        assert_eq!(err.exit_code(), 3);
    }

    #[test]
    fn bounds_rejects_bad_alpha() {
        assert!(bounds(&args(&["--alpha", "1.0"])).is_err());
        assert!(bounds(&args(&["--alpha", "2.0"])).is_ok());
    }

    #[test]
    fn bad_alpha_is_bad_input_everywhere() {
        for a in ["0.5", "1.0", "NaN", "inf", "-2"] {
            let f = Flags::parse(&args(&["--alpha", a]), &["alpha"]).unwrap();
            let err = f.alpha().unwrap_err();
            assert_eq!(err.exit_code(), 2, "alpha {a}: {err}");
        }
    }

    #[test]
    fn alg_and_alpha_lists_parse() {
        let algs = parse_alg_list("avrq,bkpq,avrq-m", 4, 7).unwrap();
        assert_eq!(
            algs,
            vec![Algorithm::Avrq, Algorithm::Bkpq, Algorithm::AvrqM { m: 4 }]
        );
        assert_eq!(parse_alg_list("all", 3, 6).unwrap(), Algorithm::all(3, 6));
        // Explicit parameters override the sweep-level --m.
        assert_eq!(parse_alg_list("avrq-m:8", 2, 6).unwrap(), vec![Algorithm::AvrqM { m: 8 }]);
        assert!(parse_alg_list("nope", 2, 6).is_err());
        assert_eq!(parse_alpha_list("2,2.5,3").unwrap(), vec![2.0, 2.5, 3.0]);
        assert!(parse_alpha_list("1.0").is_err());
        assert!(parse_alpha_list("x").is_err());
    }

    #[test]
    fn switch_flags_parse_bare_and_explicit() {
        let known = &["audit", "n"];
        let f = Flags::parse_with_switches(&args(&["--audit"]), known, &["audit"]).unwrap();
        assert!(f.switch("audit").unwrap());
        // A bare switch followed by another flag still binds to "true".
        let f = Flags::parse_with_switches(&args(&["--audit", "--n", "3"]), known, &["audit"])
            .unwrap();
        assert!(f.switch("audit").unwrap());
        assert_eq!(f.get("n"), Some("3"));
        // An explicit value is honoured…
        let f = Flags::parse_with_switches(&args(&["--audit", "false"]), known, &["audit"])
            .unwrap();
        assert!(!f.switch("audit").unwrap());
        // …and a nonsense one is bad input.
        let f = Flags::parse_with_switches(&args(&["--audit", "maybe"]), known, &["audit"])
            .unwrap();
        assert_eq!(f.switch("audit").unwrap_err().exit_code(), 2);
        // Unset reads false.
        let f = Flags::parse_with_switches(&args(&[]), known, &["audit"]).unwrap();
        assert!(!f.switch("audit").unwrap());
    }

    fn toy_baseline(median: f64) -> Baseline {
        use qbss_bench::perf::{EnvFingerprint, ScenarioStats};
        let samples = vec![median, median * 1.01, median * 0.99];
        let med = perf::median(&samples);
        Baseline {
            env: EnvFingerprint {
                host: "test".into(),
                os: "linux".into(),
                arch: "x86_64".into(),
                cores: 1,
                rustc: "rustc test".into(),
            },
            config: PerfConfig::default(),
            scenarios: std::iter::once((
                "toy".to_string(),
                ScenarioStats {
                    cells: 4,
                    mad_ms: perf::mad(&samples, med),
                    min_ms: samples.iter().copied().fold(f64::INFINITY, f64::min),
                    median_ms: med,
                    samples_ms: samples,
                },
            ))
            .collect(),
            profiles: Default::default(),
            work_counters: Default::default(),
        }
    }

    #[test]
    fn perf_gate_passes_identical_and_fails_slowed_baselines() {
        let dir = std::env::temp_dir().join("qbss-cli-perf-test");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let slow = dir.join("slow.json");
        std::fs::write(&base, toy_baseline(100.0).to_json()).unwrap();
        std::fs::write(&slow, toy_baseline(200.0).to_json()).unwrap();
        let b = base.to_str().unwrap();
        let s = slow.to_str().unwrap();
        // Identical baselines gate clean.
        perf(&args(&["gate", "--base", b, "--new", b])).expect("identical baselines pass");
        // A 2× slowdown fails the gate with the I/O-class exit code.
        let err = perf(&args(&["gate", "--base", b, "--new", s])).unwrap_err();
        assert!(matches!(err, CliError::Gate(_)), "{err}");
        assert_eq!(err.exit_code(), 3);
        // …but `compare` only reports, never gates.
        perf(&args(&["compare", b, s])).expect("compare reports without failing");
        // A loose enough threshold lets the slowdown through.
        perf(&args(&["gate", "--base", b, "--new", s, "--min-rel", "1.5"]))
            .expect("custom threshold");
        // Missing file → I/O; broken schema → bad input; bad action → bad input.
        assert_eq!(perf(&args(&["gate", "--base", "/no/file"])).unwrap_err().exit_code(), 3);
        let junk = dir.join("junk.json");
        std::fs::write(&junk, "{}").unwrap();
        let err =
            perf(&args(&["gate", "--base", b, "--new", junk.to_str().unwrap()])).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        assert_eq!(perf(&args(&["explode"])).unwrap_err().exit_code(), 2);
        assert_eq!(perf(&args(&["record", "--repeats", "0"])).unwrap_err().exit_code(), 2);
    }

    #[test]
    fn prof_record_folds_a_trace_file() {
        let dir = std::env::temp_dir().join("qbss-cli-prof-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("p.jsonl");
        // Child closes (and is written) before its parent — file order
        // is close order; the folder rebuilds the tree from ids.
        std::fs::write(
            &trace_path,
            "{\"t\": \"span\", \"id\": 2, \"parent\": 1, \"name\": \"cell\", \
             \"start_us\": 10, \"dur_us\": 40, \"fields\": {}}\n\
             {\"t\": \"span\", \"id\": 1, \"parent\": null, \"name\": \"sweep\", \
             \"start_us\": 0, \"dur_us\": 100, \"fields\": {}}\n",
        )
        .unwrap();
        let t = trace_path.to_str().unwrap();
        let folded_path = dir.join("p.folded");
        prof(&args(&["record", "--trace", t, "--out", folded_path.to_str().unwrap()]))
            .expect("prof record");
        let folded = std::fs::read_to_string(&folded_path).unwrap();
        assert_eq!(folded, "sweep 60 1\nsweep;cell 40 1\n");
        // Collapsing a frame folds its self time into the parent.
        let collapsed = dir.join("c.folded");
        prof(&args(&[
            "record", "--trace", t, "--collapse", "cell", "--counts-only",
            "--out", collapsed.to_str().unwrap(),
        ]))
        .expect("prof record --collapse");
        assert_eq!(std::fs::read_to_string(&collapsed).unwrap(), "sweep 1\n");
        // diff of a profile against itself runs clean; flame renders
        // self-contained HTML from the folded file.
        prof(&args(&["diff", folded_path.to_str().unwrap(), folded_path.to_str().unwrap()]))
            .expect("prof diff");
        let html_path = dir.join("p.html");
        prof(&args(&[
            "flame", "--folded", folded_path.to_str().unwrap(),
            "--out", html_path.to_str().unwrap(),
        ]))
        .expect("prof flame");
        let html = std::fs::read_to_string(&html_path).unwrap();
        assert!(html.starts_with("<!DOCTYPE html>"), "{}", &html[..60]);
        assert!(html.contains("sweep"), "{html}");
        assert!(!html.contains("http://") && !html.contains("https://"), "self-contained");
    }

    #[test]
    fn prof_errors_map_onto_the_exit_codes() {
        let dir = std::env::temp_dir().join("qbss-cli-prof-err-test");
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(prof(&args(&["explode"])).unwrap_err().exit_code(), 2);
        assert_eq!(prof(&args(&["record"])).unwrap_err().exit_code(), 2);
        assert_eq!(
            prof(&args(&["record", "--trace", "a", "--scenario", "b"])).unwrap_err().exit_code(),
            2
        );
        assert_eq!(
            prof(&args(&["record", "--trace", "/no/such/file"])).unwrap_err().exit_code(),
            3
        );
        assert_eq!(prof(&args(&["diff", "/no/file"])).unwrap_err().exit_code(), 2);
        assert_eq!(prof(&args(&["diff", "/no/file", "/no/file"])).unwrap_err().exit_code(), 3);
        let bad = dir.join("bad.folded");
        std::fs::write(&bad, "just-a-path-no-count\n").unwrap();
        let b = bad.to_str().unwrap();
        let err = prof(&args(&["diff", b, b])).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        assert_eq!(prof(&args(&["flame"])).unwrap_err().exit_code(), 2);
        // perf record refuses the --profile/--trace combination.
        let err = perf(&args(&[
            "record", "--profile", "--trace", "/tmp/t.jsonl", "--scenarios", "ci-small",
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        assert!(err.to_string().contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn trace_report_writes_self_contained_html() {
        let dir = std::env::temp_dir().join("qbss-cli-report-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl");
        std::fs::write(
            &path,
            "{\"t\": \"span\", \"id\": 1, \"parent\": null, \"name\": \"cli.sweep\", \
             \"start_us\": 0, \"dur_us\": 50, \"fields\": {}}\n",
        )
        .unwrap();
        let out = dir.join("t.html");
        trace(&args(&["report", path.to_str().unwrap(), "--out", out.to_str().unwrap()]))
            .expect("report");
        let html = std::fs::read_to_string(&out).unwrap();
        assert!(html.starts_with("<!DOCTYPE html>"), "{}", &html[..60]);
        assert!(html.contains("cli.sweep"));
        assert!(!html.contains("http://") && !html.contains("https://"), "self-contained");
        assert_eq!(trace(&args(&["report", "/no/such/file"])).unwrap_err().exit_code(), 3);
    }

    #[test]
    fn qbss_log_specs_parse_or_exit_2() {
        assert!(filter_from_spec(None, false).unwrap().max_level().is_none());
        assert!(filter_from_spec(None, true).unwrap().max_level().is_some());
        assert!(filter_from_spec(Some("debug,engine=trace"), false).is_ok());
        let err = filter_from_spec(Some("engine=loud"), false).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
    }

    #[test]
    fn trace_summarize_round_trips_a_trace_file() {
        let dir = std::env::temp_dir().join("qbss-cli-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl");
        std::fs::write(
            &path,
            "{\"t\": \"span\", \"id\": 1, \"parent\": null, \"name\": \"cli.sweep\", \
             \"start_us\": 0, \"dur_us\": 50, \"fields\": {}}\n",
        )
        .unwrap();
        trace(&args(&["summarize", path.to_str().unwrap()])).expect("summarize");
        // Bad action / missing file / bad schema map onto the exit codes.
        assert_eq!(trace(&args(&["explode"])).unwrap_err().exit_code(), 2);
        assert_eq!(trace(&args(&["summarize", "/no/such/file"])).unwrap_err().exit_code(), 3);
        std::fs::write(&path, "{\"t\": \"bogus\"}\n").unwrap();
        let err = trace(&args(&["summarize", path.to_str().unwrap()])).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn sweep_runs_end_to_end() {
        let dir = std::env::temp_dir().join("qbss-cli-sweep-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("agg.json");
        sweep(&args(&[
            "--count", "6", "--n", "8", "--alg", "avrq,bkpq", "--alpha", "2,3",
            "--shards", "2", "--format", "json", "--out",
            path.to_str().unwrap(),
        ]))
        .expect("sweep");
        let agg = std::fs::read_to_string(&path).unwrap();
        assert!(agg.contains("\"algorithm\": \"avrq\""), "{agg}");
        let instr =
            std::fs::read_to_string(format!("{}.instr.json", path.display())).unwrap();
        assert!(instr.contains("\"cache_hit_rate\""), "{instr}");
        assert!(sweep(&args(&["--alg", "nope"])).is_err());
    }
}
