//! Implementation of the `qbss` subcommands.
//!
//! Every subcommand returns a [`CliError`], which the `main` wrapper
//! maps onto the process exit-code contract:
//!
//! | code | meaning                                              |
//! |------|------------------------------------------------------|
//! | 0    | success                                              |
//! | 1    | the algorithm pipeline failed ([`CliError::Algorithm`]) |
//! | 2    | bad input: flags, instance data ([`CliError::Input`]) |
//! | 3    | file-system failure ([`CliError::Io`])               |

use std::collections::HashMap;
use std::fmt;
use std::path::Path;

use qbss_core::error::QbssError;
use qbss_core::model::QbssInstance;
use qbss_core::offline::is_power_of_two_deadline;
use qbss_core::pipeline::{run_checked, Algorithm};
use qbss_core::QbssOutcome;
use qbss_instances::gen::{self, Compressibility, GenConfig, QueryModel, TimeModel};
use qbss_instances::io::{self, IoError};

/// Top-level usage text.
pub const USAGE: &str = "\
qbss — speed scaling with explorable uncertainty (SPAA 2021)

USAGE:
  qbss generate [--n N] [--seed S] [--family online|poisson|common|p2|arbitrary]
                [--compress uniform|bimodal|heavytail|incompressible|full]
                [--out FILE]
  qbss run      --algorithm ALG --in FILE [--alpha A] [--machines M] [--gantt true] [--save-outcome FILE]
                  ALG: avrq | bkpq | oaq | avrq-m | crcd | crp2d | crad
  qbss compare  --in FILE [--alpha A]
  qbss bounds   [--alpha A]
  qbss rho
  qbss help

EXIT CODES:
  0 success | 1 algorithm failure | 2 bad input | 3 I/O failure";

/// A subcommand failure, carrying its exit code.
#[derive(Debug)]
pub enum CliError {
    /// Malformed command line or instance data (exit code 2).
    Input(String),
    /// The algorithm pipeline rejected or failed the run (exit code 1).
    Algorithm(QbssError),
    /// The file system failed (exit code 3).
    Io(String),
}

impl CliError {
    /// The process exit code this error maps to.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Algorithm(_) => 1,
            CliError::Input(_) => 2,
            CliError::Io(_) => 3,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Input(m) | CliError::Io(m) => f.write_str(m),
            CliError::Algorithm(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Algorithm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QbssError> for CliError {
    fn from(e: QbssError) -> Self {
        CliError::Algorithm(e)
    }
}

impl From<IoError> for CliError {
    fn from(e: IoError) -> Self {
        match e {
            IoError::File { .. } => CliError::Io(e.to_string()),
            // Syntax and model errors in an instance file are bad
            // *input*, not an I/O failure.
            _ => CliError::Input(e.to_string()),
        }
    }
}

fn input(msg: impl Into<String>) -> CliError {
    CliError::Input(msg.into())
}

type Flags = HashMap<String, String>;

fn parse_flags(args: &[String]) -> Result<Flags, CliError> {
    let mut flags = Flags::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(input(format!("expected --flag, got `{key}`")));
        };
        let Some(value) = it.next() else {
            return Err(input(format!("--{name} needs a value")));
        };
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn flag_f64(flags: &Flags, name: &str, default: f64) -> Result<f64, CliError> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| input(format!("--{name}: not a number: `{v}`"))),
    }
}

fn flag_usize(flags: &Flags, name: &str, default: usize) -> Result<usize, CliError> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| input(format!("--{name}: not an integer: `{v}`"))),
    }
}

fn load_instance(flags: &Flags) -> Result<QbssInstance, CliError> {
    let path = flags.get("in").ok_or_else(|| input("--in FILE is required"))?;
    Ok(io::read_file(Path::new(path))?)
}

/// `qbss generate`.
pub fn generate(args: &[String]) -> Result<(), CliError> {
    let flags = parse_flags(args)?;
    let n = flag_usize(&flags, "n", 50)?;
    let seed = flag_usize(&flags, "seed", 0)? as u64;
    let time = match flags.get("family").map(String::as_str).unwrap_or("online") {
        "online" => TimeModel::Online { horizon: n as f64 / 4.0, min_len: 0.5, max_len: 4.0 },
        "common" => TimeModel::CommonDeadline { d: 8.0 },
        "p2" => TimeModel::PowersOfTwo { min_exp: 0, max_exp: 5 },
        "arbitrary" => TimeModel::ArbitraryDeadlines { min_d: 1.0, max_d: 50.0 },
        "poisson" => TimeModel::Poisson { rate: 2.0, min_len: 0.5, max_len: 4.0 },
        other => return Err(input(format!("unknown family `{other}`"))),
    };
    let compress = match flags.get("compress").map(String::as_str).unwrap_or("uniform") {
        "uniform" => Compressibility::Uniform,
        "bimodal" => Compressibility::Bimodal { p_compressible: 0.5 },
        "heavytail" => Compressibility::HeavyTail,
        "incompressible" => Compressibility::Incompressible,
        "full" => Compressibility::FullyCompressible,
        other => return Err(input(format!("unknown compressibility `{other}`"))),
    };
    let cfg = GenConfig {
        n,
        seed,
        time,
        min_w: 0.5,
        max_w: 4.0,
        query: QueryModel::UniformFraction { lo: 0.1, hi: 0.6 },
        compress,
    };
    let inst = gen::generate(&cfg);
    match flags.get("out") {
        Some(path) => {
            io::write_file(&inst, Path::new(path))?;
            eprintln!("wrote {n} jobs to {path}");
        }
        None => println!("{}", io::to_json(&inst)?),
    }
    Ok(())
}

fn print_outcome(out: &QbssOutcome, inst: &QbssInstance, alpha: f64) {
    let queried = out.decisions.iter().filter(|d| d.queried).count();
    println!("algorithm:     {}", out.algorithm);
    println!("jobs:          {} ({} queried)", inst.len(), queried);
    println!("energy:        {:.4} (alpha = {alpha})", out.energy(alpha));
    println!("opt energy:    {:.4}", inst.opt_energy(alpha));
    println!("energy ratio:  {:.4}", out.energy_ratio(inst, alpha));
    println!("max speed:     {:.4}", out.max_speed());
    println!("opt max speed: {:.4}", inst.opt_max_speed());
    println!("speed ratio:   {:.4}", out.speed_ratio(inst));
    println!("slices:        {}", out.schedule.slices.len());
}

/// Parses `--alpha` and enforces the model's `α > 1` (finite) contract
/// up front, so a bad exponent is a bad-input error (exit 2), not an
/// algorithm failure.
fn flag_alpha(flags: &Flags) -> Result<f64, CliError> {
    let a = flag_f64(flags, "alpha", 3.0)?;
    if !a.is_finite() || a <= 1.0 {
        return Err(input("alpha must be finite and exceed 1"));
    }
    Ok(a)
}

/// `qbss run`.
pub fn run(args: &[String]) -> Result<(), CliError> {
    let flags = parse_flags(args)?;
    let inst = load_instance(&flags)?;
    let alpha = flag_alpha(&flags)?;
    let alg = flags.get("algorithm").ok_or_else(|| input("--algorithm is required"))?;
    let out = run_algorithm(alg, &inst, alpha, &flags)?;
    print_outcome(&out, &inst, alpha);
    if flags.get("gantt").map(String::as_str) == Some("true") {
        println!("\n{}", speed_scaling::render::schedule_report(&out.schedule));
    }
    if let Some(path) = flags.get("save-outcome") {
        let json = io::outcome_to_json(&out);
        std::fs::write(path, json)
            .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
        eprintln!("wrote outcome (decisions + schedule) to {path}");
    }
    Ok(())
}

/// Maps a `--algorithm` name to the checked-pipeline dispatcher.
fn algorithm_for(alg: &str, flags: &Flags) -> Result<Algorithm, CliError> {
    match alg {
        "avrq" => Ok(Algorithm::Avrq),
        "bkpq" => Ok(Algorithm::Bkpq),
        "oaq" => Ok(Algorithm::Oaq),
        "avrq-m" => Ok(Algorithm::AvrqM { m: flag_usize(flags, "machines", 2)? }),
        "crcd" => Ok(Algorithm::Crcd),
        "crp2d" => Ok(Algorithm::Crp2d),
        "crad" => Ok(Algorithm::Crad),
        other => Err(input(format!("unknown algorithm `{other}`"))),
    }
}

/// Runs one algorithm through [`run_checked`]: the instance is
/// validated, out-of-scope structures come back as typed errors, the
/// outcome is re-validated, and non-finite costs are rejected — no
/// panics on any input.
fn run_algorithm(
    alg: &str,
    inst: &QbssInstance,
    alpha: f64,
    flags: &Flags,
) -> Result<QbssOutcome, CliError> {
    let algorithm = algorithm_for(alg, flags)?;
    Ok(run_checked(inst, alpha, algorithm)?)
}

/// `qbss compare`.
pub fn compare(args: &[String]) -> Result<(), CliError> {
    let flags = parse_flags(args)?;
    let inst = load_instance(&flags)?;
    let alpha = flag_alpha(&flags)?;

    let mut candidates: Vec<&str> = vec!["avrq", "bkpq", "oaq"];
    if inst.has_common_release(0.0) {
        candidates.push("crad");
        if inst.jobs.iter().all(|j| is_power_of_two_deadline(j.deadline)) {
            candidates.push("crp2d");
        }
        if inst.common_deadline().is_some() {
            candidates.push("crcd");
        }
    }

    println!(
        "{:<8} {:>12} {:>10} {:>12} {:>10} {:>9}",
        "alg", "energy", "E-ratio", "max speed", "s-ratio", "queries"
    );
    for alg in candidates {
        let out = run_algorithm(alg, &inst, alpha, &flags)?;
        let queried = out.decisions.iter().filter(|d| d.queried).count();
        println!(
            "{:<8} {:>12.4} {:>10.4} {:>12.4} {:>10.4} {:>6}/{}",
            out.algorithm,
            out.energy(alpha),
            out.energy_ratio(&inst, alpha),
            out.max_speed(),
            out.speed_ratio(&inst),
            queried,
            inst.len()
        );
    }
    println!(
        "{:<8} {:>12.4} {:>10} {:>12.4}",
        "OPT",
        inst.opt_energy(alpha),
        "1.0000",
        inst.opt_max_speed()
    );
    Ok(())
}

/// `qbss bounds`.
pub fn bounds(args: &[String]) -> Result<(), CliError> {
    use qbss_analysis::bounds as b;
    let flags = parse_flags(args)?;
    let a = flag_alpha(&flags)?;
    println!("Table 1 of the paper at alpha = {a}\n");
    println!("offline (energy):");
    println!("  oracle LB            {:.4}", b::oracle_energy_lb(a));
    println!("  deterministic LB     {:.4}", b::offline_energy_lb(a));
    println!("  randomized LB        {:.4}", b::randomized_energy_lb(a));
    println!("  equal-window LB      {:.4}", b::equal_window_energy_lb(a));
    println!("  CRCD UB              {:.4}", b::crcd_energy_ub(a));
    println!("  CRP2D UB             {:.4}", b::crp2d_energy_ub(a));
    println!("  CRAD UB              {:.4}", b::crad_energy_ub(a));
    println!("online (energy):");
    println!("  AVRQ   LB / UB       {:.4} / {:.4}", b::avrq_energy_lb(a), b::avrq_energy_ub(a));
    println!("  BKPQ   LB / UB       {:.4} / {:.4}", b::bkpq_energy_lb(a), b::bkpq_energy_ub(a));
    println!("  AVRQ(m) LB / UB      {:.4} / {:.4}", b::avrq_m_energy_lb(a), b::avrq_m_energy_ub(a));
    println!("max speed:");
    println!("  oracle LB {:.4} | det LB {:.4} | rand LB {:.4} | CRCD UB {:.4} | BKPQ UB {:.4}",
        b::oracle_speed_lb(), b::offline_speed_lb(), b::randomized_speed_lb(),
        b::crcd_speed_ub(), b::bkpq_speed_ub());
    Ok(())
}

/// `qbss rho`.
pub fn rho(_args: &[String]) -> Result<(), CliError> {
    println!("alpha   rho1     rho2     rho3");
    for row in qbss_analysis::rho::rho_table() {
        let r3 = if row.rho3 == 0.0 { "   -".to_string() } else { format!("{:.3}", row.rho3) };
        println!("{:<5} {:>7.3} {:>8.3} {:>8}", row.alpha, row.rho1, row.rho2, r3);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbss_core::model::QJob;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_flags_pairs() {
        let f = parse_flags(&args(&["--n", "10", "--seed", "3"])).unwrap();
        assert_eq!(f.get("n").map(String::as_str), Some("10"));
        assert_eq!(f.get("seed").map(String::as_str), Some("3"));
    }

    #[test]
    fn parse_flags_rejects_bare_values() {
        assert!(parse_flags(&args(&["n", "10"])).is_err());
    }

    #[test]
    fn parse_flags_rejects_missing_value() {
        let err = parse_flags(&args(&["--n"])).unwrap_err();
        assert!(err.to_string().contains("needs a value"));
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn flag_parsers_defaults_and_errors() {
        let f = parse_flags(&args(&["--alpha", "2.5", "--m", "x"])).unwrap();
        assert_eq!(flag_f64(&f, "alpha", 3.0).unwrap(), 2.5);
        assert_eq!(flag_f64(&f, "missing", 3.0).unwrap(), 3.0);
        assert!(flag_usize(&f, "m", 1).is_err());
    }

    #[test]
    fn run_algorithm_dispatch() {
        let inst = qbss_core::QbssInstance::new(vec![QJob::new(0, 0.0, 2.0, 0.5, 2.0, 0.5)]);
        let flags = Flags::new();
        for alg in ["avrq", "bkpq", "oaq", "crcd", "crp2d", "crad", "avrq-m"] {
            let out =
                run_algorithm(alg, &inst, 3.0, &flags).unwrap_or_else(|e| panic!("{alg}: {e}"));
            out.validate(&inst).unwrap_or_else(|e| panic!("{alg}: {e}"));
        }
        assert!(run_algorithm("nope", &inst, 3.0, &flags).is_err());
    }

    #[test]
    fn run_algorithm_scope_checks() {
        // Non-zero release: crp2d/crad must refuse with a typed
        // algorithm error (exit code 1); crcd supports any common
        // window `(r0, D]`.
        let inst = qbss_core::QbssInstance::new(vec![QJob::new(0, 1.0, 2.0, 0.5, 2.0, 0.5)]);
        let flags = Flags::new();
        for alg in ["crp2d", "crad"] {
            let err = run_algorithm(alg, &inst, 3.0, &flags).expect_err(alg);
            assert!(matches!(err, CliError::Algorithm(_)), "{alg}: {err}");
            assert_eq!(err.exit_code(), 1, "{alg}");
        }
        assert!(run_algorithm("crcd", &inst, 3.0, &flags).is_ok());
        // Non-power-of-two deadline: crp2d refuses, crad rounds.
        let inst = qbss_core::QbssInstance::new(vec![QJob::new(0, 0.0, 3.0, 0.5, 2.0, 0.5)]);
        assert!(run_algorithm("crp2d", &inst, 3.0, &flags).is_err());
        assert!(run_algorithm("crad", &inst, 3.0, &flags).is_ok());
    }

    #[test]
    fn malformed_instances_never_panic_the_cli() {
        // A NaN smuggled past the constructors must surface as a typed
        // model error through run_algorithm, not a panic.
        let inst = qbss_core::QbssInstance::new(vec![QJob::new_unchecked(
            0,
            0.0,
            2.0,
            f64::NAN,
            2.0,
            0.5,
        )]);
        let flags = Flags::new();
        for alg in ["avrq", "bkpq", "oaq", "crcd", "crp2d", "crad", "avrq-m"] {
            let err = run_algorithm(alg, &inst, 3.0, &flags).expect_err(alg);
            assert_eq!(err.exit_code(), 1, "{alg}: {err}");
        }
    }

    #[test]
    fn generate_and_reload_via_tempfile() {
        let dir = std::env::temp_dir().join("qbss-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gen.json");
        generate(&args(&[
            "--n", "12", "--seed", "9", "--family", "p2", "--out",
            path.to_str().unwrap(),
        ]))
        .expect("generate");
        let inst = io::read_file(&path).expect("reload");
        assert_eq!(inst.len(), 12);
        assert!(inst
            .jobs
            .iter()
            .all(|j| qbss_core::offline::is_power_of_two_deadline(j.deadline)));
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let mut flags = Flags::new();
        flags.insert("in".into(), "/definitely/not/a/file.json".into());
        let err = load_instance(&flags).unwrap_err();
        assert!(matches!(err, CliError::Io(_)), "{err}");
        assert_eq!(err.exit_code(), 3);
    }

    #[test]
    fn bounds_rejects_bad_alpha() {
        assert!(bounds(&args(&["--alpha", "1.0"])).is_err());
        assert!(bounds(&args(&["--alpha", "2.0"])).is_ok());
    }

    #[test]
    fn bad_alpha_is_bad_input_everywhere() {
        for a in ["0.5", "1.0", "NaN", "inf", "-2"] {
            let mut flags = Flags::new();
            flags.insert("alpha".into(), a.into());
            let err = flag_alpha(&flags).unwrap_err();
            assert_eq!(err.exit_code(), 2, "alpha {a}: {err}");
        }
    }
}
