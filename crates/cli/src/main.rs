//! `qbss` — command-line front end for the QBSS library.
//!
//! Subcommands:
//!
//! * `qbss generate` — write a random instance (JSON) to stdout/file;
//! * `qbss run` — run one algorithm on an instance file, print the
//!   decisions, energy and ratios;
//! * `qbss stream` — feed JSONL arrival events (file or stdin) through
//!   the incremental streaming engine and print the evaluated summary;
//! * `qbss compare` — run every applicable algorithm on an instance and
//!   print a comparison table;
//! * `qbss sweep` — run a declarative instance × algorithm × α grid on
//!   the sharded batch engine and print deterministic aggregates;
//! * `qbss serve` — a long-lived std-only HTTP server: Prometheus
//!   `/metrics`, health probes, a `/tracez` span ring, and
//!   `POST /evaluate` / `POST /sweep` evaluation endpoints, with
//!   cost-budgeted admission control and request deadlines;
//! * `qbss loadgen` — a seeded open-loop load generator (Poisson
//!   arrivals, optional adversarial burst trains) that drives a qbss
//!   server over real TCP and emits a canonical JSON report;
//! * `qbss bounds` — print the paper's Table 1 at a given α;
//! * `qbss rho` — print the §4.2 ρ-comparison table;
//! * `qbss trace summarize` — digest a `--trace` JSONL file into a
//!   per-phase timing tree (text or canonical JSON);
//! * `qbss trace report` — render a trace as a self-contained HTML
//!   report (phase tree, span waterfall, metrics tables);
//! * `qbss perf record|compare|gate` — statistical perf baselines
//!   (median/MAD over warm repeats, optionally with `--profile`
//!   call-path attribution) and a noise-aware regression gate
//!   (exit 3 on regression);
//! * `qbss quality record|compare|gate` — pinned competitive-ratio
//!   scenarios digested into per-group max/mean/p95 and bound headroom;
//!   the gate is exact (seeds pinned, aggregates byte-deterministic) and
//!   exits 3 on any worsened max ratio or headroom;
//! * `qbss complexity record|compare|gate` — deterministic op-count
//!   curves: pinned scaling scenarios swept over n-grids, per-counter
//!   log-log exponent fits, and an exact gate that exits 3 on any
//!   increased count at any grid point;
//! * `qbss explain` — factor one cell's energy ratio into
//!   query × split × sched losses, print per-job decision rows with the
//!   blame job, optionally render an ALG-vs-OPT HTML timeline;
//! * `qbss prof record|diff|flame` — fold span traces or live seeded
//!   scenario runs into canonical call-path profiles
//!   (`a;b;c self_us count` lines), diff two folded profiles, render
//!   self-contained flamegraph HTML.
//!
//! Observability: `generate`/`run`/`compare`/`sweep` accept
//! `--trace FILE` (spans + events to a JSONL file) and honour the
//! `QBSS_LOG` environment filter (`level` or `target=level`,
//! comma-separated); a malformed spec is bad input (exit 2).
//!
//! Argument parsing is hand-rolled (`--key value` pairs) to keep the
//! workspace dependency-free; flags are uniform across subcommands
//! (`--alg`, `--alpha`, `--m`, `--seed`, `--format`). The pre-redesign
//! spellings (`--algorithm`, `--machines`) have been removed after
//! their deprecation period: they are rejected as unknown flags
//! (exit 2) like any other typo.
//!
//! Exit codes are part of the contract (scripts rely on them):
//! `0` success, `1` algorithm failure on valid input, `2` bad input
//! (flags or instance data), `3` file-system failure or a perf-gate
//! regression. A `qbss serve` process that receives SIGTERM or ctrl-c
//! drains in-flight requests and exits `0` — a signalled drain is a
//! clean shutdown, not a failure.

#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod commands;
mod loadgen;
mod serve;

use std::process::ExitCode;

use commands::CliError;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{}", commands::USAGE);
        return ExitCode::from(2);
    };
    let result = match cmd.as_str() {
        "generate" => commands::generate(rest),
        "run" => commands::run(rest),
        "stream" => commands::stream(rest),
        "compare" => commands::compare(rest),
        "sweep" => commands::sweep(rest),
        "serve" => commands::serve_cmd(rest),
        "loadgen" => commands::loadgen(rest),
        "bounds" => commands::bounds(rest),
        "rho" => commands::rho(rest),
        "trace" => commands::trace(rest),
        "perf" => commands::perf(rest),
        "quality" => commands::quality_cmd(rest),
        "complexity" => commands::complexity_cmd(rest),
        "explain" => commands::explain(rest),
        "prof" => commands::prof(rest),
        "version" | "--version" | "-V" => commands::version(),
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(CliError::Input(format!("unknown subcommand `{other}`\n{}", commands::USAGE))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
