//! `qbss serve` — a zero-dependency HTTP/1.1 observability and
//! evaluation plane over `std::net`, hardened against overload.
//!
//! The first long-lived process in the workspace: a hand-rolled server
//! with a bounded accept queue feeding a fixed scoped-thread worker
//! pool (the same `std::thread::scope` discipline the `par` fan-out
//! uses — no detached threads, the accept thread joins every worker
//! before returning). Endpoints:
//!
//! | endpoint | contract |
//! |----------|----------|
//! | `GET /metrics` | process registry in Prometheus text exposition format; read-only, byte-stable across scrapes of an idle registry |
//! | `GET /healthz` | liveness: build fingerprint (version + git describe), uptime, in-flight, served, queue depth, shed totals, admission budget |
//! | `GET /readyz` | readiness: `200` while accepting, `503` once draining |
//! | `GET /tracez` | most recent spans/events from the ring sink as HTML (`?format=jsonl` for the raw records; `?target=PREFIX` filters by dot-prefix, `?min_us=N` keeps spans at least that long) |
//! | `GET /profilez` | ring spans folded into a call-path profile, rendered as a flamegraph (`?format=folded` for raw `path self_us count` text, `?collapse=a,b` removes frames) |
//! | `POST /evaluate` | instance JSON in, evaluated outcome out (`?alg=`, `?alpha=`, `?m=`; `?explain=1` adds per-job decision attribution at 3× the admission cost) |
//! | `POST /sweep` | sweep-spec JSON in, deterministic aggregate out |
//! | `POST /session` | open a streaming session (`?alg=`, `?alpha=`); returns the session id |
//! | `POST /session/{id}/arrive` | one job object in, the arrival's speed delta out |
//! | `POST /session/{id}/advance` | move the session clock (`?t=`) with no arrival |
//! | `POST /session/{id}/finish` | run out the horizon, return the evaluated outcome, close the session |
//!
//! **Streaming sessions.** A session wraps the incremental
//! [`StreamSession`] engine (DESIGN.md §14): each `arrive`/`advance`
//! event is cost-accounted against the admission budget like any other
//! work request (cost 1 per event), and a session left idle past the
//! request deadline is reaped by the accept loop's tick — the same
//! machinery that reaps stale queue entries. A drain (SIGTERM/ctrl-c)
//! answers in-flight events, then discards open sessions with the
//! process.
//!
//! **Admission control.** Work requests carry an estimated cost — `1`
//! for `/evaluate` (one cell), `instances × algorithms × alphas` for
//! `/sweep` (the engine's cell count, computed from the parsed spec
//! before any work runs). A token-style budget ([`Admission`]) bounds
//! the total cost in flight: over budget, the request is *shed* with a
//! typed `429` carrying `Retry-After`, counted in `serve.shed`, and
//! surfaced by `/healthz` and `/metrics`. A lone oversized request on
//! an idle server is always admitted so a big sweep can never starve
//! forever — the budget bounds *concurrent* cost, exactly the paper's
//! mindset of committing to a budget before the adversary reveals the
//! load.
//!
//! **Deadlines.** Every socket carries read/write timeouts
//! (`--io-timeout-ms`); every request a wall-clock deadline
//! (`--request-timeout-ms`). A client trickling headers or body
//! (slowloris) is evicted with a typed `408` the moment either the
//! inactivity timeout or the deadline fires — a slow client can park a
//! worker for at most the request timeout. Connections that age out in
//! the accept queue are reaped with a typed `503` (by the accept loop's
//! tick and again at pop), and a handler that overruns the deadline has
//! its response converted to a typed `503` so callers never consume
//! stale results.
//!
//! **Probe endpoints never touch the metrics registry** — only the
//! work endpoints (`/evaluate`, `/sweep`, `/session*`) bump
//! `serve.requests`, the `serve.request.dur_us` histogram (plus its
//! per-endpoint `serve.request.dur_us.{evaluate,sweep,session}`
//! companions), and the shed/queue series, so two consecutive
//! `/metrics` scrapes of an otherwise idle server are byte-identical.
//! Probe traffic is tracked in plain process stats surfaced by
//! `/healthz`.
//!
//! Malformed requests map the typed error taxonomy onto status codes —
//! syntax errors (bad HTTP, bad JSON) are `400`, a POST without a
//! `Content-Length` is `411`, a body over the cap is `413` (rejected
//! before the body is read), well-formed input the model or algorithms
//! reject is `422`, handler panics are caught and answered `500` — the
//! process never dies on bad input.
//!
//! Shutdown: SIGTERM or ctrl-c flips one atomic flag; the accept loop
//! **closes the listener first** (no connection can slip in during the
//! drain window), then marks the server draining, queued and in-flight
//! requests drain, sinks flush, and the process exits 0 (the exit-code
//! contract treats a signalled drain as success).

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use qbss_bench::engine::run_sweep;
use qbss_bench::request::{RequestError, SweepRequest, EVALUATE_COST};
use qbss_bench::{BuildInfo, StreamSession};
use qbss_core::model::QJob;
use qbss_core::pipeline::{run_for_request, Algorithm};
use qbss_instances::io::{self, IoError};
use qbss_telemetry::profile::Profile;
use qbss_telemetry::{
    expo, json_escape, json_f64, target_matches, trace, JsonValue, RingSink, DURATION_US_BOUNDS,
};

/// Largest accepted request body (instances and sweep specs are small;
/// anything bigger is a client error, answered `413` before the body
/// is read).
const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;
/// Largest accepted header block.
const MAX_HEADER_BYTES: usize = 64 * 1024;

/// Set by the signal handler; checked by the accept loop each tick.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);
/// Process-unique request ids (`r-1`, `r-2`, …).
static REQUEST_SEQ: AtomicU64 = AtomicU64::new(0);

/// Requests a drain exactly like SIGTERM would (used by the in-process
/// server `qbss loadgen --spawn` drives).
pub(crate) fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Clears a previous drain request so an in-process server can start
/// fresh (the flag is process-global).
pub(crate) fn reset_shutdown() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}

/// Serve-mode configuration, parsed from flags by `commands::serve`.
pub struct ServeConfig {
    /// Worker threads handling requests.
    pub workers: usize,
    /// Requests at least this slow raise a `warn!` on `serve.slow`.
    pub slow_ms: u64,
    /// The ring sink backing `/tracez` (also the process telemetry
    /// sink, installed by the caller).
    pub ring: RingSink,
    /// Admission budget in cost units (cells) concurrently in flight;
    /// `0` disables admission control.
    pub budget: u64,
    /// Per-request wall-clock deadline: header/body reads abort, queue
    /// entries are reaped, and handler overruns answer `503` past it.
    pub request_timeout_ms: u64,
    /// Socket-level read/write inactivity timeout (slowloris eviction).
    pub io_timeout_ms: u64,
    /// Accept-loop poll tick (also the queue-reaping cadence).
    pub accept_tick_ms: u64,
}

impl ServeConfig {
    /// The defaults `qbss serve` runs with when no flags are given.
    pub fn new(ring: RingSink) -> Self {
        ServeConfig {
            workers: 4,
            slow_ms: 1_000,
            ring,
            budget: DEFAULT_BUDGET,
            request_timeout_ms: DEFAULT_REQUEST_TIMEOUT_MS,
            io_timeout_ms: DEFAULT_IO_TIMEOUT_MS,
            accept_tick_ms: DEFAULT_ACCEPT_TICK_MS,
        }
    }
}

/// Default admission budget: generous enough for the full default
/// sweep (`{}` → 100 instances × 9 configurations × 1 α = 900 cells)
/// with headroom for concurrent evaluates.
pub const DEFAULT_BUDGET: u64 = 10_000;
/// Default per-request wall-clock deadline (deliberately generous: a
/// full-grid sweep is tens of milliseconds).
pub const DEFAULT_REQUEST_TIMEOUT_MS: u64 = 30_000;
/// Default socket inactivity timeout.
pub const DEFAULT_IO_TIMEOUT_MS: u64 = 10_000;
/// Default accept-loop tick.
pub const DEFAULT_ACCEPT_TICK_MS: u64 = 25;

// ---------------------------------------------------------------------
// Signals
// ---------------------------------------------------------------------

#[cfg(unix)]
fn install_signal_handlers() {
    // std-only signal hookup: libc's `signal(2)` via a raw extern. The
    // handler only flips one atomic (async-signal-safe); all real work
    // happens on the accept thread's next poll tick.
    extern "C" fn on_signal(_sig: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {
    // No signal plumbing off unix; the server stops when killed.
}

// ---------------------------------------------------------------------
// Deadlines
// ---------------------------------------------------------------------

/// One request's time budget: an absolute wall-clock deadline plus the
/// socket inactivity timeout. Each blocking read runs under
/// `min(io_timeout, time left)`, so a slow client is evicted by
/// whichever fires first and can never hold a worker past the deadline.
#[derive(Clone, Copy)]
struct Deadline {
    at: Instant,
    io_timeout: Duration,
}

impl Deadline {
    fn new(request_timeout: Duration, io_timeout: Duration) -> Self {
        Deadline { at: Instant::now() + request_timeout, io_timeout }
    }

    fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// Timeout for the next blocking read: `None` once the deadline has
    /// passed (abort instead of reading).
    fn read_slice(&self) -> Option<Duration> {
        let left = self.at.checked_duration_since(Instant::now())?;
        if left.is_zero() {
            return None;
        }
        Some(left.min(self.io_timeout))
    }
}

// ---------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------

/// A token-style cost budget bounding the work concurrently in flight.
///
/// `try_admit(cost)` succeeds when the new total fits the budget — or
/// unconditionally when nothing is in flight, so one request costlier
/// than the whole budget still makes progress on an idle server
/// (admission bounds *concurrency*, it is not a hard per-request cap).
/// The returned [`Permit`] releases the cost on drop, panic-safe via
/// RAII: a panicking handler cannot leak budget.
struct Admission {
    /// Capacity in cost units; `0` = unlimited.
    budget: u64,
    in_flight_cost: AtomicU64,
    shed: AtomicU64,
    reaped: AtomicU64,
}

impl Admission {
    fn new(budget: u64) -> Self {
        Admission {
            budget,
            in_flight_cost: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            reaped: AtomicU64::new(0),
        }
    }

    fn try_admit(&self, cost: u64) -> Option<Permit<'_>> {
        if self.budget == 0 {
            return Some(Permit { admission: self, cost: 0 });
        }
        let mut cur = self.in_flight_cost.load(Ordering::Relaxed);
        loop {
            if cur != 0 && cur.saturating_add(cost) > self.budget {
                return None;
            }
            match self.in_flight_cost.compare_exchange_weak(
                cur,
                cur.saturating_add(cost),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(Permit { admission: self, cost }),
                Err(actual) => cur = actual,
            }
        }
    }

    fn in_flight_cost(&self) -> u64 {
        self.in_flight_cost.load(Ordering::Relaxed)
    }

    /// The `Retry-After` hint for a shed response: one second is a
    /// sensible floor given cells run in microseconds — by then the
    /// budget has almost certainly turned over.
    fn retry_after_s(&self) -> u64 {
        1
    }
}

/// RAII admission token; releases its cost on drop.
struct Permit<'a> {
    admission: &'a Admission,
    cost: u64,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.admission.in_flight_cost.fetch_sub(self.cost, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------
// Streaming sessions
// ---------------------------------------------------------------------

/// Most streaming sessions concurrently open; beyond this, opens are
/// shed with a typed `429` like any other overload.
const MAX_OPEN_SESSIONS: usize = 1024;

/// One open streaming session, stamped with its last event time so the
/// accept loop can reap sessions whose client went away.
struct SessionEntry {
    session: StreamSession,
    touched: Instant,
}

/// The live streaming sessions: id → engine state. Every operation runs
/// under one mutex — per-event work is incremental (that is the point
/// of the streaming engine), so the critical sections are short.
struct Sessions {
    inner: Mutex<SessionMap>,
    reaped: AtomicU64,
}

struct SessionMap {
    next_id: u64,
    open: HashMap<u64, SessionEntry>,
}

impl Sessions {
    fn new() -> Self {
        Sessions {
            inner: Mutex::new(SessionMap { next_id: 0, open: HashMap::new() }),
            reaped: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SessionMap> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Opens a session; `None` when the open-session cap is hit.
    fn open(&self, session: StreamSession) -> Option<u64> {
        let mut map = self.lock();
        if map.open.len() >= MAX_OPEN_SESSIONS {
            return None;
        }
        map.next_id += 1;
        let id = map.next_id;
        map.open.insert(id, SessionEntry { session, touched: Instant::now() });
        Some(id)
    }

    /// Runs `f` on an open session and re-stamps its last touch.
    fn with<T>(&self, id: u64, f: impl FnOnce(&mut StreamSession) -> T) -> Option<T> {
        let mut map = self.lock();
        let entry = map.open.get_mut(&id)?;
        entry.touched = Instant::now();
        Some(f(&mut entry.session))
    }

    /// Removes a session (for `finish`, which consumes the engine).
    fn take(&self, id: u64) -> Option<StreamSession> {
        self.lock().open.remove(&id).map(|e| e.session)
    }

    /// Drops every session idle longer than `max_idle` and returns how
    /// many were reaped (the accept loop's tick calls this with the
    /// request deadline, the same age bound queued connections get).
    fn reap(&self, max_idle: Duration) -> usize {
        let mut map = self.lock();
        let before = map.open.len();
        map.open.retain(|_, e| e.touched.elapsed() <= max_idle);
        let reaped = before - map.open.len();
        if reaped > 0 {
            self.reaped.fetch_add(reaped as u64, Ordering::Relaxed);
        }
        reaped
    }

    fn open_count(&self) -> usize {
        self.lock().open.len()
    }
}

// ---------------------------------------------------------------------
// Server stats (deliberately *not* registry metrics: probe endpoints
// must leave /metrics byte-stable)
// ---------------------------------------------------------------------

struct ServerStats {
    started: Instant,
    in_flight: AtomicU64,
    served: AtomicU64,
    draining: AtomicBool,
}

impl ServerStats {
    fn new() -> Self {
        ServerStats {
            started: Instant::now(),
            in_flight: AtomicU64::new(0),
            served: AtomicU64::new(0),
            draining: AtomicBool::new(false),
        }
    }
}

// ---------------------------------------------------------------------
// Bounded connection queue
// ---------------------------------------------------------------------

/// A queued connection stamped with its accept time, so stale entries
/// can be reaped instead of served long after the client gave up.
struct QueueItem {
    stream: TcpStream,
    queued_at: Instant,
}

struct Queue {
    inner: Mutex<QueueState>,
    ready: Condvar,
    capacity: usize,
}

struct QueueState {
    items: VecDeque<QueueItem>,
    closed: bool,
}

impl Queue {
    fn new(capacity: usize) -> Self {
        Queue {
            inner: Mutex::new(QueueState { items: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueues a connection, or hands it back when the queue is full
    /// (the accept loop then answers `503` without blocking).
    fn push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut state = self.lock();
        if state.items.len() >= self.capacity {
            return Err(stream);
        }
        state.items.push_back(QueueItem { stream, queued_at: Instant::now() });
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next connection; `None` once closed **and**
    /// drained, so workers finish everything accepted before shutdown.
    fn pop(&self) -> Option<QueueItem> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Removes every entry older than `max_age` (front-of-queue first —
    /// the queue is FIFO, so age decreases back-to-front) and returns
    /// the reaped connections for a `503` answer.
    fn reap(&self, max_age: Duration) -> Vec<TcpStream> {
        let mut state = self.lock();
        let mut reaped = Vec::new();
        while let Some(front) = state.items.front() {
            if front.queued_at.elapsed() <= max_age {
                break;
            }
            if let Some(item) = state.items.pop_front() {
                reaped.push(item.stream);
            }
        }
        reaped
    }

    fn depth(&self) -> usize {
        self.lock().items.len()
    }

    fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }
}

// ---------------------------------------------------------------------
// HTTP plumbing
// ---------------------------------------------------------------------

struct HttpRequest {
    method: String,
    path: String,
    query: String,
    body: Vec<u8>,
}

#[derive(Debug)]
struct Response {
    status: u16,
    content_type: &'static str,
    body: String,
    /// Extra header lines (`Retry-After: 1`), CRLF-joined by the writer.
    extra_headers: Vec<String>,
}

impl Response {
    fn json(status: u16, body: String) -> Response {
        Response { status, content_type: "application/json", body, extra_headers: Vec::new() }
    }

    fn error(status: u16, kind: &str, message: &str) -> Response {
        Response::json(
            status,
            format!(
                "{{\"error\": {{\"kind\": \"{}\", \"message\": \"{}\"}}}}",
                json_escape(kind),
                json_escape(message)
            ),
        )
    }

    /// The typed load-shed rejection: `429` with a `Retry-After` hint.
    fn shed(retry_after_s: u64, message: &str) -> Response {
        let mut resp = Response::error(429, "overloaded", message);
        resp.extra_headers.push(format!("Retry-After: {retry_after_s}"));
        resp
    }
}

fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

fn write_response(stream: &mut TcpStream, resp: &Response) {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        resp.status,
        status_reason(resp.status),
        resp.content_type,
        resp.body.len()
    );
    for line in &resp.extra_headers {
        head.push_str(line);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    // A peer that hung up mid-response is its own problem; the worker
    // moves on either way (the write timeout bounds a stalled peer).
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(resp.body.as_bytes());
    let _ = stream.flush();
}

/// The parsed request head: everything the body-read contract needs.
#[derive(Debug)]
struct Head {
    method: String,
    target: String,
    /// `Content-Length` when present and well-formed.
    content_length: Option<usize>,
}

/// Parses the header block (request line + headers). `Err` carries the
/// ready-to-send `400`.
fn parse_head(head: &str) -> Result<Head, Response> {
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_ascii_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(Response::error(400, "bad_request", "malformed request line"));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(Response::error(400, "bad_request", "unsupported HTTP version"));
    }
    let mut content_length: Option<usize> = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = Some(value.trim().parse().map_err(|_| {
                    Response::error(400, "bad_request", "malformed Content-Length")
                })?);
            }
        }
    }
    Ok(Head {
        method: method.to_string(),
        target: target.to_string(),
        content_length,
    })
}

/// The body contract, decided **before any body byte is read**: a POST
/// must declare its length (`411`), a declared length over the cap is
/// `413` (typed, distinct from the `400` syntax class), and bodyless
/// methods read zero bytes.
fn body_contract(method: &str, content_length: Option<usize>) -> Result<usize, Response> {
    match content_length {
        Some(n) if n > MAX_BODY_BYTES => Err(Response::error(
            413,
            "payload_too_large",
            &format!("request body of {n} bytes exceeds the {MAX_BODY_BYTES}-byte cap"),
        )),
        Some(n) => Ok(n),
        None if method == "POST" => Err(Response::error(
            411,
            "length_required",
            "POST requests must carry a Content-Length header",
        )),
        None => Ok(0),
    }
}

/// Whether a socket read error is an inactivity timeout (both spellings
/// appear across platforms for `SO_RCVTIMEO`).
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

fn timeout_response(what: &str) -> Response {
    Response::error(408, "timeout", &format!("client exceeded the {what} deadline"))
}

/// Reads and parses one request under `deadline`. `Err` carries the
/// ready-to-send rejection (`400`/`408`/`411`/`413`).
fn read_request(stream: &mut TcpStream, deadline: &Deadline) -> Result<HttpRequest, Response> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEADER_BYTES {
            return Err(Response::error(400, "bad_request", "header block too large"));
        }
        let Some(slice) = deadline.read_slice() else {
            return Err(timeout_response("header read"));
        };
        let _ = stream.set_read_timeout(Some(slice));
        match stream.read(&mut chunk) {
            Ok(0) => return Err(Response::error(400, "bad_request", "truncated request")),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if is_timeout(&e) => return Err(timeout_response("header read")),
            Err(e) => {
                return Err(Response::error(400, "bad_request", &format!("read failed: {e}")))
            }
        }
    };
    let head_text = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    let head = parse_head(&head_text)?;
    let content_length = body_contract(&head.method, head.content_length)?;
    let mut body: Vec<u8> = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        let Some(slice) = deadline.read_slice() else {
            return Err(timeout_response("body read"));
        };
        let _ = stream.set_read_timeout(Some(slice));
        match stream.read(&mut chunk) {
            Ok(0) => return Err(Response::error(400, "bad_request", "truncated body")),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) if is_timeout(&e) => return Err(timeout_response("body read")),
            Err(e) => {
                return Err(Response::error(400, "bad_request", &format!("read failed: {e}")))
            }
        }
    }
    body.truncate(content_length);
    let (path, query) = match head.target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (head.target.clone(), String::new()),
    };
    Ok(HttpRequest { method: head.method, path, query, body })
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// First value of `key` in a query string (no percent-decoding: every
/// accepted value is a plain token like `avrq-m:4` or `2.5`).
fn query_get<'a>(query: &'a str, key: &str) -> Option<&'a str> {
    query
        .split('&')
        .filter_map(|pair| pair.split_once('='))
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v)
}

// ---------------------------------------------------------------------
// Endpoints
// ---------------------------------------------------------------------

fn index() -> Response {
    Response {
        status: 200,
        content_type: "text/plain; charset=utf-8",
        body: "qbss serve\n\n\
               GET  /metrics    Prometheus text exposition of the process registry\n\
               GET  /healthz    liveness (build, uptime, in-flight, served, queue, shed, budget)\n\
               GET  /readyz     readiness (503 once draining)\n\
               GET  /tracez     recent spans/events as HTML (?format=jsonl for raw;\n                 \
               ?target=PREFIX and ?min_us=N filter)\n\
               GET  /profilez   ring spans folded into a flamegraph (?format=folded,\n                 \
               ?collapse=a,b)\n\
               POST /evaluate   instance JSON -> evaluated outcome (?alg=&alpha=&m=;\n                 \
               ?explain=1 adds per-job decision attribution)\n\
               POST /sweep      sweep spec JSON -> deterministic aggregate\n\
               POST /session    open a streaming session (?alg=&alpha=) -> id\n\
               POST /session/{id}/arrive   job JSON -> the arrival's speed delta\n\
               POST /session/{id}/advance  move the session clock (?t=)\n\
               POST /session/{id}/finish   evaluated outcome; closes the session\n"
            .to_string(),
        extra_headers: Vec::new(),
    }
}

fn metrics_endpoint() -> Response {
    Response {
        status: 200,
        content_type: "text/plain; version=0.0.4; charset=utf-8",
        body: expo::render_prometheus(qbss_telemetry::metrics()),
        extra_headers: Vec::new(),
    }
}

/// The build fingerprint, captured once per process (the `git
/// describe` subprocess must not run per probe).
fn build_info() -> &'static BuildInfo {
    static BUILD: std::sync::OnceLock<BuildInfo> = std::sync::OnceLock::new();
    BUILD.get_or_init(BuildInfo::capture)
}

fn health_body(ctx: &ServerCtx<'_>) -> String {
    let stats = ctx.stats;
    let build = build_info();
    format!(
        "{{\"status\": \"{}\", \
         \"build\": {{\"version\": \"{}\", \"git\": \"{}\"}}, \
         \"uptime_s\": {}, \"in_flight\": {}, \"served\": {}, \
         \"queue_depth\": {}, \"shed\": {}, \"reaped\": {}, \
         \"sessions\": {{\"open\": {}, \"reaped\": {}}}, \
         \"budget\": {{\"capacity\": {}, \"in_flight_cost\": {}}}}}",
        if stats.draining.load(Ordering::Relaxed) { "draining" } else { "ok" },
        json_escape(&build.version),
        json_escape(&build.git),
        json_f64(stats.started.elapsed().as_secs_f64()),
        stats.in_flight.load(Ordering::Relaxed),
        stats.served.load(Ordering::Relaxed),
        ctx.queue.depth(),
        ctx.admission.shed.load(Ordering::Relaxed),
        ctx.admission.reaped.load(Ordering::Relaxed),
        ctx.sessions.open_count(),
        ctx.sessions.reaped.load(Ordering::Relaxed),
        ctx.admission.budget,
        ctx.admission.in_flight_cost(),
    )
}

fn healthz(ctx: &ServerCtx<'_>) -> Response {
    Response::json(200, health_body(ctx))
}

fn readyz(ctx: &ServerCtx<'_>) -> Response {
    let status = if ctx.stats.draining.load(Ordering::Relaxed) { 503 } else { 200 };
    Response::json(status, health_body(ctx))
}

/// Whether one `/tracez` record passes the `?target=` / `?min_us=`
/// filters. Spans filter on their dot-scoped name (the same
/// longest-dot-prefix grammar as `QBSS_LOG`) and their duration;
/// events filter on their target but carry no duration, so a `min_us`
/// bound drops them; metrics snapshots always pass — they are registry
/// state, not timed work.
fn tracez_keep(rec: &trace::TraceRecord, target: Option<&str>, min_us: Option<u64>) -> bool {
    match rec {
        trace::TraceRecord::Span(s) => {
            target.is_none_or(|p| target_matches(&s.name, p))
                && min_us.is_none_or(|m| s.dur_us >= m)
        }
        trace::TraceRecord::Event(e) => {
            target.is_none_or(|p| target_matches(&e.target, p)) && min_us.is_none()
        }
        trace::TraceRecord::Metrics(_) => true,
    }
}

fn tracez(query: &str, ring: &RingSink) -> Response {
    let target = query_get(query, "target");
    let min_us = match query_get(query, "min_us") {
        None => None,
        Some(raw) => match raw.parse::<u64>() {
            Ok(v) => Some(v),
            Err(_) => {
                return Response::error(
                    400,
                    "bad_request",
                    "min_us must be a non-negative integer",
                );
            }
        },
    };
    let contents = ring.contents();
    if query_get(query, "format") == Some("jsonl") {
        // Filter line by line but emit the original bytes, so piped
        // output stays byte-faithful to what the ring holds.
        let body = if target.is_none() && min_us.is_none() {
            contents
        } else {
            let mut kept = String::new();
            for line in contents.lines() {
                match trace::parse_trace(line) {
                    Ok(records) if records.iter().all(|r| tracez_keep(r, target, min_us)) => {
                        kept.push_str(line);
                        kept.push('\n');
                    }
                    Ok(_) => {}
                    Err(e) => {
                        return Response::error(
                            500,
                            "internal",
                            &format!("ring holds an invalid record: {e}"),
                        );
                    }
                }
            }
            kept
        };
        return Response {
            status: 200,
            content_type: "application/x-ndjson",
            body,
            extra_headers: Vec::new(),
        };
    }
    match trace::parse_trace(&contents) {
        Ok(records) => {
            let kept: Vec<trace::TraceRecord> =
                records.into_iter().filter(|r| tracez_keep(r, target, min_us)).collect();
            Response {
                status: 200,
                content_type: "text/html; charset=utf-8",
                body: trace::render_html(&kept),
                extra_headers: Vec::new(),
            }
        }
        Err(e) => Response::error(500, "internal", &format!("ring holds an invalid record: {e}")),
    }
}

/// `GET /profilez`: folds the span records currently in the ring into
/// a call-path profile rendered as a self-contained flamegraph.
/// `?format=folded` returns the raw `path self_us count` text instead;
/// `?collapse=a,b` removes the named frames (their self time accrues
/// to the surviving parent — `?collapse=par.shard` makes output
/// shard-count independent). Fed from the [`RingSink`] only, never the
/// metrics registry, so scraping it leaves `/metrics` byte-stable.
fn profilez(query: &str, ring: &RingSink) -> Response {
    let records = match trace::parse_trace(&ring.contents()) {
        Ok(r) => r,
        Err(e) => {
            return Response::error(500, "internal", &format!("ring holds an invalid record: {e}"));
        }
    };
    let mut profile = Profile::from_records(&records);
    if let Some(list) = query_get(query, "collapse") {
        let frames: Vec<&str> = list.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
        profile = profile.collapse(&frames);
    }
    match query_get(query, "format") {
        None => Response {
            status: 200,
            content_type: "text/html; charset=utf-8",
            body: profile.render_flamegraph_html("qbss /profilez"),
            extra_headers: Vec::new(),
        },
        Some("folded") => Response {
            status: 200,
            content_type: "text/plain; charset=utf-8",
            body: profile.fold(),
            extra_headers: Vec::new(),
        },
        Some(other) => Response::error(
            400,
            "bad_request",
            &format!("unknown format `{other}` (expected folded)"),
        ),
    }
}

fn evaluate(req: &HttpRequest, request_id: &str, ctx: &ServerCtx<'_>) -> Response {
    let alg_name = query_get(&req.query, "alg").unwrap_or("avrq");
    let alg: Algorithm = match alg_name.parse() {
        Ok(a) => a,
        Err(e) => return Response::error(400, "bad_request", &format!("alg: {e}")),
    };
    let alg = match query_get(&req.query, "m") {
        None => alg,
        Some(raw) => match raw.parse::<usize>() {
            Ok(m) if m >= 1 => alg.with_machines(m),
            _ => return Response::error(400, "bad_request", "m must be an integer >= 1"),
        },
    };
    let alpha: f64 = match query_get(&req.query, "alpha") {
        None => 3.0,
        Some(raw) => match raw.parse() {
            Ok(a) => a,
            Err(_) => return Response::error(400, "bad_request", "alpha: not a number"),
        },
    };
    // `?explain=1` adds per-job decision attribution to the response.
    // Attribution needs the single-machine YDS ladder, so the
    // combination with a multi-machine `alg` is rejected up front —
    // before admission, like every other flag error.
    let explain = match query_get(&req.query, "explain") {
        None | Some("0") => false,
        Some("1") => true,
        Some(other) => {
            return Response::error(
                400,
                "bad_request",
                &format!("explain must be 0 or 1, got `{other}`"),
            );
        }
    };
    if explain && alg.machines() > 1 {
        return Response::error(
            400,
            "bad_request",
            "explain requires a single-machine algorithm (multi-machine baselines are lower \
             bounds, not optima)",
        );
    }
    let Ok(body) = std::str::from_utf8(&req.body) else {
        return Response::error(400, "bad_request", "body is not UTF-8");
    };
    // The PR-1 error taxonomy drives the status split: text that is not
    // an instance at all is the client's syntax problem (400); a
    // well-formed instance the model or an algorithm rejects is
    // semantically unprocessable (422) — and never a panic.
    let inst = match io::from_json(body) {
        Ok(inst) => inst,
        Err(e @ IoError::Model { .. }) => {
            return Response::error(422, "model", &e.to_string());
        }
        Err(e) => return Response::error(400, "syntax", &e.to_string()),
    };
    // One instance, one cell: O(1) admission cost regardless of body
    // size (the size caps bound the parse itself). Attribution runs two
    // extra YDS optimizations (realized + oracle-split twins), so an
    // explained evaluate costs three cells against the same budget.
    let cost = if explain { 3 * EVALUATE_COST } else { EVALUATE_COST };
    let Some(_permit) = ctx.admission.try_admit(cost) else {
        return shed_response(ctx, cost);
    };
    match run_for_request(request_id, qbss_telemetry::current_span_id(), &inst, alpha, alg) {
        Ok(ev) => {
            let attribution = if explain {
                match qbss_core::attribute(&inst, alpha, alg, &ev) {
                    Ok(att) => att.to_json(),
                    Err(e) => return Response::error(422, "attribution", &e.to_string()),
                }
            } else {
                "null".to_string()
            };
            Response::json(
                200,
                format!(
                    "{{\"request_id\": \"{}\", \"algorithm\": \"{}\", \"alpha\": {}, \
                     \"energy\": {}, \"max_speed\": {}, \"attribution\": {attribution}, \
                     \"outcome\": {}}}",
                    json_escape(request_id),
                    alg,
                    json_f64(alpha),
                    json_f64(ev.energy),
                    json_f64(ev.max_speed),
                    io::outcome_to_json(&ev.outcome)
                ),
            )
        }
        Err(e) => Response::error(422, "algorithm", &e.to_string()),
    }
}

fn sweep(req: &HttpRequest, ctx: &ServerCtx<'_>) -> Response {
    let Ok(body) = std::str::from_utf8(&req.body) else {
        return Response::error(400, "bad_request", "body is not UTF-8");
    };
    let parsed = match SweepRequest::from_json(body) {
        Ok(p) => p,
        Err(RequestError::Syntax(msg)) => return Response::error(400, "syntax", &msg),
        Err(RequestError::Spec(msg)) => return Response::error(422, "spec", &msg),
    };
    // Cost is known from the parsed spec before any cell runs:
    // instances × algorithms × alphas.
    let cost = parsed.cost();
    let Some(_permit) = ctx.admission.try_admit(cost) else {
        return shed_response(ctx, cost);
    };
    match run_sweep(&parsed.spec, parsed.shards) {
        Ok(report) => Response::json(200, report.aggregate_json()),
        Err(e) => Response::error(422, "spec", &e.to_string()),
    }
}

/// The admission cost of one streaming event (`arrive`/`advance`):
/// incremental work on one job, the same order as one `/evaluate` cell.
const SESSION_EVENT_COST: u64 = 1;

/// Parses one arriving job from a request body: a bare job object with
/// the same field names instance documents use. Values are *not*
/// model-validated here — the streaming engine rejects malformed jobs
/// with typed errors (422).
fn job_from_json(body: &[u8]) -> Result<QJob, Response> {
    let Ok(text) = std::str::from_utf8(body) else {
        return Err(Response::error(400, "bad_request", "body is not UTF-8"));
    };
    let v = qbss_telemetry::json_parse(text)
        .map_err(|e| Response::error(400, "syntax", &format!("not a JSON job object: {e}")))?;
    let id = v
        .get("id")
        .and_then(JsonValue::as_u64)
        .filter(|&id| id <= u64::from(u32::MAX))
        .ok_or_else(|| Response::error(400, "syntax", "job object needs an integer `id`"))?;
    let num = |name: &str| {
        v.get(name).and_then(JsonValue::as_f64).ok_or_else(|| {
            Response::error(400, "syntax", &format!("job object needs a number field `{name}`"))
        })
    };
    Ok(QJob::new_unchecked(
        id as u32,
        num("release")?,
        num("deadline")?,
        num("query_load")?,
        num("upper_bound")?,
        num("exact")?,
    ))
}

/// `POST /session` — opens a streaming session (`?alg=`, `?alpha=`).
fn session_open(req: &HttpRequest, ctx: &ServerCtx<'_>) -> Response {
    let alg_name = query_get(&req.query, "alg").unwrap_or("avrq");
    let alg: Algorithm = match alg_name.parse() {
        Ok(a) => a,
        Err(e) => return Response::error(400, "bad_request", &format!("alg: {e}")),
    };
    let alpha: f64 = match query_get(&req.query, "alpha") {
        None => 3.0,
        Some(raw) => match raw.parse() {
            Ok(a) => a,
            Err(_) => return Response::error(400, "bad_request", "alpha: not a number"),
        },
    };
    // Bad α and batch-only algorithms carry the pipeline's typed errors:
    // well-formed input the model rejects is 422, like `/evaluate`.
    let session = match StreamSession::new(alg, alpha) {
        Ok(s) => s,
        Err(e) => return Response::error(422, "algorithm", &e.to_string()),
    };
    let Some(id) = ctx.sessions.open(session) else {
        return Response::shed(
            ctx.admission.retry_after_s(),
            &format!("all {MAX_OPEN_SESSIONS} session slots are open"),
        );
    };
    qbss_telemetry::counter!("serve.session.opened").inc();
    Response::json(
        200,
        format!("{{\"session\": {id}, \"algorithm\": \"{alg}\", \"alpha\": {}}}", json_f64(alpha)),
    )
}

/// The live-state body every successful session event answers with.
fn session_event_body(id: u64, session: &StreamSession) -> String {
    format!(
        "{{\"session\": {id}, \"t\": {}, \"speed\": {}, \"events\": {}, \"jobs\": {}}}",
        json_f64(session.now()),
        json_f64(session.speed()),
        session.events(),
        session.jobs()
    )
}

/// `POST /session/{id}/arrive|advance|finish` — one streaming event,
/// cost-accounted against the admission budget.
fn session_event(req: &HttpRequest, id: u64, action: &str, ctx: &ServerCtx<'_>) -> Response {
    let Some(_permit) = ctx.admission.try_admit(SESSION_EVENT_COST) else {
        return shed_response(ctx, SESSION_EVENT_COST);
    };
    qbss_telemetry::counter!("serve.session.events").inc();
    let gone = || {
        Response::error(
            404,
            "not_found",
            &format!("no open session {id} (finished, reaped as idle, or never opened)"),
        )
    };
    match action {
        "arrive" => {
            let job = match job_from_json(&req.body) {
                Ok(job) => job,
                Err(reject) => return reject,
            };
            // A rejected event (malformed job, out-of-order arrival,
            // duplicate id) leaves the session open and unchanged.
            match ctx.sessions.with(id, |s| {
                s.arrive(job).map(|delta| {
                    format!(
                        "{{\"session\": {id}, \"t\": {}, \"speed_before\": {}, \
                         \"speed_after\": {}, \"events\": {}, \"jobs\": {}}}",
                        json_f64(delta.at),
                        json_f64(delta.before),
                        json_f64(delta.after),
                        s.events(),
                        s.jobs()
                    )
                })
            }) {
                None => gone(),
                Some(Ok(body)) => Response::json(200, body),
                Some(Err(e)) => Response::error(422, "stream", &e.to_string()),
            }
        }
        "advance" => {
            let t: f64 = match query_get(&req.query, "t").map(str::parse) {
                Some(Ok(t)) => t,
                _ => return Response::error(400, "bad_request", "advance needs ?t=<number>"),
            };
            match ctx.sessions.with(id, |s| s.advance_to(t).map(|()| session_event_body(id, s))) {
                None => gone(),
                Some(Ok(body)) => Response::json(200, body),
                Some(Err(e)) => Response::error(422, "stream", &e.to_string()),
            }
        }
        "finish" => {
            // Finishing consumes the engine either way: a session whose
            // outcome fails evaluation is closed, not retryable.
            let Some(session) = ctx.sessions.take(id) else {
                return gone();
            };
            let alpha = session.alpha();
            qbss_telemetry::counter!("serve.session.finished").inc();
            match session.finish() {
                Ok(ev) => Response::json(
                    200,
                    format!(
                        "{{\"session\": {id}, \"algorithm\": \"{}\", \"alpha\": {}, \
                         \"energy\": {}, \"max_speed\": {}, \"outcome\": {}}}",
                        json_escape(&ev.outcome.algorithm),
                        json_f64(alpha),
                        json_f64(ev.energy),
                        json_f64(ev.max_speed),
                        io::outcome_to_json(&ev.outcome)
                    ),
                ),
                Err(e) => Response::error(422, "algorithm", &e.to_string()),
            }
        }
        other => Response::error(
            404,
            "not_found",
            &format!("no such session action `{other}` (arrive|advance|finish)"),
        ),
    }
}

/// Routes `/session` and `/session/{id}/{action}`.
fn session_endpoint(req: &HttpRequest, ctx: &ServerCtx<'_>) -> Response {
    let rest = req.path.trim_start_matches("/session");
    if rest.is_empty() {
        return session_open(req, ctx);
    }
    let mut parts = rest.trim_start_matches('/').splitn(2, '/');
    let (Some(id_text), Some(action)) = (parts.next(), parts.next()) else {
        return Response::error(
            404,
            "not_found",
            "session endpoints: POST /session, POST /session/{id}/arrive|advance|finish",
        );
    };
    let Ok(id) = id_text.parse::<u64>() else {
        return Response::error(404, "not_found", &format!("session ids are integers: `{id_text}`"));
    };
    session_event(req, id, action, ctx)
}

/// Builds the typed `429`, counts the shed in both the process stats
/// (`/healthz`) and the metrics registry (`serve.shed` — this is work
/// traffic, so registry writes are in-contract).
fn shed_response(ctx: &ServerCtx<'_>, cost: u64) -> Response {
    ctx.admission.shed.fetch_add(1, Ordering::Relaxed);
    qbss_telemetry::counter!("serve.shed").inc();
    qbss_telemetry::warn!(
        "serve.shed",
        { cost = cost, in_flight_cost = ctx.admission.in_flight_cost() },
        "shedding request of cost {} ({} of {} budget in flight)",
        cost,
        ctx.admission.in_flight_cost(),
        ctx.admission.budget
    );
    Response::shed(
        ctx.admission.retry_after_s(),
        &format!(
            "admission budget exhausted ({} of {} cost units in flight; this request needs {})",
            ctx.admission.in_flight_cost(),
            ctx.admission.budget,
            cost
        ),
    )
}

fn route(req: &HttpRequest, request_id: &str, ctx: &ServerCtx<'_>) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/") => index(),
        ("GET", "/metrics") => metrics_endpoint(),
        ("GET", "/healthz") => healthz(ctx),
        ("GET", "/readyz") => readyz(ctx),
        ("GET", "/tracez") => tracez(&req.query, &ctx.cfg.ring),
        ("GET", "/profilez") => profilez(&req.query, &ctx.cfg.ring),
        ("POST", p) if p == "/evaluate" || p == "/sweep" || p == "/session" || p.starts_with("/session/") => {
            // Work endpoints are the only registry writers, so idle
            // /metrics scrapes stay byte-stable.
            let started = Instant::now();
            let (endpoint, resp) = if req.path == "/evaluate" {
                ("evaluate", evaluate(req, request_id, ctx))
            } else if req.path == "/sweep" {
                ("sweep", sweep(req, ctx))
            } else {
                ("session", session_endpoint(req, ctx))
            };
            let dur_us = started.elapsed().as_micros() as f64;
            qbss_telemetry::counter!("serve.requests").inc();
            let metrics = qbss_telemetry::metrics();
            metrics.histogram("serve.request.dur_us", &DURATION_US_BOUNDS).record(dur_us);
            // The per-endpoint companion lets `/metrics` separate
            // /evaluate, /sweep and /session/* latency.
            metrics
                .histogram(&format!("serve.request.dur_us.{endpoint}"), &DURATION_US_BOUNDS)
                .record(dur_us);
            qbss_telemetry::gauge!("serve.queue.depth").set(ctx.queue.depth() as f64);
            qbss_telemetry::gauge!("serve.admission.in_flight_cost")
                .set(ctx.admission.in_flight_cost() as f64);
            resp
        }
        (
            _,
            "/" | "/metrics" | "/healthz" | "/readyz" | "/tracez" | "/profilez" | "/evaluate"
            | "/sweep",
        ) => Response::error(405, "method_not_allowed", "wrong method for this endpoint"),
        (_, p) if p == "/session" || p.starts_with("/session/") => {
            Response::error(405, "method_not_allowed", "session endpoints are POST-only")
        }
        (_, path) => Response::error(404, "not_found", &format!("no such endpoint: {path}")),
    }
}

// ---------------------------------------------------------------------
// Connection handling
// ---------------------------------------------------------------------

/// Everything a worker needs to answer one connection.
struct ServerCtx<'a> {
    stats: &'a ServerStats,
    cfg: &'a ServeConfig,
    admission: &'a Admission,
    queue: &'a Queue,
    sessions: &'a Sessions,
}

impl ServerCtx<'_> {
    fn request_timeout(&self) -> Duration {
        Duration::from_millis(self.cfg.request_timeout_ms.max(1))
    }

    fn io_timeout(&self) -> Duration {
        Duration::from_millis(self.cfg.io_timeout_ms.max(1))
    }
}

/// Answers a connection reaped from the queue (aged past the request
/// deadline before any worker could pick it up).
fn reap_connection(mut stream: TcpStream, ctx: &ServerCtx<'_>) {
    ctx.admission.reaped.fetch_add(1, Ordering::Relaxed);
    qbss_telemetry::counter!("serve.queue.reaped").inc();
    let _ = stream.set_write_timeout(Some(ctx.io_timeout()));
    write_response(
        &mut stream,
        &Response::error(
            503,
            "queue_timeout",
            "connection waited in the accept queue past the request deadline",
        ),
    );
}

fn handle_connection(mut stream: TcpStream, ctx: &ServerCtx<'_>) {
    let deadline = Deadline::new(ctx.request_timeout(), ctx.io_timeout());
    let _ = stream.set_write_timeout(Some(ctx.io_timeout()));
    let req = match read_request(&mut stream, &deadline) {
        Ok(req) => req,
        Err(reject) => {
            write_response(&mut stream, &reject);
            return;
        }
    };
    let request_id = format!("r-{}", REQUEST_SEQ.fetch_add(1, Ordering::Relaxed) + 1);
    let started = Instant::now();
    let mut span = qbss_telemetry::span!("serve.request", {
        request = request_id.clone(),
        method = req.method.clone(),
        path = req.path.clone(),
    });
    // A panicking handler answers 500 and the worker lives on — the
    // no-panic guarantee of the pipeline, extended to the serving edge.
    let resp = catch_unwind(AssertUnwindSafe(|| route(&req, &request_id, ctx)))
        .unwrap_or_else(|_| {
            qbss_telemetry::error!(
                "serve.request",
                { request = request_id.clone() },
                "handler panicked on {} {}",
                req.method,
                req.path
            );
            Response::error(500, "internal", "handler panicked; see server trace")
        });
    // A handler that overran the wall-clock deadline answers a typed
    // 503 instead of a stale result: the client has long since timed
    // out, and callers must never mistake an overrun for fresh data.
    let resp = if deadline.expired() && resp.status == 200 {
        qbss_telemetry::counter!("serve.deadline.overrun").inc();
        Response::error(
            503,
            "deadline_exceeded",
            &format!("handler overran the {} ms request deadline", ctx.cfg.request_timeout_ms),
        )
    } else {
        resp
    };
    span.record("status", u64::from(resp.status));
    drop(span);
    let elapsed = started.elapsed();
    if elapsed.as_millis() >= u128::from(ctx.cfg.slow_ms) {
        qbss_telemetry::warn!(
            "serve.slow",
            {
                request = request_id.clone(),
                path = req.path.clone(),
                ms = elapsed.as_millis() as u64,
            },
            "slow request {} {} took {} ms",
            req.method,
            req.path,
            elapsed.as_millis()
        );
    }
    write_response(&mut stream, &resp);
}

/// The accept loop. Owns the listener and **drops it before
/// returning**, so by the time the server is marked draining no new
/// connection can be accepted — probes during drain see `503` on
/// `/readyz` and connection-refused on fresh connects, never a
/// half-open window.
fn accept_loop(listener: TcpListener, ctx: &ServerCtx<'_>) {
    let tick = Duration::from_millis(ctx.cfg.accept_tick_ms.max(1));
    loop {
        if SHUTDOWN.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if let Err(mut rejected) = ctx.queue.push(stream) {
                    ctx.admission.shed.fetch_add(1, Ordering::Relaxed);
                    qbss_telemetry::counter!("serve.shed").inc();
                    let _ = rejected.set_write_timeout(Some(ctx.io_timeout()));
                    write_response(
                        &mut rejected,
                        &Response::shed(ctx.admission.retry_after_s(), "accept queue is full"),
                    );
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                // Idle tick: reap queue entries that aged out before a
                // worker could take them, and streaming sessions whose
                // client stopped sending events.
                for victim in ctx.queue.reap(ctx.request_timeout()) {
                    reap_connection(victim, ctx);
                }
                let reaped = ctx.sessions.reap(ctx.request_timeout());
                if reaped > 0 {
                    qbss_telemetry::counter!("serve.session.reaped").add(reaped as u64);
                    qbss_telemetry::warn!(
                        "serve.session",
                        { reaped = reaped as u64 },
                        "reaped {} idle streaming session(s)",
                        reaped
                    );
                }
                std::thread::sleep(tick);
            }
            Err(e) => {
                qbss_telemetry::warn!("serve", "accept failed: {e}");
                std::thread::sleep(tick);
            }
        }
    }
    // Close the listener *first*: draining must not race a final
    // accept tick that lets one more connection in.
    drop(listener);
}

/// Runs the server on an already-bound listener until SIGTERM/ctrl-c,
/// then drains and returns. `Ok` means a clean drain (exit 0); `Err`
/// carries an I/O-level failure message.
pub fn run(listener: TcpListener, cfg: ServeConfig) -> Result<(), String> {
    install_signal_handlers();
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot poll the listener: {e}"))?;
    let stats = ServerStats::new();
    let admission = Admission::new(cfg.budget);
    let queue = Queue::new(cfg.workers * 16);
    let sessions = Sessions::new();
    let ctx = ServerCtx {
        stats: &stats,
        cfg: &cfg,
        admission: &admission,
        queue: &queue,
        sessions: &sessions,
    };
    qbss_telemetry::info!(
        "serve",
        { workers = cfg.workers, budget = cfg.budget },
        "server loop starting"
    );
    std::thread::scope(|scope| {
        for _ in 0..ctx.cfg.workers {
            let ctx = &ctx;
            scope.spawn(move || {
                while let Some(item) = ctx.queue.pop() {
                    ctx.stats.in_flight.fetch_add(1, Ordering::Relaxed);
                    // Belt and braces: entries can also age out between
                    // reap ticks; check once more at pop.
                    if item.queued_at.elapsed() > ctx.request_timeout() {
                        reap_connection(item.stream, ctx);
                    } else {
                        handle_connection(item.stream, ctx);
                    }
                    ctx.stats.in_flight.fetch_sub(1, Ordering::Relaxed);
                    ctx.stats.served.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        accept_loop(listener, &ctx);
        // Drain: the listener is already closed; workers finish queued
        // + in-flight requests, then the scope joins them all.
        ctx.stats.draining.store(true, Ordering::Relaxed);
        qbss_telemetry::info!(
            "serve",
            { served = ctx.stats.served.load(Ordering::Relaxed) },
            "shutdown signal received; draining"
        );
        ctx.queue.close();
    });
    qbss_telemetry::flush();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_parsing_takes_the_first_match() {
        assert_eq!(query_get("alg=avrq&alpha=3", "alg"), Some("avrq"));
        assert_eq!(query_get("alg=avrq&alpha=3", "alpha"), Some("3"));
        assert_eq!(query_get("alg=avrq", "m"), None);
        assert_eq!(query_get("", "alg"), None);
        assert_eq!(query_get("a=1&a=2", "a"), Some("1"));
    }

    #[test]
    fn tracez_filters_spans_and_events_but_keeps_metrics() {
        let records = trace::parse_trace(
            "{\"t\": \"span\", \"id\": 1, \"parent\": null, \"name\": \"engine.cell\", \
             \"start_us\": 0, \"dur_us\": 500, \"fields\": {}}\n\
             {\"t\": \"span\", \"id\": 2, \"parent\": null, \"name\": \"serve.request\", \
             \"start_us\": 0, \"dur_us\": 20, \"fields\": {}}\n\
             {\"t\": \"event\", \"ts_us\": 5, \"level\": \"warn\", \"target\": \"engine.cell\", \
             \"span\": null, \"msg\": \"m\", \"fields\": {}}\n\
             {\"t\": \"metrics\", \"ts_us\": 9, \"scope\": \"proc\", \"counters\": {}, \
             \"gauges\": {}, \"histograms\": {}}\n",
        )
        .expect("valid records");
        let keep = |target: Option<&str>, min_us: Option<u64>| -> Vec<bool> {
            records.iter().map(|r| tracez_keep(r, target, min_us)).collect()
        };
        // No filters: everything passes.
        assert_eq!(keep(None, None), vec![true, true, true, true]);
        // Dot-prefix target matching, same grammar as QBSS_LOG: the
        // span's name and the event's target both count; metrics always
        // pass.
        assert_eq!(keep(Some("engine"), None), vec![true, false, true, true]);
        assert_eq!(keep(Some("engine.cell"), None), vec![true, false, true, true]);
        assert_eq!(keep(Some("engin"), None), vec![false, false, false, true]);
        // min_us keeps slow spans, drops fast ones and (durationless)
        // events.
        assert_eq!(keep(None, Some(100)), vec![true, false, false, true]);
        // Filters compose.
        assert_eq!(keep(Some("serve"), Some(100)), vec![false, false, false, true]);
    }

    #[test]
    fn tracez_rejects_a_malformed_min_us() {
        let ring = RingSink::default();
        let resp = tracez("min_us=soon", &ring);
        assert_eq!(resp.status, 400);
        assert!(resp.body.contains("min_us"), "{}", resp.body);
        // Empty ring with valid filters: empty, well-typed responses.
        assert_eq!(tracez("target=engine&min_us=10", &ring).status, 200);
        assert_eq!(tracez("format=jsonl&target=engine", &ring).body, "");
    }

    #[test]
    fn profilez_renders_even_an_empty_ring() {
        let ring = RingSink::default();
        let html = profilez("", &ring);
        assert_eq!(html.status, 200);
        assert!(html.body.starts_with("<!DOCTYPE html>"), "{}", &html.body[..40]);
        let folded = profilez("format=folded&collapse=par.shard", &ring);
        assert_eq!(folded.status, 200);
        assert_eq!(folded.body, "");
        assert_eq!(profilez("format=svg", &ring).status, 400);
    }

    #[test]
    fn queue_bounds_and_drains() {
        // Stream-free bound check via capacity clamping.
        let q = Queue::new(0);
        assert_eq!(q.capacity, 1);
        assert_eq!(q.depth(), 0);
        q.close();
        assert!(q.pop().is_none());
    }

    #[test]
    fn error_responses_are_typed_json() {
        let resp = Response::error(422, "model", "job 3: deadline before release");
        assert_eq!(resp.status, 422);
        assert!(resp.body.contains("\"kind\": \"model\""), "{}", resp.body);
        assert!(resp.body.contains("\"message\": "), "{}", resp.body);
    }

    #[test]
    fn shed_responses_carry_retry_after() {
        let resp = Response::shed(1, "budget exhausted");
        assert_eq!(resp.status, 429);
        assert!(resp.body.contains("\"kind\": \"overloaded\""), "{}", resp.body);
        assert_eq!(resp.extra_headers, vec!["Retry-After: 1".to_string()]);
    }

    #[test]
    fn header_end_detection() {
        assert_eq!(find_header_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(14));
        assert_eq!(find_header_end(b"partial\r\n"), None);
    }

    #[test]
    fn admission_bounds_concurrent_cost() {
        let a = Admission::new(10);
        let p1 = a.try_admit(6).expect("fits");
        assert_eq!(a.in_flight_cost(), 6);
        // 6 + 5 > 10: shed.
        assert!(a.try_admit(5).is_none());
        let p2 = a.try_admit(4).expect("exactly fits");
        assert_eq!(a.in_flight_cost(), 10);
        assert!(a.try_admit(1).is_none());
        drop(p1);
        assert_eq!(a.in_flight_cost(), 4);
        drop(p2);
        assert_eq!(a.in_flight_cost(), 0);
    }

    #[test]
    fn admission_never_starves_an_idle_server() {
        // A request costlier than the whole budget is admitted when
        // nothing is in flight — the budget bounds concurrency, it is
        // not a per-request cap.
        let a = Admission::new(10);
        let big = a.try_admit(1_000).expect("idle server admits anything");
        assert_eq!(a.in_flight_cost(), 1_000);
        // …but while it runs, everything else is shed.
        assert!(a.try_admit(1).is_none());
        drop(big);
        assert!(a.try_admit(1).is_some());
    }

    #[test]
    fn zero_budget_disables_admission_control() {
        let a = Admission::new(0);
        let _p1 = a.try_admit(u64::MAX).expect("unlimited");
        let _p2 = a.try_admit(u64::MAX).expect("unlimited");
        assert_eq!(a.in_flight_cost(), 0, "unlimited permits carry no cost");
    }

    #[test]
    fn body_contract_is_decided_before_the_body() {
        // POST without Content-Length: 411, typed.
        let err = body_contract("POST", None).unwrap_err();
        assert_eq!(err.status, 411);
        assert!(err.body.contains("length_required"), "{}", err.body);
        // Over the cap: 413 — distinct from the 400 syntax class.
        let err = body_contract("POST", Some(MAX_BODY_BYTES + 1)).unwrap_err();
        assert_eq!(err.status, 413);
        assert!(err.body.contains("payload_too_large"), "{}", err.body);
        // In-range lengths and bodyless GETs pass.
        assert_eq!(body_contract("POST", Some(10)).unwrap(), 10);
        assert_eq!(body_contract("GET", None).unwrap(), 0);
        assert_eq!(body_contract("GET", Some(4)).unwrap(), 4);
    }

    #[test]
    fn head_parsing_rejects_garbage() {
        let ok = parse_head("POST /sweep HTTP/1.1\r\nHost: x\r\nContent-Length: 12").unwrap();
        assert_eq!(ok.method, "POST");
        assert_eq!(ok.target, "/sweep");
        assert_eq!(ok.content_length, Some(12));
        // Garbage Content-Length is a 400 before any body read.
        let err =
            parse_head("POST / HTTP/1.1\r\nContent-Length: twelve").unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.body.contains("Content-Length"), "{}", err.body);
        // Truncated request lines and alien protocol versions are 400.
        assert_eq!(parse_head("GET /\r\n").unwrap_err().status, 400);
        assert_eq!(parse_head("GET / SPDY/99\r\n").unwrap_err().status, 400);
    }

    #[test]
    fn deadline_slices_shrink_to_the_wall_clock() {
        let d = Deadline::new(Duration::from_millis(50), Duration::from_secs(10));
        // Far from the deadline, the io timeout would win; here the
        // remaining wall clock is smaller, so the slice is bounded by it.
        let slice = d.read_slice().expect("not yet expired");
        assert!(slice <= Duration::from_millis(50));
        assert!(!d.expired());
        std::thread::sleep(Duration::from_millis(60));
        assert!(d.expired());
        assert!(d.read_slice().is_none(), "expired deadlines stop reads");
    }

    #[test]
    fn session_store_opens_caps_and_reaps() {
        let sessions = Sessions::new();
        let open = |sessions: &Sessions| {
            sessions.open(StreamSession::new(Algorithm::Oaq, 3.0).expect("session"))
        };
        let a = open(&sessions).expect("first id");
        let b = open(&sessions).expect("second id");
        assert_ne!(a, b, "ids are never reused");
        assert_eq!(sessions.open_count(), 2);
        // `with` touches the session; `take` consumes it.
        assert_eq!(sessions.with(a, |s| s.jobs()), Some(0));
        assert!(sessions.take(a).is_some());
        assert!(sessions.with(a, |s| s.jobs()).is_none(), "taken sessions are gone");
        assert_eq!(sessions.open_count(), 1);
        // A generous idle window reaps nothing; a zero window reaps all.
        assert_eq!(sessions.reap(Duration::from_secs(60)), 0);
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(sessions.reap(Duration::ZERO), 1);
        assert_eq!(sessions.open_count(), 0);
        assert_eq!(sessions.reaped.load(Ordering::Relaxed), 1);
        // The cap sheds further opens.
        for _ in 0..MAX_OPEN_SESSIONS {
            assert!(open(&sessions).is_some());
        }
        assert!(open(&sessions).is_none(), "cap reached");
    }

    #[test]
    fn session_jobs_parse_from_bare_json_objects() {
        let job = job_from_json(
            br#"{"id": 3, "release": 0.5, "deadline": 2.0, "query_load": 0.25,
                 "upper_bound": 1.0, "exact": 0.75}"#,
        )
        .expect("valid job");
        assert_eq!(job.id, 3);
        assert_eq!(job.release, 0.5);
        assert_eq!(job.reveal_exact(), 0.75);
        // Missing fields, non-integer ids, and non-JSON are all 400s.
        for bad in [
            &b"not json"[..],
            br#"{"id": 1.5, "release": 0.0, "deadline": 1.0, "query_load": 0.1,
                 "upper_bound": 1.0, "exact": 0.5}"#,
            br#"{"id": 1, "release": 0.0}"#,
            br#"{"id": 4294967296, "release": 0.0, "deadline": 1.0, "query_load": 0.1,
                 "upper_bound": 1.0, "exact": 0.5}"#,
        ] {
            assert_eq!(job_from_json(bad).unwrap_err().status, 400, "{:?}", bad);
        }
    }

    #[test]
    fn queue_reaps_only_aged_entries() {
        // Reaping needs real streams; a loopback pair is cheap.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let q = Queue::new(8);
        let c1 = TcpStream::connect(addr).expect("connect");
        q.push(c1).expect("push");
        assert_eq!(q.depth(), 1);
        // Nothing is older than 10 s.
        assert!(q.reap(Duration::from_secs(10)).is_empty());
        std::thread::sleep(Duration::from_millis(20));
        // Everything is older than 1 ms.
        let reaped = q.reap(Duration::from_millis(1));
        assert_eq!(reaped.len(), 1);
        assert_eq!(q.depth(), 0);
    }
}
