//! `qbss serve` — a zero-dependency HTTP/1.1 observability and
//! evaluation plane over `std::net`.
//!
//! The first long-lived process in the workspace: a hand-rolled server
//! with a bounded accept queue feeding a fixed scoped-thread worker
//! pool (the same `std::thread::scope` discipline the `par` fan-out
//! uses — no detached threads, the accept thread joins every worker
//! before returning). Endpoints:
//!
//! | endpoint | contract |
//! |----------|----------|
//! | `GET /metrics` | process registry in Prometheus text exposition format; read-only, byte-stable across scrapes of an idle registry |
//! | `GET /healthz` | liveness: uptime, in-flight, served counts |
//! | `GET /readyz` | readiness: `200` while accepting, `503` once draining |
//! | `GET /tracez` | most recent spans/events from the ring sink as HTML (`?format=jsonl` for the raw records) |
//! | `POST /evaluate` | instance JSON in, evaluated outcome out (`?alg=`, `?alpha=`, `?m=`) |
//! | `POST /sweep` | sweep-spec JSON in, deterministic aggregate out |
//!
//! **Probe endpoints never touch the metrics registry** — only the
//! work endpoints (`/evaluate`, `/sweep`) bump `serve.requests` and the
//! `serve.request.dur_us` histogram, so two consecutive `/metrics`
//! scrapes of an otherwise idle server are byte-identical. Probe
//! traffic is tracked in plain process stats surfaced by `/healthz`.
//!
//! Every request runs under a `serve.request` span carrying a
//! process-unique request id; requests slower than the configured
//! threshold additionally raise a `warn!` on `serve.slow`. Malformed
//! requests map the typed error taxonomy onto status codes — syntax
//! errors (bad HTTP, bad JSON) are `400`, well-formed input the model
//! or algorithms reject is `422`, handler panics are caught and
//! answered `500` — the process never dies on bad input.
//!
//! Shutdown: SIGTERM or ctrl-c flips one atomic flag; the accept loop
//! stops taking connections, queued and in-flight requests drain, sinks
//! flush, and the process exits 0 (the exit-code contract treats a
//! signalled drain as success).

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use qbss_bench::engine::run_sweep;
use qbss_bench::request::{RequestError, SweepRequest};
use qbss_core::pipeline::{run_for_request, Algorithm};
use qbss_instances::io::{self, IoError};
use qbss_telemetry::{expo, json_escape, json_f64, trace, RingSink, DURATION_US_BOUNDS};

/// Largest accepted request body (instances and sweep specs are small;
/// anything bigger is a client error, answered `413`).
const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;
/// Largest accepted header block.
const MAX_HEADER_BYTES: usize = 64 * 1024;
/// Accept-loop poll tick while waiting for connections or shutdown.
const POLL_TICK: Duration = Duration::from_millis(25);

/// Set by the signal handler; checked by the accept loop each tick.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);
/// Process-unique request ids (`r-1`, `r-2`, …).
static REQUEST_SEQ: AtomicU64 = AtomicU64::new(0);

/// Serve-mode configuration, parsed from flags by `commands::serve`.
pub struct ServeConfig {
    /// Worker threads handling requests.
    pub workers: usize,
    /// Requests at least this slow raise a `warn!` on `serve.slow`.
    pub slow_ms: u64,
    /// The ring sink backing `/tracez` (also the process telemetry
    /// sink, installed by the caller).
    pub ring: RingSink,
}

// ---------------------------------------------------------------------
// Signals
// ---------------------------------------------------------------------

#[cfg(unix)]
fn install_signal_handlers() {
    // std-only signal hookup: libc's `signal(2)` via a raw extern. The
    // handler only flips one atomic (async-signal-safe); all real work
    // happens on the accept thread's next poll tick.
    extern "C" fn on_signal(_sig: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {
    // No signal plumbing off unix; the server stops when killed.
}

// ---------------------------------------------------------------------
// Server stats (deliberately *not* registry metrics: probe endpoints
// must leave /metrics byte-stable)
// ---------------------------------------------------------------------

struct ServerStats {
    started: Instant,
    in_flight: AtomicU64,
    served: AtomicU64,
    draining: AtomicBool,
}

impl ServerStats {
    fn new() -> Self {
        ServerStats {
            started: Instant::now(),
            in_flight: AtomicU64::new(0),
            served: AtomicU64::new(0),
            draining: AtomicBool::new(false),
        }
    }
}

// ---------------------------------------------------------------------
// Bounded connection queue
// ---------------------------------------------------------------------

struct Queue {
    inner: Mutex<QueueState>,
    ready: Condvar,
    capacity: usize,
}

struct QueueState {
    items: VecDeque<TcpStream>,
    closed: bool,
}

impl Queue {
    fn new(capacity: usize) -> Self {
        Queue {
            inner: Mutex::new(QueueState { items: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueues a connection, or hands it back when the queue is full
    /// (the accept loop then answers `503` without blocking).
    fn push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut state = self.lock();
        if state.items.len() >= self.capacity {
            return Err(stream);
        }
        state.items.push_back(stream);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next connection; `None` once closed **and**
    /// drained, so workers finish everything accepted before shutdown.
    fn pop(&self) -> Option<TcpStream> {
        let mut state = self.lock();
        loop {
            if let Some(stream) = state.items.pop_front() {
                return Some(stream);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }
}

// ---------------------------------------------------------------------
// HTTP plumbing
// ---------------------------------------------------------------------

struct HttpRequest {
    method: String,
    path: String,
    query: String,
    body: Vec<u8>,
}

struct Response {
    status: u16,
    content_type: &'static str,
    body: String,
}

impl Response {
    fn json(status: u16, body: String) -> Response {
        Response { status, content_type: "application/json", body }
    }

    fn error(status: u16, kind: &str, message: &str) -> Response {
        Response::json(
            status,
            format!(
                "{{\"error\": {{\"kind\": \"{}\", \"message\": \"{}\"}}}}",
                json_escape(kind),
                json_escape(message)
            ),
        )
    }
}

fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

fn write_response(stream: &mut TcpStream, resp: &Response) {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        resp.status,
        status_reason(resp.status),
        resp.content_type,
        resp.body.len()
    );
    // A peer that hung up mid-response is its own problem; the worker
    // moves on either way.
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(resp.body.as_bytes());
    let _ = stream.flush();
}

/// Reads and parses one request. `Err` carries the ready-to-send
/// rejection (`400`/`413`).
fn read_request(stream: &mut TcpStream) -> Result<HttpRequest, Response> {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEADER_BYTES {
            return Err(Response::error(400, "bad_request", "header block too large"));
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err(Response::error(400, "bad_request", "truncated request")),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => {
                return Err(Response::error(400, "bad_request", &format!("read failed: {e}")))
            }
        }
    };
    let head = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_ascii_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(Response::error(400, "bad_request", "malformed request line"));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(Response::error(400, "bad_request", "unsupported HTTP version"));
    }
    let mut content_length: usize = 0;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| Response::error(400, "bad_request", "bad Content-Length"))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(Response::error(413, "payload_too_large", "request body too large"));
    }
    let mut body: Vec<u8> = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) => return Err(Response::error(400, "bad_request", "truncated body")),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) => {
                return Err(Response::error(400, "bad_request", &format!("read failed: {e}")))
            }
        }
    }
    body.truncate(content_length);
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    Ok(HttpRequest { method: method.to_string(), path, query, body })
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// First value of `key` in a query string (no percent-decoding: every
/// accepted value is a plain token like `avrq-m:4` or `2.5`).
fn query_get<'a>(query: &'a str, key: &str) -> Option<&'a str> {
    query
        .split('&')
        .filter_map(|pair| pair.split_once('='))
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v)
}

// ---------------------------------------------------------------------
// Endpoints
// ---------------------------------------------------------------------

fn index() -> Response {
    Response {
        status: 200,
        content_type: "text/plain; charset=utf-8",
        body: "qbss serve\n\n\
               GET  /metrics    Prometheus text exposition of the process registry\n\
               GET  /healthz    liveness (uptime, in-flight, served)\n\
               GET  /readyz     readiness (503 once draining)\n\
               GET  /tracez     recent spans/events as HTML (?format=jsonl for raw)\n\
               POST /evaluate   instance JSON -> evaluated outcome (?alg=&alpha=&m=)\n\
               POST /sweep      sweep spec JSON -> deterministic aggregate\n"
            .to_string(),
    }
}

fn metrics_endpoint() -> Response {
    Response {
        status: 200,
        content_type: "text/plain; version=0.0.4; charset=utf-8",
        body: expo::render_prometheus(qbss_telemetry::metrics()),
    }
}

fn health_body(stats: &ServerStats) -> String {
    format!(
        "{{\"status\": \"{}\", \"uptime_s\": {}, \"in_flight\": {}, \"served\": {}}}",
        if stats.draining.load(Ordering::Relaxed) { "draining" } else { "ok" },
        json_f64(stats.started.elapsed().as_secs_f64()),
        stats.in_flight.load(Ordering::Relaxed),
        stats.served.load(Ordering::Relaxed)
    )
}

fn healthz(stats: &ServerStats) -> Response {
    Response::json(200, health_body(stats))
}

fn readyz(stats: &ServerStats) -> Response {
    let status = if stats.draining.load(Ordering::Relaxed) { 503 } else { 200 };
    Response::json(status, health_body(stats))
}

fn tracez(query: &str, ring: &RingSink) -> Response {
    let contents = ring.contents();
    if query_get(query, "format") == Some("jsonl") {
        return Response {
            status: 200,
            content_type: "application/x-ndjson",
            body: contents,
        };
    }
    match trace::parse_trace(&contents) {
        Ok(records) => Response {
            status: 200,
            content_type: "text/html; charset=utf-8",
            body: trace::render_html(&records),
        },
        Err(e) => Response::error(500, "internal", &format!("ring holds an invalid record: {e}")),
    }
}

fn evaluate(req: &HttpRequest, request_id: &str) -> Response {
    let alg_name = query_get(&req.query, "alg").unwrap_or("avrq");
    let alg: Algorithm = match alg_name.parse() {
        Ok(a) => a,
        Err(e) => return Response::error(400, "bad_request", &format!("alg: {e}")),
    };
    let alg = match query_get(&req.query, "m") {
        None => alg,
        Some(raw) => match raw.parse::<usize>() {
            Ok(m) if m >= 1 => alg.with_machines(m),
            _ => return Response::error(400, "bad_request", "m must be an integer >= 1"),
        },
    };
    let alpha: f64 = match query_get(&req.query, "alpha") {
        None => 3.0,
        Some(raw) => match raw.parse() {
            Ok(a) => a,
            Err(_) => return Response::error(400, "bad_request", "alpha: not a number"),
        },
    };
    let Ok(body) = std::str::from_utf8(&req.body) else {
        return Response::error(400, "bad_request", "body is not UTF-8");
    };
    // The PR-1 error taxonomy drives the status split: text that is not
    // an instance at all is the client's syntax problem (400); a
    // well-formed instance the model or an algorithm rejects is
    // semantically unprocessable (422) — and never a panic.
    let inst = match io::from_json(body) {
        Ok(inst) => inst,
        Err(e @ IoError::Model { .. }) => {
            return Response::error(422, "model", &e.to_string());
        }
        Err(e) => return Response::error(400, "syntax", &e.to_string()),
    };
    match run_for_request(request_id, qbss_telemetry::current_span_id(), &inst, alpha, alg) {
        Ok(ev) => Response::json(
            200,
            format!(
                "{{\"request_id\": \"{}\", \"algorithm\": \"{}\", \"alpha\": {}, \
                 \"energy\": {}, \"max_speed\": {}, \"outcome\": {}}}",
                json_escape(request_id),
                alg,
                json_f64(alpha),
                json_f64(ev.energy),
                json_f64(ev.max_speed),
                io::outcome_to_json(&ev.outcome)
            ),
        ),
        Err(e) => Response::error(422, "algorithm", &e.to_string()),
    }
}

fn sweep(req: &HttpRequest) -> Response {
    let Ok(body) = std::str::from_utf8(&req.body) else {
        return Response::error(400, "bad_request", "body is not UTF-8");
    };
    let parsed = match SweepRequest::from_json(body) {
        Ok(p) => p,
        Err(RequestError::Syntax(msg)) => return Response::error(400, "syntax", &msg),
        Err(RequestError::Spec(msg)) => return Response::error(422, "spec", &msg),
    };
    match run_sweep(&parsed.spec, parsed.shards) {
        Ok(report) => Response::json(200, report.aggregate_json()),
        Err(e) => Response::error(422, "spec", &e.to_string()),
    }
}

fn route(req: &HttpRequest, request_id: &str, stats: &ServerStats, cfg: &ServeConfig) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/") => index(),
        ("GET", "/metrics") => metrics_endpoint(),
        ("GET", "/healthz") => healthz(stats),
        ("GET", "/readyz") => readyz(stats),
        ("GET", "/tracez") => tracez(&req.query, &cfg.ring),
        ("POST", "/evaluate") | ("POST", "/sweep") => {
            // Work endpoints are the only registry writers, so idle
            // /metrics scrapes stay byte-stable.
            let started = Instant::now();
            let resp = if req.path == "/evaluate" {
                evaluate(req, request_id)
            } else {
                sweep(req)
            };
            qbss_telemetry::counter!("serve.requests").inc();
            qbss_telemetry::metrics()
                .histogram("serve.request.dur_us", &DURATION_US_BOUNDS)
                .record(started.elapsed().as_micros() as f64);
            resp
        }
        (_, "/" | "/metrics" | "/healthz" | "/readyz" | "/tracez" | "/evaluate" | "/sweep") => {
            Response::error(405, "method_not_allowed", "wrong method for this endpoint")
        }
        (_, path) => Response::error(404, "not_found", &format!("no such endpoint: {path}")),
    }
}

// ---------------------------------------------------------------------
// Connection handling
// ---------------------------------------------------------------------

fn handle_connection(mut stream: TcpStream, stats: &ServerStats, cfg: &ServeConfig) {
    let req = match read_request(&mut stream) {
        Ok(req) => req,
        Err(reject) => {
            write_response(&mut stream, &reject);
            return;
        }
    };
    let request_id = format!("r-{}", REQUEST_SEQ.fetch_add(1, Ordering::Relaxed) + 1);
    let started = Instant::now();
    let mut span = qbss_telemetry::span!("serve.request", {
        request = request_id.clone(),
        method = req.method.clone(),
        path = req.path.clone(),
    });
    // A panicking handler answers 500 and the worker lives on — the
    // no-panic guarantee of the pipeline, extended to the serving edge.
    let resp = catch_unwind(AssertUnwindSafe(|| route(&req, &request_id, stats, cfg)))
        .unwrap_or_else(|_| {
            qbss_telemetry::error!(
                "serve.request",
                { request = request_id.clone() },
                "handler panicked on {} {}",
                req.method,
                req.path
            );
            Response::error(500, "internal", "handler panicked; see server trace")
        });
    span.record("status", u64::from(resp.status));
    drop(span);
    let elapsed = started.elapsed();
    if elapsed.as_millis() >= u128::from(cfg.slow_ms) {
        qbss_telemetry::warn!(
            "serve.slow",
            {
                request = request_id.clone(),
                path = req.path.clone(),
                ms = elapsed.as_millis() as u64,
            },
            "slow request {} {} took {} ms",
            req.method,
            req.path,
            elapsed.as_millis()
        );
    }
    write_response(&mut stream, &resp);
}

/// Runs the server on an already-bound listener until SIGTERM/ctrl-c,
/// then drains and returns. `Ok` means a clean drain (exit 0); `Err`
/// carries an I/O-level failure message.
pub fn run(listener: TcpListener, cfg: ServeConfig) -> Result<(), String> {
    install_signal_handlers();
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot poll the listener: {e}"))?;
    let stats = ServerStats::new();
    let queue = Queue::new(cfg.workers * 16);
    qbss_telemetry::info!("serve", { workers = cfg.workers }, "server loop starting");
    std::thread::scope(|scope| {
        for _ in 0..cfg.workers {
            scope.spawn(|| {
                while let Some(stream) = queue.pop() {
                    stats.in_flight.fetch_add(1, Ordering::Relaxed);
                    handle_connection(stream, &stats, &cfg);
                    stats.in_flight.fetch_sub(1, Ordering::Relaxed);
                    stats.served.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        loop {
            if SHUTDOWN.load(Ordering::SeqCst) {
                break;
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if let Err(mut rejected) = queue.push(stream) {
                        write_response(
                            &mut rejected,
                            &Response::error(503, "overloaded", "accept queue is full"),
                        );
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_TICK);
                }
                Err(e) => {
                    qbss_telemetry::warn!("serve", "accept failed: {e}");
                    std::thread::sleep(POLL_TICK);
                }
            }
        }
        // Drain: no new connections, workers finish queued + in-flight
        // requests, then the scope joins them all.
        stats.draining.store(true, Ordering::Relaxed);
        qbss_telemetry::info!(
            "serve",
            { served = stats.served.load(Ordering::Relaxed) },
            "shutdown signal received; draining"
        );
        queue.close();
    });
    qbss_telemetry::flush();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_parsing_takes_the_first_match() {
        assert_eq!(query_get("alg=avrq&alpha=3", "alg"), Some("avrq"));
        assert_eq!(query_get("alg=avrq&alpha=3", "alpha"), Some("3"));
        assert_eq!(query_get("alg=avrq", "m"), None);
        assert_eq!(query_get("", "alg"), None);
        assert_eq!(query_get("a=1&a=2", "a"), Some("1"));
    }

    #[test]
    fn queue_bounds_and_drains() {
        // Stream-free bound check via capacity clamping.
        let q = Queue::new(0);
        assert_eq!(q.capacity, 1);
        q.close();
        assert!(q.pop().is_none());
    }

    #[test]
    fn error_responses_are_typed_json() {
        let resp = Response::error(422, "model", "job 3: deadline before release");
        assert_eq!(resp.status, 422);
        assert!(resp.body.contains("\"kind\": \"model\""), "{}", resp.body);
        assert!(resp.body.contains("\"message\": "), "{}", resp.body);
    }

    #[test]
    fn header_end_detection() {
        assert_eq!(find_header_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(14));
        assert_eq!(find_header_end(b"partial\r\n"), None);
    }
}
