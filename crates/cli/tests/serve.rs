//! End-to-end tests of `qbss serve`: the binary is started on an
//! ephemeral port, driven over real TCP, and shut down with a real
//! SIGTERM. Covers the scrape contract (parseable, byte-stable
//! Prometheus exposition), the typed-error status mapping for corrupted
//! instances from the fault catalog, and the drain-on-signal exit code.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use qbss_core::model::{QJob, QbssInstance};
use qbss_instances::corrupt::{Corruptor, Mutation};
use qbss_instances::io;

/// Starts `qbss serve` on an ephemeral port and returns the child plus
/// the bound address parsed from the stderr banner.
fn start_server(extra: &[&str]) -> (Child, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_qbss"));
    cmd.args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
        .args(extra)
        .env_remove("QBSS_LOG")
        .stdout(Stdio::null())
        .stderr(Stdio::piped());
    let mut child = cmd.spawn().expect("server spawns");
    let stderr = child.stderr.take().expect("stderr piped");
    let mut reader = BufReader::new(stderr);
    let mut banner = String::new();
    reader.read_line(&mut banner).expect("stderr banner");
    let addr = banner
        .split("listening on ")
        .nth(1)
        .unwrap_or_else(|| panic!("no address in banner: {banner}"))
        .split_whitespace()
        .next()
        .expect("address token")
        .to_string();
    // Keep draining stderr so the server can never block on a full pipe.
    std::thread::spawn(move || {
        let mut sink = String::new();
        let _ = reader.read_to_string(&mut sink);
    });
    (child, addr)
}

/// One HTTP/1.1 request over a fresh connection; returns status,
/// header block, and body.
fn http(addr: &str, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header block");
    let status: u16 = head
        .split_ascii_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    (status, head.to_string(), body.to_string())
}

/// Polls `/readyz` until the server answers 200.
fn wait_ready(addr: &str) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(mut stream) = TcpStream::connect(addr) {
            let req = format!("GET /readyz HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
            if stream.write_all(req.as_bytes()).is_ok() {
                let mut raw = String::new();
                if stream.read_to_string(&mut raw).is_ok() && raw.starts_with("HTTP/1.1 200") {
                    return;
                }
            }
        }
        assert!(Instant::now() < deadline, "server never became ready on {addr}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn sigterm(child: &Child) {
    let status = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(status.success(), "kill -TERM failed");
}

fn wait_exit(mut child: Child) -> Option<i32> {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status.code();
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            panic!("server did not exit after SIGTERM");
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// A minimal structural check of the Prometheus text format: every
/// line is a `# TYPE`/`# HELP` comment or `name[{labels}] value` with
/// a sanitized metric name and a parseable value.
fn assert_prometheus_parseable(text: &str) {
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_part, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("bad line: {line}"));
        let name = name_part.split('{').next().expect("metric name");
        assert!(
            !name.is_empty()
                && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "unsanitized metric name in: {line}"
        );
        assert!(
            value.parse::<f64>().is_ok() || ["NaN", "+Inf", "-Inf"].contains(&value),
            "unparseable value in: {line}"
        );
    }
}

/// Serializes without validating — `io::to_json` (rightly) refuses
/// model-invalid instances, but the test needs corrupted bytes on the
/// wire to prove the server answers 422 instead of panicking.
fn instance_json_unchecked(inst: &QbssInstance) -> String {
    let jobs: Vec<String> = inst
        .jobs
        .iter()
        .map(|j| {
            format!(
                "{{\"id\": {}, \"release\": {}, \"deadline\": {}, \"query_load\": {}, \
                 \"upper_bound\": {}, \"exact\": {}}}",
                j.id,
                j.release,
                j.deadline,
                j.query_load,
                j.upper_bound,
                j.reveal_exact()
            )
        })
        .collect();
    format!("{{\"jobs\": [{}]}}", jobs.join(", "))
}

fn valid_instance_json() -> String {
    let inst = QbssInstance::new(vec![
        QJob::new(0, 0.0, 2.0, 0.2, 2.0, 0.3),
        QJob::new(1, 0.0, 3.0, 0.1, 1.5, 1.0),
    ]);
    io::to_json(&inst).expect("serializes")
}

#[test]
fn serve_scrapes_evaluates_and_drains() {
    let (child, addr) = start_server(&[]);
    wait_ready(&addr);

    // The index lists the endpoints.
    let (status, _, body) = http(&addr, "GET", "/", "");
    assert_eq!(status, 200);
    assert!(body.contains("/metrics"), "{body}");

    // Two idle scrapes are byte-identical and structurally Prometheus.
    let (s1, head1, scrape1) = http(&addr, "GET", "/metrics", "");
    let (s2, _, scrape2) = http(&addr, "GET", "/metrics", "");
    assert_eq!((s1, s2), (200, 200));
    assert!(head1.contains("text/plain; version=0.0.4"), "{head1}");
    assert_eq!(scrape1, scrape2, "idle scrapes must be byte-identical");
    assert_prometheus_parseable(&scrape1);

    // Health probes answer JSON and do not perturb the registry.
    let (status, _, health) = http(&addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert!(health.contains("\"status\": \"ok\""), "{health}");
    let (_, _, scrape3) = http(&addr, "GET", "/metrics", "");
    assert_eq!(scrape1, scrape3, "probes must leave /metrics byte-stable");

    // A valid instance evaluates end to end.
    let (status, _, body) = http(&addr, "POST", "/evaluate?alg=avrq&alpha=3", &valid_instance_json());
    assert_eq!(status, 200, "{body}");
    for field in ["request_id", "algorithm", "energy", "max_speed", "outcome"] {
        assert!(body.contains(field), "missing `{field}` in {body}");
    }

    // A corrupted instance from the fault catalog maps onto the typed
    // 4xx taxonomy instead of panicking the worker.
    let base = QbssInstance::new(vec![
        QJob::new(0, 0.0, 2.0, 0.2, 2.0, 0.3),
        QJob::new(1, 0.0, 3.0, 0.1, 1.5, 1.0),
    ]);
    let mut corruptor = Corruptor::new(7);
    let corrupted = corruptor.apply(&base, Mutation::InvertedWindow).expect("applicable");
    let bad_json = instance_json_unchecked(&corrupted.instance);
    let (status, _, body) = http(&addr, "POST", "/evaluate", &bad_json);
    assert_eq!(status, 422, "model-invalid instance is 422: {body}");
    assert!(body.contains("\"kind\": \"model\""), "{body}");

    // Not-JSON is the client's syntax problem (400), unknown paths 404,
    // wrong methods 405.
    let (status, _, body) = http(&addr, "POST", "/evaluate", "{not json");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"kind\": \"syntax\""), "{body}");
    let (status, _, _) = http(&addr, "GET", "/nope", "");
    assert_eq!(status, 404);
    let (status, _, _) = http(&addr, "POST", "/metrics", "");
    assert_eq!(status, 405);

    // A sweep body runs on the engine and returns the aggregate.
    let (status, _, body) =
        http(&addr, "POST", "/sweep", r#"{"count": 2, "n": 5, "alg": "avrq", "alpha": 2.5}"#);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("avrq"), "{body}");
    let (status, _, body) = http(&addr, "POST", "/sweep", r#"{"alg": "yds"}"#);
    assert_eq!(status, 422, "{body}");
    assert!(body.contains("\"kind\": \"spec\""), "{body}");

    // The work endpoints (and only they) moved the registry.
    let (_, _, scrape4) = http(&addr, "GET", "/metrics", "");
    assert!(scrape4.contains("serve_requests"), "{scrape4}");
    assert!(scrape4.contains("serve_request_dur_us_bucket"), "{scrape4}");
    assert_prometheus_parseable(&scrape4);

    // The ring kept the request spans: /tracez renders them as HTML.
    let (status, head, body) = http(&addr, "GET", "/tracez", "");
    assert_eq!(status, 200);
    assert!(head.contains("text/html"), "{head}");
    assert!(body.contains("serve.request"), "{body}");
    let (status, _, jsonl) = http(&addr, "GET", "/tracez?format=jsonl", "");
    assert_eq!(status, 200);
    assert!(jsonl.lines().any(|l| l.contains("serve.request")), "{jsonl}");

    // SIGTERM drains and exits 0 — the contract scripts rely on.
    sigterm(&child);
    assert_eq!(wait_exit(child), Some(0), "signalled drain must exit 0");
}

#[test]
fn sigterm_during_an_inflight_sweep_still_drains_cleanly() {
    let (child, addr) = start_server(&[]);
    wait_ready(&addr);

    // Park a non-trivial sweep on a worker, then signal while it runs.
    let sweep_addr = addr.clone();
    let inflight = std::thread::spawn(move || {
        http(
            &sweep_addr,
            "POST",
            "/sweep",
            r#"{"count": 30, "n": 14, "alg": "all", "alpha": [2, 3]}"#,
        )
    });
    std::thread::sleep(Duration::from_millis(150));
    sigterm(&child);

    // The in-flight request completes (drain, not abort) …
    let (status, _, body) = inflight.join().expect("sweep thread");
    assert_eq!(status, 200, "in-flight work must drain: {body}");
    // … and the process still exits 0.
    assert_eq!(wait_exit(child), Some(0));
}
