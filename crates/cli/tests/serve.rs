//! End-to-end tests of `qbss serve`: the binary is started on an
//! ephemeral port, driven over real TCP, and shut down with a real
//! SIGTERM. Covers the scrape contract (parseable, byte-stable
//! Prometheus exposition), the typed-error status mapping for corrupted
//! instances from the fault catalog, and the drain-on-signal exit code.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use qbss_core::model::{QJob, QbssInstance};
use qbss_instances::corrupt::{Corruptor, Mutation};
use qbss_instances::io;

/// Starts `qbss serve` on an ephemeral port and returns the child plus
/// the bound address parsed from the stderr banner.
fn start_server(extra: &[&str]) -> (Child, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_qbss"));
    cmd.args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
        .args(extra)
        .env_remove("QBSS_LOG")
        .stdout(Stdio::null())
        .stderr(Stdio::piped());
    let mut child = cmd.spawn().expect("server spawns");
    let stderr = child.stderr.take().expect("stderr piped");
    let mut reader = BufReader::new(stderr);
    let mut banner = String::new();
    reader.read_line(&mut banner).expect("stderr banner");
    let addr = banner
        .split("listening on ")
        .nth(1)
        .unwrap_or_else(|| panic!("no address in banner: {banner}"))
        .split_whitespace()
        .next()
        .expect("address token")
        .to_string();
    // Keep draining stderr so the server can never block on a full pipe.
    std::thread::spawn(move || {
        let mut sink = String::new();
        let _ = reader.read_to_string(&mut sink);
    });
    (child, addr)
}

/// One HTTP/1.1 request over a fresh connection; returns status,
/// header block, and body.
fn http(addr: &str, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header block");
    let status: u16 = head
        .split_ascii_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    (status, head.to_string(), body.to_string())
}

/// Polls `/readyz` until the server answers 200.
fn wait_ready(addr: &str) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(mut stream) = TcpStream::connect(addr) {
            let req = format!("GET /readyz HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
            if stream.write_all(req.as_bytes()).is_ok() {
                let mut raw = String::new();
                if stream.read_to_string(&mut raw).is_ok() && raw.starts_with("HTTP/1.1 200") {
                    return;
                }
            }
        }
        assert!(Instant::now() < deadline, "server never became ready on {addr}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn sigterm(child: &Child) {
    let status = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(status.success(), "kill -TERM failed");
}

fn wait_exit(mut child: Child) -> Option<i32> {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status.code();
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            panic!("server did not exit after SIGTERM");
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// A minimal structural check of the Prometheus text format: every
/// line is a `# TYPE`/`# HELP` comment or `name[{labels}] value` with
/// a sanitized metric name and a parseable value.
fn assert_prometheus_parseable(text: &str) {
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_part, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("bad line: {line}"));
        let name = name_part.split('{').next().expect("metric name");
        assert!(
            !name.is_empty()
                && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "unsanitized metric name in: {line}"
        );
        assert!(
            value.parse::<f64>().is_ok() || ["NaN", "+Inf", "-Inf"].contains(&value),
            "unparseable value in: {line}"
        );
    }
}

/// Serializes without validating — `io::to_json` (rightly) refuses
/// model-invalid instances, but the test needs corrupted bytes on the
/// wire to prove the server answers 422 instead of panicking.
fn instance_json_unchecked(inst: &QbssInstance) -> String {
    let jobs: Vec<String> = inst
        .jobs
        .iter()
        .map(|j| {
            format!(
                "{{\"id\": {}, \"release\": {}, \"deadline\": {}, \"query_load\": {}, \
                 \"upper_bound\": {}, \"exact\": {}}}",
                j.id,
                j.release,
                j.deadline,
                j.query_load,
                j.upper_bound,
                j.reveal_exact()
            )
        })
        .collect();
    format!("{{\"jobs\": [{}]}}", jobs.join(", "))
}

fn valid_instance_json() -> String {
    let inst = QbssInstance::new(vec![
        QJob::new(0, 0.0, 2.0, 0.2, 2.0, 0.3),
        QJob::new(1, 0.0, 3.0, 0.1, 1.5, 1.0),
    ]);
    io::to_json(&inst).expect("serializes")
}

#[test]
fn serve_scrapes_evaluates_and_drains() {
    let (child, addr) = start_server(&[]);
    wait_ready(&addr);

    // The index lists the endpoints.
    let (status, _, body) = http(&addr, "GET", "/", "");
    assert_eq!(status, 200);
    assert!(body.contains("/metrics"), "{body}");

    // Two idle scrapes are byte-identical and structurally Prometheus.
    let (s1, head1, scrape1) = http(&addr, "GET", "/metrics", "");
    let (s2, _, scrape2) = http(&addr, "GET", "/metrics", "");
    assert_eq!((s1, s2), (200, 200));
    assert!(head1.contains("text/plain; version=0.0.4"), "{head1}");
    assert_eq!(scrape1, scrape2, "idle scrapes must be byte-identical");
    assert_prometheus_parseable(&scrape1);

    // Health probes answer JSON and do not perturb the registry.
    let (status, _, health) = http(&addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert!(health.contains("\"status\": \"ok\""), "{health}");
    // The build fingerprint pins the probe to the binary: version from
    // the crate, git state best-effort (may be "unknown" off-repo).
    assert!(
        health.contains("\"build\": {\"version\": \"") && health.contains("\"git\": \""),
        "{health}"
    );
    let (_, _, scrape3) = http(&addr, "GET", "/metrics", "");
    assert_eq!(scrape1, scrape3, "probes must leave /metrics byte-stable");

    // A valid instance evaluates end to end.
    let (status, _, body) = http(&addr, "POST", "/evaluate?alg=avrq&alpha=3", &valid_instance_json());
    assert_eq!(status, 200, "{body}");
    for field in ["request_id", "algorithm", "energy", "max_speed", "outcome"] {
        assert!(body.contains(field), "missing `{field}` in {body}");
    }

    // `?explain=1` adds per-job decision attribution to the response;
    // the factors are present and the blame job named.
    let (status, _, body) =
        http(&addr, "POST", "/evaluate?alg=avrq&alpha=3&explain=1", &valid_instance_json());
    assert_eq!(status, 200, "{body}");
    for field in ["query_loss", "split_loss", "sched_loss", "blame_job", "\"jobs\""] {
        assert!(body.contains(field), "missing `{field}` in {body}");
    }
    // Without the flag the attribution slot is explicit null (stable
    // response shape), and a multi-machine explain is rejected up
    // front — attribution has no single-machine optimum to factor
    // against.
    let (status, _, body) = http(&addr, "POST", "/evaluate?alg=avrq", &valid_instance_json());
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"attribution\": null"), "{body}");
    let (status, _, body) =
        http(&addr, "POST", "/evaluate?alg=avrq-m:2&explain=1", &valid_instance_json());
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("single-machine"), "{body}");

    // A corrupted instance from the fault catalog maps onto the typed
    // 4xx taxonomy instead of panicking the worker.
    let base = QbssInstance::new(vec![
        QJob::new(0, 0.0, 2.0, 0.2, 2.0, 0.3),
        QJob::new(1, 0.0, 3.0, 0.1, 1.5, 1.0),
    ]);
    let mut corruptor = Corruptor::new(7);
    let corrupted = corruptor.apply(&base, Mutation::InvertedWindow).expect("applicable");
    let bad_json = instance_json_unchecked(&corrupted.instance);
    let (status, _, body) = http(&addr, "POST", "/evaluate", &bad_json);
    assert_eq!(status, 422, "model-invalid instance is 422: {body}");
    assert!(body.contains("\"kind\": \"model\""), "{body}");

    // Not-JSON is the client's syntax problem (400), unknown paths 404,
    // wrong methods 405.
    let (status, _, body) = http(&addr, "POST", "/evaluate", "{not json");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"kind\": \"syntax\""), "{body}");
    let (status, _, _) = http(&addr, "GET", "/nope", "");
    assert_eq!(status, 404);
    let (status, _, _) = http(&addr, "POST", "/metrics", "");
    assert_eq!(status, 405);

    // A sweep body runs on the engine and returns the aggregate.
    let (status, _, body) =
        http(&addr, "POST", "/sweep", r#"{"count": 2, "n": 5, "alg": "avrq", "alpha": 2.5}"#);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("avrq"), "{body}");
    let (status, _, body) = http(&addr, "POST", "/sweep", r#"{"alg": "yds"}"#);
    assert_eq!(status, 422, "{body}");
    assert!(body.contains("\"kind\": \"spec\""), "{body}");

    // The work endpoints (and only they) moved the registry, each
    // with a per-endpoint latency family next to the aggregate.
    let (_, _, scrape4) = http(&addr, "GET", "/metrics", "");
    assert!(scrape4.contains("serve_requests"), "{scrape4}");
    assert!(scrape4.contains("serve_request_dur_us_bucket"), "{scrape4}");
    assert!(scrape4.contains("serve_request_dur_us_evaluate_bucket"), "{scrape4}");
    assert!(scrape4.contains("serve_request_dur_us_sweep_bucket"), "{scrape4}");
    assert_prometheus_parseable(&scrape4);

    // The ring kept the request spans: /tracez renders them as HTML.
    let (status, head, body) = http(&addr, "GET", "/tracez", "");
    assert_eq!(status, 200);
    assert!(head.contains("text/html"), "{head}");
    assert!(body.contains("serve.request"), "{body}");
    let (status, _, jsonl) = http(&addr, "GET", "/tracez?format=jsonl", "");
    assert_eq!(status, 200);
    assert!(jsonl.lines().any(|l| l.contains("serve.request")), "{jsonl}");

    // ?target= narrows the stream to a dot-prefix without rewriting
    // the record bytes; a prefix nothing matches leaves at most the
    // (untimed, untargeted) metrics snapshots; a bad ?min_us is 400.
    let (status, _, filtered) =
        http(&addr, "GET", "/tracez?format=jsonl&target=serve.request", "");
    assert_eq!(status, 200);
    assert!(filtered.lines().any(|l| l.contains("serve.request")), "{filtered}");
    assert!(
        filtered.lines().all(|l| l.contains("serve.request") || l.contains("\"t\": \"metrics\"")),
        "{filtered}"
    );
    let (status, _, none) = http(&addr, "GET", "/tracez?format=jsonl&target=no.such", "");
    assert_eq!(status, 200);
    assert!(none.lines().all(|l| l.contains("\"t\": \"metrics\"")), "{none}");
    let (status, _, _) = http(&addr, "GET", "/tracez?min_us=soon", "");
    assert_eq!(status, 400);

    // /profilez folds the ring's spans into a flamegraph — and, being
    // a probe, leaves /metrics byte-stable.
    let (status, head, flame) = http(&addr, "GET", "/profilez", "");
    assert_eq!(status, 200);
    assert!(head.contains("text/html"), "{head}");
    assert!(flame.contains("serve.request"), "{flame}");
    let (status, _, folded) = http(&addr, "GET", "/profilez?format=folded", "");
    assert_eq!(status, 200);
    assert!(folded.lines().any(|l| l.starts_with("serve.request ")), "{folded}");
    let (_, _, scrape5) = http(&addr, "GET", "/metrics", "");
    assert_eq!(scrape4, scrape5, "/profilez and /tracez must not move the registry");

    // SIGTERM drains and exits 0 — the contract scripts rely on.
    sigterm(&child);
    assert_eq!(wait_exit(child), Some(0), "signalled drain must exit 0");
}

/// Every counter in the canonical [`qbss_core::WORK_COUNTERS`] catalog
/// must surface in the `/metrics` exposition once its code path has
/// run — the catalog is the source of truth, so a counter added to a
/// solver without a catalog entry (or vice versa) fails here.
#[test]
fn work_counters_surface_in_the_metrics_exposition() {
    let (child, addr) = start_server(&[]);
    wait_ready(&addr);

    // One evaluate per solver family: AVR/BKP/OA cover their stream
    // counters, any single-machine ratio computes OPT (YDS + cache),
    // and the multi-machine OAQ(m) plan runs Frank–Wolfe.
    for alg in ["avrq", "bkpq", "oaq", "oaq-m:2:4"] {
        let (status, _, body) =
            http(&addr, "POST", &format!("/evaluate?alg={alg}&alpha=3"), &valid_instance_json());
        assert_eq!(status, 200, "evaluate {alg}: {body}");
    }

    // A sweep with two algorithms on the same instances: the second
    // cell answers its OPT lookups from the shared cache
    // (`cache.opt_energy.hits`).
    let (status, _, body) = http(
        &addr,
        "POST",
        "/sweep",
        r#"{"count": 1, "n": 5, "alg": ["avrq", "oaq"], "alpha": 3}"#,
    );
    assert_eq!(status, 200, "{body}");

    // A streaming session drives the incremental engine (`solver.*`).
    let (status, _, body) = http(&addr, "POST", "/session?alg=avrq&alpha=3", "");
    assert_eq!(status, 200, "{body}");
    let id: u64 = body
        .split("\"session\": ")
        .nth(1)
        .and_then(|s| s.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no session id in {body}"));
    let job = "{\"id\": 0, \"release\": 0.0, \"deadline\": 2.0, \"query_load\": 0.2, \
               \"upper_bound\": 2.0, \"exact\": 0.3}";
    let (status, _, body) = http(&addr, "POST", &format!("/session/{id}/arrive"), job);
    assert_eq!(status, 200, "{body}");
    let (status, _, body) = http(&addr, "POST", &format!("/session/{id}/advance?t=1.0"), "");
    assert_eq!(status, 200, "{body}");
    let (status, _, body) = http(&addr, "POST", &format!("/session/{id}/finish"), "");
    assert_eq!(status, 200, "{body}");

    // The scrape lists every catalogued work counter with a positive
    // count — enumerated from the catalog, not a hand-rolled list.
    let (status, _, scrape) = http(&addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    for (name, _) in qbss_core::WORK_COUNTERS {
        let pname = qbss_telemetry::expo::sanitize_name(name);
        let value: u64 = scrape
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{pname} ")))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("work counter `{name}` missing from /metrics:\n{scrape}"));
        assert!(value > 0, "work counter `{name}` never fired ({pname} = 0)");
    }

    sigterm(&child);
    assert_eq!(wait_exit(child), Some(0));
}

/// Sends raw bytes (not necessarily valid HTTP) and returns whatever
/// came back — empty on a clean server-side close.
fn raw(addr: &str, bytes: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let _ = stream.write_all(bytes);
    let mut out = String::new();
    let _ = stream.read_to_string(&mut out);
    out
}

fn status_of(response: &str) -> Option<u16> {
    response.split_ascii_whitespace().nth(1)?.parse().ok()
}

/// The HTTP-layer chaos gate: every malformed or adversarial byte
/// stream must get a typed 4xx or a clean close — never a panic, never
/// a hang — and the server must stay ready afterwards.
#[test]
fn chaos_gate_malformed_requests_never_kill_the_server() {
    // Tight timeouts so the deliberately-stalled cases resolve fast.
    let (child, addr) =
        start_server(&["--request-timeout-ms", "2000", "--io-timeout-ms", "500"]);
    wait_ready(&addr);

    // Truncated request line, then EOF: 400 or clean close.
    let resp = raw(&addr, b"GET /nope");
    assert!(
        resp.is_empty() || status_of(&resp).is_some_and(|s| (400..500).contains(&s)),
        "truncated request line: {resp}"
    );

    // A header block past the 64 KB cap: typed 400, not an OOM spiral.
    let mut huge = b"GET / HTTP/1.1\r\n".to_vec();
    for _ in 0..3000 {
        huge.extend_from_slice(b"X-Garbage: aaaaaaaaaaaaaaaaaaaaaaaa\r\n");
    }
    // The server answers 400 and closes with our bytes still in
    // flight; depending on RST timing the client sees the 400 or an
    // empty/partial read. Either is a clean rejection.
    let resp = raw(&addr, &huge);
    assert!(
        resp.is_empty() || status_of(&resp) == Some(400),
        "huge header should be cleanly rejected: {resp}"
    );

    // Byte-by-byte split writes of a *valid* request still parse (the
    // reader must tolerate arbitrary fragmentation).
    {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        let req =
            format!("GET /healthz HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
        for b in req.as_bytes() {
            stream.write_all(&[*b]).expect("split write");
            stream.flush().expect("flush");
        }
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read");
        assert_eq!(status_of(&out), Some(200), "split writes: {out}");
    }

    // Premature close mid-body: Content-Length promises more bytes than
    // ever arrive — the worker must not wait forever (EOF → 400, or the
    // response is simply lost on the closed socket; either way no hang).
    {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        let req = format!(
            "POST /evaluate HTTP/1.1\r\nHost: {addr}\r\nContent-Length: 100000\r\n\r\n{{\"jobs\""
        );
        stream.write_all(req.as_bytes()).expect("send partial");
        drop(stream);
    }

    // A POST with no Content-Length is refused up front with a typed 411.
    let resp = raw(
        &addr,
        format!("POST /evaluate HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
    );
    assert_eq!(status_of(&resp), Some(411), "missing Content-Length: {resp}");
    assert!(resp.contains("length_required"), "{resp}");

    // Garbage Content-Length: typed 400 before any body read.
    let resp = raw(
        &addr,
        format!("POST /evaluate HTTP/1.1\r\nHost: {addr}\r\nContent-Length: banana\r\n\r\n")
            .as_bytes(),
    );
    assert_eq!(status_of(&resp), Some(400), "garbage Content-Length: {resp}");

    // A Content-Length over the 8 MB cap: typed 413, distinct from 400,
    // decided before the server reads a single body byte.
    let resp = raw(
        &addr,
        format!(
            "POST /evaluate HTTP/1.1\r\nHost: {addr}\r\nContent-Length: 999999999\r\n\
             Connection: close\r\n\r\n"
        )
        .as_bytes(),
    );
    assert_eq!(status_of(&resp), Some(413), "oversized body: {resp}");
    assert!(resp.contains("payload_too_large"), "{resp}");

    // Pipelined garbage after a valid request: the server answers the
    // first request and closes (Connection: close), never panicking on
    // the trailing bytes.
    let resp = raw(
        &addr,
        format!(
            "GET /healthz HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n\
             \x00\x01\x02NOT HTTP AT ALL\r\n\r\n"
        )
        .as_bytes(),
    );
    assert_eq!(status_of(&resp), Some(200), "pipelined garbage: {resp}");

    // After all of that: still alive, still ready, still serving work.
    let (status, _, _) = http(&addr, "GET", "/readyz", "");
    assert_eq!(status, 200, "server must stay ready after the chaos gate");
    let (status, _, body) = http(&addr, "POST", "/evaluate?alg=avrq", &valid_instance_json());
    assert_eq!(status, 200, "work still serves after chaos: {body}");

    sigterm(&child);
    assert_eq!(wait_exit(child), Some(0));
}

/// A slowloris client trickling header bytes is evicted by the request
/// deadline instead of parking a worker indefinitely, and the server
/// keeps serving everyone else meanwhile.
#[test]
fn slowloris_clients_are_evicted_by_the_deadline() {
    let (child, addr) =
        start_server(&["--request-timeout-ms", "600", "--io-timeout-ms", "300"]);
    wait_ready(&addr);

    // Trickle one header byte every 100 ms from a would-be slowloris;
    // the per-request wall clock (600 ms) must cut it off even though
    // each individual byte beats the 300 ms inactivity timeout.
    let loris_addr = addr.clone();
    let started = Instant::now();
    let loris = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(&loris_addr).expect("connect");
        let drip = b"GET / HTTP/1.1\r\nX-Slow: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n";
        for chunk in drip.iter() {
            if stream.write_all(&[*chunk]).is_err() {
                break; // server hung up on us — exactly the point
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        let mut out = String::new();
        let _ = stream.read_to_string(&mut out);
        out
    });

    // While the slowloris drips, normal requests keep flowing — the
    // worker pool is not starved by the slow client.
    for _ in 0..3 {
        let (status, _, _) = http(&addr, "GET", "/readyz", "");
        assert_eq!(status, 200, "server must serve others during a slowloris");
        std::thread::sleep(Duration::from_millis(100));
    }

    let resp = loris.join().expect("loris thread");
    let elapsed = started.elapsed();
    // Evicted: either a typed 408 or a bare close, well before the
    // trickle would have finished on its own (~6 s for 60 bytes).
    assert!(
        resp.is_empty() || status_of(&resp) == Some(408),
        "slowloris should see 408 or a close: {resp}"
    );
    assert!(
        elapsed < Duration::from_secs(5),
        "slowloris must be evicted by the deadline, took {elapsed:?}"
    );
    if let Some(408) = status_of(&resp) {
        assert!(resp.contains("\"kind\": \"timeout\""), "{resp}");
    }

    sigterm(&child);
    assert_eq!(wait_exit(child), Some(0));
}

/// Admission control sheds over-budget work with a typed 429 carrying
/// `Retry-After`, surfaces the shed in /metrics and /healthz, and the
/// server never answers a connection-level 5xx for it.
#[test]
fn over_budget_sweeps_are_shed_with_typed_429s() {
    // Budget of 20 cells: the first (idle-server) sweep is admitted
    // regardless, so park one big sweep and race a second one into it.
    let (child, addr) = start_server(&["--budget", "20", "--workers", "4"]);
    wait_ready(&addr);

    // 150 × 9 × 2 = 2700 cells: far over budget, admitted only via the
    // idle-server rule, and long-running enough to hold the budget
    // while the cheap probes below race into it.
    let big = r#"{"count": 150, "n": 12, "alg": "all", "alpha": [2, 3]}"#;
    let probe = r#"{"count": 2, "n": 5, "alg": "avrq", "alpha": 2.5}"#;
    let bg_addr = addr.clone();
    let parked = std::thread::spawn(move || http(&bg_addr, "POST", "/sweep", big));
    // Let the big sweep claim the budget, then offer more work: while
    // it runs, in-flight cost exceeds the budget, so *any* probe sheds.
    std::thread::sleep(Duration::from_millis(100));
    let mut saw_429 = false;
    let mut retry_after = false;
    for _ in 0..20 {
        let (status, head, body) = http(&addr, "POST", "/sweep", probe);
        assert!(status == 200 || status == 429, "only 200/429 expected, got {status}: {body}");
        if status == 429 {
            saw_429 = true;
            retry_after |= head.to_ascii_lowercase().contains("retry-after:");
            assert!(body.contains("\"kind\": \"overloaded\""), "{body}");
            break;
        }
        // Readiness must hold while the server sheds.
        let (ready, _, _) = http(&addr, "GET", "/readyz", "");
        assert_eq!(ready, 200, "/readyz must stay 200 under load");
    }
    let (status, _, _) = parked.join().expect("parked sweep");
    assert_eq!(status, 200, "the admitted sweep completes");
    assert!(saw_429, "a concurrent over-budget sweep must be shed");
    assert!(retry_after, "429 responses must carry Retry-After");

    // The shed is visible on both surfaces.
    let (_, _, metrics) = http(&addr, "GET", "/metrics", "");
    assert!(metrics.contains("serve_shed"), "{metrics}");
    let (_, _, health) = http(&addr, "GET", "/healthz", "");
    assert!(health.contains("\"shed\": "), "{health}");
    assert!(health.contains("\"budget\": "), "{health}");

    sigterm(&child);
    assert_eq!(wait_exit(child), Some(0));
}

/// Extracts a top-level number field from a JSON response body.
fn json_num(body: &str, field: &str) -> f64 {
    qbss_telemetry::json_parse(body)
        .unwrap_or_else(|e| panic!("unparseable body ({e}): {body}"))
        .get(field)
        .and_then(qbss_telemetry::JsonValue::as_f64)
        .unwrap_or_else(|| panic!("no `{field}` in {body}"))
}

/// The streaming-session lifecycle over real TCP: open → arrive →
/// advance → finish, with the finish bit-identical to `/evaluate` on
/// the same jobs, and the typed-error taxonomy on every wrong turn.
#[test]
fn streaming_sessions_run_end_to_end_and_match_evaluate() {
    let (child, addr) = start_server(&[]);
    wait_ready(&addr);

    let job0 = r#"{"id": 0, "release": 0.0, "deadline": 2.0, "query_load": 0.2,
                   "upper_bound": 2.0, "exact": 0.3}"#;
    let job1 = r#"{"id": 1, "release": 0.0, "deadline": 3.0, "query_load": 0.1,
                   "upper_bound": 1.5, "exact": 1.0}"#;

    // Open a session and walk the lifecycle.
    let (status, _, body) = http(&addr, "POST", "/session?alg=oaq&alpha=3", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"algorithm\": \"oaq\""), "{body}");
    let id = json_num(&body, "session") as u64;

    let (status, _, body) = http(&addr, "POST", &format!("/session/{id}/arrive"), job0);
    assert_eq!(status, 200, "{body}");
    assert!(
        json_num(&body, "speed_after") > json_num(&body, "speed_before"),
        "an arrival raises the live speed: {body}"
    );
    let (status, _, body) = http(&addr, "POST", &format!("/session/{id}/arrive"), job1);
    assert_eq!(status, 200, "{body}");
    assert_eq!(json_num(&body, "jobs"), 2.0, "{body}");

    // A rejected event leaves the session open and unchanged: the
    // duplicate id answers 422 and the session still finishes below.
    let (status, _, body) = http(&addr, "POST", &format!("/session/{id}/arrive"), job1);
    assert_eq!(status, 422, "{body}");
    assert!(body.contains("\"kind\": \"stream\""), "{body}");
    // Syntactic garbage is the 400 class, distinct from stream errors.
    let (status, _, body) = http(&addr, "POST", &format!("/session/{id}/arrive"), "{not json");
    assert_eq!(status, 400, "{body}");

    let (status, _, body) = http(&addr, "POST", &format!("/session/{id}/advance?t=1.0"), "");
    assert_eq!(status, 200, "{body}");
    let (status, _, body) = http(&addr, "POST", &format!("/session/{id}/advance"), "");
    assert_eq!(status, 400, "advance without ?t= is bad input: {body}");

    let (status, _, finished) = http(&addr, "POST", &format!("/session/{id}/finish"), "");
    assert_eq!(status, 200, "{finished}");
    assert!(finished.contains("\"outcome\""), "{finished}");

    // The streamed outcome is bit-identical to the batch endpoint fed
    // the same jobs.
    let (status, _, batch) = http(&addr, "POST", "/evaluate?alg=oaq&alpha=3", &valid_instance_json());
    assert_eq!(status, 200, "{batch}");
    assert_eq!(
        json_num(&finished, "energy").to_bits(),
        json_num(&batch, "energy").to_bits(),
        "stream vs batch energy:\n{finished}\n{batch}"
    );
    assert_eq!(
        json_num(&finished, "max_speed").to_bits(),
        json_num(&batch, "max_speed").to_bits()
    );

    // Finishing consumed the session; everything after it is 404.
    let (status, _, _) = http(&addr, "POST", &format!("/session/{id}/finish"), "");
    assert_eq!(status, 404);
    let (status, _, _) = http(&addr, "POST", "/session/99999/arrive", job0);
    assert_eq!(status, 404);
    let (status, _, _) = http(&addr, "POST", &format!("/session/{id}/frobnicate"), "");
    assert_eq!(status, 404);
    let (status, _, _) = http(&addr, "GET", "/session", "");
    assert_eq!(status, 405, "session endpoints are POST-only");
    // Batch-only algorithms and bad exponents are rejected at open.
    let (status, _, body) = http(&addr, "POST", "/session?alg=crcd", "");
    assert_eq!(status, 422, "{body}");
    let (status, _, body) = http(&addr, "POST", "/session?alg=nope", "");
    assert_eq!(status, 400, "{body}");

    // The open/reaped counts surface on /healthz.
    let (_, _, health) = http(&addr, "GET", "/healthz", "");
    assert!(health.contains("\"sessions\": "), "{health}");

    sigterm(&child);
    assert_eq!(wait_exit(child), Some(0));
}

/// SIGTERM with a session mid-stream: the drain discards the open
/// session and the process still exits 0.
#[test]
fn sigterm_with_an_open_session_still_drains_cleanly() {
    let (child, addr) = start_server(&[]);
    wait_ready(&addr);

    let (status, _, body) = http(&addr, "POST", "/session?alg=avrq", "");
    assert_eq!(status, 200, "{body}");
    let id = json_num(&body, "session") as u64;
    let job = r#"{"id": 0, "release": 0.0, "deadline": 2.0, "query_load": 0.2,
                  "upper_bound": 2.0, "exact": 0.3}"#;
    let (status, _, _) = http(&addr, "POST", &format!("/session/{id}/arrive"), job);
    assert_eq!(status, 200);

    sigterm(&child);
    assert_eq!(wait_exit(child), Some(0), "drain with an open session must exit 0");
}

#[test]
fn sigterm_during_an_inflight_sweep_still_drains_cleanly() {
    let (child, addr) = start_server(&[]);
    wait_ready(&addr);

    // Park a non-trivial sweep on a worker, then signal while it runs.
    let sweep_addr = addr.clone();
    let inflight = std::thread::spawn(move || {
        http(
            &sweep_addr,
            "POST",
            "/sweep",
            r#"{"count": 30, "n": 14, "alg": "all", "alpha": [2, 3]}"#,
        )
    });
    std::thread::sleep(Duration::from_millis(150));
    sigterm(&child);

    // The in-flight request completes (drain, not abort) …
    let (status, _, body) = inflight.join().expect("sweep thread");
    assert_eq!(status, 200, "in-flight work must drain: {body}");
    // … and the process still exits 0.
    assert_eq!(wait_exit(child), Some(0));
}
