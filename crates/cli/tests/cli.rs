//! End-to-end tests of the `qbss` binary's observability surface: exit
//! codes for bad `QBSS_LOG` specs, stdout purity under tracing, the
//! `trace summarize` round-trip, and aggregate byte-stability with
//! telemetry on. Each test runs the real binary in a subprocess, so the
//! process-global telemetry pipeline is isolated per invocation.

use std::path::PathBuf;
use std::process::{Command, Output};

fn qbss(args: &[&str]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_qbss"));
    cmd.args(args).env_remove("QBSS_LOG");
    cmd
}

fn run_ok(cmd: &mut Command) -> Output {
    let out = cmd.output().expect("binary runs");
    assert!(
        out.status.success(),
        "expected success, got {:?}\nstderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("qbss-cli-e2e");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

const SWEEP: &[&str] = &[
    "sweep", "--count", "4", "--n", "6", "--alg", "avrq,bkpq", "--alpha", "2", "--shards", "2",
];

#[test]
fn bad_qbss_log_spec_is_exit_2_on_every_instrumented_command() {
    for args in [&["run", "--alg", "avrq", "--in", "x.json"][..], SWEEP, &["generate"][..]] {
        let out = qbss(args)
            .env("QBSS_LOG", "engine=loud")
            .output()
            .expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("QBSS_LOG"), "{args:?}: {err}");
    }
}

#[test]
fn traced_csv_sweep_keeps_stdout_pure() {
    let trace = tmp("purity.jsonl");
    let out = run_ok(qbss(SWEEP).args(["--format", "csv", "--trace"]).arg(&trace));
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.starts_with("algorithm,alpha,"), "CSV header first: {stdout}");
    assert!(
        !stdout.contains('{'),
        "no JSON (instrumentation or records) may leak onto stdout:\n{stdout}"
    );
    // Everything recorded went to the trace file, schema-valid, with
    // spans from the CLI boundary down to the solver loops.
    let text = std::fs::read_to_string(&trace).expect("trace written");
    let records = qbss_telemetry::trace::parse_trace(&text).expect("schema-valid");
    let summary = qbss_telemetry::trace::summarize(&records);
    assert!(summary.spans > 0 && summary.metrics > 0, "{summary:?}");
    assert!(summary.coverage >= 0.95, "coverage {:.3}", summary.coverage);
    assert!(
        summary.tree.iter().any(|n| n.path.first().map(String::as_str) == Some("cli.sweep")),
        "cli.sweep is the root phase: {:?}",
        summary.tree
    );
}

#[test]
fn stderr_event_stream_is_pure_jsonl() {
    // A bare QBSS_LOG (no --trace) streams events to stderr; the
    // human status lines and the instrumentation JSON must fold into
    // that stream as records, not interleave with it.
    let out = run_ok(qbss(SWEEP).env("QBSS_LOG", "info"));
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    let records =
        qbss_telemetry::trace::parse_trace(&stderr).expect("stderr is record-per-line JSONL");
    assert!(
        records.iter().any(|r| matches!(
            r,
            qbss_telemetry::trace::TraceRecord::Event(e) if e.msg.starts_with("swept")
        )),
        "status line rides in the stream:\n{stderr}"
    );
    assert!(
        records
            .iter()
            .any(|r| matches!(r, qbss_telemetry::trace::TraceRecord::Metrics(m) if m.scope == "engine")),
        "instrumentation rides as a metrics record:\n{stderr}"
    );
}

#[test]
fn trace_summarize_round_trip() {
    let trace = tmp("summarize.jsonl");
    run_ok(qbss(SWEEP).arg("--trace").arg(&trace));
    let out = run_ok(qbss(&["trace", "summarize"]).arg(&trace).args(["--top", "2"]));
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("phase tree"), "{text}");
    assert!(text.contains("cli.sweep"), "{text}");
    assert!(text.contains("engine.cell"), "{text}");
    assert!(text.contains("slowest"), "{text}");

    // Unknown action and malformed traces are bad input (exit 2);
    // missing files are I/O failures (exit 3).
    let bad = qbss(&["trace", "explode"]).output().expect("runs");
    assert_eq!(bad.status.code(), Some(2));
    let missing = qbss(&["trace", "summarize", "/no/such/trace.jsonl"]).output().expect("runs");
    assert_eq!(missing.status.code(), Some(3));
}

#[test]
fn trace_commands_read_stdin_when_file_is_dash() {
    use std::io::Write;
    use std::process::Stdio;

    let trace = tmp("stdin.jsonl");
    run_ok(qbss(SWEEP).arg("--trace").arg(&trace));
    let bytes = std::fs::read(&trace).expect("trace written");

    // `qbss trace summarize -` digests the piped trace like the file.
    let mut child = qbss(&["trace", "summarize", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawns");
    child.stdin.take().expect("stdin").write_all(&bytes).expect("pipe trace");
    let out = child.wait_with_output().expect("runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let piped = String::from_utf8(out.stdout).expect("utf8");
    let from_file = run_ok(qbss(&["trace", "summarize"]).arg(&trace));
    assert_eq!(piped, String::from_utf8(from_file.stdout).expect("utf8"));

    // `qbss trace report -` renders the same HTML, and a malformed
    // stream is bad input (exit 2) attributed to stdin.
    let mut child = qbss(&["trace", "report", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawns");
    child.stdin.take().expect("stdin").write_all(&bytes).expect("pipe trace");
    let out = child.wait_with_output().expect("runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).starts_with("<!DOCTYPE html>"));

    let mut child = qbss(&["trace", "summarize", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawns");
    child.stdin.take().expect("stdin").write_all(b"{not jsonl\n").expect("pipe junk");
    let out = child.wait_with_output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("stdin"));
}

#[test]
fn perf_gate_explain_prints_the_full_breakdown() {
    use qbss_bench::perf::{Baseline, EnvFingerprint, PerfConfig, ScenarioStats};
    use std::collections::BTreeMap;

    let stats = |samples: &[f64]| {
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[sorted.len() / 2];
        let mut dev: Vec<f64> = samples.iter().map(|x| (x - median).abs()).collect();
        dev.sort_by(f64::total_cmp);
        ScenarioStats {
            cells: 1,
            samples_ms: samples.to_vec(),
            median_ms: median,
            mad_ms: dev[dev.len() / 2],
            min_ms: sorted[0],
        }
    };
    let baseline = |entries: &[(&str, &[f64])]| Baseline {
        env: EnvFingerprint {
            host: "h".into(),
            os: "linux".into(),
            arch: "x86_64".into(),
            cores: 1,
            rustc: "rustc test".into(),
        },
        config: PerfConfig::default(),
        scenarios: entries
            .iter()
            .map(|(name, s)| (name.to_string(), stats(s)))
            .collect::<BTreeMap<String, ScenarioStats>>(),
        profiles: BTreeMap::new(),
        work_counters: BTreeMap::new(),
    };

    let base_path = tmp("explain_base.json");
    let slow_path = tmp("explain_slow.json");
    std::fs::write(&base_path, baseline(&[("a", &[100.0, 102.0, 98.0])]).to_json())
        .expect("write base");
    std::fs::write(&slow_path, baseline(&[("a", &[200.0, 202.0, 198.0])]).to_json())
        .expect("write slow");

    let out = qbss(&["perf", "gate", "--explain", "--base"])
        .arg(&base_path)
        .arg("--new")
        .arg(&slow_path)
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(3), "regression still exits 3 with --explain");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in
        ["scenario", "base ms", "mad ms", "new ms", "limit ms", "delta ms", "REGRESSED",
         "limit = base + max(3×mad, 0.25×base)"]
    {
        assert!(stdout.contains(needle), "missing `{needle}` in:\n{stdout}");
    }
}

#[test]
fn aggregate_bytes_do_not_depend_on_telemetry() {
    let plain = tmp("agg_plain.json");
    let traced = tmp("agg_traced.json");
    let trace = tmp("agg.jsonl");
    run_ok(qbss(SWEEP).arg("--out").arg(&plain));
    run_ok(
        qbss(SWEEP)
            .arg("--out")
            .arg(&traced)
            .arg("--trace")
            .arg(&trace)
            .env("QBSS_LOG", "debug"),
    );
    let a = std::fs::read(&plain).expect("plain aggregate");
    let b = std::fs::read(&traced).expect("traced aggregate");
    assert_eq!(a, b, "aggregate must be byte-identical with telemetry on or off");
    // The side-band instrumentation file still lands next to --out.
    assert!(std::fs::metadata(format!("{}.instr.json", plain.display())).is_ok());
}

#[test]
fn perf_record_compare_and_gate_end_to_end() {
    let base = tmp("perf_base.json");
    // Record the smallest scenario once, cheaply.
    let record = &[
        "perf", "record", "--scenarios", "ci-small", "--repeats", "2", "--warmup", "0",
        "--shards", "1", "--out",
    ];
    let out = run_ok(qbss(record).arg(&base));
    assert!(String::from_utf8_lossy(&out.stderr).contains("wrote perf baseline"));
    let text = std::fs::read_to_string(&base).expect("baseline written");
    let recorded = qbss_bench::perf::Baseline::parse(&text).expect("schema-valid baseline");
    assert!(recorded.scenarios.contains_key("ci-small"));

    // Gating a baseline against itself never regresses.
    let out = run_ok(qbss(&["perf", "gate", "--base"]).arg(&base).arg("--new").arg(&base));
    assert!(String::from_utf8_lossy(&out.stdout).contains("no perf regression"));

    // Doctor a copy 10× slower: compare reports it (exit 0), gate
    // fails it (exit 3), and QBSS_BLESS=1 re-blesses instead.
    let mut slow = recorded.clone();
    for s in slow.scenarios.values_mut() {
        s.median_ms *= 10.0;
        s.min_ms *= 10.0;
        for x in &mut s.samples_ms {
            *x *= 10.0;
        }
    }
    let slow_path = tmp("perf_slow.json");
    std::fs::write(&slow_path, slow.to_json()).expect("write doctored baseline");

    let out = run_ok(qbss(&["perf", "compare"]).arg(&base).arg(&slow_path));
    assert!(String::from_utf8_lossy(&out.stdout).contains("REGRESSED"));

    let gate = qbss(&["perf", "gate", "--base"])
        .arg(&base)
        .arg("--new")
        .arg(&slow_path)
        .output()
        .expect("runs");
    assert_eq!(gate.status.code(), Some(3), "regression must exit 3");
    assert!(String::from_utf8_lossy(&gate.stderr).contains("regressed"));

    let blessed_base = tmp("perf_bless.json");
    std::fs::copy(&base, &blessed_base).expect("copy baseline");
    run_ok(
        qbss(&["perf", "gate", "--base"])
            .arg(&blessed_base)
            .arg("--new")
            .arg(&slow_path)
            .env("QBSS_BLESS", "1"),
    );
    let blessed = std::fs::read_to_string(&blessed_base).expect("re-blessed");
    assert_eq!(blessed, slow.to_json(), "bless replaces the baseline with the new numbers");

    // Unknown scenario names are bad input.
    let bad = qbss(&["perf", "record", "--scenarios", "bogus"]).output().expect("runs");
    assert_eq!(bad.status.code(), Some(2));
}

#[test]
fn quality_record_gate_and_bless_end_to_end() {
    let base = tmp("quality_base.json");
    // Record the smallest pinned scenario; the gate is exact, so the
    // same binary re-measured must be byte-equal per scenario.
    let out = run_ok(
        qbss(&["quality", "record", "--scenarios", "multi-machine", "--out"]).arg(&base),
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("wrote quality baseline"));
    let text = std::fs::read_to_string(&base).expect("baseline written");
    let recorded = qbss_bench::quality::QualityBaseline::parse(&text).expect("schema-valid");
    assert!(recorded.scenarios.contains_key("multi-machine"));

    // Gate against a live re-measure: pinned seeds, clean gate.
    let out = run_ok(qbss(&["quality", "gate", "--base"]).arg(&base));
    assert!(String::from_utf8_lossy(&out.stdout).contains("no quality regression"));

    // Doctor the committed base to claim a *better* max than measured:
    // the re-measure is now worse than the baseline, the gate exits 3,
    // and --explain names the offending scenario and worst cell.
    let mut doctored = recorded.clone();
    for s in doctored.scenarios.values_mut() {
        for g in &mut s.groups {
            g.max *= 0.5;
            if let Some(h) = g.headroom.as_mut() {
                *h *= 0.5;
            }
        }
    }
    let doctored_path = tmp("quality_doctored.json");
    std::fs::write(&doctored_path, doctored.to_json()).expect("write doctored baseline");
    let gate = qbss(&["quality", "gate", "--explain", "--base"])
        .arg(&doctored_path)
        .output()
        .expect("runs");
    assert_eq!(gate.status.code(), Some(3), "exact gate must fail on any increase");
    let stdout = String::from_utf8_lossy(&gate.stdout);
    assert!(stdout.contains("scenario `multi-machine`"), "{stdout}");
    assert!(stdout.contains("worst cell: seed"), "{stdout}");
    assert!(String::from_utf8_lossy(&gate.stderr).contains("quality regression"));

    // QBSS_BLESS=1 re-records the baseline instead of failing.
    run_ok(
        qbss(&["quality", "gate", "--base"]).arg(&doctored_path).env("QBSS_BLESS", "1"),
    );
    let blessed = std::fs::read_to_string(&doctored_path).expect("re-blessed");
    let blessed = qbss_bench::quality::QualityBaseline::parse(&blessed).expect("valid");
    assert_eq!(
        blessed.scenarios, recorded.scenarios,
        "bless restores the measured statistics (build info may differ)"
    );

    // compare is non-fatal; unknown scenarios are bad input.
    let out = run_ok(qbss(&["quality", "compare"]).arg(&base).arg(&doctored_path));
    assert!(String::from_utf8_lossy(&out.stdout).contains("no quality regression"));
    let bad = qbss(&["quality", "record", "--scenarios", "bogus"]).output().expect("runs");
    assert_eq!(bad.status.code(), Some(2));
}

#[test]
fn explain_factors_the_ratio_and_writes_the_timeline() {
    // JSON mode: the factors multiply back to the ratio within 1e-9.
    let out = run_ok(&mut qbss(&[
        "explain", "--alg", "avrq", "--n", "8", "--seed", "5", "--alpha", "2", "--format",
        "json",
    ]));
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    let v = qbss_telemetry::json_parse(stdout.trim()).expect("valid JSON");
    let num = |k: &str| v.get(k).and_then(qbss_telemetry::JsonValue::as_f64).expect("number");
    let product = num("query_loss") * num("split_loss") * num("sched_loss");
    let ratio = num("ratio");
    assert!((product - ratio).abs() <= 1e-9 * ratio.max(1.0), "{product} vs {ratio}");
    assert!(v.get("blame_job").is_some() && v.get("jobs").is_some(), "{stdout}");

    // Table mode names the blame job; --html writes a self-contained
    // timeline with both profiles and no scripts.
    let html_path = tmp("explain_timeline.html");
    let out = run_ok(
        qbss(&["explain", "--alg", "bkpq", "--n", "6", "--seed", "1", "--html"]).arg(&html_path),
    );
    let table = String::from_utf8(out.stdout).expect("utf8");
    assert!(table.contains("<- blame"), "{table}");
    assert!(table.contains("energy ratio:"), "{table}");
    let html = std::fs::read_to_string(&html_path).expect("timeline written");
    assert!(html.starts_with("<!DOCTYPE html>"));
    assert!(html.contains("ALG") && html.contains("OPT"), "legend carries both series");
    assert!(!html.contains("<script"), "no-scripts discipline");

    // A multi-machine algorithm has no YDS ladder to attribute against:
    // typed bad input, not a panic.
    let out = qbss(&["explain", "--alg", "avrq-m:2", "--n", "4"]).output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("single-machine"));

    // --in with generator flags is contradictory input.
    let out = qbss(&["explain", "--alg", "avrq", "--in", "x.json", "--n", "4"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn version_reports_the_build_fingerprint() {
    let out = run_ok(&mut qbss(&["--version"]));
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.starts_with("qbss "), "{stdout}");
    assert!(stdout.contains('(') && stdout.contains(')'), "git state present: {stdout}");
}

#[test]
fn audited_sweep_is_clean_for_every_algorithm() {
    let out = run_ok(&mut qbss(&[
        "sweep", "--count", "2", "--n", "6", "--alg", "all", "--alpha", "2", "--shards", "2",
        "--audit", "--format", "csv",
    ]));
    let stderr = String::from_utf8_lossy(&out.stderr);
    // 2 instances × 9 configurations × 1 α, all audited, none in breach.
    assert!(stderr.contains("audit: checked 18 schedule(s), 0 violation(s)"), "{stderr}");
    assert!(!stderr.contains("invariant violation"), "{stderr}");
}

#[test]
fn trace_report_and_json_summary_agree_with_the_text_digest() {
    let trace = tmp("report.jsonl");
    run_ok(qbss(SWEEP).arg("--trace").arg(&trace));

    let json_out = run_ok(qbss(&["trace", "summarize"]).arg(&trace).args(["--format", "json"]));
    let json_text = String::from_utf8(json_out.stdout).expect("utf8");
    let summary = qbss_telemetry::json_parse(&json_text).expect("canonical JSON digest");
    let spans =
        summary.get("spans").and_then(qbss_telemetry::JsonValue::as_u64).expect("spans count");
    assert!(spans > 0);
    assert!(summary.get("tree").is_some() && summary.get("histograms").is_some());

    // The digest computed in-process matches what the CLI printed.
    let text = std::fs::read_to_string(&trace).expect("trace file");
    let records = qbss_telemetry::trace::parse_trace(&text).expect("schema-valid");
    assert_eq!(json_text.trim_end(), qbss_telemetry::trace::summarize(&records).to_json());

    let html_path = tmp("report.html");
    let out = run_ok(qbss(&["trace", "report"]).arg(&trace).arg("--out").arg(&html_path));
    assert!(String::from_utf8_lossy(&out.stderr).contains("wrote HTML report"));
    let html = std::fs::read_to_string(&html_path).expect("report written");
    assert!(html.starts_with("<!DOCTYPE html>"));
    assert!(html.contains("cli.sweep") && html.contains("engine.cell"), "phase tree rendered");
    for needle in ["http://", "https://", "src=", "href=", "@import", "url("] {
        assert!(!html.contains(needle), "external asset `{needle}` in report");
    }
}

#[test]
fn removed_aliases_are_rejected_as_unknown_flags() {
    let inst = tmp("alias_inst.json");
    run_ok(qbss(&["generate", "--n", "6", "--seed", "1", "--out"]).arg(&inst));
    for alias in [["--algorithm", "avrq"], ["--machines", "2"]] {
        let out = qbss(&["run"])
            .args(alias)
            .args(["--alg", "avrq", "--in"])
            .arg(&inst)
            .output()
            .expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "{alias:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("unknown flag"), "{alias:?}: {err}");
    }
}

#[test]
fn stream_matches_run_bitwise_over_the_binary() {
    // The same seed yields the same instance as a document and as a
    // JSONL arrival stream; the streaming path must price it
    // bit-identically to the batch path.
    let inst = tmp("stream_inst.json");
    let ev = tmp("stream_events.jsonl");
    run_ok(qbss(&["generate", "--n", "12", "--seed", "7", "--out"]).arg(&inst));
    run_ok(qbss(&["generate", "--n", "12", "--seed", "7", "--events", "--out"]).arg(&ev));
    for alg in ["avrq", "bkpq", "oaq"] {
        let run_out =
            run_ok(qbss(&["run", "--alg", alg, "--in"]).arg(&inst).args(["--format", "json"]));
        let stream_out =
            run_ok(qbss(&["stream", "--alg", alg, "--in"]).arg(&ev).args(["--format", "json"]));
        let batch = qbss_telemetry::json_parse(&String::from_utf8(run_out.stdout).expect("utf8"))
            .expect("run JSON");
        let streamed =
            qbss_telemetry::json_parse(&String::from_utf8(stream_out.stdout).expect("utf8"))
                .expect("stream JSON");
        for key in ["energy", "max_speed"] {
            let a = batch.get(key).and_then(qbss_telemetry::JsonValue::as_f64).expect(key);
            let b = streamed.get(key).and_then(qbss_telemetry::JsonValue::as_f64).expect(key);
            assert_eq!(a.to_bits(), b.to_bits(), "{alg}/{key}");
        }
    }
}

#[test]
fn stream_reads_events_from_stdin() {
    use std::io::Write;
    use std::process::Stdio;
    let ev = tmp("stdin_events.jsonl");
    run_ok(qbss(&["generate", "--n", "8", "--seed", "3", "--events", "--out"]).arg(&ev));
    let body = std::fs::read(&ev).expect("events file");
    let mut child = qbss(&["stream", "--alg", "oaq", "--format", "csv"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn");
    child.stdin.as_mut().expect("stdin").write_all(&body).expect("pipe");
    let out = child.wait_with_output().expect("wait");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.starts_with("algorithm,arrivals,advances,"), "{stdout}");
    assert!(stdout.contains("OAQ,8,0,8,"), "{stdout}");
}
