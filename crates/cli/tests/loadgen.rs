//! End-to-end tests of `qbss loadgen`: schedule determinism through
//! the real binary (`--plan-only`), and the shed path proven against a
//! budget-starved in-process server (`--spawn --budget 1`).

#![cfg(unix)]

use std::process::{Command, Output};

use qbss_telemetry::{json_parse, JsonValue};

fn qbss(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_qbss"))
        .args(args)
        .env_remove("QBSS_LOG")
        .output()
        .expect("qbss runs")
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Walks a dotted path (`results.shed`) through parsed JSON.
fn lookup<'a>(root: &'a JsonValue, path: &str) -> &'a JsonValue {
    let mut cur = root;
    for key in path.split('.') {
        cur = cur.get(key).unwrap_or_else(|| panic!("missing `{path}` (at `{key}`)"));
    }
    cur
}

fn num(root: &JsonValue, path: &str) -> f64 {
    match lookup(root, path) {
        JsonValue::Num(v) => *v,
        other => panic!("`{path}` is not a number: {other:?}"),
    }
}

#[test]
fn plan_only_is_deterministic_in_the_seed() {
    let args = [
        "loadgen", "--plan-only", "--rps", "120", "--duration-s", "1", "--seed", "42",
        "--mix", "mixed", "--n", "6",
    ];
    let a = qbss(&args);
    let b = qbss(&args);
    assert!(a.status.success(), "{}", String::from_utf8_lossy(&a.stderr));
    assert_eq!(
        stdout_of(&a),
        stdout_of(&b),
        "same seed + same flags must produce a byte-identical plan"
    );
    let plan = json_parse(stdout_of(&a).trim()).expect("plan is canonical JSON");
    assert!(num(&plan, "requests") > 0.0, "the plan holds arrivals");

    // A different seed reshuffles arrivals and payloads: new hash.
    let mut reseeded = args;
    reseeded[7] = "43";
    let c = qbss(&reseeded);
    assert!(c.status.success());
    let plan_c = json_parse(stdout_of(&c).trim()).expect("plan parses");
    let hash = |p: &JsonValue| match lookup(p, "hash") {
        JsonValue::Str(s) => s.clone(),
        other => panic!("hash is not a string: {other:?}"),
    };
    assert_ne!(hash(&plan), hash(&plan_c), "different seeds must differ");

    // Adversarial bursts change the schedule too, deterministically.
    let mut adv = args.to_vec();
    adv.push("--adversarial");
    let d1 = qbss(&adv);
    let d2 = qbss(&adv);
    assert!(d1.status.success(), "{}", String::from_utf8_lossy(&d1.stderr));
    assert_eq!(stdout_of(&d1), stdout_of(&d2), "adversarial plans are deterministic");
    let plan_d = json_parse(stdout_of(&d1).trim()).expect("plan parses");
    assert!(num(&plan_d, "requests") > num(&plan, "requests"), "bursts add arrivals");
}

#[test]
fn budget_starved_spawn_run_sheds_with_typed_429s_and_zero_5xx() {
    let dir = std::env::temp_dir().join(format!("qbss-loadgen-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let out_path = dir.join("report.json");
    let out = qbss(&[
        "loadgen",
        "--spawn",
        "--budget",
        "1",
        "--rps",
        "150",
        "--duration-s",
        "1",
        "--seed",
        "7",
        "--mix",
        "sweep",
        "--connections",
        "8",
        "--n",
        "6",
        "--out",
        out_path.to_str().expect("utf-8 path"),
    ]);
    assert!(
        out.status.success(),
        "loadgen must exit 0: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let written = std::fs::read_to_string(&out_path).expect("report file written");
    assert_eq!(written.trim(), stdout_of(&out).trim(), "--out mirrors stdout");
    let report = json_parse(written.trim()).expect("report is canonical JSON");

    // Every planned request fired and got an HTTP answer — overload is
    // absorbed by shedding, not by dropping connections.
    let sent = num(&report, "results.sent");
    assert!(sent > 0.0);
    assert_eq!(num(&report, "results.completed"), sent, "no request may go unanswered");
    assert_eq!(num(&report, "results.transport_errors"), 0.0);

    // The starved budget shed most of the burst with typed 429s …
    let shed = num(&report, "results.shed");
    assert!(shed >= 1.0, "a budget of 1 cell must shed concurrent sweeps: {written}");
    assert!(num(&report, "results.shed_rate") > 0.0);
    assert_eq!(
        lookup(&report, "results.retry_after_on_429"),
        &JsonValue::Bool(true),
        "every 429 must carry Retry-After: {written}"
    );

    // … never a 5xx, and the admitted requests really ran.
    assert_eq!(num(&report, "results.status_5xx"), 0.0, "{written}");
    assert!(num(&report, "results.status.200") >= 1.0, "idle-server admissions succeed");
    assert!(num(&report, "results.latency_ms.p99") > 0.0);

    // The executed schedule is the planned schedule: its hash matches a
    // separate --plan-only run with the same knobs.
    let plan = qbss(&[
        "loadgen", "--plan-only", "--rps", "150", "--duration-s", "1", "--seed", "7",
        "--mix", "sweep", "--n", "6",
    ]);
    let plan_json = json_parse(stdout_of(&plan).trim()).expect("plan parses");
    assert_eq!(
        lookup(&plan_json, "hash"),
        lookup(&report, "schedule.hash"),
        "report and plan must agree on the schedule"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn loadgen_rejects_bad_flags() {
    // No target at all.
    let out = qbss(&["loadgen", "--rps", "10", "--duration-s", "1"]);
    assert_eq!(out.status.code(), Some(2));
    // Mutually exclusive targets.
    let out = qbss(&["loadgen", "--spawn", "--addr", "127.0.0.1:1", "--rps", "10"]);
    assert_eq!(out.status.code(), Some(2));
    // Unknown mix.
    let out = qbss(&["loadgen", "--plan-only", "--mix", "chaotic"]);
    assert_eq!(out.status.code(), Some(2));
    // Non-positive rps is bad input.
    let out = qbss(&["loadgen", "--plan-only", "--rps", "0"]);
    assert_eq!(out.status.code(), Some(2));
}
