//! Instance (de)serialization.
//!
//! QBSS instances — including the hidden exact loads — round-trip
//! through JSON so experiments are reproducible from recorded files and
//! the CLI can pipe instances between `generate`, `run` and `compare`
//! subcommands.

use std::fs;
use std::io::Write as _;
use std::path::Path;

use qbss_core::model::QbssInstance;

/// Serializes an instance to pretty JSON.
pub fn to_json(inst: &QbssInstance) -> String {
    serde_json::to_string_pretty(inst).expect("QbssInstance serialization cannot fail")
}

/// Parses an instance from JSON, then validates it.
pub fn from_json(json: &str) -> Result<QbssInstance, String> {
    let inst: QbssInstance =
        serde_json::from_str(json).map_err(|e| format!("JSON parse error: {e}"))?;
    inst.validate()?;
    Ok(inst)
}

/// Writes an instance to a file.
pub fn write_file(inst: &QbssInstance, path: &Path) -> std::io::Result<()> {
    let mut f = fs::File::create(path)?;
    f.write_all(to_json(inst).as_bytes())
}

/// Reads and validates an instance from a file.
pub fn read_file(path: &Path) -> Result<QbssInstance, String> {
    let json = fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    from_json(&json)
}

/// Serializes an instance to CSV with the header
/// `id,release,deadline,query_load,upper_bound,exact` — the interop
/// format for spreadsheets and external trace tooling. Floats are
/// emitted with full round-trip precision.
pub fn to_csv(inst: &QbssInstance) -> String {
    let mut out = String::from("id,release,deadline,query_load,upper_bound,exact\n");
    for j in &inst.jobs {
        out.push_str(&format!(
            "{},{},{},{},{},{}\n",
            j.id, j.release, j.deadline, j.query_load, j.upper_bound,
            j.reveal_exact()
        ));
    }
    out
}

/// Parses an instance from the CSV format of [`to_csv`] (header row
/// required; blank lines and `#` comments ignored), then validates it.
pub fn from_csv(csv: &str) -> Result<QbssInstance, String> {
    let mut lines = csv
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'));
    let header = lines.next().ok_or("empty CSV")?;
    if header != "id,release,deadline,query_load,upper_bound,exact" {
        return Err(format!("unexpected CSV header: `{header}`"));
    }
    let mut jobs = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != 6 {
            return Err(format!("line {}: expected 6 fields, got {}", lineno + 2, fields.len()));
        }
        let id: u32 = fields[0]
            .parse()
            .map_err(|e| format!("line {}: bad id: {e}", lineno + 2))?;
        let nums: Result<Vec<f64>, String> = fields[1..]
            .iter()
            .map(|f| f.parse::<f64>().map_err(|e| format!("line {}: {e}", lineno + 2)))
            .collect();
        let v = nums?;
        let (r, d, c, w, exact) = (v[0], v[1], v[2], v[3], v[4]);
        // Pre-validate so malformed data reports a line number instead
        // of panicking in the constructor.
        if !(d > r && c > 0.0 && c <= w && (0.0..=w).contains(&exact))
            || v.iter().any(|x| !x.is_finite())
        {
            return Err(format!("line {}: malformed job (r={r}, d={d}, c={c}, w={w}, w*={exact})", lineno + 2));
        }
        jobs.push(qbss_core::model::QJob::new(id, r, d, c, w, exact));
    }
    let inst = QbssInstance::new(jobs);
    inst.validate()?;
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};

    #[test]
    fn json_roundtrip() {
        let inst = generate(&GenConfig::online_default(25, 11));
        let back = from_json(&to_json(&inst)).expect("roundtrip");
        assert_eq!(back, inst);
    }

    #[test]
    fn file_roundtrip() {
        let inst = generate(&GenConfig::common_deadline(10, 4.0, 3));
        let dir = std::env::temp_dir().join("qbss-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inst.json");
        write_file(&inst, &path).expect("write");
        let back = read_file(&path).expect("read");
        assert_eq!(back, inst);
    }

    #[test]
    fn invalid_json_rejected() {
        assert!(from_json("{").is_err());
    }

    #[test]
    fn csv_roundtrip() {
        let inst = generate(&GenConfig::online_default(20, 5));
        let back = from_csv(&to_csv(&inst)).expect("roundtrip");
        assert_eq!(back, inst);
    }

    #[test]
    fn csv_tolerates_comments_and_blank_lines() {
        let csv = "\
# a comment
id,release,deadline,query_load,upper_bound,exact

0,0.0,1.0,0.5,2.0,0.25
";
        let inst = from_csv(csv).expect("parse");
        assert_eq!(inst.len(), 1);
        assert_eq!(inst.jobs[0].reveal_exact(), 0.25);
    }

    #[test]
    fn csv_rejects_bad_header_and_rows() {
        assert!(from_csv("nope\n").is_err());
        let bad_arity = "id,release,deadline,query_load,upper_bound,exact\n0,1,2\n";
        assert!(from_csv(bad_arity).unwrap_err().contains("6 fields"));
        let bad_job = "id,release,deadline,query_load,upper_bound,exact\n0,0,1,5.0,1.0,0.5\n";
        assert!(from_csv(bad_job).unwrap_err().contains("malformed job"));
        let bad_num = "id,release,deadline,query_load,upper_bound,exact\n0,0,x,0.5,1.0,0.5\n";
        assert!(from_csv(bad_num).is_err());
    }

    #[test]
    fn invalid_instance_rejected() {
        // Structurally valid JSON but a malformed job (c > w).
        let json = r#"{"jobs":[{"id":0,"release":0.0,"deadline":1.0,
            "query_load":5.0,"upper_bound":1.0,"exact":0.5}]}"#;
        let err = from_json(json).unwrap_err();
        assert!(err.contains("query load"), "{err}");
    }
}
