//! Instance (de)serialization with typed, located errors.
//!
//! QBSS instances — including the hidden exact loads — round-trip
//! through JSON so experiments are reproducible from recorded files and
//! the CLI can pipe instances between `generate`, `run` and `compare`
//! subcommands. A CSV interop format is provided for spreadsheets and
//! external trace tooling.
//!
//! Both parsers are hand-rolled (the workspace is dependency-free) and
//! report an [`IoError`] carrying the offending **line number** and, for
//! semantically malformed jobs, the **job id** and the underlying
//! [`ModelError`]. `NaN`/`Infinity` tokens are *accepted* by the JSON
//! number grammar so that fault-injected files fail with a typed model
//! error rather than an opaque syntax error.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use qbss_core::error::ModelError;
use qbss_core::model::{QJob, QbssInstance};
use qbss_core::outcome::QbssOutcome;

/// The CSV header emitted by [`to_csv`] and required by [`from_csv`].
pub const CSV_HEADER: &str = "id,release,deadline,query_load,upper_bound,exact";

/// A typed instance-I/O failure.
///
/// Line numbers are 1-based positions in the *original* text (comments
/// and blank lines included), so editors can jump straight to the
/// offending row.
#[derive(Debug)]
pub enum IoError {
    /// The file itself could not be read or written.
    File {
        /// Path that failed.
        path: PathBuf,
        /// Underlying OS error.
        source: std::io::Error,
    },
    /// The text is not well-formed JSON/CSV.
    Syntax {
        /// 1-based line of the offending token.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The text parsed, but a job violates the QBSS model.
    Model {
        /// 1-based line where the offending job starts.
        line: usize,
        /// The model violation (carries the job id).
        source: ModelError,
    },
    /// An in-memory instance is too malformed to serialize.
    Unserializable {
        /// The model violation (carries the job id).
        source: ModelError,
    },
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::File { path, source } => write!(f, "cannot access {}: {source}", path.display()),
            Self::Syntax { line, message } => write!(f, "line {line}: {message}"),
            Self::Model { line, source } => {
                write!(f, "line {line}: malformed job {}: {source}", source.job())
            }
            Self::Unserializable { source } => {
                write!(f, "cannot serialize malformed job {}: {source}", source.job())
            }
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::File { source, .. } => Some(source),
            Self::Syntax { .. } => None,
            Self::Model { source, .. } | Self::Unserializable { source } => Some(source),
        }
    }
}

// ---------------------------------------------------------------------------
// JSON writer
// ---------------------------------------------------------------------------

/// Serializes a **valid** instance to pretty JSON; a malformed instance
/// is rejected as [`IoError::Unserializable`] instead of producing a
/// file that cannot be read back.
pub fn to_json(inst: &QbssInstance) -> Result<String, IoError> {
    inst.validate().map_err(|source| IoError::Unserializable { source })?;
    let mut s = String::from("{\n  \"jobs\": [");
    for (i, j) in inst.jobs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\n      \"id\": {},\n      \"release\": {},\n      \"deadline\": {},\n      \
             \"query_load\": {},\n      \"upper_bound\": {},\n      \"exact\": {}\n    }}",
            j.id,
            j.release,
            j.deadline,
            j.query_load,
            j.upper_bound,
            j.reveal_exact(),
        ));
    }
    if !inst.jobs.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}");
    Ok(s)
}

/// Serializes an outcome (algorithm, decisions, schedule) to pretty
/// JSON for `run --save-outcome`. Infallible: non-finite numbers — which
/// only unvalidated outcomes can contain — are emitted as `null`.
pub fn outcome_to_json(out: &QbssOutcome) -> String {
    fn num(x: f64) -> String {
        if x.is_finite() {
            format!("{x}")
        } else {
            "null".into()
        }
    }
    let mut s = format!("{{\n  \"algorithm\": {},\n  \"decisions\": [", quote(&out.algorithm));
    for (i, d) in out.decisions.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let split = d.split.map_or("null".into(), num);
        s.push_str(&format!(
            "\n    {{ \"job\": {}, \"queried\": {}, \"split\": {split} }}",
            d.job, d.queried
        ));
    }
    if !out.decisions.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str(&format!(
        "],\n  \"schedule\": {{\n    \"machines\": {},\n    \"slices\": [",
        out.schedule.machines
    ));
    for (i, sl) in out.schedule.slices.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n      {{ \"job\": {}, \"machine\": {}, \"start\": {}, \"end\": {}, \"speed\": {} }}",
            sl.job,
            sl.machine,
            num(sl.start),
            num(sl.end),
            num(sl.speed)
        ));
    }
    if !out.schedule.slices.is_empty() {
        s.push_str("\n    ");
    }
    s.push_str("]\n  }\n}");
    s
}

fn quote(s: &str) -> String {
    let mut q = String::with_capacity(s.len() + 2);
    q.push('"');
    for c in s.chars() {
        match c {
            '"' => q.push_str("\\\""),
            '\\' => q.push_str("\\\\"),
            '\n' => q.push_str("\\n"),
            '\t' => q.push_str("\\t"),
            '\r' => q.push_str("\\r"),
            c if (c as u32) < 0x20 => q.push_str(&format!("\\u{:04x}", c as u32)),
            c => q.push(c),
        }
    }
    q.push('"');
    q
}

// ---------------------------------------------------------------------------
// JSON parser
// ---------------------------------------------------------------------------

/// A minimal recursive-descent JSON reader that tracks line numbers.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

fn describe(b: Option<u8>) -> String {
    match b {
        Some(b) => format!("found `{}`", b as char),
        None => "found end of input".into(),
    }
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self { bytes: text.as_bytes(), pos: 0, line: 1 }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if let Some(b) = b {
            self.pos += 1;
            if b == b'\n' {
                self.line += 1;
            }
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    fn err(&self, message: impl Into<String>) -> IoError {
        IoError::Syntax { line: self.line, message: message.into() }
    }

    fn expect(&mut self, c: u8) -> Result<(), IoError> {
        self.skip_ws();
        match self.peek() {
            Some(b) if b == c => {
                self.bump();
                Ok(())
            }
            other => Err(self.err(format!("expected `{}`, {}", c as char, describe(other)))),
        }
    }

    /// Consumes `word` if it is next (no whitespace skipping).
    fn eat_word(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            for _ in 0..word.len() {
                self.bump();
            }
            true
        } else {
            false
        }
    }

    fn parse_string(&mut self) -> Result<String, IoError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b't') => s.push('\t'),
                    Some(b'r') => s.push('\r'),
                    Some(b'b') => s.push('\u{8}'),
                    Some(b'f') => s.push('\u{c}'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|b| (b as char).to_digit(16))
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            code = code * 16 + d;
                        }
                        s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(self.err(format!("bad escape, {}", describe(other)))),
                },
                Some(b) if b < 0x80 => s.push(b as char),
                Some(b) => {
                    // Re-assemble a UTF-8 multi-byte sequence.
                    let start = self.pos - 1;
                    let mut rest = 0;
                    while self.peek().is_some_and(|n| n & 0xC0 == 0x80) {
                        self.bump();
                        rest += 1;
                    }
                    match std::str::from_utf8(&self.bytes[start..start + 1 + rest]) {
                        Ok(frag) => s.push_str(frag),
                        Err(_) => return Err(self.err(format!("invalid UTF-8 byte 0x{b:02x}"))),
                    }
                }
            }
        }
    }

    /// Parses a JSON number. `NaN`, `Infinity` and `-Infinity` are
    /// accepted on purpose (see module docs).
    fn parse_number(&mut self) -> Result<f64, IoError> {
        self.skip_ws();
        if self.eat_word("NaN") {
            return Ok(f64::NAN);
        }
        if self.eat_word("Infinity") {
            return Ok(f64::INFINITY);
        }
        if self.eat_word("-Infinity") {
            return Ok(f64::NEG_INFINITY);
        }
        let start = self.pos;
        while matches!(self.peek(), Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')) {
            self.bump();
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        if text.is_empty() {
            return Err(self.err(format!("expected a number, {}", describe(self.peek()))));
        }
        text.parse::<f64>().map_err(|e| self.err(format!("bad number `{text}`: {e}")))
    }

    /// Parses and discards an arbitrary JSON value (unknown fields).
    fn skip_value(&mut self) -> Result<(), IoError> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => self.parse_string().map(drop),
            Some(b'{') => {
                self.bump();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.bump();
                    return Ok(());
                }
                loop {
                    self.parse_string()?;
                    self.expect(b':')?;
                    self.skip_value()?;
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b'}') => return Ok(()),
                        other => {
                            return Err(self.err(format!("expected `,` or `}}`, {}", describe(other))))
                        }
                    }
                }
            }
            Some(b'[') => {
                self.bump();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.bump();
                    return Ok(());
                }
                loop {
                    self.skip_value()?;
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b']') => return Ok(()),
                        other => {
                            return Err(self.err(format!("expected `,` or `]`, {}", describe(other))))
                        }
                    }
                }
            }
            Some(b't') if self.eat_word("true") => Ok(()),
            Some(b'f') if self.eat_word("false") => Ok(()),
            Some(b'n') if self.eat_word("null") => Ok(()),
            _ => self.parse_number().map(drop),
        }
    }

    /// Parses `{"jobs": [...]}`, recording the start line of each job.
    fn parse_instance(&mut self) -> Result<(Vec<QJob>, Vec<usize>), IoError> {
        self.expect(b'{')?;
        let mut jobs = None;
        let mut lines = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.bump();
        } else {
            loop {
                let key = self.parse_string()?;
                self.expect(b':')?;
                if key == "jobs" {
                    if jobs.is_some() {
                        return Err(self.err("duplicate `jobs` key"));
                    }
                    jobs = Some(self.parse_jobs(&mut lines)?);
                } else {
                    self.skip_value()?;
                }
                self.skip_ws();
                match self.bump() {
                    Some(b',') => continue,
                    Some(b'}') => break,
                    other => {
                        return Err(self.err(format!("expected `,` or `}}`, {}", describe(other))))
                    }
                }
            }
        }
        match jobs {
            Some(j) => Ok((j, lines)),
            None => Err(self.err("missing `jobs` array")),
        }
    }

    fn parse_jobs(&mut self, lines: &mut Vec<usize>) -> Result<Vec<QJob>, IoError> {
        self.expect(b'[')?;
        let mut jobs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.bump();
            return Ok(jobs);
        }
        loop {
            self.skip_ws();
            lines.push(self.line);
            jobs.push(self.parse_job()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(jobs),
                other => return Err(self.err(format!("expected `,` or `]`, {}", describe(other)))),
            }
        }
    }

    fn parse_job(&mut self) -> Result<QJob, IoError> {
        self.skip_ws();
        let start_line = self.line;
        self.expect(b'{')?;
        let mut id: Option<u32> = None;
        const NAMES: [&str; 5] = ["release", "deadline", "query_load", "upper_bound", "exact"];
        let mut fields: [Option<f64>; 5] = [None; 5];
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.bump();
        } else {
            loop {
                let key = self.parse_string()?;
                self.expect(b':')?;
                if key == "id" {
                    let v = self.parse_number()?;
                    if !(v.is_finite() && v >= 0.0 && v.fract() == 0.0 && v <= f64::from(u32::MAX))
                    {
                        return Err(
                            self.err(format!("job id must be a non-negative integer, got {v}"))
                        );
                    }
                    id = Some(v as u32);
                } else if let Some(i) = NAMES.iter().position(|n| *n == key) {
                    fields[i] = Some(self.parse_number()?);
                } else {
                    self.skip_value()?;
                }
                self.skip_ws();
                match self.bump() {
                    Some(b',') => continue,
                    Some(b'}') => break,
                    other => {
                        return Err(self.err(format!("expected `,` or `}}`, {}", describe(other))))
                    }
                }
            }
        }
        let missing = |name: &str| IoError::Syntax {
            line: start_line,
            message: format!("job object is missing field `{name}`"),
        };
        let id = id.ok_or_else(|| missing("id"))?;
        let mut v = [0.0f64; 5];
        for (i, name) in NAMES.iter().enumerate() {
            v[i] = fields[i].ok_or_else(|| missing(name))?;
        }
        Ok(QJob::new_unchecked(id, v[0], v[1], v[2], v[3], v[4]))
    }
}

/// Parses an instance from JSON, then validates it. Model violations
/// report the line where the offending job starts and its id.
pub fn from_json(json: &str) -> Result<QbssInstance, IoError> {
    let mut p = Parser::new(json);
    let (jobs, job_lines) = p.parse_instance()?;
    p.skip_ws();
    if p.peek().is_some() {
        return Err(p.err("trailing characters after JSON document"));
    }
    finish(jobs, &job_lines)
}

/// Builds the instance and maps a validation failure back to the source
/// line of the offending job.
fn finish(jobs: Vec<QJob>, job_lines: &[usize]) -> Result<QbssInstance, IoError> {
    let inst = QbssInstance::new(jobs);
    if let Err(source) = inst.validate() {
        let line = inst
            .jobs
            .iter()
            .position(|j| j.id == source.job())
            .and_then(|i| job_lines.get(i).copied())
            .unwrap_or(1);
        return Err(IoError::Model { line, source });
    }
    Ok(inst)
}

// ---------------------------------------------------------------------------
// Files
// ---------------------------------------------------------------------------

/// Writes an instance to a file as JSON.
pub fn write_file(inst: &QbssInstance, path: &Path) -> Result<(), IoError> {
    let json = to_json(inst)?;
    qbss_telemetry::debug!(
        "instances.io",
        { jobs = inst.jobs.len(), bytes = json.len(), path = path.display().to_string() },
        "writing instance to {}",
        path.display()
    );
    fs::write(path, json)
        .map_err(|source| IoError::File { path: path.to_path_buf(), source })
}

/// Reads and validates an instance from a JSON file.
pub fn read_file(path: &Path) -> Result<QbssInstance, IoError> {
    let json = fs::read_to_string(path)
        .map_err(|source| IoError::File { path: path.to_path_buf(), source })?;
    let inst = from_json(&json)?;
    qbss_telemetry::debug!(
        "instances.io",
        { jobs = inst.jobs.len(), bytes = json.len(), path = path.display().to_string() },
        "read instance from {}",
        path.display()
    );
    Ok(inst)
}

// ---------------------------------------------------------------------------
// CSV
// ---------------------------------------------------------------------------

/// Serializes an instance to CSV with the header [`CSV_HEADER`] — the
/// interop format for spreadsheets and external trace tooling. Floats
/// are emitted with full round-trip precision.
pub fn to_csv(inst: &QbssInstance) -> String {
    let mut out = String::from(CSV_HEADER);
    out.push('\n');
    for j in &inst.jobs {
        out.push_str(&format!(
            "{},{},{},{},{},{}\n",
            j.id,
            j.release,
            j.deadline,
            j.query_load,
            j.upper_bound,
            j.reveal_exact()
        ));
    }
    out
}

/// Parses an instance from the CSV format of [`to_csv`] (header row
/// required; blank lines and `#` comments ignored), then validates it.
/// Line numbers in errors count *all* lines of the input, comments
/// included.
pub fn from_csv(csv: &str) -> Result<QbssInstance, IoError> {
    let mut rows = csv
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));
    let (header_line, header) = rows
        .next()
        .ok_or(IoError::Syntax { line: 1, message: "empty CSV".into() })?;
    if header != CSV_HEADER {
        return Err(IoError::Syntax {
            line: header_line,
            message: format!("unexpected CSV header: `{header}`"),
        });
    }
    let mut jobs = Vec::new();
    let mut job_lines = Vec::new();
    for (lineno, line) in rows {
        let syntax =
            |message: String| IoError::Syntax { line: lineno, message };
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != 6 {
            return Err(syntax(format!("expected 6 fields, got {}", fields.len())));
        }
        let id: u32 = fields[0].parse().map_err(|e| syntax(format!("bad id: {e}")))?;
        let mut v = [0.0f64; 5];
        for (slot, field) in v.iter_mut().zip(&fields[1..]) {
            *slot = field
                .parse::<f64>()
                .map_err(|e| syntax(format!("bad number `{field}`: {e}")))?;
        }
        // Validate per job so malformed data reports this line, and keep
        // instance-level checks (duplicate ids) for the `finish` pass.
        let job = QJob::try_new(id, v[0], v[1], v[2], v[3], v[4])
            .map_err(|source| IoError::Model { line: lineno, source })?;
        jobs.push(job);
        job_lines.push(lineno);
    }
    finish(jobs, &job_lines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};

    #[test]
    fn json_roundtrip() {
        let inst = generate(&GenConfig::online_default(25, 11));
        let back = from_json(&to_json(&inst).expect("serialize")).expect("roundtrip");
        assert_eq!(back, inst);
    }

    #[test]
    fn file_roundtrip() {
        let inst = generate(&GenConfig::common_deadline(10, 4.0, 3));
        let dir = std::env::temp_dir().join("qbss-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inst.json");
        write_file(&inst, &path).expect("write");
        let back = read_file(&path).expect("read");
        assert_eq!(back, inst);
    }

    #[test]
    fn invalid_json_rejected() {
        assert!(matches!(from_json("{"), Err(IoError::Syntax { .. })));
        assert!(matches!(from_json("{}"), Err(IoError::Syntax { .. })));
        assert!(from_json(r#"{"jobs": [{"id": 0}]}"#)
            .unwrap_err()
            .to_string()
            .contains("missing field `release`"));
    }

    #[test]
    fn json_model_errors_carry_line_and_id() {
        // Structurally valid JSON but a malformed job (c > w) on line 3.
        let json = "{\"jobs\":[\n  {\"id\":0,\"release\":0,\"deadline\":1,\"query_load\":0.5,\"upper_bound\":1,\"exact\":0.5},\n  {\"id\":7,\"release\":0,\"deadline\":1,\"query_load\":5.0,\"upper_bound\":1,\"exact\":0.5}\n]}";
        match from_json(json) {
            Err(IoError::Model { line, source }) => {
                assert_eq!(line, 3);
                assert_eq!(source.job(), 7);
                assert!(source.to_string().contains("query load"), "{source}");
            }
            other => panic!("expected a model error, got {other:?}"),
        }
    }

    #[test]
    fn json_accepts_nan_tokens_as_model_errors() {
        let json = r#"{"jobs":[{"id":3,"release":NaN,"deadline":1,"query_load":0.5,"upper_bound":1,"exact":0.5}]}"#;
        let err = from_json(json).unwrap_err();
        assert!(err.to_string().contains("non-finite"), "{err}");
    }

    #[test]
    fn outcome_json_is_well_formed() {
        let inst = generate(&GenConfig::online_default(6, 2));
        let out = qbss_core::online::avrq(&inst);
        let json = outcome_to_json(&out);
        let mut p = Parser::new(&json);
        p.skip_value().expect("outcome JSON parses");
        p.skip_ws();
        assert_eq!(p.peek(), None, "trailing garbage in {json}");
        assert!(json.contains("\"algorithm\": \"AVRQ\""));
        assert!(json.contains("\"slices\""));
    }

    #[test]
    fn csv_roundtrip() {
        let inst = generate(&GenConfig::online_default(20, 5));
        let back = from_csv(&to_csv(&inst)).expect("roundtrip");
        assert_eq!(back, inst);
    }

    #[test]
    fn csv_tolerates_comments_and_blank_lines() {
        let csv = "\
# a comment
id,release,deadline,query_load,upper_bound,exact

0,0.0,1.0,0.5,2.0,0.25
";
        let inst = from_csv(csv).expect("parse");
        assert_eq!(inst.len(), 1);
        assert_eq!(inst.jobs[0].reveal_exact(), 0.25);
    }

    #[test]
    fn csv_rejects_bad_header_and_rows() {
        assert!(from_csv("nope\n").is_err());
        let bad_arity = "id,release,deadline,query_load,upper_bound,exact\n0,1,2\n";
        assert!(from_csv(bad_arity).unwrap_err().to_string().contains("6 fields"));
        let bad_job = "id,release,deadline,query_load,upper_bound,exact\n0,0,1,5.0,1.0,0.5\n";
        assert!(from_csv(bad_job).unwrap_err().to_string().contains("malformed job"));
        let bad_num = "id,release,deadline,query_load,upper_bound,exact\n0,0,x,0.5,1.0,0.5\n";
        assert!(from_csv(bad_num).is_err());
    }

    #[test]
    fn csv_errors_carry_true_line_numbers() {
        let csv = "# leading comment\nid,release,deadline,query_load,upper_bound,exact\n\n0,0,1,5.0,1.0,0.5\n";
        match from_csv(csv) {
            // Job row is physical line 4 (comment and blank line counted).
            Err(IoError::Model { line: 4, source }) => assert_eq!(source.job(), 0),
            other => panic!("expected a model error on line 4, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_ids_rejected_at_instance_level() {
        let csv = "id,release,deadline,query_load,upper_bound,exact\n\
                   0,0,1,0.2,1.0,0.5\n0,0,2,0.2,1.0,0.5\n";
        let err = from_csv(csv).unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
    }

    #[test]
    fn unserializable_instances_are_rejected() {
        use qbss_core::model::QJob;
        let inst = QbssInstance::new(vec![QJob::new_unchecked(0, 0.0, 1.0, f64::NAN, 1.0, 0.5)]);
        assert!(matches!(to_json(&inst), Err(IoError::Unserializable { .. })));
    }
}
