//! Seeded adversarial fault injection.
//!
//! A [`Corruptor`] takes a *valid* QBSS instance and applies one
//! [`Mutation`] from a fixed catalog — NaN/±∞ fields, inverted or
//! collapsed windows, query loads above the upper bound or ≤ 0, exact
//! loads outside `[0, w]`, duplicate ids, denormal and `1e300`-scale
//! magnitudes, emptied job lists, shuffled ids. Every mutation is tagged
//! with the [`Expectation`] it must trigger downstream, so the chaos
//! harness and the property tests can assert not just "no panic" but
//! "the *right* typed error".
//!
//! Everything is deterministic in the seed: a failing chaos case is
//! reproduced by re-running with the reported seed.

use qbss_core::error::ModelErrorKind;
use qbss_core::model::{QJob, QbssInstance};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One entry of the fault catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mutation {
    /// Sets one field of one job to NaN.
    NanField,
    /// Sets one field of one job to `+∞`.
    PosInfField,
    /// Sets one field of one job to `−∞`.
    NegInfField,
    /// Swaps a job's release and deadline (`d < r`).
    InvertedWindow,
    /// Collapses a job's window (`d = r`).
    CollapsedWindow,
    /// Raises a job's query load above its upper bound (`c > w`).
    QueryAboveUpper,
    /// Zeroes or negates a job's query load (`c ≤ 0`).
    QueryNonPositive,
    /// Raises a job's exact load above its upper bound (`w* > w`).
    ExactAboveUpper,
    /// Negates a job's exact load (`w* < 0`).
    ExactNegative,
    /// Copies one job's id onto another (needs ≥ 2 jobs).
    DuplicateIds,
    /// Sets one field of one job to a denormal-scale value (`~1e-310`).
    DenormalMagnitude,
    /// Sets one field of one job to `~1e300`.
    HugeMagnitude,
    /// Drops every job.
    EmptyJobList,
    /// Rotates the ids across jobs (stays model-valid).
    ShuffledIds,
}

/// What a mutated instance must do to the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expectation {
    /// `QbssInstance::validate` must fail with exactly this kind.
    Model(ModelErrorKind),
    /// The instance has no jobs: algorithms must report a typed
    /// empty-instance error, never panic.
    Empty,
    /// The instance stays model-valid: the pipeline must return either a
    /// structurally sound finite-cost outcome or a typed algorithm
    /// error — never panic.
    Survivable,
}

impl Mutation {
    /// The whole catalog, in a fixed order.
    pub const ALL: [Mutation; 14] = [
        Mutation::NanField,
        Mutation::PosInfField,
        Mutation::NegInfField,
        Mutation::InvertedWindow,
        Mutation::CollapsedWindow,
        Mutation::QueryAboveUpper,
        Mutation::QueryNonPositive,
        Mutation::ExactAboveUpper,
        Mutation::ExactNegative,
        Mutation::DuplicateIds,
        Mutation::DenormalMagnitude,
        Mutation::HugeMagnitude,
        Mutation::EmptyJobList,
        Mutation::ShuffledIds,
    ];

    /// The typed consequence this mutation must trigger.
    ///
    /// The `Model(kind)` tags are exact for instances whose fields stay
    /// well inside the magnitude envelope (everything the [`crate::gen`]
    /// generators produce); validation checks finiteness, then
    /// magnitude, then windows, then loads, and each mutation perturbs
    /// exactly one of those layers.
    pub fn expectation(self) -> Expectation {
        use ModelErrorKind as K;
        match self {
            Mutation::NanField | Mutation::PosInfField | Mutation::NegInfField => {
                Expectation::Model(K::NonFiniteField)
            }
            Mutation::InvertedWindow | Mutation::CollapsedWindow => {
                Expectation::Model(K::EmptyWindow)
            }
            Mutation::QueryAboveUpper | Mutation::QueryNonPositive => {
                Expectation::Model(K::QueryLoadRange)
            }
            Mutation::ExactAboveUpper | Mutation::ExactNegative => {
                Expectation::Model(K::ExactLoadRange)
            }
            Mutation::DuplicateIds => Expectation::Model(K::DuplicateId),
            Mutation::DenormalMagnitude | Mutation::HugeMagnitude => {
                Expectation::Model(K::MagnitudeOutOfRange)
            }
            Mutation::EmptyJobList => Expectation::Empty,
            Mutation::ShuffledIds => Expectation::Survivable,
        }
    }

    /// Whether the mutation needs at least `n` jobs to be applicable.
    fn min_jobs(self) -> usize {
        match self {
            Mutation::EmptyJobList => 0,
            Mutation::DuplicateIds => 2,
            _ => 1,
        }
    }
}

impl std::fmt::Display for Mutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A corrupted instance together with its provenance.
#[derive(Debug, Clone)]
pub struct Corrupted {
    /// The mutated (usually invalid) instance.
    pub instance: QbssInstance,
    /// Which catalog entry produced it.
    pub mutation: Mutation,
    /// What the pipeline must do with it.
    pub expectation: Expectation,
}

/// Deterministic, seeded fault injector.
pub struct Corruptor {
    rng: StdRng,
}

/// The five mutable float fields of a job, in catalog order.
const FIELD_COUNT: usize = 5;

fn fields_of(j: &QJob) -> (u32, [f64; FIELD_COUNT]) {
    (j.id, [j.release, j.deadline, j.query_load, j.upper_bound, j.reveal_exact()])
}

fn rebuild(id: u32, f: [f64; FIELD_COUNT]) -> QJob {
    QJob::new_unchecked(id, f[0], f[1], f[2], f[3], f[4])
}

impl Corruptor {
    /// A corruptor reproducible from `seed`.
    pub fn new(seed: u64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed) }
    }

    /// Applies `mutation` to a copy of `inst`. Returns `None` when the
    /// instance has too few jobs for the mutation.
    pub fn apply(&mut self, inst: &QbssInstance, mutation: Mutation) -> Option<Corrupted> {
        if inst.len() < mutation.min_jobs() {
            return None;
        }
        let mut jobs: Vec<(u32, [f64; FIELD_COUNT])> =
            inst.jobs.iter().map(fields_of).collect();
        match mutation {
            Mutation::EmptyJobList => jobs.clear(),
            Mutation::ShuffledIds => {
                // Rotate ids one position: a permutation, so ids stay
                // unique and the instance stays valid.
                if jobs.len() > 1 {
                    let first = jobs[0].0;
                    for i in 0..jobs.len() - 1 {
                        jobs[i].0 = jobs[i + 1].0;
                    }
                    let last = jobs.len() - 1;
                    jobs[last].0 = first;
                }
            }
            Mutation::DuplicateIds => {
                let i = self.rng.gen_range(0..jobs.len());
                let mut k = self.rng.gen_range(0..jobs.len() - 1);
                if k >= i {
                    k += 1;
                }
                jobs[k].0 = jobs[i].0;
            }
            _ => {
                let v = self.rng.gen_range(0..jobs.len());
                let (_, f) = &mut jobs[v];
                match mutation {
                    Mutation::NanField => f[self.rng.gen_range(0..FIELD_COUNT)] = f64::NAN,
                    Mutation::PosInfField => {
                        f[self.rng.gen_range(0..FIELD_COUNT)] = f64::INFINITY
                    }
                    Mutation::NegInfField => {
                        f[self.rng.gen_range(0..FIELD_COUNT)] = f64::NEG_INFINITY
                    }
                    Mutation::InvertedWindow => f.swap(0, 1),
                    Mutation::CollapsedWindow => f[1] = f[0],
                    Mutation::QueryAboveUpper => f[2] = f[3].abs() * 2.0 + 1.0,
                    Mutation::QueryNonPositive => {
                        f[2] = if self.rng.gen_bool(0.5) { 0.0 } else { -f[2].abs() }
                    }
                    Mutation::ExactAboveUpper => f[4] = f[3].abs() * 2.0 + 1.0,
                    Mutation::ExactNegative => f[4] = -f[4].abs() - 1.0,
                    Mutation::DenormalMagnitude => {
                        f[self.rng.gen_range(0..FIELD_COUNT)] = 5e-310
                    }
                    Mutation::HugeMagnitude => f[self.rng.gen_range(0..FIELD_COUNT)] = 1e300,
                    Mutation::EmptyJobList
                    | Mutation::ShuffledIds
                    | Mutation::DuplicateIds => unreachable!("handled above"),
                }
            }
        }
        let instance =
            QbssInstance::new(jobs.into_iter().map(|(id, f)| rebuild(id, f)).collect());
        Some(Corrupted { instance, mutation, expectation: mutation.expectation() })
    }

    /// Picks a uniformly random *applicable* mutation and applies it.
    pub fn corrupt(&mut self, inst: &QbssInstance) -> Corrupted {
        let applicable: Vec<Mutation> = Mutation::ALL
            .iter()
            .copied()
            .filter(|m| inst.len() >= m.min_jobs())
            .collect();
        let m = applicable[self.rng.gen_range(0..applicable.len())];
        self.apply(inst, m).expect("mutation was filtered for applicability")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};

    #[test]
    fn every_mutation_triggers_its_tagged_expectation() {
        let inst = generate(&GenConfig::online_default(12, 5));
        let mut c = Corruptor::new(99);
        for m in Mutation::ALL {
            let corrupted = c.apply(&inst, m).expect("12 jobs is enough for any mutation");
            match corrupted.expectation {
                Expectation::Model(kind) => {
                    let err = corrupted
                        .instance
                        .validate()
                        .expect_err("mutated instance must be invalid");
                    assert_eq!(err.kind(), kind, "{m}: got {err}");
                }
                Expectation::Empty => assert!(corrupted.instance.is_empty(), "{m}"),
                Expectation::Survivable => {
                    corrupted.instance.validate().unwrap_or_else(|e| {
                        panic!("{m} must stay valid, got {e}");
                    });
                }
            }
        }
    }

    #[test]
    fn corruptor_is_deterministic_in_the_seed() {
        let inst = generate(&GenConfig::online_default(8, 1));
        let a: Vec<Mutation> =
            (0..20).map(|_| Corruptor::new(7).corrupt(&inst).mutation).collect();
        let mut c = Corruptor::new(7);
        let b: Vec<Mutation> = (0..20).map(|_| c.corrupt(&inst).mutation).collect();
        assert_eq!(a[0], b[0]);
        // A fresh seed replays the same first draw; a running corruptor
        // keeps drawing new ones.
        assert!(b.windows(2).any(|w| w[0] != w[1]), "mutations should vary: {b:?}");
    }

    #[test]
    fn duplicate_ids_needs_two_jobs() {
        let inst = generate(&GenConfig::online_default(1, 3));
        let mut c = Corruptor::new(1);
        assert!(c.apply(&inst, Mutation::DuplicateIds).is_none());
    }

    #[test]
    fn shuffled_ids_is_a_permutation() {
        let inst = generate(&GenConfig::online_default(6, 4));
        let mut c = Corruptor::new(5);
        let shuffled = c.apply(&inst, Mutation::ShuffledIds).unwrap().instance;
        let mut before: Vec<u32> = inst.jobs.iter().map(|j| j.id).collect();
        let mut after: Vec<u32> = shuffled.jobs.iter().map(|j| j.id).collect();
        assert_ne!(before, after);
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after);
    }
}
