//! # qbss-instances — workload generators and adversaries for QBSS
//!
//! Four kinds of instances feed the experiments that reproduce the
//! SPAA 2021 paper:
//!
//! * [`gen`] — random families parameterized by release/deadline
//!   structure ([`gen::TimeModel`]), query-cost model
//!   ([`gen::QueryModel`]) and payload compressibility
//!   ([`gen::Compressibility`]), matching the paper's motivating
//!   code-optimization / file-compression scenarios. Deterministic by
//!   seed.
//! * [`adversary`] — the exact lower-bound constructions of Lemmas
//!   4.1–4.5 and 5.1, with the adaptive adversary response functions so
//!   experiments can play the games against real policies.
//! * [`corrupt`] — seeded fault injection: a catalog of model-violating
//!   mutations, each tagged with the typed error it must trigger, for
//!   the no-panic chaos harness.
//! * [`io`] — hand-rolled JSON/CSV round-tripping for instances (hidden
//!   loads included) with typed, line-located errors ([`io::IoError`]).

#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod adversary;
pub mod corrupt;
pub mod gen;
pub mod io;

pub use corrupt::{Corrupted, Corruptor, Expectation, Mutation};
pub use gen::{generate, Compressibility, GenConfig, QueryModel, TimeModel};
