//! # qbss-instances — workload generators and adversaries for QBSS
//!
//! Three kinds of instances feed the experiments that reproduce the
//! SPAA 2021 paper:
//!
//! * [`gen`] — random families parameterized by release/deadline
//!   structure ([`gen::TimeModel`]), query-cost model
//!   ([`gen::QueryModel`]) and payload compressibility
//!   ([`gen::Compressibility`]), matching the paper's motivating
//!   code-optimization / file-compression scenarios. Deterministic by
//!   seed.
//! * [`adversary`] — the exact lower-bound constructions of Lemmas
//!   4.1–4.5 and 5.1, with the adaptive adversary response functions so
//!   experiments can play the games against real policies.
//! * [`io`] — JSON round-tripping for instances (hidden loads
//!   included), for reproducible experiment pipelines.

#![warn(missing_docs)]

pub mod adversary;
pub mod gen;
pub mod io;

pub use gen::{generate, Compressibility, GenConfig, QueryModel, TimeModel};
