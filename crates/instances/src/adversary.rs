//! The paper's lower-bound constructions (§4.1, §5.1).
//!
//! Most of the paper's lower bounds are *games* on a single job: the
//! algorithm commits to a decision (query? where to split?), then an
//! adaptive adversary fixes `w*` to hurt it most. This module builds the
//! exact instances of Lemmas 4.1–4.5 and the AVRQ-adversarial family of
//! Lemma 5.1, exposing the adversary's response functions so experiments
//! can *play* the games against real policies and report the achieved
//! ratios next to the proven bounds.

use qbss_core::model::{QJob, QbssInstance};
use qbss_core::policy::PHI;

/// Lemma 4.1 — the never-query catastrophe: a single unit-window job
/// with `c = w* = ε·w`. An algorithm that skips the query runs `w`; the
/// optimum runs `2εw`, so the speed ratio is `1/(2ε)` and the energy
/// ratio `(1/(2ε))^α` — unbounded as `ε → 0`.
pub fn lemma_4_1_instance(eps: f64) -> QbssInstance {
    assert!(eps > 0.0 && eps < 0.5, "ε must be in (0, 1/2)");
    let w = 1.0;
    QbssInstance::new(vec![QJob::new(0, 0.0, 1.0, eps * w, w, eps * w)])
}

/// Lemma 4.2 — the oracle-model game: `c = 1`, `w = φ` on a unit
/// window. The adversary answers the algorithm's *query decision*:
/// `w* = w` if it queried (making the query pure overhead), `w* = 0` if
/// it did not (making the skipped query maximally regrettable). Either
/// way the ratio is `φ` for maximum speed and `φ^α` for energy, even
/// with an oracle-optimal split.
///
/// ```
/// use qbss_core::oracle::{cost_no_query, cost_opt, cost_query_oracle, ratios};
/// use qbss_core::PHI;
/// use qbss_instances::adversary::lemma_4_2_instance;
///
/// // Whatever you do, the adversary makes you pay φ.
/// for queried in [false, true] {
///     let inst = lemma_4_2_instance(queried);
///     let j = &inst.jobs[0];
///     let alg = if queried { cost_query_oracle(j, 3.0) } else { cost_no_query(j, 3.0) };
///     let r = ratios(alg, cost_opt(j, 3.0));
///     assert!((r.speed - PHI).abs() < 1e-9);
/// }
/// ```
pub fn lemma_4_2_instance(algorithm_queries: bool) -> QbssInstance {
    let w_star = if algorithm_queries { PHI } else { 0.0 };
    QbssInstance::new(vec![QJob::new(0, 0.0, 1.0, 1.0, PHI, w_star)])
}

/// Lemma 4.3 — the split game: `c = 1`, `w = 2` on a unit window. The
/// adversary answers the full decision: without a query, or with a
/// split fraction `x ≤ 1/2`, it sets `w* = 0`; with `x > 1/2` it sets
/// `w* = w`. Any deterministic algorithm loses a factor ≥ 2 in maximum
/// speed and ≥ `2^{α−1}` in energy.
pub fn lemma_4_3_instance(decision: Option<f64>) -> QbssInstance {
    let w = 2.0;
    let w_star = match decision {
        None => 0.0,
        Some(x) => {
            assert!(x > 0.0 && x < 1.0, "split fraction must be in (0,1)");
            if x <= 0.5 {
                0.0
            } else {
                w
            }
        }
    };
    QbssInstance::new(vec![QJob::new(0, 0.0, 1.0, 1.0, w, w_star)])
}

/// Lemma 4.4 — the randomized single-job game on a unit window with
/// parameters `(c, w)`: the algorithm queries with probability `ρ`
/// (splitting optimally via the oracle), the adversary picks
/// `w* ∈ {0, w}` knowing `ρ` but not the coin. Closed-form expected
/// ratios below; `c = 1, w = 2` yields the speed bound `4/3` (at
/// `ρ = 2/3`) and `c = 1, w = φ` the energy bound `(1 + φ^α)/2` (at
/// `ρ = 1/2`).
#[derive(Debug, Clone, Copy)]
pub struct RandomizedGame {
    /// Query load.
    pub c: f64,
    /// Upper-bound workload (`w ≥ c`).
    pub w: f64,
}

impl RandomizedGame {
    /// The instance achieving the `4/3` maximum-speed bound.
    pub fn speed_game() -> Self {
        Self { c: 1.0, w: 2.0 }
    }

    /// The instance achieving the `(1 + φ^α)/2` energy bound.
    pub fn energy_game() -> Self {
        Self { c: 1.0, w: PHI }
    }

    /// Expected max-speed ratio when the adversary plays `w* = 0`
    /// (query wins: ALG pays `c` vs OPT's `min{w, c}`; skipping pays
    /// `w`).
    pub fn expected_speed_ratio_zero(&self, rho: f64) -> f64 {
        let opt = self.w.min(self.c);
        (rho * self.c + (1.0 - rho) * self.w) / opt
    }

    /// Expected max-speed ratio when the adversary plays `w* = w`.
    pub fn expected_speed_ratio_full(&self, rho: f64) -> f64 {
        let opt = self.w.min(self.c + self.w);
        (rho * (self.c + self.w) + (1.0 - rho) * self.w) / opt
    }

    /// The adversary's best response in the speed game.
    pub fn adversary_speed_value(&self, rho: f64) -> f64 {
        self.expected_speed_ratio_zero(rho).max(self.expected_speed_ratio_full(rho))
    }

    /// Expected energy ratio when the adversary plays `w* = 0`.
    pub fn expected_energy_ratio_zero(&self, rho: f64, alpha: f64) -> f64 {
        let opt = self.w.min(self.c).powf(alpha);
        (rho * self.c.powf(alpha) + (1.0 - rho) * self.w.powf(alpha)) / opt
    }

    /// Expected energy ratio when the adversary plays `w* = w`.
    pub fn expected_energy_ratio_full(&self, rho: f64, alpha: f64) -> f64 {
        let opt = self.w.powf(alpha);
        (rho * (self.c + self.w).powf(alpha) + (1.0 - rho) * self.w.powf(alpha)) / opt
    }

    /// The adversary's best response in the energy game.
    pub fn adversary_energy_value(&self, rho: f64, alpha: f64) -> f64 {
        self.expected_energy_ratio_zero(rho, alpha)
            .max(self.expected_energy_ratio_full(rho, alpha))
    }

    /// The randomized algorithm's optimal `ρ` and the resulting game
    /// value for maximum speed (minimize the max of two linear
    /// functions: their intersection, clamped to `[0,1]`).
    pub fn speed_game_value(&self) -> (f64, f64) {
        minimize_max(|rho| self.adversary_speed_value(rho))
    }

    /// Optimal `ρ` and game value for energy at exponent `alpha`.
    pub fn energy_game_value(&self, alpha: f64) -> (f64, f64) {
        minimize_max(|rho| self.adversary_energy_value(rho, alpha))
    }

    /// Materializes the instance for a realized adversary choice.
    pub fn instance(&self, adversary_full: bool) -> QbssInstance {
        let w_star = if adversary_full { self.w } else { 0.0 };
        QbssInstance::new(vec![QJob::new(0, 0.0, 1.0, self.c, self.w, w_star)])
    }
}

/// Minimizes a convex piecewise function of `ρ ∈ [0,1]` by golden
/// section search; returns `(argmin, min)`.
fn minimize_max(f: impl Fn(f64) -> f64) -> (f64, f64) {
    let (mut lo, mut hi) = (0.0_f64, 1.0_f64);
    for _ in 0..200 {
        let m1 = lo + (hi - lo) / PHI / PHI;
        let m2 = hi - (hi - lo) / PHI / PHI;
        if f(m1) <= f(m2) {
            hi = m2;
        } else {
            lo = m1;
        }
    }
    let rho = 0.5 * (lo + hi);
    (rho, f(rho))
}

/// Lemma 4.5 — an adversarial instance family for *equal-window*
/// algorithms: `levels` nested jobs over `(0, horizon]`, job `i` active
/// on `(t_i, horizon]` with `t_0 = 0` and `t_{i+1} = (t_i + horizon)/2`
/// — i.e. each job's equal-window split lands exactly on the next job's
/// release. Queries are negligible (`c = εw`) and exact loads are the
/// given `works`, so the equal-window algorithm stacks all exact loads
/// into overlapping second halves while the optimum (which splits
/// asymmetrically) spreads them.
///
/// With `levels = 2` and works `(a, b) = (2, 2)` the max-speed ratio
/// approaches 3 as `ε → 0`, matching the lemma's bound; the energy
/// ratio of the family is explored by parameter search in
/// `exp_lower_bounds`.
pub fn equal_window_cascade(works: &[f64], horizon: f64, eps: f64) -> QbssInstance {
    assert!(!works.is_empty() && horizon > 0.0 && eps > 0.0);
    let mut jobs = Vec::with_capacity(works.len());
    let mut t = 0.0;
    for (i, &w_star) in works.iter().enumerate() {
        assert!(w_star > 0.0, "cascade works must be positive");
        // Upper bound large enough that every sensible rule queries.
        let w = w_star * (2.0 + PHI);
        jobs.push(QJob::new(i as u32, t, horizon, eps * w, w, w_star));
        t = 0.5 * (t + horizon);
    }
    QbssInstance::new(jobs)
}

/// Lemma 5.1 — the AVRQ-adversarial family, extending the classical
/// AVR lower-bound geometry: `n` jobs released at 0 with geometric
/// deadlines `d_i = γ^i`, nominal works `w_i ∝ γ^i` (equal densities),
/// negligible queries and incompressible payloads. AVRQ's always-query
/// midpoint split squeezes each `w*_i = w_i` into `(d_i/2, d_i]`,
/// doubling every density on top of AVR's classical `α^α` pile-up; the
/// proven lower bound is `(2α)^α`.
pub fn avrq_adversary(n: usize, gamma: f64, eps: f64) -> QbssInstance {
    assert!(n >= 1 && gamma > 0.0 && gamma < 1.0 && eps > 0.0);
    // Normalize so the *smallest* deadline is 1 (competitive ratios are
    // invariant under time scaling, and this keeps tiny γ^n away from
    // the numeric floor).
    let mut jobs = Vec::with_capacity(n);
    for i in 0..n {
        let d = gamma.powi(i as i32 - (n as i32 - 1));
        let w = d; // density 1 per job
        jobs.push(QJob::new(i as u32, 0.0, d, (eps * w).max(1e-12), w, w));
    }
    QbssInstance::new(jobs)
}

/// A staggered-release, common-deadline AVRQ-adversarial skeleton:
/// job `i` active on `(r_i, deadline]` with nominal work `works[i]`,
/// incompressible (`w* = w`) and a negligible query. The release grid
/// `r_i = deadline·(1 − γ^i)` piles densities up toward the common
/// deadline — the geometry behind the classical AVR lower bound that
/// Lemma 5.1 extends. The free `works` vector is meant to be optimized
/// by adversary search (`qbss-bench::search`).
pub fn avrq_adversary_staggered(works: &[f64], gamma: f64, eps: f64) -> QbssInstance {
    assert!(!works.is_empty() && gamma > 0.0 && gamma < 1.0 && eps > 0.0);
    let deadline = 1.0;
    let mut jobs = Vec::with_capacity(works.len());
    for (i, &w) in works.iter().enumerate() {
        assert!(w > 0.0);
        let r = deadline * (1.0 - gamma.powi(i as i32));
        jobs.push(QJob::new(i as u32, r, deadline, (eps * w).max(1e-12), w, w));
    }
    QbssInstance::new(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbss_core::oracle::{cost_no_query, cost_opt, cost_query_oracle, ratios};

    #[test]
    fn lemma_4_1_ratio_blows_up() {
        for &eps in &[0.1, 0.01, 0.001] {
            let inst = lemma_4_1_instance(eps);
            let j = &inst.jobs[0];
            let r = ratios(cost_no_query(j, 3.0), cost_opt(j, 3.0));
            assert!((r.speed - 1.0 / (2.0 * eps)).abs() < 1e-6);
            assert!((r.energy - (1.0 / (2.0 * eps)).powi(3)).abs() < 1e-3 * r.energy);
        }
    }

    #[test]
    fn lemma_4_2_both_branches_give_phi() {
        let alpha = 2.5;
        // Algorithm queries → adversary makes it pointless.
        let inst = lemma_4_2_instance(true);
        let j = &inst.jobs[0];
        let r = ratios(cost_query_oracle(j, alpha), cost_opt(j, alpha));
        assert!((r.speed - PHI).abs() < 1e-9);
        // Algorithm skips → adversary makes it regrettable.
        let inst = lemma_4_2_instance(false);
        let j = &inst.jobs[0];
        let r = ratios(cost_no_query(j, alpha), cost_opt(j, alpha));
        assert!((r.speed - PHI).abs() < 1e-9);
        assert!((r.energy - PHI.powf(alpha)).abs() < 1e-6);
    }

    #[test]
    fn lemma_4_3_equal_window_pays_two() {
        use qbss_core::oracle::cost_query_at;
        let alpha = 3.0;
        // The algorithm plays x = 1/2; the adversary sets w* = 0.
        let inst = lemma_4_3_instance(Some(0.5));
        let j = &inst.jobs[0];
        let r = ratios(cost_query_at(j, 0.5, alpha), cost_opt(j, alpha));
        assert!(r.speed >= 2.0 - 1e-9);
        assert!(r.energy >= 2.0f64.powf(alpha - 1.0) - 1e-9);
    }

    #[test]
    fn lemma_4_4_speed_game_value_is_4_3() {
        let game = RandomizedGame::speed_game();
        let (rho, value) = game.speed_game_value();
        assert!((rho - 2.0 / 3.0).abs() < 1e-6, "optimal ρ should be 2/3, got {rho}");
        assert!((value - 4.0 / 3.0).abs() < 1e-6, "game value should be 4/3, got {value}");
    }

    #[test]
    fn lemma_4_4_energy_game_value() {
        let game = RandomizedGame::energy_game();
        for &alpha in &[2.0, 2.5, 3.0] {
            let (rho, value) = game.energy_game_value(alpha);
            let expected = 0.5 * (1.0 + PHI.powf(alpha));
            assert!((rho - 0.5).abs() < 1e-5, "optimal ρ should be 1/2, got {rho}");
            assert!(
                (value - expected).abs() < 1e-6 * expected,
                "α={alpha}: value {value} vs expected {expected}"
            );
        }
    }

    #[test]
    fn randomized_instance_materialization() {
        let game = RandomizedGame::speed_game();
        assert_eq!(game.instance(true).jobs[0].reveal_exact(), 2.0);
        assert_eq!(game.instance(false).jobs[0].reveal_exact(), 0.0);
    }

    #[test]
    fn cascade_structure() {
        let inst = equal_window_cascade(&[2.0, 2.0], 2.0, 1e-6);
        assert_eq!(inst.jobs[0].release, 0.0);
        assert_eq!(inst.jobs[1].release, 1.0);
        assert_eq!(inst.jobs[0].deadline, 2.0);
        assert!(inst.validate().is_ok());
        // The first job's midpoint equals the second job's release.
        let mid0 = 0.5 * (inst.jobs[0].release + inst.jobs[0].deadline);
        assert_eq!(mid0, inst.jobs[1].release);
    }

    #[test]
    fn staggered_adversary_structure() {
        let works = [1.0, 0.5, 0.25];
        let inst = avrq_adversary_staggered(&works, 0.5, 1e-9);
        assert_eq!(inst.len(), 3);
        // Releases 1 - γ^i: 0, 0.5, 0.75; common deadline 1.
        assert_eq!(inst.jobs[0].release, 0.0);
        assert!((inst.jobs[1].release - 0.5).abs() < 1e-12);
        assert!((inst.jobs[2].release - 0.75).abs() < 1e-12);
        for (j, &w) in inst.jobs.iter().zip(&works) {
            assert_eq!(j.deadline, 1.0);
            assert_eq!(j.upper_bound, w);
            assert_eq!(j.reveal_exact(), w); // incompressible
        }
        assert!(inst.validate().is_ok());
    }

    #[test]
    fn staggered_adversary_hurts_avrq_more_than_random_shapes() {
        use qbss_core::online::avrq;
        let alpha = 3.0;
        // Geometrically decreasing works on the staggered grid pile
        // densities near the deadline.
        let works: Vec<f64> = (0..10).map(|i| 0.55f64.powi(i)).collect();
        let inst = avrq_adversary_staggered(&works, 0.55, 1e-9);
        let ratio = avrq(&inst).energy_ratio(&inst, alpha);
        assert!(ratio > 5.0, "adversarial ratio should be large, got {ratio}");
    }

    #[test]
    fn avrq_adversary_structure() {
        let inst = avrq_adversary(5, 0.5, 1e-9);
        assert_eq!(inst.len(), 5);
        for j in &inst.jobs {
            assert_eq!(j.release, 0.0);
            assert_eq!(j.reveal_exact(), j.upper_bound);
            // Equal densities.
            assert!((j.upper_bound / j.deadline - 1.0).abs() < 1e-12);
        }
        assert!(inst.validate().is_ok());
    }
}
