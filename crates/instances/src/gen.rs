//! Random QBSS instance families.
//!
//! The paper motivates queries with code optimization and file
//! compression: a job's query is a preprocessing pass whose cost is some
//! fraction of the nominal workload and whose benefit (the revealed
//! `w*`) depends on how compressible the payload is. The generators here
//! parameterize exactly those two knobs — [`QueryModel`] and
//! [`Compressibility`] — on top of the release/deadline structure each
//! offline/online algorithm expects.
//!
//! All generation is deterministic given the [`GenConfig::seed`].

use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qbss_core::model::{QJob, QbssInstance};

/// How deadlines (and releases) are laid out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TimeModel {
    /// Common release 0 and common deadline `d` (CRCD's scope).
    CommonDeadline {
        /// The shared deadline `D`.
        d: f64,
    },
    /// Common release 0; deadlines drawn from `2^min_exp … 2^max_exp`
    /// (CRP2D's scope).
    PowersOfTwo {
        /// Smallest exponent (inclusive, may be negative).
        min_exp: i32,
        /// Largest exponent (inclusive).
        max_exp: i32,
    },
    /// Common release 0; deadlines uniform in `[min_d, max_d]`
    /// (CRAD's scope).
    ArbitraryDeadlines {
        /// Earliest possible deadline.
        min_d: f64,
        /// Latest possible deadline.
        max_d: f64,
    },
    /// Releases uniform in `[0, horizon]`, window lengths uniform in
    /// `[min_len, max_len]` (the online algorithms' scope).
    Online {
        /// Release times are drawn from `[0, horizon]`.
        horizon: f64,
        /// Shortest active window.
        min_len: f64,
        /// Longest active window.
        max_len: f64,
    },
    /// Poisson arrival process: exponential inter-arrival times with
    /// the given `rate` (jobs per time unit), window lengths uniform in
    /// `[min_len, max_len]` — the bursty-traffic model of the
    /// file-compression scenario.
    Poisson {
        /// Expected arrivals per unit time (> 0).
        rate: f64,
        /// Shortest active window.
        min_len: f64,
        /// Longest active window.
        max_len: f64,
    },
}

impl TimeModel {
    /// The named time-model families shared by the CLI (`--family`) and
    /// the serve-mode sweep spec. `n` scales the online horizon the
    /// same way `GenConfig::online_default` does. `None` for unknown
    /// names — callers attach their own error type.
    pub fn from_name(name: &str, n: usize) -> Option<TimeModel> {
        Some(match name {
            "online" => TimeModel::Online { horizon: n as f64 / 4.0, min_len: 0.5, max_len: 4.0 },
            "common" => TimeModel::CommonDeadline { d: 8.0 },
            "p2" => TimeModel::PowersOfTwo { min_exp: 0, max_exp: 5 },
            "arbitrary" => TimeModel::ArbitraryDeadlines { min_d: 1.0, max_d: 50.0 },
            "poisson" => TimeModel::Poisson { rate: 2.0, min_len: 0.5, max_len: 4.0 },
            _ => return None,
        })
    }

    /// The names [`TimeModel::from_name`] accepts, for error messages
    /// and usage text.
    pub const NAMES: &'static [&'static str] = &["online", "common", "p2", "arbitrary", "poisson"];
}

/// How the query cost `c` relates to the nominal workload `w`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryModel {
    /// `c = u·w` with `u` uniform in `[lo, hi] ⊆ (0, 1]`.
    UniformFraction {
        /// Lower bound of the fraction.
        lo: f64,
        /// Upper bound of the fraction.
        hi: f64,
    },
    /// `c = f·w` for a fixed fraction `f ∈ (0, 1]`.
    FixedFraction(f64),
}

impl QueryModel {
    fn sample<R: Rng>(&self, w: f64, rng: &mut R) -> f64 {
        let frac = match *self {
            QueryModel::UniformFraction { lo, hi } => {
                assert!(0.0 < lo && lo <= hi && hi <= 1.0, "bad query fraction range");
                Uniform::new_inclusive(lo, hi).sample(rng)
            }
            QueryModel::FixedFraction(f) => {
                assert!(0.0 < f && f <= 1.0, "bad fixed query fraction");
                f
            }
        };
        (frac * w).max(f64::MIN_POSITIVE)
    }
}

/// How compressible payloads are: the distribution of `w*` given `w`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Compressibility {
    /// `w* ~ U[0, w]` — indifferent payloads.
    Uniform,
    /// With probability `p` the payload is highly compressible
    /// (`w* ~ U[0, 0.2w]`), otherwise incompressible (`w* = w`). The
    /// "mixed corpus" of a compression server.
    Bimodal {
        /// Probability of a highly-compressible payload.
        p_compressible: f64,
    },
    /// `w* = w·u³` with `u ~ U[0,1]` — most payloads compress a lot, a
    /// few barely (heavy tail toward large savings).
    HeavyTail,
    /// `w* = w` — queries never pay off (worst case for `Always`).
    Incompressible,
    /// `w* = 0` — queries always pay off maximally (worst case for
    /// `Never`, Lemma 4.1's regime).
    FullyCompressible,
}

impl Compressibility {
    /// The named compressibility families shared by the CLI
    /// (`--compress`) and the serve-mode sweep spec. `None` for
    /// unknown names.
    pub fn from_name(name: &str) -> Option<Compressibility> {
        Some(match name {
            "uniform" => Compressibility::Uniform,
            "bimodal" => Compressibility::Bimodal { p_compressible: 0.5 },
            "heavytail" => Compressibility::HeavyTail,
            "incompressible" => Compressibility::Incompressible,
            "full" => Compressibility::FullyCompressible,
            _ => return None,
        })
    }

    /// The names [`Compressibility::from_name`] accepts.
    pub const NAMES: &'static [&'static str] =
        &["uniform", "bimodal", "heavytail", "incompressible", "full"];

    fn sample<R: Rng>(&self, w: f64, rng: &mut R) -> f64 {
        match *self {
            Compressibility::Uniform => rng.gen_range(0.0..=w),
            Compressibility::Bimodal { p_compressible } => {
                if rng.gen_bool(p_compressible.clamp(0.0, 1.0)) {
                    rng.gen_range(0.0..=0.2 * w)
                } else {
                    w
                }
            }
            Compressibility::HeavyTail => {
                let u: f64 = rng.gen_range(0.0..=1.0);
                w * u * u * u
            }
            Compressibility::Incompressible => w,
            Compressibility::FullyCompressible => 0.0,
        }
    }
}

/// Full description of a random family. Serializable so experiments can
/// record exactly what they ran.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenConfig {
    /// Number of jobs.
    pub n: usize,
    /// RNG seed — same config, same instance.
    pub seed: u64,
    /// Release/deadline structure.
    pub time: TimeModel,
    /// Workloads `w` are uniform in `[min_w, max_w]`.
    pub min_w: f64,
    /// Upper end of the workload range.
    pub max_w: f64,
    /// Query-cost model.
    pub query: QueryModel,
    /// Compressibility model.
    pub compress: Compressibility,
}

impl GenConfig {
    /// A reasonable default family for quick experiments: `n` online
    /// jobs, uniform compressibility, queries at 10–40% of `w`.
    pub fn online_default(n: usize, seed: u64) -> Self {
        Self {
            n,
            seed,
            time: TimeModel::Online { horizon: n as f64 / 4.0, min_len: 0.5, max_len: 4.0 },
            min_w: 0.5,
            max_w: 4.0,
            query: QueryModel::UniformFraction { lo: 0.1, hi: 0.4 },
            compress: Compressibility::Uniform,
        }
    }

    /// A common-deadline family (CRCD's scope).
    pub fn common_deadline(n: usize, d: f64, seed: u64) -> Self {
        Self {
            n,
            seed,
            time: TimeModel::CommonDeadline { d },
            min_w: 0.5,
            max_w: 4.0,
            query: QueryModel::UniformFraction { lo: 0.1, hi: 0.9 },
            compress: Compressibility::Uniform,
        }
    }
}

/// Generates the instance described by `cfg`.
///
/// ```
/// use qbss_instances::gen::{generate, GenConfig};
///
/// let cfg = GenConfig::online_default(20, 7);
/// let a = generate(&cfg);
/// let b = generate(&cfg);
/// assert_eq!(a, b);          // deterministic by seed
/// assert_eq!(a.len(), 20);
/// a.validate().unwrap();
/// ```
pub fn generate(cfg: &GenConfig) -> QbssInstance {
    assert!(cfg.n > 0, "empty family");
    assert!(
        0.0 < cfg.min_w && cfg.min_w <= cfg.max_w,
        "workload range must satisfy 0 < min_w <= max_w"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut jobs = Vec::with_capacity(cfg.n);
    let mut arrival_cursor = 0.0_f64;
    for id in 0..cfg.n {
        let (release, deadline) = sample_window(&cfg.time, &mut arrival_cursor, &mut rng);
        let w = rng.gen_range(cfg.min_w..=cfg.max_w);
        let c = cfg.query.sample(w, &mut rng);
        let w_star = cfg.compress.sample(w, &mut rng);
        jobs.push(QJob::new(id as u32, release, deadline, c, w, w_star));
    }
    let inst = QbssInstance::new(jobs);
    debug_assert!(inst.validate().is_ok());
    inst
}

fn sample_window<R: Rng>(time: &TimeModel, arrival_cursor: &mut f64, rng: &mut R) -> (f64, f64) {
    match *time {
        TimeModel::CommonDeadline { d } => {
            assert!(d > 0.0);
            (0.0, d)
        }
        TimeModel::PowersOfTwo { min_exp, max_exp } => {
            assert!(min_exp <= max_exp);
            let e = rng.gen_range(min_exp..=max_exp);
            (0.0, (e as f64).exp2())
        }
        TimeModel::ArbitraryDeadlines { min_d, max_d } => {
            assert!(0.0 < min_d && min_d <= max_d);
            (0.0, rng.gen_range(min_d..=max_d))
        }
        TimeModel::Online { horizon, min_len, max_len } => {
            assert!(horizon >= 0.0 && 0.0 < min_len && min_len <= max_len);
            let r = rng.gen_range(0.0..=horizon);
            let len = rng.gen_range(min_len..=max_len);
            (r, r + len)
        }
        TimeModel::Poisson { rate, min_len, max_len } => {
            assert!(rate > 0.0 && 0.0 < min_len && min_len <= max_len);
            // Exponential inter-arrival by inverse transform; guard the
            // log against u = 0.
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..=1.0);
            *arrival_cursor += -u.ln() / rate;
            let len = rng.gen_range(min_len..=max_len);
            (*arrival_cursor, *arrival_cursor + len)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbss_core::offline::is_power_of_two_deadline;

    #[test]
    fn deterministic_given_seed() {
        let cfg = GenConfig::online_default(50, 42);
        assert_eq!(generate(&cfg), generate(&cfg));
        let other = GenConfig::online_default(50, 43);
        assert_ne!(generate(&cfg), generate(&other));
    }

    #[test]
    fn common_deadline_structure() {
        let inst = generate(&GenConfig::common_deadline(20, 8.0, 1));
        assert!(inst.has_common_release(0.0));
        assert_eq!(inst.common_deadline(), Some(8.0));
        assert!(inst.validate().is_ok());
    }

    #[test]
    fn power_of_two_structure() {
        let cfg = GenConfig {
            time: TimeModel::PowersOfTwo { min_exp: -1, max_exp: 4 },
            ..GenConfig::common_deadline(30, 1.0, 2)
        };
        let inst = generate(&cfg);
        for j in &inst.jobs {
            assert!(is_power_of_two_deadline(j.deadline), "{}", j.deadline);
            assert!(j.deadline >= 0.5 && j.deadline <= 16.0);
        }
    }

    #[test]
    fn query_loads_respect_model() {
        let cfg = GenConfig {
            query: QueryModel::FixedFraction(0.25),
            ..GenConfig::common_deadline(40, 4.0, 3)
        };
        for j in &generate(&cfg).jobs {
            assert!((j.query_load - 0.25 * j.upper_bound).abs() < 1e-12);
        }
    }

    #[test]
    fn compressibility_extremes() {
        let incompressible = GenConfig {
            compress: Compressibility::Incompressible,
            ..GenConfig::common_deadline(20, 4.0, 4)
        };
        for j in &generate(&incompressible).jobs {
            assert_eq!(j.reveal_exact(), j.upper_bound);
        }
        let full = GenConfig {
            compress: Compressibility::FullyCompressible,
            ..GenConfig::common_deadline(20, 4.0, 5)
        };
        for j in &generate(&full).jobs {
            assert_eq!(j.reveal_exact(), 0.0);
        }
    }

    #[test]
    fn bimodal_mixes() {
        let cfg = GenConfig {
            compress: Compressibility::Bimodal { p_compressible: 0.5 },
            ..GenConfig::common_deadline(200, 4.0, 6)
        };
        let inst = generate(&cfg);
        let incompressible =
            inst.jobs.iter().filter(|j| j.reveal_exact() == j.upper_bound).count();
        assert!((60..140).contains(&incompressible), "got {incompressible}/200");
    }

    #[test]
    fn online_windows_positive() {
        let inst = generate(&GenConfig::online_default(100, 7));
        for j in &inst.jobs {
            assert!(j.deadline > j.release);
            assert!(j.release >= 0.0);
        }
    }

    #[test]
    fn poisson_arrivals_increase_and_average_out() {
        let cfg = GenConfig {
            time: TimeModel::Poisson { rate: 2.0, min_len: 0.5, max_len: 1.0 },
            ..GenConfig::common_deadline(400, 1.0, 10)
        };
        let inst = generate(&cfg);
        let mut last = 0.0;
        for j in &inst.jobs {
            assert!(j.release >= last, "arrivals must be ordered");
            last = j.release;
        }
        // 400 arrivals at rate 2 → horizon ≈ 200 (±5σ ≈ ±35).
        assert!((120.0..280.0).contains(&last), "horizon was {last}");
    }

    #[test]
    fn heavy_tail_mostly_compressible() {
        let cfg = GenConfig {
            compress: Compressibility::HeavyTail,
            ..GenConfig::common_deadline(500, 4.0, 8)
        };
        let inst = generate(&cfg);
        let small = inst
            .jobs
            .iter()
            .filter(|j| j.reveal_exact() < 0.5 * j.upper_bound)
            .count();
        // u³ < 0.5 for u < 0.79: expect ~79% far below w.
        assert!(small > 350, "got {small}/500");
    }
}
