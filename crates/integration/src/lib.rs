//! Host crate for the workspace-level integration tests in `tests/`
//! (wired via `[[test]]` path targets). No library code.
