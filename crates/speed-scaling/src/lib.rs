//! # speed-scaling — the classical dynamic speed scaling substrate
//!
//! This crate implements the *classical* (certain-workload) speed
//! scaling model of Yao, Demers and Shenker: jobs `(r_j, d_j, w_j)` run
//! preemptively on one or `m` speed-scalable machines, the power at
//! speed `s` is `s^α` (`α > 1`), and the goal is to minimize energy
//! `∫ s(t)^α dt` or the maximum speed.
//!
//! It is the substrate on which the `qbss-core` crate builds the
//! SPAA 2021 algorithms for *Speed Scaling with Explorable Uncertainty*:
//! every QBSS algorithm reduces its decisions to a set of classical jobs
//! and invokes one of the algorithms here.
//!
//! ## Contents
//!
//! | module | what |
//! |--------|------|
//! | [`time`] | tolerant comparisons, `(a, b]` intervals, event grids |
//! | [`job`] | jobs, instances, densities |
//! | [`profile`] | piecewise-constant speed profiles, energy integration |
//! | [`schedule`] | explicit schedules + the feasibility checker |
//! | [`edf`] | Earliest-Deadline-First execution under a given profile |
//! | [`yds`] | the YDS offline optimum (clairvoyant baseline) |
//! | [`cache`] | memoized optimal-profile handles for batch sweeps |
//! | [`avr`] | Average Rate online heuristic (`2^{α−1}α^α`-competitive) |
//! | [`oa`] | Optimal Available online heuristic (`α^α`-competitive) |
//! | [`bkp`] | BKP online algorithm (`2(α/(α−1))^α e^α`, max-speed `e`) |
//! | [`stream`] | incremental event-at-a-time drivers for AVR/OA/BKP |
//! | [`multi`] | AVR(m), OA(m), McNaughton assignment, Frank–Wolfe OPT baseline, non-migratory variant |
//! | [`render`] | ASCII Gantt charts and speed sparklines |
//!
//! ## Quick example
//!
//! ```
//! use speed_scaling::job::{Instance, Job};
//! use speed_scaling::{avr::avr_profile, yds::yds_profile};
//!
//! let inst = Instance::new(vec![
//!     Job::new(0, 0.0, 4.0, 4.0),
//!     Job::new(1, 1.0, 2.0, 3.0),
//! ]);
//! let alpha = 3.0;
//! let opt = yds_profile(&inst).energy(alpha);
//! let online = avr_profile(&inst).energy(alpha);
//! assert!(online >= opt);
//! ```

#![warn(missing_docs)]

pub mod avr;
pub mod bkp;
pub mod cache;
pub mod edf;
pub mod job;
pub mod multi;
pub mod oa;
pub mod profile;
pub mod render;
pub mod schedule;
pub mod stream;
pub mod time;
pub mod yds;

pub use cache::OptCache;
pub use job::{Instance, Job, JobId};
pub use profile::SpeedProfile;
pub use schedule::{Schedule, ScheduleError, Slice, WorkRequirement};
