//! Cacheable optimal-profile handles.
//!
//! The YDS profile is the expensive substrate every ratio experiment
//! leans on: computing it is `O(n³)` while evaluating its energy at one
//! `α` is a linear scan over its segments. Ensemble sweeps ask for the
//! same instance's optimum once per *(algorithm, α)* cell, so the naive
//! [`crate::yds::optimal_energy`] path recomputes the profile dozens of
//! times per instance. [`OptCache`] computes the profile once and
//! memoizes the per-`α` energies behind it; it is `Sync`, so one handle
//! can be shared across the shards of a parallel sweep.
//!
//! Determinism contract: a memoized energy is byte-identical to the
//! value a cold [`crate::yds::optimal_energy`] call produces, because it
//! is the *same* `profile.energy(α)` evaluation over the same profile —
//! memoization only skips the profile reconstruction, never changes the
//! arithmetic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::job::Instance;
use crate::profile::SpeedProfile;
use crate::yds::yds_profile;

/// A memoized view of an instance's optimal (YDS) speed profile.
///
/// `energy(α)` results are cached keyed by the exact bit pattern of
/// `α`; `max_speed` is computed once at construction. Cache traffic is
/// counted so harnesses can report hit rates.
#[derive(Debug)]
pub struct OptCache {
    profile: SpeedProfile,
    max_speed: f64,
    /// `(α bits, energy)` pairs; sweeps use a handful of distinct α
    /// values, so a flat vec beats a hash map here.
    energies: Mutex<Vec<(u64, f64)>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl OptCache {
    /// Runs YDS once on `instance` and wraps the profile.
    pub fn new(instance: &Instance) -> Self {
        let profile = yds_profile(instance);
        let max_speed = profile.max_speed();
        Self {
            profile,
            max_speed,
            energies: Mutex::new(Vec::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The cached optimal profile.
    pub fn profile(&self) -> &SpeedProfile {
        &self.profile
    }

    /// Optimal energy at exponent `alpha`, memoized per `alpha` bit
    /// pattern. Bit-identical to `yds_profile(inst).energy(alpha)`.
    pub fn energy(&self, alpha: f64) -> f64 {
        let key = alpha.to_bits();
        let mut memo = self.energies.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(&(_, e)) = memo.iter().find(|&&(k, _)| k == key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            qbss_telemetry::counter!("cache.opt_energy.hits").inc();
            return e;
        }
        let e = self.profile.energy(alpha);
        memo.push((key, e));
        self.misses.fetch_add(1, Ordering::Relaxed);
        qbss_telemetry::counter!("cache.opt_energy.misses").inc();
        e
    }

    /// Optimal maximum speed (computed once at construction).
    pub fn max_speed(&self) -> f64 {
        self.max_speed
    }

    /// `(hits, misses)` of the per-`α` energy memo so far.
    pub fn counters(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use crate::yds::{optimal_energy, optimal_max_speed};

    fn instance() -> Instance {
        Instance::new(vec![
            Job::new(0, 0.0, 4.0, 4.0),
            Job::new(1, 1.0, 2.0, 3.0),
            Job::new(2, 3.0, 6.0, 2.0),
        ])
    }

    #[test]
    fn memoized_energy_is_bit_identical_to_cold_path() {
        let inst = instance();
        let cache = OptCache::new(&inst);
        for &alpha in &[1.5, 2.0, 2.5, 3.0] {
            let cold = optimal_energy(&inst, alpha);
            assert_eq!(cache.energy(alpha).to_bits(), cold.to_bits(), "alpha {alpha}");
            // Second read is a hit and returns the same bits.
            assert_eq!(cache.energy(alpha).to_bits(), cold.to_bits());
        }
        assert_eq!(cache.max_speed().to_bits(), optimal_max_speed(&inst).to_bits());
        let (hits, misses) = cache.counters();
        assert_eq!((hits, misses), (4, 4));
    }

    #[test]
    fn shared_across_threads() {
        let inst = instance();
        let cache = OptCache::new(&inst);
        let expect = optimal_energy(&inst, 3.0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| assert_eq!(cache.energy(3.0).to_bits(), expect.to_bits()));
            }
        });
        let (hits, misses) = cache.counters();
        assert_eq!(hits + misses, 4);
        assert!(misses >= 1);
    }

    #[test]
    fn empty_instance_is_zero() {
        let cache = OptCache::new(&Instance::default());
        assert_eq!(cache.max_speed(), 0.0);
        assert_eq!(cache.energy(3.0), 0.0);
    }
}
