//! Incremental (event-at-a-time) drivers for the online substrate
//! algorithms.
//!
//! The batch entry points ([`crate::avr::avr_profile`],
//! [`crate::oa::oa_profile`], [`crate::bkp::bkp_profile`]) are thin
//! adapters over the streams in this module: they feed the instance's
//! jobs in arrival order (release-sorted, stable) and call
//! [`OaStream::finish`] & co. A long-lived caller — the `qbss-core`
//! `OnlineSolver` layer, and transitively a serve-plane session — feeds
//! the same streams one arrival at a time instead, paying an amortized
//! per-event cost rather than a per-instance re-solve.
//!
//! ## Feeding contract
//!
//! All three streams require **non-decreasing release times** (up to
//! [`EPS`]); feeding out of order is a programming error and panics.
//! Callers that accept arrivals from the outside (CLI, serve sessions)
//! must validate ordering before feeding. Two jobs with numerically
//! equal releases may be fed in either order; the profile is the same up
//! to floating-point association.
//!
//! ## Incrementality
//!
//! * [`AvrStream`] — each job contributes a density *delta* (`+δ` at its
//!   release, `−δ` at its deadline); the profile is a prefix sum over
//!   the sorted delta list, `O(n log n)` total instead of `O(n²)`
//!   pointwise re-summation.
//! * [`OaStream`] — OA re-plans at every arrival, but every residual
//!   instance has a *common release* (now), where YDS degenerates to the
//!   least concave majorant of the cumulative-work staircase. The plan
//!   is maintained with a monotone stack in `O(k)` per arrival (`k` =
//!   active jobs) instead of a full `O(k³)` YDS re-solve, using
//!   preallocated scratch buffers.
//! * [`BkpStream`] — the e-window intensity query walks release
//!   candidates once and sweeps a deadline-sorted running sum per
//!   candidate: `O(k²)` per event instead of the `O(k³)` all-pairs scan.

use crate::job::{Instance, Job};
use crate::profile::SpeedProfile;
use crate::time::{approx_eq, dedup_times, EPS};

/// Returns the instance's jobs in canonical arrival order: sorted by
/// release time, ties kept in storage order (stable). This is the order
/// the batch adapters feed the streams in; a streaming caller that wants
/// bit-identical results to the batch path must feed the same order.
pub fn release_ordered(instance: &Instance) -> Vec<Job> {
    let mut jobs = instance.jobs.clone();
    jobs.sort_by(|a, b| a.release.partial_cmp(&b.release).expect("finite release"));
    jobs
}

fn assert_monotone(last: f64, release: f64, stream: &str) {
    assert!(
        release + EPS >= last,
        "{stream}: arrivals must be fed in release order (last {last}, got {release})"
    );
}

// ---------------------------------------------------------------------------
// AVR
// ---------------------------------------------------------------------------

/// Incremental Average-Rate state: per-job density add/remove events.
#[derive(Debug, Clone, Default)]
pub struct AvrStream {
    /// `(time, density delta)` — `+δ` at releases, `−δ` at deadlines.
    deltas: Vec<(f64, f64)>,
    /// Arrived jobs (for live speed queries).
    jobs: Vec<Job>,
    last_release: f64,
}

impl AvrStream {
    /// Fresh empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of arrivals so far.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether no job has arrived yet.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Feeds one arrival. Panics if `job.release` is before the previous
    /// arrival (see the module-level feeding contract).
    pub fn on_arrival(&mut self, job: Job) {
        if !self.jobs.is_empty() {
            assert_monotone(self.last_release, job.release, "AvrStream");
        }
        self.last_release = job.release;
        let delta = job.density();
        self.deltas.push((job.release, delta));
        self.deltas.push((job.deadline, -delta));
        qbss_telemetry::counter!("avr.delta_events").add(2);
        self.jobs.push(job);
    }

    /// The AVR speed just after time `t`: the density sum of arrived jobs
    /// whose window `(r, d]` still covers instants right after `t`.
    pub fn speed_after(&self, t: f64) -> f64 {
        self.jobs
            .iter()
            .filter(|j| j.release <= t + EPS && j.deadline > t + EPS)
            .map(|j| j.density())
            .sum()
    }

    /// Builds the AVR profile of everything that has arrived.
    pub fn finish(&self) -> SpeedProfile {
        if self.jobs.is_empty() {
            return SpeedProfile::zero();
        }
        let mut deltas = self.deltas.clone();
        deltas.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite event time"));
        let grid = dedup_times(deltas.iter().map(|&(t, _)| t).collect());
        let mut values = Vec::with_capacity(grid.len() - 1);
        let mut level = 0.0_f64;
        let mut p = 0usize;
        for w in grid.windows(2) {
            let mid = 0.5 * (w[0] + w[1]);
            while p < deltas.len() && deltas[p].0 < mid {
                level += deltas[p].1;
                p += 1;
            }
            values.push(level.max(0.0));
        }
        qbss_telemetry::counter!("avr.grid_segments").add(values.len() as u64);
        SpeedProfile::new(grid, values)
    }
}

// ---------------------------------------------------------------------------
// BKP
// ---------------------------------------------------------------------------

/// The BKP intensity `max_{t1 < t ≤ t2} w(t1, t2)/(t2 − t1)` over a set
/// of *arrived* jobs (all `release ≤ t + EPS`; the caller pre-filters).
///
/// Candidate `t1` ranges over releases strictly below `t`, candidate
/// `t2` over deadlines at-or-after `t`; for each `t1` the deadlines are
/// swept in sorted order with a running work sum, so the query is
/// `O(k²)` instead of the all-pairs `O(k³)` scan.
pub fn intensity_over(arrived: &[Job], t: f64) -> f64 {
    if arrived.is_empty() {
        return 0.0;
    }
    // Deadline-sorted view: drives both the t2 candidate sweep and the
    // running work sum.
    let mut by_deadline: Vec<&Job> = arrived.iter().collect();
    by_deadline.sort_by(|a, b| a.deadline.partial_cmp(&b.deadline).expect("finite deadline"));

    // One window slide = one (t1, t2) candidate step of the sweep;
    // accumulated locally, landed with a single `add` per query.
    let mut window_slides = 0_u64;
    let mut best = 0.0_f64;
    for t1 in arrived.iter().map(|j| j.release).filter(|&r| r < t && r.is_finite()) {
        let mut acc = 0.0_f64;
        let mut p = 0usize;
        for cand in by_deadline.iter().map(|j| j.deadline).filter(|&d| d + EPS >= t) {
            window_slides += 1;
            while p < by_deadline.len() && by_deadline[p].deadline <= cand + EPS {
                if by_deadline[p].release + EPS >= t1 {
                    acc += by_deadline[p].work;
                }
                p += 1;
            }
            if cand > t1 + EPS {
                best = best.max(acc / (cand - t1));
            }
        }
    }
    qbss_telemetry::counter!("bkp.intensity_queries").inc();
    qbss_telemetry::counter!("bkp.window_slides").add(window_slides);
    best
}

/// Incremental BKP state: arrived jobs in release order.
#[derive(Debug, Clone, Default)]
pub struct BkpStream {
    jobs: Vec<Job>,
    last_release: f64,
}

impl BkpStream {
    /// Fresh empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of arrivals so far.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether no job has arrived yet.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Feeds one arrival. Panics if fed out of release order.
    pub fn on_arrival(&mut self, job: Job) {
        if !self.jobs.is_empty() {
            assert_monotone(self.last_release, job.release, "BkpStream");
        }
        self.last_release = job.release;
        self.jobs.push(job);
    }

    /// The BKP speed (`e ·` intensity) just after `t` over the jobs
    /// arrived so far.
    pub fn speed_after(&self, t: f64) -> f64 {
        let arrived = self.arrived_prefix(t);
        std::f64::consts::E * intensity_over(arrived, t)
    }

    fn arrived_prefix(&self, t: f64) -> &[Job] {
        let n = self.jobs.partition_point(|j| j.release <= t + EPS);
        &self.jobs[..n]
    }

    /// Builds the BKP profile of everything that has arrived.
    pub fn finish(&self) -> SpeedProfile {
        if self.jobs.is_empty() {
            return SpeedProfile::zero();
        }
        let mut events = Vec::with_capacity(2 * self.jobs.len());
        for j in &self.jobs {
            events.push(j.release);
            events.push(j.deadline);
        }
        let grid = dedup_times(events);
        let mut values = Vec::with_capacity(grid.len() - 1);
        for w in grid.windows(2) {
            let mid = 0.5 * (w[0] + w[1]);
            let arrived = self.arrived_prefix(mid);
            values.push(std::f64::consts::E * intensity_over(arrived, mid));
        }
        SpeedProfile::new(grid, values)
    }
}

// ---------------------------------------------------------------------------
// OA
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct OaJob {
    deadline: f64,
    remaining: f64,
}

/// Incremental Optimal-Available state.
///
/// Every residual instance OA plans for has a common release (the
/// current arrival time), where YDS collapses to the least concave
/// majorant of the cumulative-work staircase over deadlines. The stream
/// keeps the active set deadline-sorted and rebuilds that majorant with
/// a monotone stack in `O(k)` per arrival — no YDS re-solve, no
/// per-event allocation (the stack and plan buffers are reused).
#[derive(Debug, Clone, Default)]
pub struct OaStream {
    /// Current arrival-event time (dedup'd: arrivals within `EPS` of the
    /// anchor merge into the same planning event).
    anchor: Option<f64>,
    horizon: f64,
    min_release: f64,
    last_release: f64,
    /// Released, unfinished jobs sorted by `(deadline, arrival order)`.
    active: Vec<OaJob>,
    /// The committed plan for the current anchor: disjoint
    /// `(start, end, speed)` segments with strictly decreasing speeds.
    plan: Vec<(f64, f64, f64)>,
    /// Executed pieces of the final profile.
    pieces: Vec<(f64, f64, f64)>,
    // Scratch buffers for the majorant stack, reused across arrivals.
    hull_x: Vec<f64>,
    hull_w: Vec<f64>,
}

impl OaStream {
    /// Fresh empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether no job has arrived yet.
    pub fn is_empty(&self) -> bool {
        self.anchor.is_none()
    }

    /// The speed OA currently plans to run just after time `t` (0 outside
    /// the committed plan). Querying before and after an arrival yields
    /// the speed delta that arrival caused.
    pub fn planned_speed_after(&self, t: f64) -> f64 {
        self.plan
            .iter()
            .find(|&&(s, e, _)| s <= t + EPS && t < e)
            .map_or(0.0, |&(_, _, v)| v)
    }

    /// Feeds one arrival: executes the committed plan up to the new
    /// arrival time, admits the job and re-plans. Panics if fed out of
    /// release order.
    pub fn on_arrival(&mut self, job: Job) {
        match self.anchor {
            None => {
                self.anchor = Some(job.release);
                self.min_release = job.release;
            }
            Some(a) => {
                assert_monotone(self.last_release, job.release, "OaStream");
                if !approx_eq(job.release, a) {
                    self.execute_to(job.release);
                    self.anchor = Some(job.release);
                }
            }
        }
        self.last_release = job.release;
        self.horizon = self.horizon.max(job.deadline);
        if job.work > EPS {
            let at = self
                .active
                .partition_point(|existing| existing.deadline <= job.deadline);
            self.active.insert(at, OaJob { deadline: job.deadline, remaining: job.work });
        }
        self.replan();
    }

    /// Executes the committed plan up to `t` without a new arrival and
    /// re-plans there. A no-op before the first arrival or when `t` is
    /// not past the current anchor.
    pub fn advance_to(&mut self, t: f64) {
        let Some(a) = self.anchor else { return };
        if t <= a + EPS {
            return;
        }
        self.execute_to(t);
        self.anchor = Some(t);
        self.last_release = self.last_release.max(t);
        self.replan();
    }

    /// Runs the plan out to the horizon and assembles the OA profile of
    /// everything that has arrived.
    pub fn finish(&mut self) -> SpeedProfile {
        if let Some(a) = self.anchor {
            if self.horizon > a + EPS {
                self.execute_to(self.horizon);
                self.anchor = Some(self.horizon);
                self.plan.clear();
            }
        }
        if self.pieces.is_empty() {
            return SpeedProfile::zero();
        }
        let mut events: Vec<f64> = vec![self.min_release, self.horizon];
        for &(a, b, _) in &self.pieces {
            events.push(a);
            events.push(b);
        }
        let pieces = &self.pieces;
        SpeedProfile::from_events(events, |t| {
            // Pieces are disjoint and start-sorted; find (a, b] ∋ t.
            let idx = pieces.partition_point(|&(a, _, _)| a < t);
            if idx == 0 {
                return 0.0;
            }
            let (_, b, s) = pieces[idx - 1];
            if t <= b {
                s
            } else {
                0.0
            }
        })
        .simplify()
    }

    /// Follows the committed plan on `(anchor, t1]`, recording profile
    /// pieces and draining the active set in EDF order.
    fn execute_to(&mut self, t1: f64) {
        for seg in 0..self.plan.len() {
            let (s, e, v) = self.plan[seg];
            if s >= t1 - EPS {
                break;
            }
            let b = e.min(t1);
            if b <= s + EPS || v <= EPS {
                continue;
            }
            self.pieces.push((s, b, v));
            let mut budget = (b - s) * v;
            for job in self.active.iter_mut() {
                if budget <= EPS {
                    break;
                }
                if job.deadline <= s || job.remaining <= EPS {
                    continue;
                }
                let take = budget.min(job.remaining);
                job.remaining -= take;
                budget -= take;
            }
        }
    }

    /// Rebuilds the common-release YDS plan at the current anchor: the
    /// least concave majorant of the cumulative-work staircase over the
    /// active deadlines, via a monotone stack on reused buffers.
    fn replan(&mut self) {
        self.plan.clear();
        let Some(a) = self.anchor else { return };
        self.active.retain(|j| j.remaining > EPS && j.deadline > a + EPS);
        if self.active.is_empty() {
            return;
        }
        self.hull_x.clear();
        self.hull_w.clear();
        self.hull_x.push(0.0);
        self.hull_w.push(0.0);
        // Hull work accumulates locally; one `add` per replan keeps the
        // monotone-stack loop free of atomic traffic.
        let mut hull_updates = 0_u64;
        let mut hull_pops = 0_u64;
        let mut cum = 0.0_f64;
        let mut i = 0usize;
        while i < self.active.len() {
            // Deadlines within EPS of the group head count as one event.
            let head = self.active[i].deadline;
            while i < self.active.len() && approx_eq(self.active[i].deadline, head) {
                cum += self.active[i].remaining;
                i += 1;
            }
            let x = head - a;
            while self.hull_x.len() >= 2 {
                let k = self.hull_x.len();
                let s_prev = (self.hull_w[k - 1] - self.hull_w[k - 2])
                    / (self.hull_x[k - 1] - self.hull_x[k - 2]);
                let s_new = (cum - self.hull_w[k - 1]) / (x - self.hull_x[k - 1]);
                if s_prev <= s_new {
                    self.hull_x.pop();
                    self.hull_w.pop();
                    hull_pops += 1;
                } else {
                    break;
                }
            }
            self.hull_x.push(x);
            self.hull_w.push(cum);
            hull_updates += 1;
        }
        qbss_telemetry::counter!("oa.hull_updates").add(hull_updates);
        qbss_telemetry::counter!("oa.hull_pops").add(hull_pops);
        for k in 1..self.hull_x.len() {
            let speed = (self.hull_w[k] - self.hull_w[k - 1])
                / (self.hull_x[k] - self.hull_x[k - 1]);
            self.plan.push((a + self.hull_x[k - 1], a + self.hull_x[k], speed));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::avr::avr_profile;
    use crate::bkp::{bkp_intensity_at, bkp_profile};
    use crate::oa::oa_profile;
    use crate::yds::yds_profile;

    fn staggered() -> Instance {
        Instance::new(vec![
            Job::new(0, 0.0, 4.0, 2.0),
            Job::new(1, 1.0, 3.0, 2.0),
            Job::new(2, 2.0, 5.0, 1.5),
            Job::new(3, 2.0, 2.5, 0.4),
        ])
    }

    #[test]
    fn avr_stream_matches_batch_bitwise() {
        let inst = staggered();
        let mut s = AvrStream::new();
        for job in release_ordered(&inst) {
            s.on_arrival(job);
        }
        let streamed = s.finish();
        let batch = avr_profile(&inst);
        assert_eq!(streamed.breakpoints(), batch.breakpoints());
        assert_eq!(streamed.values(), batch.values());
    }

    #[test]
    fn bkp_stream_matches_batch_bitwise() {
        let inst = staggered();
        let mut s = BkpStream::new();
        for job in release_ordered(&inst) {
            s.on_arrival(job);
        }
        let streamed = s.finish();
        let batch = bkp_profile(&inst);
        assert_eq!(streamed.breakpoints(), batch.breakpoints());
        assert_eq!(streamed.values(), batch.values());
    }

    #[test]
    fn oa_stream_matches_batch_bitwise() {
        let inst = staggered();
        let mut s = OaStream::new();
        for job in release_ordered(&inst) {
            s.on_arrival(job);
        }
        let streamed = s.finish();
        let batch = oa_profile(&inst);
        assert_eq!(streamed.breakpoints(), batch.breakpoints());
        assert_eq!(streamed.values(), batch.values());
    }

    #[test]
    fn oa_stream_common_release_equals_yds() {
        let inst = Instance::new(vec![
            Job::new(0, 0.0, 1.0, 3.0),
            Job::new(1, 0.0, 2.0, 1.0),
            Job::new(2, 0.0, 4.0, 1.0),
        ]);
        let mut s = OaStream::new();
        for job in release_ordered(&inst) {
            s.on_arrival(job);
        }
        let p = s.finish();
        let opt = yds_profile(&inst);
        for &t in &[0.5, 1.5, 2.5, 3.5] {
            assert!(
                (p.speed_at(t) - opt.speed_at(t)).abs() < 1e-9,
                "common-release OA must equal YDS at t={t}"
            );
        }
    }

    #[test]
    fn oa_advance_to_between_arrivals_is_consistent() {
        // Advancing mid-plan re-anchors the staircase on the remaining
        // work; the executed profile must stay the same schedule. The
        // releases are distinct with gaps wider than the nudge so the
        // advanced clock never passes the next arrival.
        let inst = Instance::new(vec![
            Job::new(0, 0.0, 4.0, 2.0),
            Job::new(1, 1.0, 3.0, 2.0),
            Job::new(2, 2.0, 5.0, 1.5),
            Job::new(3, 3.0, 3.5, 0.4),
        ]);
        let plain = {
            let mut s = OaStream::new();
            for job in release_ordered(&inst) {
                s.on_arrival(job);
            }
            s.finish()
        };
        let nudged = {
            let mut s = OaStream::new();
            for job in release_ordered(&inst) {
                s.on_arrival(job);
                s.advance_to(job.release + 0.25);
            }
            s.finish()
        };
        for &alpha in &[2.0, 3.0] {
            let a = plain.energy(alpha);
            let b = nudged.energy(alpha);
            assert!((a - b).abs() <= 1e-6 * a.max(1.0), "α={alpha}: {a} vs {b}");
        }
    }

    #[test]
    fn intensity_over_matches_all_pairs_reference() {
        // The O(k²) sweep must agree with the original all-pairs scan.
        let inst = staggered();
        for &t in &[0.5, 1.0, 1.5, 2.25, 3.0, 4.5] {
            let arrived: Vec<Job> =
                inst.jobs.iter().copied().filter(|j| j.release <= t + EPS).collect();
            let fast = intensity_over(&arrived, t);
            let mut slow = 0.0_f64;
            for j1 in &arrived {
                for j2 in &arrived {
                    let (t1, t2) = (j1.release, j2.deadline);
                    if t1 < t && t2 + EPS >= t && t2 > t1 + EPS {
                        let w: f64 = arrived
                            .iter()
                            .filter(|j| j.release + EPS >= t1 && j.deadline <= t2 + EPS)
                            .map(|j| j.work)
                            .sum();
                        slow = slow.max(w / (t2 - t1));
                    }
                }
            }
            assert!((fast - slow).abs() < 1e-9, "t={t}: {fast} vs {slow}");
            assert!((bkp_intensity_at(&inst, t) - slow).abs() < 1e-9);
        }
    }

    #[test]
    fn live_speed_queries_reflect_arrivals() {
        let mut avr = AvrStream::new();
        assert_eq!(avr.speed_after(0.0), 0.0);
        avr.on_arrival(Job::new(0, 0.0, 2.0, 4.0));
        assert!((avr.speed_after(0.0) - 2.0).abs() < 1e-12);
        assert_eq!(avr.speed_after(2.5), 0.0);

        let mut oa = OaStream::new();
        assert_eq!(oa.planned_speed_after(0.0), 0.0);
        oa.on_arrival(Job::new(0, 0.0, 2.0, 4.0));
        assert!((oa.planned_speed_after(0.0) - 2.0).abs() < 1e-12);

        let mut bkp = BkpStream::new();
        bkp.on_arrival(Job::new(0, 0.0, 2.0, 4.0));
        assert!((bkp.speed_after(1.0) - std::f64::consts::E * 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "release order")]
    fn out_of_order_feeding_panics() {
        let mut s = OaStream::new();
        s.on_arrival(Job::new(0, 2.0, 3.0, 1.0));
        s.on_arrival(Job::new(1, 0.0, 1.0, 1.0));
    }

    #[test]
    fn empty_streams_finish_to_zero() {
        assert_eq!(AvrStream::new().finish().max_speed(), 0.0);
        assert_eq!(BkpStream::new().finish().max_speed(), 0.0);
        assert_eq!(OaStream::new().finish().max_speed(), 0.0);
    }
}
