//! Classical (certain-workload) job model.
//!
//! A classical job is the triple `(r_j, d_j, w_j)` of Yao, Demers and
//! Shenker: `w_j` units of work to be executed preemptively inside the
//! active interval `(r_j, d_j]`. The QBSS algorithms of the paper reduce
//! every decision to a set of classical jobs and then invoke the
//! substrate algorithms of this crate (YDS/AVR/OA/BKP/AVR(m)) on them.


use crate::time::{approx_le, Interval, EPS};

/// Identifier of a job inside an [`Instance`].
///
/// Derived jobs created by QBSS algorithms keep the id of the original
/// QBSS job they stem from (a query job and an exact-work job for the
/// same original job share an id), so ids are *not* necessarily unique in
/// an instance; use the index in [`Instance::jobs`] for uniqueness.
pub type JobId = u32;

/// A classical speed-scaling job `(r, d, w)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Job {
    /// Stable identifier (see [`JobId`] on uniqueness).
    pub id: JobId,
    /// Release time `r_j`.
    pub release: f64,
    /// Deadline `d_j` (strictly after the release).
    pub deadline: f64,
    /// Workload `w_j >= 0`.
    pub work: f64,
}

impl Job {
    /// Creates a job, panicking on non-finite input, `deadline <= release`
    /// or negative work. Malformed jobs are programming errors here: data
    /// coming from the outside goes through [`Instance::validate`].
    pub fn new(id: JobId, release: f64, deadline: f64, work: f64) -> Self {
        let job = Self { id, release, deadline, work };
        job.check().expect("malformed job");
        job
    }

    fn check(&self) -> Result<(), String> {
        if !(self.release.is_finite() && self.deadline.is_finite() && self.work.is_finite()) {
            return Err(format!("job {}: non-finite field", self.id));
        }
        if self.deadline <= self.release + EPS {
            return Err(format!(
                "job {}: empty active interval ({}, {}]",
                self.id, self.release, self.deadline
            ));
        }
        if self.work < 0.0 {
            return Err(format!("job {}: negative work {}", self.id, self.work));
        }
        Ok(())
    }

    /// The active interval `(r_j, d_j]`.
    #[inline]
    pub fn window(&self) -> Interval {
        Interval::new(self.release, self.deadline)
    }

    /// Density `δ_j = w_j / (d_j - r_j)` — the constant speed needed to
    /// execute the job spread over its whole window.
    #[inline]
    pub fn density(&self) -> f64 {
        self.work / (self.deadline - self.release)
    }

    /// Whether the job is active at time `t` (i.e. `t ∈ (r_j, d_j]`, up
    /// to tolerance on the endpoints).
    #[inline]
    pub fn active_at(&self, t: f64) -> bool {
        self.release < t - EPS && approx_le(t, self.deadline)
    }
}

/// A set of classical jobs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Instance {
    /// The jobs; order is insignificant for the algorithms but preserved.
    pub jobs: Vec<Job>,
}

impl Instance {
    /// Creates an instance from jobs. Does *not* validate; call
    /// [`Instance::validate`] on untrusted data.
    pub fn new(jobs: Vec<Job>) -> Self {
        Self { jobs }
    }

    /// Number of jobs.
    #[inline]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the instance has no jobs.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Validates every job; returns the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        for job in &self.jobs {
            job.check()?;
        }
        Ok(())
    }

    /// Earliest release time, or 0 for an empty instance.
    pub fn min_release(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        self.jobs.iter().map(|j| j.release).fold(f64::INFINITY, f64::min)
    }

    /// Latest deadline, or 0 for an empty instance.
    pub fn max_deadline(&self) -> f64 {
        self.jobs.iter().map(|j| j.deadline).fold(0.0, f64::max)
    }

    /// Total work `Σ w_j`.
    pub fn total_work(&self) -> f64 {
        self.jobs.iter().map(|j| j.work).sum()
    }

    /// All release times and deadlines, sorted and deduplicated — the
    /// canonical event grid for event-driven algorithms.
    pub fn event_times(&self) -> Vec<f64> {
        let mut ts = Vec::with_capacity(2 * self.jobs.len());
        for j in &self.jobs {
            ts.push(j.release);
            ts.push(j.deadline);
        }
        crate::time::dedup_times(ts)
    }

    /// Sum of densities of the jobs active at time `t` — the AVR speed.
    pub fn total_density_at(&self, t: f64) -> f64 {
        self.jobs.iter().filter(|j| j.active_at(t)).map(|j| j.density()).sum()
    }
}

impl FromIterator<Job> for Instance {
    fn from_iter<T: IntoIterator<Item = Job>>(iter: T) -> Self {
        Self { jobs: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_and_window() {
        let j = Job::new(0, 1.0, 3.0, 4.0);
        assert_eq!(j.density(), 2.0);
        assert_eq!(j.window().len(), 2.0);
        assert!(j.active_at(2.0));
        assert!(j.active_at(3.0));
        assert!(!j.active_at(1.0)); // window is open at the release
        assert!(!j.active_at(3.5));
    }

    #[test]
    #[should_panic(expected = "malformed job")]
    fn empty_window_rejected() {
        let _ = Job::new(0, 1.0, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "malformed job")]
    fn negative_work_rejected() {
        let _ = Job::new(0, 0.0, 1.0, -1.0);
    }

    #[test]
    fn zero_work_allowed() {
        // Queries of jobs that turn out fully compressible yield
        // zero-work derived jobs; they must be representable.
        let j = Job::new(0, 0.0, 1.0, 0.0);
        assert_eq!(j.density(), 0.0);
    }

    #[test]
    fn instance_aggregates() {
        let inst = Instance::new(vec![
            Job::new(0, 0.0, 2.0, 2.0),
            Job::new(1, 1.0, 3.0, 6.0),
        ]);
        assert_eq!(inst.len(), 2);
        assert_eq!(inst.total_work(), 8.0);
        assert_eq!(inst.max_deadline(), 3.0);
        assert_eq!(inst.event_times(), vec![0.0, 1.0, 2.0, 3.0]);
        // At t = 1.5 both are active: densities 1 and 3.
        assert!((inst.total_density_at(1.5) - 4.0).abs() < 1e-12);
        // At t = 2.5 only job 1 is active.
        assert!((inst.total_density_at(2.5) - 3.0).abs() < 1e-12);
        assert!(inst.validate().is_ok());
    }

    #[test]
    fn instance_from_iterator() {
        let inst: Instance = (0..3).map(|i| Job::new(i, 0.0, 1.0, 1.0)).collect();
        assert_eq!(inst.len(), 3);
    }
}
