//! Time arithmetic with explicit tolerances.
//!
//! The whole library works in continuous time represented as `f64`. Exact
//! comparisons on floating point are meaningless after a few arithmetic
//! steps, so every module compares through the helpers defined here. Two
//! tolerance regimes exist:
//!
//! * [`EPS`] — absolute tolerance for time instants and work amounts that
//!   are expected to be "equal by construction" (segment endpoints, total
//!   work conservation after a handful of additions).
//! * [`REL_TOL`] — relative tolerance used by validity checkers when
//!   comparing accumulated quantities (energy, executed work) whose
//!   magnitude is instance-dependent.

/// Absolute tolerance for time instants and single-step work arithmetic.
pub const EPS: f64 = 1e-9;

/// Relative tolerance for accumulated quantities (energy, total work).
pub const REL_TOL: f64 = 1e-6;

/// `a <= b` up to absolute tolerance.
#[inline]
pub fn approx_le(a: f64, b: f64) -> bool {
    a <= b + EPS
}

/// `a >= b` up to absolute tolerance.
#[inline]
pub fn approx_ge(a: f64, b: f64) -> bool {
    a + EPS >= b
}

/// `a == b` up to absolute tolerance.
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPS
}

/// `a == b` up to relative tolerance (with an absolute floor for values
/// near zero).
#[inline]
pub fn rel_eq(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= REL_TOL * scale
}

/// `a <= b` up to relative tolerance.
#[inline]
pub fn rel_le(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    a <= b + REL_TOL * scale
}

/// A half-open time interval `(start, end]`.
///
/// The paper's convention is that a job with release `r` and deadline `d`
/// is active in `(r, d]`; we follow it. All interval lengths are
/// non-negative by construction ([`Interval::new`] panics otherwise,
/// because a reversed interval is always a programming error and never a
/// data error).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Left endpoint (exclusive).
    pub start: f64,
    /// Right endpoint (inclusive).
    pub end: f64,
}

impl Interval {
    /// Creates `(start, end]`. Panics if `end < start - EPS` or either
    /// endpoint is not finite.
    pub fn new(start: f64, end: f64) -> Self {
        assert!(
            start.is_finite() && end.is_finite(),
            "interval endpoints must be finite: ({start}, {end}]"
        );
        assert!(
            end >= start - EPS,
            "reversed interval: ({start}, {end}]"
        );
        Self { start, end: end.max(start) }
    }

    /// Length `end - start` (never negative).
    #[inline]
    pub fn len(&self) -> f64 {
        (self.end - self.start).max(0.0)
    }

    /// Whether the interval has (numerically) zero length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() <= EPS
    }

    /// Whether `t` lies in the closure `[start, end]` up to tolerance.
    /// Used for containment checks where the open/closed distinction is
    /// immaterial (it concerns sets of measure zero).
    #[inline]
    pub fn contains(&self, t: f64) -> bool {
        approx_ge(t, self.start) && approx_le(t, self.end)
    }

    /// Whether `other` is contained in `self` up to tolerance.
    #[inline]
    pub fn contains_interval(&self, other: &Interval) -> bool {
        approx_le(self.start, other.start) && approx_ge(self.end, other.end)
    }

    /// Intersection length of two intervals (0 if disjoint).
    #[inline]
    pub fn overlap_len(&self, other: &Interval) -> f64 {
        (self.end.min(other.end) - self.start.max(other.start)).max(0.0)
    }

    /// Midpoint `(start + end) / 2`.
    #[inline]
    pub fn midpoint(&self) -> f64 {
        0.5 * (self.start + self.end)
    }
}

/// Sorts and deduplicates (up to [`EPS`]) a list of event times in place,
/// returning the cleaned vector. Used by every event-driven algorithm to
/// build its breakpoint grid.
pub fn dedup_times(mut times: Vec<f64>) -> Vec<f64> {
    times.retain(|t| t.is_finite());
    times.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after retain"));
    let mut out: Vec<f64> = Vec::with_capacity(times.len());
    for t in times {
        match out.last() {
            Some(&last) if approx_eq(last, t) => {}
            _ => out.push(t),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_basics() {
        let i = Interval::new(1.0, 3.0);
        assert_eq!(i.len(), 2.0);
        assert!(!i.is_empty());
        assert!(i.contains(1.0));
        assert!(i.contains(3.0));
        assert!(i.contains(2.0));
        assert!(!i.contains(3.1));
        assert_eq!(i.midpoint(), 2.0);
    }

    #[test]
    fn interval_zero_length_is_empty() {
        let i = Interval::new(2.0, 2.0);
        assert!(i.is_empty());
        assert_eq!(i.len(), 0.0);
    }

    #[test]
    #[should_panic(expected = "reversed interval")]
    fn interval_reversed_panics() {
        let _ = Interval::new(3.0, 1.0);
    }

    #[test]
    fn interval_overlap() {
        let a = Interval::new(0.0, 2.0);
        let b = Interval::new(1.0, 4.0);
        let c = Interval::new(3.0, 5.0);
        assert_eq!(a.overlap_len(&b), 1.0);
        assert_eq!(a.overlap_len(&c), 0.0);
        assert!(a.contains_interval(&Interval::new(0.5, 1.5)));
        assert!(!a.contains_interval(&b));
    }

    #[test]
    fn dedup_times_sorts_and_merges() {
        let ts = dedup_times(vec![3.0, 1.0, 1.0 + 1e-12, 2.0, f64::INFINITY]);
        assert_eq!(ts, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn approx_helpers() {
        assert!(approx_le(1.0, 1.0));
        assert!(approx_le(1.0 + 1e-12, 1.0));
        assert!(!approx_le(1.1, 1.0));
        assert!(approx_eq(2.0, 2.0 + 1e-10));
        assert!(rel_eq(1e9, 1e9 * (1.0 + 1e-8)));
        assert!(rel_le(1e9, 1e9 * (1.0 - 1e-9)));
    }
}
