//! Earliest-Deadline-First execution under a given speed profile.
//!
//! Classical fact (used implicitly throughout the paper): on a single
//! machine whose speed over time is fixed to `s(t)`, the EDF order
//! completes every job within its window whenever *any* preemptive
//! schedule does. All single-machine algorithms in this workspace
//! therefore only compute a speed profile and delegate slice placement
//! to [`edf_schedule`].

use crate::job::JobId;
use crate::profile::SpeedProfile;
use crate::schedule::{Schedule, Slice};
use crate::time::{dedup_times, Interval, EPS, REL_TOL};

/// A unit of work EDF has to place: `work` units inside `window`,
/// attributed to job `job` in the produced slices.
///
/// Distinct tasks may share a `job` id (a QBSS query part and exact-work
/// part of the same original job); EDF treats them as separate tasks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdfTask {
    /// Job id recorded on the produced slices.
    pub job: JobId,
    /// Window the work must be placed in.
    pub window: Interval,
    /// Amount of work.
    pub work: f64,
}

impl EdfTask {
    /// Convenience constructor.
    pub fn new(job: JobId, window: Interval, work: f64) -> Self {
        assert!(work >= 0.0 && work.is_finite(), "task work must be >= 0, got {work}");
        Self { job, window, work }
    }

    /// Builds one task per job of a classical instance.
    pub fn from_instance(instance: &crate::job::Instance) -> Vec<EdfTask> {
        instance
            .jobs
            .iter()
            .map(|j| EdfTask::new(j.id, j.window(), j.work))
            .collect()
    }
}

/// Failure of EDF to complete a task by its deadline — the profile does
/// not carry enough work in some window.
#[derive(Debug, Clone, PartialEq)]
pub struct EdfInfeasible {
    /// Job id of the first task that missed its deadline.
    pub job: JobId,
    /// The task's window.
    pub window: Interval,
    /// Work still missing at the deadline.
    pub missing: f64,
}

impl std::fmt::Display for EdfInfeasible {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "EDF infeasible: job {} misses deadline {} by {} work units",
            self.job, self.window.end, self.missing
        )
    }
}

impl std::error::Error for EdfInfeasible {}

/// Runs EDF under `profile` on machine `machine` and returns the explicit
/// schedule, or the first deadline miss.
///
/// The machine runs at exactly `profile.speed_at(t)` whenever at least
/// one task is pending and is idle otherwise (the unused speed is simply
/// not consumed; energy accounting is done on the schedule's slices, so
/// idling is free).
///
/// ```
/// use speed_scaling::edf::{edf_schedule, EdfTask};
/// use speed_scaling::profile::SpeedProfile;
/// use speed_scaling::time::Interval;
///
/// let tasks = vec![
///     EdfTask::new(0, Interval::new(0.0, 3.0), 2.0),
///     EdfTask::new(1, Interval::new(1.0, 2.0), 1.0), // tighter deadline
/// ];
/// let profile = SpeedProfile::new(vec![0.0, 3.0], vec![1.0]);
/// let sched = edf_schedule(&tasks, &profile, 0).unwrap();
/// // Job 1 preempts job 0 in (1, 2].
/// assert!((sched.work_of(1) - 1.0).abs() < 1e-9);
/// assert!((sched.work_of(0) - 2.0).abs() < 1e-9);
/// ```
pub fn edf_schedule(
    tasks: &[EdfTask],
    profile: &SpeedProfile,
    machine: usize,
) -> Result<Schedule, EdfInfeasible> {
    let mut remaining: Vec<f64> = tasks.iter().map(|t| t.work).collect();

    let mut events: Vec<f64> = profile.breakpoints().to_vec();
    for t in tasks {
        events.push(t.window.start);
        events.push(t.window.end);
    }
    let events = dedup_times(events);

    let mut schedule = Schedule::empty(machine + 1);
    schedule.machines = machine + 1;

    for w in events.windows(2) {
        let (seg_start, seg_end) = (w[0], w[1]);
        if seg_end - seg_start <= EPS {
            continue;
        }
        let speed = profile.speed_at(0.5 * (seg_start + seg_end));
        let mut now = seg_start;
        // Within the segment the released/active set is constant, but
        // tasks can complete mid-segment; loop until the segment is used
        // up or no runnable task remains.
        loop {
            // Pick the pending task with the earliest deadline.
            let next = (0..tasks.len())
                .filter(|&i| {
                    remaining[i] > work_tolerance(tasks[i].work)
                        && tasks[i].window.start <= now + EPS
                        && tasks[i].window.end > now + EPS
                })
                .min_by(|&a, &b| {
                    tasks[a]
                        .window
                        .end
                        .partial_cmp(&tasks[b].window.end)
                        .expect("finite deadlines")
                });
            let Some(i) = next else { break };
            if speed <= EPS {
                break; // idle segment: no progress possible
            }
            let seg_left = seg_end - now;
            let finish_time = remaining[i] / speed;
            let run = seg_left.min(finish_time);
            schedule.push(Slice {
                job: tasks[i].job,
                machine,
                start: now,
                end: now + run,
                speed,
            });
            remaining[i] -= run * speed;
            now += run;
            if now >= seg_end - EPS {
                break;
            }
        }
        // Deadline check at the segment boundary: any task whose window
        // ends here must be done.
        for (i, t) in tasks.iter().enumerate() {
            if (t.window.end - seg_end).abs() <= EPS && remaining[i] > work_tolerance(t.work) {
                return Err(EdfInfeasible {
                    job: t.job,
                    window: t.window,
                    missing: remaining[i],
                });
            }
        }
    }

    // Anything still unfinished had its deadline beyond the profile end.
    for (i, t) in tasks.iter().enumerate() {
        if remaining[i] > work_tolerance(t.work) {
            return Err(EdfInfeasible { job: t.job, window: t.window, missing: remaining[i] });
        }
    }
    Ok(schedule)
}

/// Whether `profile` can complete all `tasks` (EDF succeeds).
pub fn is_feasible(tasks: &[EdfTask], profile: &SpeedProfile) -> bool {
    edf_schedule(tasks, profile, 0).is_ok()
}

#[inline]
fn work_tolerance(total: f64) -> f64 {
    REL_TOL * total.abs().max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{Instance, Job};
    use crate::schedule::WorkRequirement;

    #[test]
    fn single_job_constant_speed() {
        let tasks = vec![EdfTask::new(0, Interval::new(0.0, 2.0), 4.0)];
        let profile = SpeedProfile::new(vec![0.0, 2.0], vec![2.0]);
        let sched = edf_schedule(&tasks, &profile, 0).expect("feasible");
        assert!((sched.work_of(0) - 4.0).abs() < 1e-9);
        let reqs = vec![WorkRequirement::new(0, Interval::new(0.0, 2.0), 4.0)];
        assert!(sched.check(&reqs).is_ok());
    }

    #[test]
    fn edf_prefers_earliest_deadline() {
        // Job 1's deadline is earlier; it must run first even though job
        // 0 is listed first.
        let tasks = vec![
            EdfTask::new(0, Interval::new(0.0, 4.0), 2.0),
            EdfTask::new(1, Interval::new(0.0, 1.0), 1.0),
        ];
        let profile = SpeedProfile::new(vec![0.0, 4.0], vec![1.0]);
        let sched = edf_schedule(&tasks, &profile, 0).expect("feasible");
        let first = sched
            .slices
            .iter()
            .min_by(|a, b| a.start.partial_cmp(&b.start).unwrap())
            .unwrap();
        assert_eq!(first.job, 1);
        assert!(sched
            .check(&[
                WorkRequirement::new(0, Interval::new(0.0, 4.0), 2.0),
                WorkRequirement::new(1, Interval::new(0.0, 1.0), 1.0),
            ])
            .is_ok());
    }

    #[test]
    fn infeasible_profile_detected() {
        let tasks = vec![EdfTask::new(0, Interval::new(0.0, 1.0), 2.0)];
        let profile = SpeedProfile::new(vec![0.0, 1.0], vec![1.0]);
        let err = edf_schedule(&tasks, &profile, 0).unwrap_err();
        assert_eq!(err.job, 0);
        assert!((err.missing - 1.0).abs() < 1e-9);
        assert!(!is_feasible(&tasks, &profile));
    }

    #[test]
    fn deadline_beyond_profile_support() {
        let tasks = vec![EdfTask::new(0, Interval::new(0.0, 10.0), 1.0)];
        let profile = SpeedProfile::new(vec![0.0, 0.5], vec![1.0]);
        assert!(edf_schedule(&tasks, &profile, 0).is_err());
    }

    #[test]
    fn preemption_across_segments() {
        // Long-deadline job is preempted by a later-released,
        // tighter-deadline job.
        let tasks = vec![
            EdfTask::new(0, Interval::new(0.0, 3.0), 2.0),
            EdfTask::new(1, Interval::new(1.0, 2.0), 1.0),
        ];
        let profile = SpeedProfile::new(vec![0.0, 3.0], vec![1.0]);
        let sched = edf_schedule(&tasks, &profile, 0).expect("feasible");
        // Job 0 runs in (0,1], job 1 in (1,2], job 0 again in (2,3].
        let mut zero_slices: Vec<&Slice> =
            sched.slices.iter().filter(|s| s.job == 0).collect();
        zero_slices.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
        assert_eq!(zero_slices.len(), 2);
        assert!((zero_slices[0].end - 1.0).abs() < 1e-9);
        assert!((zero_slices[1].start - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_work_tasks_are_trivial() {
        let tasks = vec![EdfTask::new(0, Interval::new(0.0, 1.0), 0.0)];
        let profile = SpeedProfile::new(vec![0.0, 1.0], vec![0.0]);
        let sched = edf_schedule(&tasks, &profile, 0).expect("feasible");
        assert!(sched.slices.is_empty());
    }

    #[test]
    fn idle_speed_segments_are_skipped() {
        let tasks = vec![EdfTask::new(0, Interval::new(0.0, 3.0), 1.0)];
        let profile = SpeedProfile::new(vec![0.0, 1.0, 2.0, 3.0], vec![0.0, 1.0, 0.0]);
        let sched = edf_schedule(&tasks, &profile, 0).expect("feasible");
        assert!((sched.work_of(0) - 1.0).abs() < 1e-9);
        for s in &sched.slices {
            assert!(s.start >= 1.0 - 1e-9 && s.end <= 2.0 + 1e-9);
        }
    }

    #[test]
    fn from_instance_roundtrip() {
        let inst = Instance::new(vec![Job::new(0, 0.0, 1.0, 1.0), Job::new(1, 0.5, 2.0, 1.5)]);
        let tasks = EdfTask::from_instance(&inst);
        assert_eq!(tasks.len(), 2);
        assert_eq!(tasks[1].work, 1.5);
    }

    #[test]
    fn same_job_id_two_tasks() {
        // Query + exact-work parts of the same QBSS job share an id but
        // are independent EDF tasks.
        let tasks = vec![
            EdfTask::new(5, Interval::new(0.0, 1.0), 1.0),
            EdfTask::new(5, Interval::new(1.0, 2.0), 1.0),
        ];
        let profile = SpeedProfile::new(vec![0.0, 2.0], vec![1.0]);
        let sched = edf_schedule(&tasks, &profile, 0).expect("feasible");
        assert!((sched.work_of(5) - 2.0).abs() < 1e-9);
    }
}
