//! McNaughton's wrap-around rule.
//!
//! Given an elementary interval of length `len`, `m` identical machines
//! all running at a common speed `s`, and per-job work demands
//! `x_j ≤ s·len` with `Σ x_j ≤ m·s·len`, McNaughton's rule produces a
//! migratory preemptive schedule in which no job runs on two machines at
//! once: lay the jobs out end-to-end on a tape of length `m·len` and cut
//! the tape every `len`.
//!
//! AVR(m) uses this inside every elementary interval for its *small*
//! jobs; the QBSS multi-machine algorithm inherits it.

use crate::job::JobId;
use crate::schedule::{Schedule, Slice};
use crate::time::EPS;

/// Lays out `demands = (job, work)` on `machines` machines over
/// `(start, start+len]` at common speed `speed`, appending the slices to
/// `schedule` starting from machine index `first_machine`.
///
/// Panics (debug) if a single demand exceeds the interval capacity or the
/// total exceeds the aggregate capacity — both are contract violations of
/// the caller (the big/small split guarantees them for AVR(m)).
pub fn mcnaughton(
    schedule: &mut Schedule,
    demands: &[(JobId, f64)],
    first_machine: usize,
    machines: usize,
    start: f64,
    len: f64,
    speed: f64,
) {
    if machines == 0 || len <= EPS || speed <= EPS {
        debug_assert!(
            demands.iter().map(|d| d.1).sum::<f64>() <= EPS,
            "demands on zero capacity"
        );
        return;
    }
    let cap = speed * len;
    debug_assert!(
        demands.iter().all(|&(_, x)| x <= cap * (1.0 + 1e-9) + EPS),
        "a single demand exceeds per-machine capacity"
    );
    debug_assert!(
        demands.iter().map(|d| d.1).sum::<f64>() <= machines as f64 * cap * (1.0 + 1e-9) + EPS,
        "total demand exceeds aggregate capacity"
    );

    // Position on the virtual tape, in time units within [0, m·len).
    let mut pos = 0.0_f64;
    for &(job, work) in demands {
        let mut dur = work / speed;
        if dur <= EPS {
            continue;
        }
        while dur > EPS {
            let machine_idx = (pos / len).floor() as usize;
            // Guard the final demand against floating-point creep past
            // the last machine.
            let machine_idx = machine_idx.min(machines - 1);
            let offset = pos - machine_idx as f64 * len;
            let room = len - offset;
            let take = dur.min(room);
            schedule.push(Slice {
                job,
                machine: first_machine + machine_idx,
                start: start + offset,
                end: start + offset + take,
                speed,
            });
            pos += take;
            dur -= take;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::WorkRequirement;
    use crate::time::Interval;

    fn check(sched: &Schedule, demands: &[(JobId, f64)], start: f64, len: f64) {
        let reqs: Vec<WorkRequirement> = demands
            .iter()
            .map(|&(j, w)| WorkRequirement::new(j, Interval::new(start, start + len), w))
            .collect();
        sched.check(&reqs).expect("McNaughton schedule must validate");
    }

    #[test]
    fn fits_one_machine() {
        let mut s = Schedule::empty(1);
        let demands = [(0, 1.0), (1, 1.0)];
        mcnaughton(&mut s, &demands, 0, 1, 0.0, 2.0, 1.0);
        check(&s, &demands, 0.0, 2.0);
    }

    #[test]
    fn wraps_across_machines() {
        // Three jobs of 2/3 capacity each on two machines: the middle
        // job must be split across machines without self-overlap.
        let mut s = Schedule::empty(2);
        let demands = [(0, 2.0 / 3.0), (1, 2.0 / 3.0), (2, 2.0 / 3.0)];
        mcnaughton(&mut s, &demands, 0, 2, 0.0, 1.0, 1.0);
        check(&s, &demands, 0.0, 1.0);
        // Job 1 appears on both machines.
        let machines: std::collections::HashSet<usize> =
            s.slices.iter().filter(|x| x.job == 1).map(|x| x.machine).collect();
        assert_eq!(machines.len(), 2);
    }

    #[test]
    fn full_load_exact_fit() {
        let mut s = Schedule::empty(3);
        let demands = [(0, 1.0), (1, 1.0), (2, 1.0)];
        mcnaughton(&mut s, &demands, 0, 3, 5.0, 1.0, 1.0);
        check(&s, &demands, 5.0, 1.0);
    }

    #[test]
    fn respects_first_machine_offset() {
        let mut s = Schedule::empty(4);
        mcnaughton(&mut s, &[(7, 0.5)], 2, 2, 0.0, 1.0, 1.0);
        assert!(s.slices.iter().all(|x| x.machine >= 2));
    }

    #[test]
    fn zero_demands_no_slices() {
        let mut s = Schedule::empty(1);
        mcnaughton(&mut s, &[(0, 0.0)], 0, 1, 0.0, 1.0, 1.0);
        assert!(s.slices.is_empty());
    }
}
