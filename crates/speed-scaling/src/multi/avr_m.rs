//! AVR(m): the multi-machine Average Rate algorithm of Albers,
//! Antoniadis and Greiner, `(2^{α−1}α^α + 1)`-competitive for energy.
//!
//! Per elementary interval (the active job set is constant between
//! releases/deadlines), each job should receive `δ_j · len` work. The
//! machines are filled iteratively: while the maximum remaining density
//! `δ_ĵ` exceeds the fair share `Δ/|R|` of the remaining machines, job
//! `ĵ` is *big* and monopolizes the lowest-indexed remaining machine at
//! speed `δ_ĵ`; once no big job remains, the *small* jobs share the
//! remaining machines at the common speed `Δ/|R|` (realized with
//! McNaughton's rule). Machine speeds are therefore non-increasing in
//! the machine index at every instant — the property Theorem 6.3 of the
//! QBSS paper leans on.

use crate::job::{Instance, JobId};
use crate::profile::SpeedProfile;
use crate::schedule::Schedule;
use crate::time::{dedup_times, EPS};

use super::assign::mcnaughton;

/// Output of [`avr_m`].
#[derive(Debug, Clone)]
pub struct AvrMResult {
    /// Explicit migratory schedule over `m` machines.
    pub schedule: Schedule,
    /// Per-machine speed profiles (index 0 is the fastest machine).
    pub machine_profiles: Vec<SpeedProfile>,
}

impl AvrMResult {
    /// Total energy across machines.
    pub fn energy(&self, alpha: f64) -> f64 {
        self.machine_profiles.iter().map(|p| p.energy(alpha)).sum()
    }

    /// Maximum speed across machines (machine 0 by the ordering
    /// invariant, but computed over all for robustness).
    pub fn max_speed(&self) -> f64 {
        self.machine_profiles.iter().map(SpeedProfile::max_speed).fold(0.0, f64::max)
    }
}

/// The per-machine speeds AVR(m) uses for a set of active densities.
///
/// Returns a vector of length `m`, non-increasing, whose prefix holds the
/// big jobs' densities and whose suffix holds the shared small-job speed
/// (0 for unused machines). Exposed for the Theorem 6.3 experiments,
/// which compare these vectors pointwise between AVRQ(m) and AVR*(m).
pub fn machine_speeds_for_densities(densities: &[f64], m: usize) -> Vec<f64> {
    let mut speeds = vec![0.0; m];
    if m == 0 {
        return speeds;
    }
    let mut rest: Vec<f64> = densities.to_vec();
    rest.sort_by(|a, b| b.partial_cmp(a).expect("finite densities"));
    let mut delta: f64 = rest.iter().sum();
    let mut machine = 0usize;
    for &d in &rest {
        let r = m - machine;
        if r == 0 {
            break;
        }
        if d > delta / r as f64 + EPS {
            speeds[machine] = d;
            machine += 1;
            delta -= d;
        } else {
            // All remaining jobs are small: they share the remaining
            // machines evenly.
            let share = delta / r as f64;
            for s in speeds.iter_mut().skip(machine).take(r) {
                *s = share.max(0.0);
            }
            return speeds;
        }
    }
    speeds
}

/// Runs AVR(m) on `instance` over `m` machines.
///
/// Panics if some single job's density cannot be handled (never happens:
/// a lone big job runs at its own density on one machine).
pub fn avr_m(instance: &Instance, m: usize) -> AvrMResult {
    assert!(m >= 1, "need at least one machine");
    let mut schedule = Schedule::empty(m);

    if instance.is_empty() {
        return AvrMResult {
            schedule,
            machine_profiles: vec![SpeedProfile::zero(); m],
        };
    }

    let events = dedup_times(instance.event_times());
    for w in events.windows(2) {
        let (a, b) = (w[0], w[1]);
        let len = b - a;
        if len <= EPS {
            continue;
        }
        let t = 0.5 * (a + b);
        // Active jobs with their densities, highest density first,
        // deterministic tie-break by id.
        let mut active: Vec<(JobId, f64)> = instance
            .jobs
            .iter()
            .filter(|j| j.active_at(t) && j.work > 0.0)
            .map(|j| (j.id, j.density()))
            .collect();
        active.sort_by(|x, y| {
            y.1.partial_cmp(&x.1).expect("finite").then_with(|| x.0.cmp(&y.0))
        });
        if active.is_empty() {
            continue;
        }

        let mut delta: f64 = active.iter().map(|x| x.1).sum();
        let mut machine = 0usize;
        let mut idx = 0usize;
        while idx < active.len() {
            let r = m - machine;
            assert!(r > 0, "AVR(m) ran out of machines — big/small invariant broken");
            let (job, d) = active[idx];
            if d > delta / r as f64 + EPS {
                // Big job: dedicated machine for the whole interval.
                schedule.push(crate::schedule::Slice {
                    job,
                    machine,
                    start: a,
                    end: b,
                    speed: d,
                });
                machine += 1;
                delta -= d;
                idx += 1;
            } else {
                // The rest are small: share remaining machines.
                let share = delta / r as f64;
                let demands: Vec<(JobId, f64)> =
                    active[idx..].iter().map(|&(j, d)| (j, d * len)).collect();
                mcnaughton(&mut schedule, &demands, machine, r, a, len, share);
                break;
            }
        }
    }

    let machine_profiles = (0..m).map(|i| schedule.machine_profile(i)).collect();
    AvrMResult { schedule, machine_profiles }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use crate::schedule::Schedule as Sched;

    #[test]
    fn speeds_all_small() {
        // Two equal jobs on two machines: each machine gets half the
        // total density.
        let speeds = machine_speeds_for_densities(&[1.0, 1.0], 2);
        assert_eq!(speeds, vec![1.0, 1.0]);
    }

    #[test]
    fn speeds_one_big() {
        // Density 10 vs two of 1 on two machines: 10 is big (10 > 12/2),
        // the others share machine 1 at speed 2.
        let speeds = machine_speeds_for_densities(&[10.0, 1.0, 1.0], 2);
        assert_eq!(speeds, vec![10.0, 2.0]);
    }

    #[test]
    fn speeds_nonincreasing_property() {
        let speeds = machine_speeds_for_densities(&[5.0, 4.0, 3.0, 0.5, 0.5], 4);
        for w in speeds.windows(2) {
            assert!(w[0] + 1e-12 >= w[1]);
        }
        // Work conservation.
        let total: f64 = speeds.iter().sum();
        assert!((total - 13.0).abs() < 1e-9);
    }

    #[test]
    fn more_machines_than_jobs() {
        let speeds = machine_speeds_for_densities(&[2.0, 1.0], 4);
        // Job of density 2 is big (2 > 3/4); then 1 > 1/3 big too.
        assert_eq!(speeds, vec![2.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn empty_densities() {
        assert_eq!(machine_speeds_for_densities(&[], 3), vec![0.0; 3]);
    }

    #[test]
    fn avr_m_single_machine_matches_avr() {
        let i = Instance::new(vec![
            Job::new(0, 0.0, 2.0, 2.0),
            Job::new(1, 1.0, 3.0, 4.0),
        ]);
        let res = avr_m(&i, 1);
        let avr = crate::avr::avr_profile(&i);
        for &t in &[0.5, 1.5, 2.5] {
            assert!(
                (res.machine_profiles[0].speed_at(t) - avr.speed_at(t)).abs() < 1e-9,
                "AVR(1) must equal AVR at t={t}"
            );
        }
    }

    #[test]
    fn avr_m_schedule_validates() {
        let i = Instance::new(vec![
            Job::new(0, 0.0, 2.0, 6.0),
            Job::new(1, 0.0, 2.0, 1.0),
            Job::new(2, 0.5, 1.5, 1.0),
            Job::new(3, 1.0, 3.0, 2.0),
        ]);
        let res = avr_m(&i, 2);
        res.schedule
            .check(&Sched::requirements_of(&i))
            .expect("AVR(m) schedule must be feasible");
    }

    #[test]
    fn avr_m_machine_speeds_ordered() {
        let i = Instance::new(vec![
            Job::new(0, 0.0, 1.0, 5.0),
            Job::new(1, 0.0, 1.0, 1.0),
            Job::new(2, 0.0, 1.0, 1.0),
        ]);
        let res = avr_m(&i, 3);
        let at = |k: usize| res.machine_profiles[k].speed_at(0.5);
        assert!(at(0) + 1e-9 >= at(1) && at(1) + 1e-9 >= at(2));
        // δ = {5,1,1}: 5 is big (5 > 7/3); remaining share 2/2 = 1 each.
        assert!((at(0) - 5.0).abs() < 1e-9);
        assert!((at(1) - 1.0).abs() < 1e-9);
        assert!((at(2) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn avr_m_energy_sum_of_machines() {
        let i = Instance::new(vec![
            Job::new(0, 0.0, 1.0, 2.0),
            Job::new(1, 0.0, 1.0, 2.0),
        ]);
        let res = avr_m(&i, 2);
        // Each machine runs at 2 for 1 unit: energy 2·2^α.
        assert!((res.energy(3.0) - 2.0 * 8.0).abs() < 1e-9);
        assert!((res.max_speed() - 2.0).abs() < 1e-9);
    }
}
