//! Multi-machine speed scaling with free migration (Albers,
//! Antoniadis, Greiner 2015).
//!
//! * [`mod@avr_m`] — the online AVR(m) algorithm: per elementary interval,
//!   *big* jobs (density above the fair share of the remaining machines)
//!   get a dedicated machine; *small* jobs share the remaining machines
//!   at a common speed.
//! * [`assign`] — McNaughton's wrap-around rule, turning per-interval
//!   (job → work) demands into an explicit migratory schedule without
//!   intra-job parallelism.
//! * [`bounds`] — lower bounds on the multi-machine optimum used as
//!   conservative baselines by the ratio experiments (see DESIGN.md §5
//!   for why a lower bound is the right substitute here).
//! * [`nonmig`] — the preemptive non-migratory variant (greedy
//!   dispatch + per-machine AVR), the §7 remark of the QBSS paper.
//! * [`opt`] — a near-optimal migratory baseline by Frank–Wolfe on the
//!   event-grid convex program, with a certified duality gap whose
//!   `energy − gap` is a true lower bound on OPT.
//! * [`mod@oa_m`] — OA(m), multi-machine Optimal Available: replan the
//!   remaining work (near-)optimally at every arrival.

pub mod assign;
pub mod avr_m;
pub mod bounds;
pub mod nonmig;
pub mod oa_m;
pub mod opt;

pub use assign::mcnaughton;
pub use avr_m::{avr_m, machine_speeds_for_densities, AvrMResult};
pub use bounds::{fluid_lower_bound, opt_lower_bound, per_job_lower_bound};
pub use nonmig::{avr_m_nonmig, NonMigResult};
pub use oa_m::{oa_m, OaMResult};
pub use opt::{multi_opt_frank_wolfe, FwSolution};
