//! Lower bounds on the multi-machine optimal energy.
//!
//! The exact multi-machine optimum (Albers–Antoniadis–Greiner's
//! flow-based algorithm) is outside the scope of the paper being
//! reproduced — its analysis of AVRQ(m) only ever compares against a
//! *lower bound* on OPT. We provide the two standard ones and take the
//! max; experiment ratios reported against them are conservative
//! over-estimates, so "measured ≤ proven bound" checks stay sound.
//!
//! 1. **Fluid bound**: allow work to be split across machines at will.
//!    By convexity the best fluid schedule balances every instant across
//!    all `m` machines, which is energy-equivalent to a single machine
//!    with power `m·(s/m)^α = s^α·m^{1−α}`; hence
//!    `OPT_m ≥ m^{1−α} · OPT_1`, with `OPT_1` the single-machine YDS
//!    energy of the same instance.
//! 2. **Per-job bound**: executions of distinct jobs are disjoint in
//!    (machine, time), and by convexity job `j` alone needs at least
//!    `(w_j/(d_j−r_j))^α · (d_j−r_j)`; summing over jobs is a valid
//!    lower bound.

use crate::job::Instance;
use crate::yds::yds_profile;

/// Fluid-relaxation lower bound `m^{1−α} · E_{YDS}(instance)`.
pub fn fluid_lower_bound(instance: &Instance, m: usize, alpha: f64) -> f64 {
    assert!(m >= 1);
    (m as f64).powf(1.0 - alpha) * yds_profile(instance).energy(alpha)
}

/// Per-job convexity lower bound `Σ_j δ_j^α (d_j − r_j)`.
pub fn per_job_lower_bound(instance: &Instance, alpha: f64) -> f64 {
    instance
        .jobs
        .iter()
        .map(|j| j.density().powf(alpha) * (j.deadline - j.release))
        .sum()
}

/// The better (larger) of the two lower bounds.
pub fn opt_lower_bound(instance: &Instance, m: usize, alpha: f64) -> f64 {
    fluid_lower_bound(instance, m, alpha).max(per_job_lower_bound(instance, alpha))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use crate::multi::avr_m;

    #[test]
    fn fluid_bound_single_machine_is_yds() {
        let i = Instance::new(vec![Job::new(0, 0.0, 1.0, 2.0)]);
        let lb = fluid_lower_bound(&i, 1, 3.0);
        assert!((lb - 8.0).abs() < 1e-9);
    }

    #[test]
    fn per_job_bound_single_job_exact() {
        let i = Instance::new(vec![Job::new(0, 0.0, 2.0, 4.0)]);
        // δ = 2, window 2 → 2^3 · 2 = 16 = the true optimum.
        assert!((per_job_lower_bound(&i, 3.0) - 16.0).abs() < 1e-9);
    }

    #[test]
    fn bounds_never_exceed_feasible_schedules() {
        // AVR(m) is feasible, so each lower bound must sit below its
        // energy.
        let i = Instance::new(vec![
            Job::new(0, 0.0, 1.0, 2.0),
            Job::new(1, 0.0, 2.0, 2.0),
            Job::new(2, 1.0, 3.0, 3.0),
            Job::new(3, 0.5, 2.5, 1.0),
        ]);
        for &m in &[1usize, 2, 3] {
            for &alpha in &[2.0, 3.0] {
                let upper = avr_m(&i, m).energy(alpha);
                let lb = opt_lower_bound(&i, m, alpha);
                assert!(
                    lb <= upper * (1.0 + 1e-6),
                    "LB {lb} exceeds AVR(m) energy {upper} (m={m}, α={alpha})"
                );
            }
        }
    }

    #[test]
    fn per_job_beats_fluid_for_disjoint_tight_jobs() {
        // m jobs with disjoint unit windows: fluid spreads across
        // machines (m^{1-α} shrink) but per-job stays exact.
        let i = Instance::new(vec![
            Job::new(0, 0.0, 1.0, 2.0),
            Job::new(1, 1.0, 2.0, 2.0),
        ]);
        let alpha = 3.0;
        assert!(per_job_lower_bound(&i, alpha) > fluid_lower_bound(&i, 2, alpha));
    }

    #[test]
    fn fluid_beats_per_job_for_shared_window() {
        // Many jobs in one window: the single-machine optimum is
        // (Σw)^α·T while per-job only sums w_j^α.
        let i = Instance::new(vec![
            Job::new(0, 0.0, 1.0, 1.0),
            Job::new(1, 0.0, 1.0, 1.0),
            Job::new(2, 0.0, 1.0, 1.0),
            Job::new(3, 0.0, 1.0, 1.0),
        ]);
        let alpha = 3.0;
        assert!(fluid_lower_bound(&i, 2, alpha) > per_job_lower_bound(&i, alpha));
    }
}
