//! Near-optimal *migratory multi-machine* offline baseline via
//! Frank–Wolfe, with a duality-gap certificate.
//!
//! The offline optimum on `m` identical machines with free migration
//! (Albers–Antoniadis–Greiner 2015 compute it exactly with a flow-based
//! combinatorial algorithm) is equivalently the convex program
//!
//! ```text
//!   minimize    Σ_k E_k(x_{·,k})
//!   subject to  Σ_k x_{j,k} = w_j          (all work placed)
//!               x_{j,k} ≥ 0,  x_{j,k} = 0 if interval k ⊄ (r_j, d_j]
//! ```
//!
//! where `k` ranges over the elementary intervals of the event grid and
//! `E_k` is the optimal energy for executing works `x_{·,k}` inside an
//! interval of length `L` on `m` machines. The inner problem has a
//! closed-form water-filling solution with the same *big/small*
//! structure as AVR(m): minimize `Σ_j x_j^α t_j^{1−α}` over per-job run
//! times `t_j ≤ L`, `Σ_j t_j ≤ mL` — big jobs run the whole interval
//! (`t = L`), the rest share the remaining machine time in proportion
//! to their work (constant speed `1/c`).
//!
//! Frank–Wolfe fits perfectly: the feasible set is a product of
//! simplices (one per job), so the linear minimization oracle just
//! moves each job's mass to its smallest-gradient interval, and the FW
//! gap `⟨∇E(x), x − s⟩` is a certified bound on the suboptimality —
//! `energy − gap` is a true **lower bound on OPT**, which is what the
//! AVRQ(m) experiments need (DESIGN.md §5).

use crate::job::Instance;
use crate::time::{dedup_times, EPS};

/// Output of [`multi_opt_frank_wolfe`].
#[derive(Debug, Clone)]
pub struct FwSolution {
    /// Energy of the (feasible) solution found — an upper bound on OPT.
    pub energy: f64,
    /// Final Frank–Wolfe duality gap: `energy − gap ≤ OPT ≤ energy`.
    pub gap: f64,
    /// Iterations actually performed.
    pub iterations: usize,
    /// The elementary intervals `(start, end]` of the event grid.
    pub intervals: Vec<(f64, f64)>,
    /// The placement: `placement[k][j]` = work of job `j` (instance
    /// order) in interval `k`. Realizable with
    /// [`water_filling_times`] + McNaughton per interval.
    pub placement: Vec<Vec<f64>>,
}

impl FwSolution {
    /// A certified lower bound on the multi-machine optimum.
    pub fn lower_bound(&self) -> f64 {
        (self.energy - self.gap).max(0.0)
    }
}

/// Per-interval inner solution: given works `x_j` in an interval of
/// length `len` on `m` machines, returns the per-job run times `t_j`
/// of the water-filling optimum (big jobs get `t = len` and a dedicated
/// machine; the rest share the remaining machine time in proportion to
/// their work at a common speed). Public because the OA(m) realization
/// reuses it to turn planned per-interval works into explicit slices.
pub fn water_filling_times(works: &[f64], len: f64, m: usize) -> Vec<f64> {
    let n = works.len();
    let mut t = vec![0.0; n];
    let active: Vec<usize> =
        (0..n).filter(|&j| works[j] > 0.0).collect();
    if active.len() <= m {
        for &j in &active {
            t[j] = len;
        }
        return t;
    }
    // Sort active jobs by work, descending; peel off "big" jobs that
    // deserve a dedicated machine (t = len), then the rest share.
    let mut order = active.clone();
    order.sort_by(|&a, &b| works[b].partial_cmp(&works[a]).expect("finite"));
    let total: f64 = order.iter().map(|&j| works[j]).sum();
    let mut rest = total;
    let mut big = 0usize;
    for &j in &order {
        let machines_left = m - big;
        // j is big iff giving it t = len still leaves the others at
        // t_i = c·x_i ≤ len with c = (m − big − 1)·len / rest':
        // equivalently x_j ≥ rest / machines_left.
        if works[j] * machines_left as f64 > rest + EPS {
            t[j] = len;
            rest -= works[j];
            big += 1;
            if big == m {
                break;
            }
        } else {
            break;
        }
    }
    debug_assert!(big < m, "all machines taken by big jobs yet small jobs remain");
    let c = (m - big) as f64 * len / rest.max(EPS);
    for &j in &order[big..] {
        t[j] = (c * works[j]).min(len);
    }
    t
}

/// Energy of the inner optimum for one interval.
fn inner_energy(works: &[f64], len: f64, m: usize, alpha: f64) -> f64 {
    let t = water_filling_times(works, len, m);
    works
        .iter()
        .zip(&t)
        .filter(|(&x, _)| x > 0.0)
        .map(|(&x, &tj)| x.powf(alpha) * tj.powf(1.0 - alpha))
        .sum()
}

/// Gradient `∂E_k/∂x_j = α (x_j/t_j)^{α−1}` at the inner optimum
/// (envelope theorem); for `x_j = 0` the one-sided derivative is 0 when
/// a machine is free in the interval and `α·(1/c)^{α−1}` otherwise —
/// we return the correct marginal cost of adding infinitesimal work.
fn inner_gradient(works: &[f64], len: f64, m: usize, alpha: f64) -> Vec<f64> {
    let t = water_filling_times(works, len, m);
    let active = works.iter().filter(|&&x| x > 0.0).count();
    // Marginal speed for a newcomer: 0 if a machine is idle, else the
    // shared small-job speed 1/c (the cheapest room in the interval).
    let newcomer = if active < m {
        0.0
    } else {
        // Shared speed = x/t of any small job; if all active are big
        // (t = len), the newcomer would displace capacity at the
        // smallest big speed.
        let mut shared = f64::INFINITY;
        for (j, &x) in works.iter().enumerate() {
            if x > 0.0 {
                shared = shared.min(x / t[j]);
            }
        }
        shared
    };
    works
        .iter()
        .enumerate()
        .map(|(j, &x)| {
            let v = if x > 0.0 { x / t[j] } else { newcomer };
            alpha * v.powf(alpha - 1.0)
        })
        .collect()
}

/// Solves the migratory multi-machine energy minimization by
/// Frank–Wolfe with exact golden-section line search. `iters` in the
/// low hundreds certifies gaps of a few percent on the experiment
/// instances; the returned [`FwSolution::lower_bound`] is always a
/// valid lower bound on OPT regardless of convergence.
///
/// ```
/// use speed_scaling::job::{Instance, Job};
/// use speed_scaling::multi::multi_opt_frank_wolfe;
///
/// // Three equal jobs, three machines: OPT runs each alone at speed 2.
/// let inst = Instance::new(
///     (0..3).map(|i| Job::new(i, 0.0, 1.0, 2.0)).collect(),
/// );
/// let fw = multi_opt_frank_wolfe(&inst, 3, 3.0, 100);
/// assert!((fw.energy - 3.0 * 8.0).abs() < 0.1);
/// assert!(fw.lower_bound() <= fw.energy);
/// ```
pub fn multi_opt_frank_wolfe(
    instance: &Instance,
    m: usize,
    alpha: f64,
    iters: usize,
) -> FwSolution {
    assert!(m >= 1 && alpha > 1.0);
    let jobs = &instance.jobs;
    if jobs.is_empty() {
        return FwSolution {
            energy: 0.0,
            gap: 0.0,
            iterations: 0,
            intervals: Vec::new(),
            placement: Vec::new(),
        };
    }
    let events = dedup_times(instance.event_times());
    let intervals: Vec<(f64, f64)> = events
        .windows(2)
        .map(|w| (w[0], w[1]))
        .filter(|(a, b)| b - a > EPS)
        .collect();
    let nk = intervals.len();
    let nj = jobs.len();

    // Active incidence and initial (AVR-proportional) placement.
    let mut active: Vec<Vec<usize>> = vec![Vec::new(); nj]; // job -> intervals
    let mut x = vec![vec![0.0f64; nj]; nk]; // interval-major
    for (j, job) in jobs.iter().enumerate() {
        let mut window_len = 0.0;
        for (k, &(a, b)) in intervals.iter().enumerate() {
            if a + EPS >= job.release && b <= job.deadline + EPS {
                active[j].push(k);
                window_len += b - a;
            }
        }
        assert!(
            window_len > EPS,
            "job {} has no elementary interval inside its window",
            job.id
        );
        for &k in &active[j] {
            let (a, b) = intervals[k];
            x[k][j] = job.work * (b - a) / window_len;
        }
    }

    let total_energy = |x: &Vec<Vec<f64>>| -> f64 {
        intervals
            .iter()
            .enumerate()
            .map(|(k, &(a, b))| inner_energy(&x[k], b - a, m, alpha))
            .sum()
    };

    let mut energy = total_energy(&x);
    let mut gap = f64::INFINITY;
    let mut done = 0usize;
    // Work counters accumulate in locals and land with one `add` per
    // solve, keeping the iteration loop free of atomic traffic.
    let mut fw_gradient_evals = 0_u64;
    for it in 0..iters {
        // Gradients per interval.
        let grads: Vec<Vec<f64>> = intervals
            .iter()
            .enumerate()
            .map(|(k, &(a, b))| inner_gradient(&x[k], b - a, m, alpha))
            .collect();
        fw_gradient_evals += nk as u64;
        // LMO: each job moves its full mass to its cheapest interval.
        let mut s = vec![vec![0.0f64; nj]; nk];
        let mut fw_gap = 0.0;
        for (j, job) in jobs.iter().enumerate() {
            let k_best = active[j]
                .iter()
                .copied()
                .min_by(|&p, &q| grads[p][j].partial_cmp(&grads[q][j]).expect("finite"))
                .expect("non-empty window");
            s[k_best][j] = job.work;
            for &k in &active[j] {
                fw_gap += grads[k][j] * (x[k][j] - s[k][j]);
            }
        }
        gap = fw_gap.max(0.0);
        done = it + 1;
        if gap <= 1e-9 * energy.max(1.0) {
            break;
        }
        // Exact line search on the segment x + γ(s − x), γ ∈ [0, 1].
        let eval = |gamma: f64| -> f64 {
            let mut y = x.clone();
            for k in 0..nk {
                for j in 0..nj {
                    y[k][j] = (1.0 - gamma) * x[k][j] + gamma * s[k][j];
                }
            }
            total_energy(&y)
        };
        let (gamma, val) = golden_min01(&eval);
        if val >= energy - 1e-12 * energy.max(1.0) {
            break; // numerically converged
        }
        for k in 0..nk {
            for j in 0..nj {
                x[k][j] = (1.0 - gamma) * x[k][j] + gamma * s[k][j];
            }
        }
        energy = val;
    }
    qbss_telemetry::counter!("fw.iterations").add(done as u64);
    qbss_telemetry::counter!("fw.gradient_evals").add(fw_gradient_evals);

    FwSolution { energy, gap, iterations: done, intervals, placement: x }
}

/// Golden-section minimization over `[0, 1]` (small, local; avoids a
/// dependency cycle with `qbss-analysis`).
fn golden_min01(f: &dyn Fn(f64) -> f64) -> (f64, f64) {
    const INV_PHI: f64 = 0.618_033_988_749_895;
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    let mut x1 = hi - (hi - lo) * INV_PHI;
    let mut x2 = lo + (hi - lo) * INV_PHI;
    let (mut f1, mut f2) = (f(x1), f(x2));
    for _ in 0..48 {
        if f1 <= f2 {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - (hi - lo) * INV_PHI;
            f1 = f(x1);
        } else {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + (hi - lo) * INV_PHI;
            f2 = f(x2);
        }
    }
    let mid = 0.5 * (lo + hi);
    (mid, f(mid))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use crate::multi::{avr_m, opt_lower_bound};
    use crate::yds::optimal_energy;

    #[test]
    fn single_machine_matches_yds() {
        let inst = Instance::new(vec![
            Job::new(0, 0.0, 4.0, 4.0),
            Job::new(1, 1.0, 2.0, 3.0),
            Job::new(2, 3.0, 6.0, 2.0),
        ]);
        let alpha = 3.0;
        let fw = multi_opt_frank_wolfe(&inst, 1, alpha, 400);
        let yds = optimal_energy(&inst, alpha);
        assert!(
            (fw.energy - yds).abs() <= 0.01 * yds,
            "FW {} vs YDS {} (gap {})",
            fw.energy,
            yds,
            fw.gap
        );
        assert!(fw.lower_bound() <= yds * (1.0 + 1e-9));
    }

    #[test]
    fn inner_all_fit() {
        // Two jobs, three machines: both run the whole interval.
        let t = water_filling_times(&[1.0, 2.0], 2.0, 3);
        assert_eq!(t, vec![2.0, 2.0]);
    }

    #[test]
    fn inner_big_small_split() {
        // Works {10, 1, 1} on 2 machines over len 1: job 0 is big
        // (10 > 12/2); the other two share machine 1: c = 1/2,
        // t = 0.5 each.
        let t = water_filling_times(&[10.0, 1.0, 1.0], 1.0, 2);
        assert_eq!(t[0], 1.0);
        assert!((t[1] - 0.5).abs() < 1e-12);
        assert!((t[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn inner_energy_matches_hand_computation() {
        // One interval len 1, m = 2, works {2, 2}: both fit whole
        // interval at speed 2 → E = 2·2^α.
        let e = inner_energy(&[2.0, 2.0], 1.0, 2, 3.0);
        assert!((e - 16.0).abs() < 1e-9);
        // Works {2, 1, 1} on 2 machines: 2 is big (2 > 4/2 is false —
        // 2·2 = 4 ≮ 4)… the shared solution: c = 2·1/4 = 1/2, speeds 2
        // each, t = {1, 0.5, 0.5} → E = 1·2^3 + 0.5·2^3·… compute:
        // Σ x^α t^{1-α} = 8·1 + 1·(0.5)^{-2}… = 8 + 4 + 4 = 16.
        let e = inner_energy(&[2.0, 1.0, 1.0], 1.0, 2, 3.0);
        assert!((e - 16.0).abs() < 1e-9, "{e}");
    }

    #[test]
    fn fw_bounds_bracket_known_optimum() {
        // m jobs with a common unit window and equal works w: the
        // optimum runs each on its own machine at speed w:
        // OPT = m·w^α.
        let m = 3;
        let inst = Instance::new(
            (0..m as u32).map(|i| Job::new(i, 0.0, 1.0, 2.0)).collect(),
        );
        let alpha = 3.0;
        let fw = multi_opt_frank_wolfe(&inst, m, alpha, 200);
        let opt = m as f64 * 8.0;
        assert!(fw.energy >= opt - 1e-6, "cannot beat OPT");
        assert!(fw.energy <= opt * 1.01, "FW should be near OPT here: {}", fw.energy);
        assert!(fw.lower_bound() <= opt + 1e-6);
    }

    #[test]
    fn fw_lower_bound_dominates_fluid_on_structured_instances() {
        // Disjoint tight jobs: the fluid bound is weak (it spreads a
        // single job across machines); FW's certificate is tighter.
        let inst = Instance::new(vec![
            Job::new(0, 0.0, 1.0, 3.0),
            Job::new(1, 1.0, 2.0, 3.0),
            Job::new(2, 2.0, 3.0, 3.0),
        ]);
        let alpha = 3.0;
        let m = 2;
        let fw = multi_opt_frank_wolfe(&inst, m, alpha, 300);
        let fluid = crate::multi::fluid_lower_bound(&inst, m, alpha);
        assert!(
            fw.lower_bound() >= fluid,
            "FW LB {} should beat fluid {}",
            fw.lower_bound(),
            fluid
        );
    }

    #[test]
    fn fw_is_sandwiched_by_lb_and_avr_m() {
        let inst = Instance::new(vec![
            Job::new(0, 0.0, 2.0, 4.0),
            Job::new(1, 0.0, 2.0, 1.0),
            Job::new(2, 0.5, 1.5, 1.0),
            Job::new(3, 1.0, 3.0, 2.0),
        ]);
        let alpha = 2.5;
        for m in [1usize, 2, 3] {
            let fw = multi_opt_frank_wolfe(&inst, m, alpha, 300);
            let upper = avr_m(&inst, m).energy(alpha);
            let lb = opt_lower_bound(&inst, m, alpha);
            assert!(fw.energy <= upper * (1.0 + 1e-6), "FW must beat AVR(m) at m={m}");
            assert!(fw.lower_bound() + 1e-6 >= 0.0);
            assert!(fw.energy + 1e-6 >= lb, "FW cannot beat a valid LB at m={m}");
        }
    }

    #[test]
    fn empty_instance() {
        let fw = multi_opt_frank_wolfe(&Instance::default(), 2, 3.0, 10);
        assert_eq!(fw.energy, 0.0);
    }
}
