//! OA(m): multi-machine Optimal Available (Albers–Antoniadis–Greiner),
//! `α^α`-competitive for energy in the classical setting.
//!
//! At every arrival, OA(m) computes an (approximately) optimal
//! migratory plan for the *remaining* work of the released unfinished
//! jobs — here via the Frank–Wolfe solver of [`super::opt`] — and
//! follows it until the next arrival. Realization inside each
//! elementary interval uses the water-filling structure: planned works
//! that occupy the whole interval get a dedicated machine, the rest
//! share the remaining machines at their common speed via McNaughton's
//! rule.
//!
//! Machines are indexed by speed (fastest first) inside every interval,
//! matching AVR(m)'s convention.

use crate::job::{Instance, Job, JobId};
use crate::profile::SpeedProfile;
use crate::schedule::Schedule;
use crate::time::{dedup_times, EPS};

use super::assign::mcnaughton;
use super::opt::{multi_opt_frank_wolfe, water_filling_times};

/// Output of [`oa_m`].
#[derive(Debug, Clone)]
pub struct OaMResult {
    /// Explicit migratory schedule.
    pub schedule: Schedule,
    /// Per-machine speed profiles (fastest machine first at all times).
    pub machine_profiles: Vec<SpeedProfile>,
}

impl OaMResult {
    /// Total energy across machines.
    pub fn energy(&self, alpha: f64) -> f64 {
        self.machine_profiles.iter().map(|p| p.energy(alpha)).sum()
    }

    /// Maximum speed over machines and time.
    pub fn max_speed(&self) -> f64 {
        self.machine_profiles.iter().map(SpeedProfile::max_speed).fold(0.0, f64::max)
    }
}

/// Sentinel id for the grid-refinement marker job (never scheduled —
/// it carries zero work).
const MARKER: JobId = u32::MAX;

/// Runs OA(m) on `m` machines. `fw_iters` is the planner's Frank–Wolfe
/// budget per arrival (the plan is feasible at any budget; more
/// iterations only lower its energy).
pub fn oa_m(instance: &Instance, m: usize, alpha: f64, fw_iters: usize) -> OaMResult {
    assert!(m >= 1 && alpha > 1.0);
    let mut schedule = Schedule::empty(m);
    if instance.is_empty() {
        return OaMResult { schedule, machine_profiles: vec![SpeedProfile::zero(); m] };
    }

    let arrivals = dedup_times(instance.jobs.iter().map(|j| j.release).collect());
    let horizon = instance.max_deadline();
    let mut remaining: Vec<f64> = instance.jobs.iter().map(|j| j.work).collect();

    for (a_idx, &t0) in arrivals.iter().enumerate() {
        let t1 = arrivals.get(a_idx + 1).copied().unwrap_or(horizon);
        if t1 <= t0 + EPS {
            continue;
        }
        // Residual instance: released unfinished jobs, windows starting
        // now; original index kept for the work deduction.
        let mut orig_of: Vec<usize> = Vec::new();
        let mut residual_jobs: Vec<Job> = Vec::new();
        for (idx, j) in instance.jobs.iter().enumerate() {
            if j.release <= t0 + EPS && remaining[idx] > EPS && j.deadline > t0 + EPS {
                orig_of.push(idx);
                residual_jobs.push(Job::new(j.id, t0, j.deadline, remaining[idx]));
            }
        }
        if residual_jobs.is_empty() {
            continue;
        }
        // A zero-work marker refines the planner's event grid at the
        // next arrival, so executed plan intervals never straddle it
        // (grid refinement does not change the optimum).
        if t1 < horizon - EPS {
            orig_of.push(usize::MAX);
            residual_jobs.push(Job::new(MARKER, t0, t1, 0.0));
        }
        let residual = Instance::new(residual_jobs);
        let plan = multi_opt_frank_wolfe(&residual, m, alpha, fw_iters);

        // Execute the plan's intervals inside (t0, t1].
        for (k, &(ia, ib)) in plan.intervals.iter().enumerate() {
            if ib > t1 + EPS || ib - ia <= EPS {
                continue;
            }
            let len = ib - ia;
            let works = &plan.placement[k];
            let times = water_filling_times(works, len, m);

            // Dedicated-machine jobs run the whole interval; the rest
            // share at a common speed. Order dedicated jobs by speed so
            // machine indices are speed-sorted.
            let mut dedicated: Vec<usize> = Vec::new();
            let mut shared: Vec<(JobId, f64)> = Vec::new();
            let mut shared_speed = 0.0_f64;
            for (r, job) in residual.jobs.iter().enumerate() {
                if works[r] <= EPS || job.id == MARKER {
                    continue;
                }
                if times[r] >= len - EPS {
                    dedicated.push(r);
                } else {
                    shared_speed = works[r] / times[r];
                    shared.push((job.id, works[r]));
                }
            }
            dedicated.sort_by(|&p, &q| {
                (works[q] / len)
                    .partial_cmp(&(works[p] / len))
                    .expect("finite")
                    .then_with(|| residual.jobs[p].id.cmp(&residual.jobs[q].id))
            });
            debug_assert!(
                dedicated.len() <= m && (shared.is_empty() || dedicated.len() < m),
                "water-filling produced more dedicated jobs than machines"
            );
            for (machine, &r) in dedicated.iter().enumerate() {
                schedule.push(crate::schedule::Slice {
                    job: residual.jobs[r].id,
                    machine,
                    start: ia,
                    end: ib,
                    speed: works[r] / len,
                });
            }
            if !shared.is_empty() {
                let first = dedicated.len();
                mcnaughton(&mut schedule, &shared, first, m - first, ia, len, shared_speed);
            }

            // Deduct executed work.
            for (r, &orig) in orig_of.iter().enumerate() {
                if orig != usize::MAX && works[r] > 0.0 {
                    remaining[orig] = (remaining[orig] - works[r]).max(0.0);
                }
            }
        }
    }

    let machine_profiles = (0..m).map(|i| schedule.machine_profile(i)).collect();
    OaMResult { schedule, machine_profiles }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multi::avr_m;
    use crate::schedule::Schedule as Sched;
    use crate::yds::optimal_energy;

    fn staggered() -> Instance {
        Instance::new(vec![
            Job::new(0, 0.0, 4.0, 2.0),
            Job::new(1, 1.0, 3.0, 2.0),
            Job::new(2, 2.0, 5.0, 1.5),
            Job::new(3, 0.5, 2.5, 1.0),
        ])
    }

    #[test]
    fn schedule_validates() {
        let inst = staggered();
        for m in [1usize, 2, 3] {
            let res = oa_m(&inst, m, 3.0, 80);
            res.schedule
                .check(&Sched::requirements_of(&inst))
                .unwrap_or_else(|e| panic!("m={m}: {e}"));
        }
    }

    #[test]
    fn single_machine_near_oa() {
        // With m = 1 and a single arrival, OA(m) plans once ≈ YDS.
        let inst = Instance::new(vec![
            Job::new(0, 0.0, 1.0, 3.0),
            Job::new(1, 0.0, 2.0, 1.0),
            Job::new(2, 0.0, 4.0, 1.0),
        ]);
        let alpha = 3.0;
        let res = oa_m(&inst, 1, alpha, 300);
        let opt = optimal_energy(&inst, alpha);
        assert!(res.energy(alpha) >= opt - 1e-6);
        assert!(
            res.energy(alpha) <= opt * 1.05,
            "OA(1) with one arrival should be ~optimal: {} vs {}",
            res.energy(alpha),
            opt
        );
    }

    #[test]
    fn oa_m_beats_avr_m_on_average_cases() {
        // OA-style planning flattens speeds; on staggered arrivals it
        // should not lose to AVR(m).
        let inst = staggered();
        let alpha = 3.0;
        for m in [1usize, 2] {
            let oa = oa_m(&inst, m, alpha, 120).energy(alpha);
            let avr = avr_m(&inst, m).energy(alpha);
            assert!(
                oa <= avr * 1.05,
                "OA(m) {oa} should be competitive with AVR(m) {avr} at m={m}"
            );
        }
    }

    #[test]
    fn respects_classical_alpha_alpha_bound_empirically() {
        // Against the fluid/per-job/FW LB: OA(m) stays within α^α.
        use crate::multi::{multi_opt_frank_wolfe, opt_lower_bound};
        let inst = staggered();
        let alpha = 2.5;
        for m in [2usize, 3] {
            let res = oa_m(&inst, m, alpha, 120);
            let fw = multi_opt_frank_wolfe(&inst, m, alpha, 200);
            let lb = opt_lower_bound(&inst, m, alpha).max(fw.lower_bound());
            assert!(
                res.energy(alpha) <= alpha.powf(alpha) * lb * (1.0 + 1e-6),
                "OA(m) exceeded α^α·LB at m={m}: {} vs {}",
                res.energy(alpha),
                alpha.powf(alpha) * lb
            );
        }
    }

    #[test]
    fn late_arrival_forces_replanning() {
        let inst = Instance::new(vec![
            Job::new(0, 0.0, 4.0, 2.0),
            Job::new(1, 3.5, 4.0, 3.0), // dense surprise
        ]);
        let res = oa_m(&inst, 2, 3.0, 80);
        res.schedule
            .check(&Sched::requirements_of(&inst))
            .expect("feasible after replanning");
        // The surprise job needs speed ≥ 6 somewhere.
        assert!(res.max_speed() >= 6.0 - 1e-6);
    }

    #[test]
    fn machine_profiles_ordered() {
        let inst = staggered();
        let res = oa_m(&inst, 3, 3.0, 80);
        for w in res.machine_profiles[0].breakpoints().windows(2) {
            let t = 0.5 * (w[0] + w[1]);
            let speeds: Vec<f64> =
                res.machine_profiles.iter().map(|p| p.speed_at(t)).collect();
            for pair in speeds.windows(2) {
                assert!(pair[0] + 1e-6 >= pair[1], "machines must be speed-sorted at t={t}");
            }
        }
    }

    #[test]
    fn empty_instance() {
        let res = oa_m(&Instance::default(), 2, 3.0, 10);
        assert_eq!(res.energy(3.0), 0.0);
    }
}
