//! Non-migratory multi-machine AVR — the variant the paper's §7 points
//! at ("our approach can directly be applied to the preemptive-
//! non-migratory variant \[21\]").
//!
//! Each job is irrevocably *assigned* to one machine at its release
//! (online list scheduling: the machine whose current total density is
//! lowest takes the job) and each machine then runs the classical AVR
//! policy on its own job set. No slice of a job ever appears on another
//! machine, so the schedule is trivially free of cross-machine job
//! parallelism — at the price of losing AVR(m)'s balancing of *big*
//! jobs (a single dense job can no longer spread its neighbours away).

use crate::avr::avr;
use crate::job::{Instance, Job};
use crate::profile::SpeedProfile;
use crate::schedule::Schedule;

/// Output of [`avr_m_nonmig`].
#[derive(Debug, Clone)]
pub struct NonMigResult {
    /// Combined schedule over all machines.
    pub schedule: Schedule,
    /// Per-machine speed profiles.
    pub machine_profiles: Vec<SpeedProfile>,
    /// The machine each job was assigned to (instance order).
    pub assignment: Vec<usize>,
}

impl NonMigResult {
    /// Total energy across machines.
    pub fn energy(&self, alpha: f64) -> f64 {
        self.machine_profiles.iter().map(|p| p.energy(alpha)).sum()
    }

    /// Maximum speed over machines and time.
    pub fn max_speed(&self) -> f64 {
        self.machine_profiles.iter().map(SpeedProfile::max_speed).fold(0.0, f64::max)
    }
}

/// Runs non-migratory AVR on `m` machines.
///
/// Assignment is online: jobs are considered in release order (ties by
/// id) and each goes to the machine with the smallest sum of densities
/// of already-assigned jobs — the natural greedy a dispatcher without
/// migration would use.
pub fn avr_m_nonmig(instance: &Instance, m: usize) -> NonMigResult {
    assert!(m >= 1, "need at least one machine");

    let mut order: Vec<usize> = (0..instance.jobs.len()).collect();
    order.sort_by(|&a, &b| {
        let (ja, jb) = (&instance.jobs[a], &instance.jobs[b]);
        ja.release
            .partial_cmp(&jb.release)
            .expect("finite releases")
            .then_with(|| ja.id.cmp(&jb.id))
    });

    let mut per_machine: Vec<Vec<Job>> = vec![Vec::new(); m];
    let mut machine_density = vec![0.0f64; m];
    let mut assignment = vec![0usize; instance.jobs.len()];
    for idx in order {
        let job = instance.jobs[idx];
        let target = machine_density
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("m >= 1");
        assignment[idx] = target;
        machine_density[target] += job.density();
        per_machine[target].push(job);
    }

    let mut schedule = Schedule::empty(m);
    let mut machine_profiles = Vec::with_capacity(m);
    for (machine, jobs) in per_machine.into_iter().enumerate() {
        if jobs.is_empty() {
            machine_profiles.push(SpeedProfile::zero());
            continue;
        }
        let local = Instance::new(jobs);
        let res = avr(&local);
        machine_profiles.push(res.profile);
        for mut slice in res.schedule.slices {
            slice.machine = machine;
            schedule.push(slice);
        }
    }

    NonMigResult { schedule, machine_profiles, assignment }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multi::avr_m;

    fn sample() -> Instance {
        Instance::new(vec![
            Job::new(0, 0.0, 2.0, 4.0),
            Job::new(1, 0.0, 2.0, 2.0),
            Job::new(2, 1.0, 3.0, 2.0),
            Job::new(3, 1.5, 4.0, 1.0),
        ])
    }

    #[test]
    fn schedule_is_feasible() {
        let inst = sample();
        let res = avr_m_nonmig(&inst, 2);
        res.schedule
            .check(&Schedule::requirements_of(&inst))
            .expect("non-migratory schedule must validate");
    }

    #[test]
    fn no_job_ever_migrates() {
        let inst = sample();
        let res = avr_m_nonmig(&inst, 3);
        for (idx, job) in inst.jobs.iter().enumerate() {
            for s in res.schedule.slices.iter().filter(|s| s.job == job.id) {
                assert_eq!(s.machine, res.assignment[idx], "job {} migrated", job.id);
            }
        }
    }

    #[test]
    fn single_machine_equals_avr() {
        let inst = sample();
        let res = avr_m_nonmig(&inst, 1);
        let avr = crate::avr::avr_profile(&inst);
        for &t in &[0.5, 1.5, 2.5, 3.5] {
            assert!((res.machine_profiles[0].speed_at(t) - avr.speed_at(t)).abs() < 1e-9);
        }
    }

    #[test]
    fn greedy_balances_densities() {
        // Two equal jobs on two machines must land on different ones.
        let inst = Instance::new(vec![
            Job::new(0, 0.0, 1.0, 1.0),
            Job::new(1, 0.0, 1.0, 1.0),
        ]);
        let res = avr_m_nonmig(&inst, 2);
        assert_ne!(res.assignment[0], res.assignment[1]);
    }

    #[test]
    fn migration_helps_on_big_jobs() {
        // One dominant job plus many small ones: AVR(m) gives the big
        // job its own machine at all times, while non-migratory greedy
        // may co-locate; energy of nonmig is never better.
        let mut jobs = vec![Job::new(0, 0.0, 1.0, 10.0)];
        for i in 1..6u32 {
            jobs.push(Job::new(i, 0.0, 1.0, 1.0));
        }
        let inst = Instance::new(jobs);
        let alpha = 3.0;
        let mig = avr_m(&inst, 2).energy(alpha);
        let non = avr_m_nonmig(&inst, 2).energy(alpha);
        assert!(non + 1e-9 >= mig, "nonmig {non} vs mig {mig}");
    }

    #[test]
    fn empty_machines_have_zero_profiles() {
        let inst = Instance::new(vec![Job::new(0, 0.0, 1.0, 1.0)]);
        let res = avr_m_nonmig(&inst, 4);
        let active = res.machine_profiles.iter().filter(|p| p.max_speed() > 0.0).count();
        assert_eq!(active, 1);
    }
}
