//! The Average Rate (AVR) online heuristic of Yao, Demers and Shenker.
//!
//! At every time `t` the machine runs at the sum of densities of the
//! active jobs, `s^{AVR}(t) = Σ_{j : t ∈ (r_j, d_j]} δ_j`, and executes
//! the released unfinished job with the earliest deadline. AVR is
//! `2^{α−1} α^α`-competitive for energy (essentially tight, Bansal et
//! al. 2011).
//!
//! The AVR speed only changes at releases and deadlines, so the profile
//! is computed exactly on that event grid. AVR is an *online* algorithm:
//! the speed at `t` depends only on jobs with `r_j ≤ t`, which the
//! density sum satisfies by construction (jobs contribute only inside
//! their own window); computing the profile in one offline pass is
//! therefore faithful to the online execution.

use crate::edf::{edf_schedule, EdfTask};
use crate::job::Instance;
use crate::profile::SpeedProfile;
use crate::schedule::Schedule;
use crate::stream::{release_ordered, AvrStream};

/// Output of [`avr`].
#[derive(Debug, Clone)]
pub struct AvrResult {
    /// The AVR speed profile `Σ active densities`.
    pub profile: SpeedProfile,
    /// Explicit EDF schedule under that profile.
    pub schedule: Schedule,
}

impl AvrResult {
    /// Energy consumed by AVR at exponent `alpha`.
    pub fn energy(&self, alpha: f64) -> f64 {
        self.profile.energy(alpha)
    }

    /// Maximum speed used by AVR.
    pub fn max_speed(&self) -> f64 {
        self.profile.max_speed()
    }
}

/// The AVR speed profile of `instance`.
pub fn avr_profile(instance: &Instance) -> SpeedProfile {
    if instance.is_empty() {
        return SpeedProfile::zero();
    }
    qbss_telemetry::counter!("avr.solves").inc();
    let _span = qbss_telemetry::span!("avr.solve", { jobs = instance.jobs.len() });
    let mut stream = AvrStream::new();
    for job in release_ordered(instance) {
        stream.on_arrival(job);
    }
    stream.finish()
}

/// Runs AVR: profile plus explicit EDF schedule.
///
/// AVR is always feasible: inside every window the profile carries at
/// least the job's own density, so the EDF realization cannot miss a
/// deadline (Yao et al. 1995).
pub fn avr(instance: &Instance) -> AvrResult {
    let profile = avr_profile(instance);
    let schedule = edf_schedule(&EdfTask::from_instance(instance), &profile, 0)
        .expect("AVR profile is feasible by construction");
    AvrResult { profile, schedule }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use crate::yds::yds_profile;

    #[test]
    fn single_job_density() {
        let i = Instance::new(vec![Job::new(0, 0.0, 2.0, 4.0)]);
        let p = avr_profile(&i);
        assert!((p.speed_at(1.0) - 2.0).abs() < 1e-12);
        assert!((p.total_work() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn densities_stack() {
        let i = Instance::new(vec![
            Job::new(0, 0.0, 2.0, 2.0), // δ = 1 on (0,2]
            Job::new(1, 1.0, 3.0, 4.0), // δ = 2 on (1,3]
        ]);
        let p = avr_profile(&i);
        assert!((p.speed_at(0.5) - 1.0).abs() < 1e-12);
        assert!((p.speed_at(1.5) - 3.0).abs() < 1e-12);
        assert!((p.speed_at(2.5) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn avr_schedule_is_valid() {
        let i = Instance::new(vec![
            Job::new(0, 0.0, 3.0, 3.0),
            Job::new(1, 0.5, 1.5, 2.0),
            Job::new(2, 1.0, 4.0, 1.0),
        ]);
        let r = avr(&i);
        assert!(r.schedule.check(&Schedule::requirements_of(&i)).is_ok());
        assert!((r.schedule.work_of(1) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn avr_at_least_yds() {
        // AVR can never consume less energy than the optimum.
        let i = Instance::new(vec![
            Job::new(0, 0.0, 4.0, 2.0),
            Job::new(1, 1.0, 2.0, 3.0),
            Job::new(2, 2.0, 5.0, 2.0),
        ]);
        for &alpha in &[1.5, 2.0, 3.0] {
            assert!(avr_profile(&i).energy(alpha) + 1e-9 >= yds_profile(&i).energy(alpha));
        }
    }

    #[test]
    fn avr_known_bad_case_ratio_exceeds_one() {
        // The classic AVR weakness: many overlapping windows ending
        // together make AVR pile densities where YDS flattens.
        let mut jobs = Vec::new();
        let n = 10;
        for k in 0..n {
            // Job k released at 1 - 2^{-k}, deadline 1, tiny work chosen
            // so its density is 1.
            let r = 1.0 - (0.5f64).powi(k);
            jobs.push(Job::new(k as u32, r, 1.0, (0.5f64).powi(k)));
        }
        let i = Instance::new(jobs);
        let alpha = 3.0;
        let ratio = avr_profile(&i).energy(alpha) / yds_profile(&i).energy(alpha);
        assert!(ratio > 1.5, "expected a markedly suboptimal AVR, got {ratio}");
    }

    #[test]
    fn empty_instance_zero_profile() {
        assert_eq!(avr_profile(&Instance::default()).max_speed(), 0.0);
    }
}
