//! The YDS offline optimal algorithm (Yao, Demers, Shenker, FOCS 1995).
//!
//! YDS repeatedly finds the *critical interval* — the interval `I`
//! maximizing the intensity `g(I) = Σ_{j : (r_j,d_j] ⊆ I} w_j / |I|` —
//! schedules the jobs of `I` at constant speed `g(I)` inside it, removes
//! them, and *collapses* `I` out of the time axis before recursing on the
//! rest. The resulting speed profile minimizes energy `∫ s^α dt`
//! simultaneously for every `α > 1` and also minimizes the maximum speed.
//!
//! This implementation keeps the remaining jobs in collapsed ("current")
//! coordinates and maintains the set of already-assigned original-time
//! intervals, mapping each critical interval back to original time when
//! it is fixed. Slice placement is delegated to EDF, and in tests the
//! schedule is re-validated by the generic checker.

use crate::edf::{edf_schedule, EdfTask};
use crate::job::Instance;
use crate::profile::SpeedProfile;
use crate::schedule::Schedule;
use crate::time::{approx_ge, approx_le, dedup_times, Interval, EPS};

/// Output of [`yds`]: the optimal profile plus the explicit schedule.
#[derive(Debug, Clone)]
pub struct YdsResult {
    /// The energy-optimal speed profile.
    pub profile: SpeedProfile,
    /// An explicit EDF schedule realizing the profile.
    pub schedule: Schedule,
}

impl YdsResult {
    /// Energy of the optimal schedule for exponent `alpha`.
    pub fn energy(&self, alpha: f64) -> f64 {
        self.profile.energy(alpha)
    }

    /// Maximum speed of the optimal schedule.
    pub fn max_speed(&self) -> f64 {
        self.profile.max_speed()
    }
}

/// A job in the current (collapsed) coordinate system.
#[derive(Debug, Clone, Copy)]
struct WorkItem {
    release: f64,
    deadline: f64,
    work: f64,
}

/// Computes the YDS-optimal speed profile for `instance`.
///
/// Runs in `O(n³)` time in the worst case (`O(n²)` per critical round via
/// a sorted sweep); instances in this workspace are at most a few
/// thousand jobs, for which this is instantaneous in release builds.
///
/// ```
/// use speed_scaling::job::{Instance, Job};
/// use speed_scaling::yds::yds_profile;
///
/// // A dense inner job inside a relaxed outer one.
/// let inst = Instance::new(vec![
///     Job::new(0, 0.0, 4.0, 4.0), // density 1
///     Job::new(1, 1.0, 2.0, 3.0), // density 3 — the critical interval
/// ]);
/// let p = yds_profile(&inst);
/// assert!((p.speed_at(1.5) - 3.0).abs() < 1e-9);       // critical (1,2]
/// assert!((p.speed_at(0.5) - 4.0 / 3.0).abs() < 1e-9); // outer job spread
/// ```
pub fn yds_profile(instance: &Instance) -> SpeedProfile {
    let mut jobs: Vec<WorkItem> = instance
        .jobs
        .iter()
        .filter(|j| j.work > 0.0)
        .map(|j| WorkItem { release: j.release, deadline: j.deadline, work: j.work })
        .collect();
    qbss_telemetry::counter!("yds.solves").inc();
    let mut span = qbss_telemetry::span!("yds.solve", { jobs = jobs.len() });
    let mut rounds = 0_u64;

    // Original-time intervals already assigned a speed, kept sorted and
    // disjoint, together with their speeds.
    let mut fixed: Vec<(Interval, f64)> = Vec::new();
    // Sorted original-time intervals removed from the axis so far.
    let mut removed: Vec<Interval> = Vec::new();

    while !jobs.is_empty() {
        rounds += 1;
        let Some((a, b, intensity)) = critical_interval(&jobs) else {
            break;
        };
        if intensity <= EPS {
            break;
        }

        // Map the critical interval from current to original coordinates
        // and carve out the pieces not yet removed.
        let orig_a = to_original(&removed, a);
        let orig_b = to_original(&removed, b);
        let pieces = subtract_removed(&removed, orig_a, orig_b);
        debug_assert!(
            ((b - a) - pieces.iter().map(Interval::len).sum::<f64>()).abs()
                < 1e-6 * (1.0 + (b - a)),
            "collapse bookkeeping lost time"
        );
        for piece in &pieces {
            fixed.push((*piece, intensity));
        }
        insert_removed(&mut removed, pieces);

        // Drop the jobs of the critical set and collapse the axis for the
        // survivors.
        jobs.retain(|j| !(approx_ge(j.release, a) && approx_le(j.deadline, b)));
        for j in &mut jobs {
            j.release = collapse_point(j.release, a, b);
            j.deadline = collapse_point(j.deadline, a, b);
            debug_assert!(
                j.deadline > j.release + EPS,
                "surviving job window collapsed to zero"
            );
        }
    }

    span.record("rounds", rounds);
    qbss_telemetry::trace!("yds.solve", { rounds = rounds }, "critical-interval loop done");
    profile_from_fixed(instance, fixed)
}

/// Runs YDS and realizes the profile with EDF.
pub fn yds(instance: &Instance) -> YdsResult {
    let profile = yds_profile(instance);
    let tasks = EdfTask::from_instance(instance);
    let schedule = edf_schedule(&tasks, &profile, 0)
        .expect("YDS profile is feasible by construction");
    YdsResult { profile, schedule }
}

/// Optimal energy for `instance` at exponent `alpha` — shorthand used by
/// every ratio experiment.
pub fn optimal_energy(instance: &Instance, alpha: f64) -> f64 {
    yds_profile(instance).energy(alpha)
}

/// Optimal maximum speed for `instance`.
pub fn optimal_max_speed(instance: &Instance) -> f64 {
    yds_profile(instance).max_speed()
}

/// Verifies the *optimality certificate* of a profile/schedule pair for
/// `instance`:
///
/// 1. the schedule is feasible (delegated to the generic checker);
/// 2. every job runs at a single speed equal to the **minimum** profile
///    speed inside its window — the KKT condition of the convex program
///    `min ∫ s^α` (if some job ran at a speed above the minimum
///    available in its window, shifting an ε of its work to the slower
///    region would strictly reduce energy by convexity);
/// 3. the machine is never faster than the executed work requires (no
///    padding: profile work equals total job work).
///
/// Together with convexity these conditions are sufficient for
/// optimality, so this is an independent check of the YDS
/// implementation — used by the property tests rather than trusting
/// YDS's own construction.
pub fn verify_optimality_certificate(
    instance: &Instance,
    result: &YdsResult,
) -> Result<(), String> {
    use crate::time::rel_eq;

    result
        .schedule
        .check(&Schedule::requirements_of(instance))
        .map_err(|e| format!("schedule infeasible: {e}"))?;

    // No padding.
    let total = instance.total_work();
    if !rel_eq(result.profile.total_work(), total) {
        return Err(format!(
            "profile carries {} work for {} of jobs",
            result.profile.total_work(),
            total
        ));
    }

    for job in &instance.jobs {
        if job.work <= 0.0 {
            continue;
        }
        let slices: Vec<&crate::schedule::Slice> =
            result.schedule.slices.iter().filter(|s| s.job == job.id).collect();
        if slices.is_empty() {
            return Err(format!("job {} has work but no slices", job.id));
        }
        // Speed at which the bulk of the job runs (slices carrying less
        // than 1e-6 of the job's work are EDF boundary dust and carry no
        // energy-relevant information).
        let run_speed = slices
            .iter()
            .filter(|s| s.work() > 1e-6 * job.work)
            .map(|s| s.speed)
            .fold(0.0, f64::max);
        // Minimum profile speed over the job's window, idle segments
        // included: moving an ε of the job's work into any slower (or
        // idle) stretch of its window would strictly reduce energy by
        // convexity, so optimality requires run_speed ≤ window minimum
        // (and hence the job runs at a single speed level).
        let mut window_min = f64::INFINITY;
        for (iv, v) in result.profile.segments() {
            if iv.overlap_len(&job.window()) > EPS {
                window_min = window_min.min(v);
            }
        }
        if run_speed > window_min * (1.0 + 1e-6) + EPS {
            return Err(format!(
                "job {} runs at {run_speed} while its window has speed {window_min} available",
                job.id
            ));
        }
    }
    Ok(())
}

/// Finds the interval `(t1, t2]` (endpoints among releases/deadlines)
/// maximizing the intensity, returning `(t1, t2, g)`.
fn critical_interval(jobs: &[WorkItem]) -> Option<(f64, f64, f64)> {
    let releases = dedup_times(jobs.iter().map(|j| j.release).collect());
    let mut by_deadline: Vec<&WorkItem> = jobs.iter().collect();
    by_deadline.sort_by(|x, y| x.deadline.partial_cmp(&y.deadline).expect("finite"));

    // Work accumulates in locals and lands with one `add` per call so
    // the O(k²) scan stays free of atomic traffic.
    let mut intervals_scanned = 0_u64;
    let mut density_evals = 0_u64;
    let mut best: Option<(f64, f64, f64)> = None;
    for &t1 in &releases {
        let mut acc = 0.0;
        for j in &by_deadline {
            intervals_scanned += 1;
            if j.release + EPS < t1 {
                continue;
            }
            let t2 = j.deadline;
            if t2 <= t1 + EPS {
                continue;
            }
            acc += j.work;
            // Intensity using all jobs with r >= t1 and d <= t2. Jobs
            // sharing this deadline appear consecutively; evaluating at
            // each of them is harmless (earlier ones see a partial sum
            // that is dominated by the final one).
            density_evals += 1;
            let g = acc / (t2 - t1);
            if best.is_none_or(|(_, _, gb)| g > gb) {
                best = Some((t1, t2, g));
            }
        }
    }
    qbss_telemetry::counter!("yds.intervals_scanned").add(intervals_scanned);
    qbss_telemetry::counter!("yds.density_evals").add(density_evals);
    best
}

/// Maps a point from current (collapsed) coordinates back to original
/// time, given the sorted disjoint removed intervals.
fn to_original(removed: &[Interval], point: f64) -> f64 {
    let mut x = point;
    for r in removed {
        if r.start <= x + EPS {
            x += r.len();
        } else {
            break;
        }
    }
    x
}

/// The original-time pieces of `[a, b]` not covered by `removed`.
fn subtract_removed(removed: &[Interval], a: f64, b: f64) -> Vec<Interval> {
    let mut pieces = Vec::new();
    let mut cursor = a;
    for r in removed {
        if r.end <= cursor + EPS {
            continue;
        }
        if r.start >= b - EPS {
            break;
        }
        if r.start > cursor + EPS {
            pieces.push(Interval::new(cursor, r.start.min(b)));
        }
        cursor = cursor.max(r.end);
        if cursor >= b - EPS {
            break;
        }
    }
    if cursor < b - EPS {
        pieces.push(Interval::new(cursor, b));
    }
    pieces
}

/// Inserts new (disjoint-from-existing) pieces into the sorted removed
/// set, merging adjacency.
fn insert_removed(removed: &mut Vec<Interval>, pieces: Vec<Interval>) {
    removed.extend(pieces);
    removed.sort_by(|x, y| x.start.partial_cmp(&y.start).expect("finite"));
    let mut merged: Vec<Interval> = Vec::with_capacity(removed.len());
    for iv in removed.drain(..) {
        match merged.last_mut() {
            Some(last) if iv.start <= last.end + EPS => {
                last.end = last.end.max(iv.end);
            }
            _ => merged.push(iv),
        }
    }
    *removed = merged;
}

/// Collapses a point after removing `[a, b]` from the axis.
fn collapse_point(x: f64, a: f64, b: f64) -> f64 {
    if x <= a + EPS {
        x
    } else if x <= b + EPS {
        a
    } else {
        x - (b - a)
    }
}

/// Builds the final profile: the fixed pieces at their speeds, zero on
/// the rest of `[min_release, max_deadline]`.
fn profile_from_fixed(instance: &Instance, fixed: Vec<(Interval, f64)>) -> SpeedProfile {
    if instance.is_empty() || fixed.is_empty() {
        return SpeedProfile::zero();
    }
    let mut events: Vec<f64> = vec![instance.min_release(), instance.max_deadline()];
    for (iv, _) in &fixed {
        events.push(iv.start);
        events.push(iv.end);
    }
    SpeedProfile::from_events(events, |t| {
        fixed
            .iter()
            .find(|(iv, _)| iv.start < t && t <= iv.end)
            .map_or(0.0, |&(_, s)| s)
    })
    .simplify()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;

    fn inst(jobs: Vec<Job>) -> Instance {
        Instance::new(jobs)
    }

    #[test]
    fn single_job_runs_at_density() {
        let i = inst(vec![Job::new(0, 0.0, 2.0, 4.0)]);
        let p = yds_profile(&i);
        assert!((p.speed_at(1.0) - 2.0).abs() < 1e-9);
        assert!((p.energy(3.0) - 2.0 * 8.0).abs() < 1e-9);
        assert!((p.max_speed() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn common_window_jobs_share_constant_speed() {
        // All jobs active in (0, 1]: optimal speed is the total work.
        let i = inst(vec![
            Job::new(0, 0.0, 1.0, 1.0),
            Job::new(1, 0.0, 1.0, 2.0),
            Job::new(2, 0.0, 1.0, 3.0),
        ]);
        let p = yds_profile(&i);
        assert!((p.speed_at(0.5) - 6.0).abs() < 1e-9);
        let r = yds(&i);
        assert!(r
            .schedule
            .check(&Schedule::requirements_of(&i))
            .is_ok());
    }

    #[test]
    fn textbook_two_level_instance() {
        // Dense inner job forces a high-speed critical interval; the
        // outer job is pushed to the remaining time at lower speed.
        let i = inst(vec![
            Job::new(0, 0.0, 4.0, 4.0), // density 1
            Job::new(1, 1.0, 2.0, 3.0), // density 3 — critical
        ]);
        let p = yds_profile(&i);
        // Critical interval (1,2] at speed 3; the outer job gets
        // (0,1] ∪ (2,4], i.e. 3 time units for 4 work → speed 4/3.
        assert!((p.speed_at(1.5) - 3.0).abs() < 1e-9);
        assert!((p.speed_at(0.5) - 4.0 / 3.0).abs() < 1e-9);
        assert!((p.speed_at(3.0) - 4.0 / 3.0).abs() < 1e-9);
        let r = yds(&i);
        assert!(r.schedule.check(&Schedule::requirements_of(&i)).is_ok());
    }

    #[test]
    fn disjoint_windows_independent_speeds() {
        let i = inst(vec![
            Job::new(0, 0.0, 1.0, 2.0),
            Job::new(1, 1.0, 2.0, 1.0),
        ]);
        let p = yds_profile(&i);
        assert!((p.speed_at(0.5) - 2.0).abs() < 1e-9);
        assert!((p.speed_at(1.5) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn speed_profile_total_work_matches() {
        let i = inst(vec![
            Job::new(0, 0.0, 3.0, 2.0),
            Job::new(1, 0.5, 1.5, 1.0),
            Job::new(2, 2.0, 4.0, 3.0),
        ]);
        let p = yds_profile(&i);
        assert!((p.total_work() - i.total_work()).abs() < 1e-6);
    }

    #[test]
    fn nested_criticals_collapse_correctly() {
        // Three nested windows with decreasing density.
        let i = inst(vec![
            Job::new(0, 0.0, 8.0, 2.0),
            Job::new(1, 2.0, 6.0, 4.0),
            Job::new(2, 3.0, 5.0, 6.0),
        ]);
        let r = yds(&i);
        assert!(r.schedule.check(&Schedule::requirements_of(&i)).is_ok());
        // Innermost (3,5] must be the fastest region.
        let p = &r.profile;
        assert!(p.speed_at(4.0) >= p.speed_at(2.5) - 1e-9);
        assert!(p.speed_at(2.5) >= p.speed_at(1.0) - 1e-9);
        assert!((p.total_work() - 12.0).abs() < 1e-6);
    }

    #[test]
    fn zero_work_instance() {
        let i = inst(vec![Job::new(0, 0.0, 1.0, 0.0)]);
        let p = yds_profile(&i);
        assert_eq!(p.max_speed(), 0.0);
        assert!(yds(&i).schedule.slices.is_empty());
    }

    #[test]
    fn empty_instance() {
        let p = yds_profile(&Instance::default());
        assert_eq!(p.max_speed(), 0.0);
    }

    #[test]
    fn yds_not_worse_than_avr_style_profile() {
        // Energy optimality sanity: YDS beats (or ties) running every job
        // at its own density (the AVR profile is always feasible).
        let i = inst(vec![
            Job::new(0, 0.0, 2.0, 2.0),
            Job::new(1, 1.0, 4.0, 3.0),
            Job::new(2, 3.0, 5.0, 1.0),
        ]);
        let avr_profile = SpeedProfile::from_events(i.event_times(), |t| i.total_density_at(t));
        for &alpha in &[1.5, 2.0, 2.5, 3.0] {
            assert!(
                yds_profile(&i).energy(alpha) <= avr_profile.energy(alpha) + 1e-9,
                "YDS must be optimal at alpha={alpha}"
            );
        }
    }

    #[test]
    fn certificate_accepts_yds_output() {
        let i = inst(vec![
            Job::new(0, 0.0, 4.0, 4.0),
            Job::new(1, 1.0, 2.0, 3.0),
            Job::new(2, 3.0, 6.0, 2.0),
            Job::new(3, 0.5, 5.0, 1.0),
        ]);
        let r = yds(&i);
        verify_optimality_certificate(&i, &r).expect("YDS output must certify");
    }

    #[test]
    fn certificate_rejects_suboptimal_profiles() {
        // The AVR profile is feasible but piles speed where YDS
        // flattens; its realization must fail the certificate.
        let i = inst(vec![
            Job::new(0, 0.0, 4.0, 4.0),
            Job::new(1, 1.0, 2.0, 3.0),
        ]);
        let profile = crate::avr::avr_profile(&i);
        let schedule =
            edf_schedule(&EdfTask::from_instance(&i), &profile, 0).expect("feasible");
        let fake = YdsResult { profile, schedule };
        assert!(verify_optimality_certificate(&i, &fake).is_err());
    }

    #[test]
    fn certificate_rejects_padded_profiles() {
        // Doubling the optimal speed keeps feasibility but pads work.
        let i = inst(vec![Job::new(0, 0.0, 2.0, 2.0)]);
        let profile = yds_profile(&i).scale(2.0);
        let schedule =
            edf_schedule(&EdfTask::from_instance(&i), &profile, 0).expect("feasible");
        let fake = YdsResult { profile, schedule };
        let err = verify_optimality_certificate(&i, &fake).unwrap_err();
        assert!(err.contains("work"), "{err}");
    }

    #[test]
    fn common_deadline_decreasing_speed() {
        // With a common release, YDS speeds are non-increasing in time.
        let i = inst(vec![
            Job::new(0, 0.0, 1.0, 5.0),
            Job::new(1, 0.0, 2.0, 1.0),
            Job::new(2, 0.0, 4.0, 1.0),
        ]);
        let p = yds_profile(&i);
        let mut last = f64::INFINITY;
        for (_, s) in p.segments() {
            assert!(s <= last + 1e-9, "YDS speeds must be non-increasing here");
            last = s;
        }
    }
}
