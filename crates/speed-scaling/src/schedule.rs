//! Explicit schedules and the feasibility checker.
//!
//! A [`Schedule`] is a set of [`Slice`]s: "machine `m` runs job `j` at
//! speed `s` during `(start, end]`". Every algorithm in the workspace
//! returns an explicit schedule so that a *single* checker
//! ([`Schedule::check`]) can verify all of the model's constraints:
//!
//! 1. each slice lies inside the job's active window,
//! 2. each machine runs at most one job at a time,
//! 3. no job runs on two machines simultaneously (migration is allowed,
//!    parallelism is not),
//! 4. every job receives exactly its required work.
//!
//! Tests never trust an algorithm's self-reported energy: they recompute
//! it from the slices.

use std::collections::HashMap;


use crate::job::JobId;
use crate::time::{dedup_times, Interval, EPS, REL_TOL};

/// One maximal run of a job on a machine at constant speed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Slice {
    /// Index of the original job this slice executes (see
    /// [`crate::job::JobId`] — derived jobs share the id of their origin).
    pub job: JobId,
    /// Machine index (0 for the single-machine algorithms).
    pub machine: usize,
    /// Start of the run.
    pub start: f64,
    /// End of the run.
    pub end: f64,
    /// Constant speed during the run.
    pub speed: f64,
}

impl Slice {
    /// The time interval of the slice.
    pub fn interval(&self) -> Interval {
        Interval::new(self.start, self.end)
    }

    /// Work executed by this slice.
    pub fn work(&self) -> f64 {
        (self.end - self.start).max(0.0) * self.speed
    }
}

/// An explicit (possibly multi-machine) preemptive schedule.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Schedule {
    /// All slices, in no particular order.
    pub slices: Vec<Slice>,
    /// Number of machines the schedule is allowed to use.
    pub machines: usize,
}

/// A requirement the checker verifies work-conservation against:
/// job `id` must receive `work` units inside `window`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkRequirement {
    /// Job identifier the requirement applies to.
    pub id: JobId,
    /// Window the work must be executed in.
    pub window: Interval,
    /// Amount of work required.
    pub work: f64,
}

impl WorkRequirement {
    /// Convenience constructor.
    pub fn new(id: JobId, window: Interval, work: f64) -> Self {
        Self { id, window, work }
    }
}

/// A violation found by [`Schedule::check`].
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// A slice refers to a machine index `>= machines`.
    BadMachine(Slice),
    /// A slice has a reversed interval or negative speed.
    MalformedSlice(Slice),
    /// A slice executes work of a job outside one of its requirement
    /// windows (job id, offending slice).
    OutsideWindow(JobId, Slice),
    /// Two slices overlap in time on the same machine.
    MachineOverlap(Slice, Slice),
    /// The same job runs simultaneously on two machines.
    JobParallelism(Slice, Slice),
    /// A job did not receive its required work (id, got, wanted).
    WrongWork(JobId, f64, f64),
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadMachine(s) => write!(f, "slice on unknown machine: {s:?}"),
            Self::MalformedSlice(s) => write!(f, "malformed slice: {s:?}"),
            Self::OutsideWindow(id, s) => {
                write!(f, "job {id} executed outside its window by {s:?}")
            }
            Self::MachineOverlap(a, b) => write!(f, "machine overlap: {a:?} vs {b:?}"),
            Self::JobParallelism(a, b) => write!(f, "job parallelism: {a:?} vs {b:?}"),
            Self::WrongWork(id, got, want) => {
                write!(f, "job {id} got {got} work, required {want}")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

impl Schedule {
    /// An empty schedule on `machines` machines.
    pub fn empty(machines: usize) -> Self {
        Self { slices: Vec::new(), machines }
    }

    /// Adds a slice, silently dropping numerically empty ones (length or
    /// speed ≤ EPS·EPS region) — algorithms generate plenty of those at
    /// segment boundaries.
    pub fn push(&mut self, slice: Slice) {
        if slice.end - slice.start > EPS && slice.speed > 0.0 {
            self.slices.push(slice);
        }
    }

    /// Total energy `Σ len·speed^α` recomputed from the slices.
    pub fn energy(&self, alpha: f64) -> f64 {
        assert!(alpha > 1.0, "the power exponent must satisfy α > 1, got {alpha}");
        self.slices
            .iter()
            .map(|s| (s.end - s.start).max(0.0) * s.speed.powf(alpha))
            .sum()
    }

    /// Maximum speed over all slices.
    pub fn max_speed(&self) -> f64 {
        self.slices.iter().map(|s| s.speed).fold(0.0, f64::max)
    }

    /// Work delivered to job `id`.
    pub fn work_of(&self, id: JobId) -> f64 {
        self.slices.iter().filter(|s| s.job == id).map(Slice::work).sum()
    }

    /// The aggregate speed profile of machine `m` (0 where idle).
    pub fn machine_profile(&self, machine: usize) -> crate::profile::SpeedProfile {
        let mine: Vec<&Slice> = self.slices.iter().filter(|s| s.machine == machine).collect();
        if mine.is_empty() {
            return crate::profile::SpeedProfile::zero();
        }
        let mut events: Vec<f64> = Vec::with_capacity(2 * mine.len());
        for s in &mine {
            events.push(s.start);
            events.push(s.end);
        }
        crate::profile::SpeedProfile::from_events(events, |t| {
            mine.iter()
                .filter(|s| s.start < t && t <= s.end)
                .map(|s| s.speed)
                .sum()
        })
    }

    /// Verifies the schedule against the model constraints listed in the
    /// module docs. `requirements` may contain several entries per job id
    /// (e.g. a query part and an exact-work part); work conservation is
    /// then checked per-entry *and* windows are the union of the entry
    /// windows for containment purposes.
    pub fn check(&self, requirements: &[WorkRequirement]) -> Result<(), ScheduleError> {
        // 0. Structural validity.
        for s in &self.slices {
            if s.machine >= self.machines {
                return Err(ScheduleError::BadMachine(*s));
            }
            if !(s.start.is_finite() && s.end.is_finite())
                || s.end < s.start - EPS
                || s.speed < 0.0
                || !s.speed.is_finite()
            {
                return Err(ScheduleError::MalformedSlice(*s));
            }
        }

        // 1. Window containment: every slice of a job must lie in the
        //    union of that job's requirement windows.
        let mut windows: HashMap<JobId, Vec<Interval>> = HashMap::new();
        for req in requirements {
            windows.entry(req.id).or_default().push(req.window);
        }
        for s in &self.slices {
            let Some(ws) = windows.get(&s.job) else {
                return Err(ScheduleError::OutsideWindow(s.job, *s));
            };
            // The slice may straddle two adjacent windows of the same job
            // (query window followed by exact-work window), so check that
            // its interval is covered by the union.
            let iv = s.interval();
            let covered: f64 = ws.iter().map(|w| w.overlap_len(&iv)).sum();
            if covered + EPS < iv.len() {
                return Err(ScheduleError::OutsideWindow(s.job, *s));
            }
        }

        // 2. Machine exclusivity & 3. no intra-job parallelism. Sweep the
        //    union event grid; within each elementary segment every slice
        //    is either fully present or absent.
        let mut events: Vec<f64> = Vec::with_capacity(2 * self.slices.len());
        for s in &self.slices {
            events.push(s.start);
            events.push(s.end);
        }
        let events = dedup_times(events);
        for w in events.windows(2) {
            if w[1] - w[0] <= EPS {
                continue;
            }
            let t = 0.5 * (w[0] + w[1]);
            let live: Vec<&Slice> =
                self.slices.iter().filter(|s| s.start < t && t < s.end).collect();
            for (i, a) in live.iter().enumerate() {
                for b in &live[i + 1..] {
                    if a.machine == b.machine {
                        return Err(ScheduleError::MachineOverlap(**a, **b));
                    }
                    if a.job == b.job {
                        return Err(ScheduleError::JobParallelism(**a, **b));
                    }
                }
            }
        }

        // 4. Work conservation, per requirement entry: the work delivered
        //    to job `id` within the entry's window must match.
        for req in requirements {
            let got: f64 = self
                .slices
                .iter()
                .filter(|s| s.job == req.id)
                .map(|s| s.interval().overlap_len(&req.window) * s.speed)
                .sum();
            let scale = req.work.abs().max(1.0);
            if (got - req.work).abs() > REL_TOL * scale {
                return Err(ScheduleError::WrongWork(req.id, got, req.work));
            }
        }
        Ok(())
    }

    /// Builds requirements straight from a classical instance (each job
    /// needs `w_j` inside `(r_j, d_j]`).
    pub fn requirements_of(instance: &crate::job::Instance) -> Vec<WorkRequirement> {
        instance
            .jobs
            .iter()
            .map(|j| WorkRequirement::new(j.id, j.window(), j.work))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{Instance, Job};

    fn slice(job: JobId, machine: usize, start: f64, end: f64, speed: f64) -> Slice {
        Slice { job, machine, start, end, speed }
    }

    #[test]
    fn valid_single_machine_schedule() {
        let inst = Instance::new(vec![Job::new(0, 0.0, 2.0, 2.0), Job::new(1, 0.0, 2.0, 2.0)]);
        let mut sched = Schedule::empty(1);
        sched.push(slice(0, 0, 0.0, 1.0, 2.0));
        sched.push(slice(1, 0, 1.0, 2.0, 2.0));
        let reqs = Schedule::requirements_of(&inst);
        assert!(sched.check(&reqs).is_ok());
        assert!((sched.energy(3.0) - 2.0 * 8.0).abs() < 1e-9);
        assert_eq!(sched.max_speed(), 2.0);
        assert!((sched.work_of(0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn detects_machine_overlap() {
        let inst = Instance::new(vec![Job::new(0, 0.0, 2.0, 1.0), Job::new(1, 0.0, 2.0, 1.0)]);
        let mut sched = Schedule::empty(1);
        sched.push(slice(0, 0, 0.0, 1.0, 1.0));
        sched.push(slice(1, 0, 0.5, 1.5, 1.0));
        let err = sched.check(&Schedule::requirements_of(&inst)).unwrap_err();
        assert!(matches!(err, ScheduleError::MachineOverlap(_, _)));
    }

    #[test]
    fn detects_window_violation() {
        let inst = Instance::new(vec![Job::new(0, 1.0, 2.0, 1.0)]);
        let mut sched = Schedule::empty(1);
        sched.push(slice(0, 0, 0.5, 1.5, 1.0));
        let err = sched.check(&Schedule::requirements_of(&inst)).unwrap_err();
        assert!(matches!(err, ScheduleError::OutsideWindow(0, _)));
    }

    #[test]
    fn detects_missing_work() {
        let inst = Instance::new(vec![Job::new(0, 0.0, 2.0, 3.0)]);
        let mut sched = Schedule::empty(1);
        sched.push(slice(0, 0, 0.0, 1.0, 1.0));
        let err = sched.check(&Schedule::requirements_of(&inst)).unwrap_err();
        assert!(matches!(err, ScheduleError::WrongWork(0, _, _)));
    }

    #[test]
    fn detects_job_parallelism_across_machines() {
        let inst = Instance::new(vec![Job::new(0, 0.0, 2.0, 4.0)]);
        let mut sched = Schedule::empty(2);
        sched.push(slice(0, 0, 0.0, 2.0, 1.0));
        sched.push(slice(0, 1, 0.0, 2.0, 1.0));
        let err = sched.check(&Schedule::requirements_of(&inst)).unwrap_err();
        assert!(matches!(err, ScheduleError::JobParallelism(_, _)));
    }

    #[test]
    fn migration_without_parallelism_is_fine() {
        let inst = Instance::new(vec![Job::new(0, 0.0, 2.0, 2.0)]);
        let mut sched = Schedule::empty(2);
        sched.push(slice(0, 0, 0.0, 1.0, 1.0));
        sched.push(slice(0, 1, 1.0, 2.0, 1.0));
        assert!(sched.check(&Schedule::requirements_of(&inst)).is_ok());
    }

    #[test]
    fn bad_machine_index() {
        let inst = Instance::new(vec![Job::new(0, 0.0, 1.0, 1.0)]);
        let mut sched = Schedule::empty(1);
        sched.push(slice(0, 3, 0.0, 1.0, 1.0));
        let err = sched.check(&Schedule::requirements_of(&inst)).unwrap_err();
        assert!(matches!(err, ScheduleError::BadMachine(_)));
    }

    #[test]
    fn split_requirements_per_window() {
        // One job id with two requirement windows (query then work), as
        // the QBSS algorithms produce.
        let reqs = vec![
            WorkRequirement::new(7, Interval::new(0.0, 1.0), 1.0),
            WorkRequirement::new(7, Interval::new(1.0, 2.0), 3.0),
        ];
        let mut sched = Schedule::empty(1);
        sched.push(slice(7, 0, 0.0, 1.0, 1.0));
        sched.push(slice(7, 0, 1.0, 2.0, 3.0));
        assert!(sched.check(&reqs).is_ok());
        // Move work into the wrong half: per-window conservation fails.
        let mut bad = Schedule::empty(1);
        bad.push(slice(7, 0, 0.0, 1.0, 4.0));
        assert!(bad.check(&reqs).is_err());
    }

    #[test]
    fn machine_profile_reconstruction() {
        let mut sched = Schedule::empty(2);
        sched.push(slice(0, 0, 0.0, 1.0, 2.0));
        sched.push(slice(1, 0, 1.0, 2.0, 3.0));
        sched.push(slice(2, 1, 0.0, 2.0, 1.0));
        let p0 = sched.machine_profile(0);
        assert_eq!(p0.speed_at(0.5), 2.0);
        assert_eq!(p0.speed_at(1.5), 3.0);
        let p1 = sched.machine_profile(1);
        assert_eq!(p1.speed_at(1.0), 1.0);
        assert_eq!(sched.machine_profile(5).max_speed(), 0.0);
    }

    #[test]
    fn empty_slices_dropped() {
        let mut sched = Schedule::empty(1);
        sched.push(slice(0, 0, 1.0, 1.0, 5.0));
        sched.push(slice(0, 0, 1.0, 2.0, 0.0));
        assert!(sched.slices.is_empty());
    }
}
