//! ASCII and SVG rendering of schedules and speed profiles.
//!
//! Small, dependency-free visual output for the CLI and the examples: a
//! per-machine Gantt chart (which job runs when), a speed sparkline
//! (how fast the machine runs), and a self-contained HTML timeline
//! overlaying several speed profiles as step lines with shaded time
//! bands. Pure functions over the data model, so the renders are
//! unit-testable.

use crate::profile::SpeedProfile;
use crate::schedule::Schedule;
use crate::time::dedup_times;

/// Glyphs used to label jobs in the Gantt chart, cycling if there are
/// more jobs than glyphs.
const GLYPHS: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";

/// Renders a per-machine Gantt chart of `schedule` over `[t0, t1]`,
/// `cols` characters wide. Each cell shows the job occupying the
/// majority of that cell's time span on that machine (`.` = idle).
///
/// ```
/// use speed_scaling::job::{Instance, Job};
/// use speed_scaling::render::gantt;
///
/// let inst = Instance::new(vec![Job::new(0, 0.0, 2.0, 2.0)]);
/// let yds = speed_scaling::yds::yds(&inst);
/// let chart = gantt(&yds.schedule, 0.0, 2.0, 20);
/// assert!(chart.contains('0'));
/// ```
pub fn gantt(schedule: &Schedule, t0: f64, t1: f64, cols: usize) -> String {
    assert!(t1 > t0 && cols >= 1);
    let dt = (t1 - t0) / cols as f64;
    let mut out = String::new();
    for machine in 0..schedule.machines.max(1) {
        out.push_str(&format!("m{machine:<2} |"));
        for c in 0..cols {
            let (a, b) = (t0 + c as f64 * dt, t0 + (c + 1) as f64 * dt);
            // Majority job in this cell on this machine.
            let mut best: Option<(u32, f64)> = None;
            for s in schedule.slices.iter().filter(|s| s.machine == machine) {
                let overlap = (s.end.min(b) - s.start.max(a)).max(0.0);
                if overlap > 0.0 {
                    match &mut best {
                        Some((job, acc)) if *job == s.job => *acc += overlap,
                        Some((_, acc)) if overlap > *acc => best = Some((s.job, overlap)),
                        None => best = Some((s.job, overlap)),
                        _ => {}
                    }
                }
            }
            match best {
                Some((job, acc)) if acc >= 0.5 * dt => {
                    out.push(GLYPHS[job as usize % GLYPHS.len()] as char)
                }
                Some(_) => out.push('·'),
                None => out.push('.'),
            }
        }
        out.push_str("|\n");
    }
    out.push_str(&format!("    t = {t0:.2} … {t1:.2}\n"));
    out
}

/// Renders a speed profile as a sparkline of `cols` cells using eight
/// vertical levels, normalized to the profile's maximum speed.
pub fn sparkline(profile: &SpeedProfile, cols: usize) -> String {
    const LEVELS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    assert!(cols >= 1);
    let (t0, t1) = (profile.start(), profile.end());
    let max = profile.max_speed();
    if max <= 0.0 || t1 <= t0 {
        return " ".repeat(cols);
    }
    let dt = (t1 - t0) / cols as f64;
    (0..cols)
        .map(|c| {
            let t = t0 + (c as f64 + 0.5) * dt;
            let frac = profile.speed_at(t) / max;
            LEVELS[((frac * 8.0).round() as usize).min(8)]
        })
        .collect()
}

/// A combined report: sparkline of every machine plus the Gantt chart,
/// over the schedule's natural time span.
pub fn schedule_report(schedule: &Schedule) -> String {
    let times: Vec<f64> = schedule
        .slices
        .iter()
        .flat_map(|s| [s.start, s.end])
        .collect();
    let times = dedup_times(times);
    if times.len() < 2 {
        return "(empty schedule)\n".to_string();
    }
    let (t0, t1) = (times[0], *times.last().expect("non-empty"));
    let mut out = String::new();
    for machine in 0..schedule.machines {
        let p = schedule.machine_profile(machine);
        out.push_str(&format!(
            "m{machine:<2} speed [{}] peak {:.3}\n",
            sparkline(&p, 60),
            p.max_speed()
        ));
    }
    out.push_str(&gantt(schedule, t0, t1, 60));
    out
}

/// A shaded time band on the [`timeline_html`] canvas — a query window,
/// a job's active interval, or any other annotated span.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineBand {
    /// Label drawn inside the band (escaped).
    pub label: String,
    /// Band start time.
    pub start: f64,
    /// Band end time.
    pub end: f64,
    /// Highlighted bands get a saturated fill and a border — used for
    /// the blame job in `qbss explain`.
    pub highlight: bool,
}

/// Escapes `&`, `<`, `>`, `"` and `'` for embedding in HTML/SVG text.
fn html_esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            _ => out.push(c),
        }
    }
    out
}

/// Fixed line palette for timeline series, cycling past the end.
const SERIES_COLORS: [&str; 4] = ["#1f77b4", "#d62728", "#2ca02c", "#9467bd"];

/// Renders overlaid speed profiles as a self-contained HTML document:
/// one step polyline per `(label, profile)` series, shaded rectangles
/// for `bands` (highlighted bands drawn saturated, with a border), a
/// legend and a time axis. No scripts, no external references — the
/// file opens offline and survives strict CSPs.
pub fn timeline_html(
    title: &str,
    series: &[(&str, &SpeedProfile)],
    bands: &[TimelineBand],
) -> String {
    const W: f64 = 960.0;
    const H: f64 = 340.0;
    const ML: f64 = 56.0; // left margin (y labels)
    const MR: f64 = 16.0;
    const MT: f64 = 12.0;
    const MB: f64 = 36.0; // bottom margin (t labels)

    let mut t0 = f64::INFINITY;
    let mut t1 = f64::NEG_INFINITY;
    let mut vmax: f64 = 0.0;
    for (_, p) in series {
        t0 = t0.min(p.start());
        t1 = t1.max(p.end());
        vmax = vmax.max(p.max_speed());
    }
    for b in bands {
        t0 = t0.min(b.start);
        t1 = t1.max(b.end);
    }
    if !(t1 - t0).is_finite() || t1 <= t0 {
        t0 = 0.0;
        t1 = 1.0;
    }
    if vmax <= 0.0 {
        vmax = 1.0;
    }
    let x = |t: f64| ML + (t - t0) / (t1 - t0) * (W - ML - MR);
    let y = |v: f64| H - MB - (v / vmax) * (H - MT - MB);

    let mut svg = String::with_capacity(4096);
    svg.push_str(&format!(
        "<svg viewBox=\"0 0 {W} {H}\" width=\"{W}\" height=\"{H}\" \
         xmlns=\"http://www.w3.org/2000/svg\" role=\"img\">\n"
    ));
    // Plot frame.
    svg.push_str(&format!(
        "<rect x=\"{ML}\" y=\"{MT}\" width=\"{}\" height=\"{}\" class=\"frame\"/>\n",
        W - ML - MR,
        H - MT - MB
    ));
    // Bands under the lines.
    for b in bands {
        let (xa, xb) = (x(b.start.max(t0)), x(b.end.min(t1)));
        if xb <= xa {
            continue;
        }
        let class = if b.highlight { "band hot" } else { "band" };
        svg.push_str(&format!(
            "<rect x=\"{xa:.2}\" y=\"{MT}\" width=\"{:.2}\" height=\"{:.2}\" class=\"{class}\"/>\n",
            xb - xa,
            H - MT - MB
        ));
        svg.push_str(&format!(
            "<text x=\"{:.2}\" y=\"{:.2}\" class=\"bandlabel\">{}</text>\n",
            xa + 3.0,
            MT + 14.0,
            html_esc(&b.label)
        ));
    }
    // Step polylines.
    for (i, (_, p)) in series.iter().enumerate() {
        let color = SERIES_COLORS[i % SERIES_COLORS.len()];
        let mut d = String::new();
        for (k, (iv, v)) in p.segments().enumerate() {
            let (xa, xb, yy) = (x(iv.start), x(iv.end), y(v));
            if k == 0 {
                d.push_str(&format!("M {xa:.2} {:.2} L {xa:.2} {yy:.2} ", y(0.0)));
            }
            d.push_str(&format!("L {xa:.2} {yy:.2} L {xb:.2} {yy:.2} "));
        }
        if let Some((iv, _)) = p.segments().last() {
            d.push_str(&format!("L {:.2} {:.2}", x(iv.end), y(0.0)));
        }
        svg.push_str(&format!("<path d=\"{}\" class=\"line\" stroke=\"{color}\"/>\n", d.trim_end()));
    }
    // Axes: y max label, t range labels.
    svg.push_str(&format!(
        "<text x=\"{:.2}\" y=\"{:.2}\" class=\"axis\" text-anchor=\"end\">{vmax:.3}</text>\n",
        ML - 6.0,
        y(vmax) + 4.0
    ));
    svg.push_str(&format!(
        "<text x=\"{:.2}\" y=\"{:.2}\" class=\"axis\" text-anchor=\"end\">0</text>\n",
        ML - 6.0,
        y(0.0) + 4.0
    ));
    svg.push_str(&format!(
        "<text x=\"{ML}\" y=\"{:.2}\" class=\"axis\">t = {t0:.3}</text>\n",
        H - MB + 18.0
    ));
    svg.push_str(&format!(
        "<text x=\"{:.2}\" y=\"{:.2}\" class=\"axis\" text-anchor=\"end\">t = {t1:.3}</text>\n",
        W - MR,
        H - MB + 18.0
    ));
    svg.push_str("</svg>\n");

    let mut legend = String::new();
    for (i, (label, p)) in series.iter().enumerate() {
        let color = SERIES_COLORS[i % SERIES_COLORS.len()];
        legend.push_str(&format!(
            "<span class=\"key\"><span class=\"swatch\" style=\"background:{color}\"></span>\
             {} (peak {:.3})</span>\n",
            html_esc(label),
            p.max_speed()
        ));
    }

    format!(
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
         <title>{title}</title>\n<style>\n\
         body {{ font: 13px/1.4 monospace; margin: 16px; color: #222; }}\n\
         h1 {{ font-size: 15px; margin: 0 0 8px 0; }}\n\
         .frame {{ fill: #fafafa; stroke: #999; }}\n\
         .band {{ fill: #f2d99a; fill-opacity: 0.35; }}\n\
         .band.hot {{ fill: #e4572e; fill-opacity: 0.35; stroke: #e4572e; }}\n\
         .bandlabel {{ font: 11px monospace; fill: #555; }}\n\
         .line {{ fill: none; stroke-width: 1.8; }}\n\
         .axis {{ font: 11px monospace; fill: #555; }}\n\
         .key {{ margin-right: 16px; }}\n\
         .swatch {{ display: inline-block; width: 10px; height: 10px; margin-right: 4px; }}\n\
         </style>\n</head>\n<body>\n<h1>{title}</h1>\n<p>{legend}</p>\n{svg}</body>\n</html>\n",
        title = html_esc(title),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{Instance, Job};
    use crate::schedule::Slice;

    fn sched() -> Schedule {
        let mut s = Schedule::empty(2);
        s.push(Slice { job: 0, machine: 0, start: 0.0, end: 1.0, speed: 2.0 });
        s.push(Slice { job: 1, machine: 0, start: 1.0, end: 2.0, speed: 1.0 });
        s.push(Slice { job: 2, machine: 1, start: 0.5, end: 1.5, speed: 3.0 });
        s
    }

    #[test]
    fn gantt_shows_jobs_and_idle() {
        let g = gantt(&sched(), 0.0, 2.0, 20);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3); // two machines + time axis
        assert!(lines[0].contains('0') && lines[0].contains('1'));
        assert!(lines[1].contains('2'));
        assert!(
            lines[1].starts_with("m1") && lines[1].contains("|."),
            "machine 1 idles at the start: {}",
            lines[1]
        );
    }

    #[test]
    fn gantt_cycles_glyphs() {
        let mut s = Schedule::empty(1);
        s.push(Slice { job: 62, machine: 0, start: 0.0, end: 1.0, speed: 1.0 }); // wraps to '0'
        let g = gantt(&s, 0.0, 1.0, 4);
        assert!(g.lines().next().unwrap().contains('0'));
    }

    #[test]
    fn sparkline_levels() {
        // Speed 1 then 2: second half must use taller glyphs.
        let p = SpeedProfile::new(vec![0.0, 1.0, 2.0], vec![1.0, 2.0]);
        let s = sparkline(&p, 10);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars.len(), 10);
        assert!(chars[9] as u32 > chars[0] as u32);
        assert_eq!(chars[9], '█');
    }

    #[test]
    fn sparkline_zero_profile() {
        let s = sparkline(&SpeedProfile::zero(), 5);
        assert_eq!(s, "     ");
    }

    #[test]
    fn report_runs_on_real_schedule() {
        let inst = Instance::new(vec![
            Job::new(0, 0.0, 2.0, 2.0),
            Job::new(1, 1.0, 3.0, 2.0),
        ]);
        let yds = crate::yds::yds(&inst);
        let report = schedule_report(&yds.schedule);
        assert!(report.contains("peak"));
        assert!(report.lines().count() >= 3);
    }

    #[test]
    fn report_empty_schedule() {
        assert_eq!(schedule_report(&Schedule::empty(2)), "(empty schedule)\n");
    }

    #[test]
    fn timeline_is_self_contained_and_escaped() {
        let alg = SpeedProfile::new(vec![0.0, 1.0, 2.0], vec![1.0, 2.0]);
        let opt = SpeedProfile::new(vec![0.0, 2.0], vec![1.5]);
        let bands = vec![
            TimelineBand { label: "job <3> & co".into(), start: 0.2, end: 0.8, highlight: false },
            TimelineBand { label: "blame".into(), start: 1.0, end: 1.5, highlight: true },
        ];
        let html = timeline_html("run \"x\" <demo>", &[("ALG", &alg), ("OPT", &opt)], &bands);
        // Self-contained, no-scripts discipline.
        assert!(html.starts_with("<!DOCTYPE html>"));
        for banned in ["<script", "http-equiv", "src=", "href="] {
            assert!(!html.contains(banned), "must not contain {banned}: {html}");
        }
        // Every user string is escaped.
        assert!(html.contains("run &quot;x&quot; &lt;demo&gt;"));
        assert!(html.contains("job &lt;3&gt; &amp; co"));
        // Two step lines, one plain band, one highlighted band.
        assert_eq!(html.matches("class=\"line\"").count(), 2);
        assert_eq!(html.matches("class=\"band\"").count(), 1);
        assert_eq!(html.matches("class=\"band hot\"").count(), 1);
        // Legend carries both labels and peaks.
        assert!(html.contains("ALG (peak 2.000)") && html.contains("OPT (peak 1.500)"));
    }

    #[test]
    fn timeline_step_geometry_spans_the_time_range() {
        // A profile with a step at t=1 must produce a path that visits
        // two distinct y levels; the axis labels carry the full range.
        let p = SpeedProfile::new(vec![0.0, 1.0, 3.0], vec![2.0, 1.0]);
        let html = timeline_html("t", &[("p", &p)], &[]);
        assert!(html.contains("t = 0.000") && html.contains("t = 3.000"));
        assert!(html.contains(">2.000</text>"), "y-max label: {html}");
        // Degenerate inputs still render (no NaN coordinates).
        let empty = timeline_html("empty", &[], &[]);
        assert!(!empty.contains("NaN") && empty.contains("</svg>"));
    }
}
