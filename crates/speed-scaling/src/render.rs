//! ASCII rendering of schedules and speed profiles.
//!
//! Small, dependency-free visual output for the CLI and the examples: a
//! per-machine Gantt chart (which job runs when) and a speed sparkline
//! (how fast the machine runs). Pure functions over the data model, so
//! the renders are unit-testable.

use crate::profile::SpeedProfile;
use crate::schedule::Schedule;
use crate::time::dedup_times;

/// Glyphs used to label jobs in the Gantt chart, cycling if there are
/// more jobs than glyphs.
const GLYPHS: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";

/// Renders a per-machine Gantt chart of `schedule` over `[t0, t1]`,
/// `cols` characters wide. Each cell shows the job occupying the
/// majority of that cell's time span on that machine (`.` = idle).
///
/// ```
/// use speed_scaling::job::{Instance, Job};
/// use speed_scaling::render::gantt;
///
/// let inst = Instance::new(vec![Job::new(0, 0.0, 2.0, 2.0)]);
/// let yds = speed_scaling::yds::yds(&inst);
/// let chart = gantt(&yds.schedule, 0.0, 2.0, 20);
/// assert!(chart.contains('0'));
/// ```
pub fn gantt(schedule: &Schedule, t0: f64, t1: f64, cols: usize) -> String {
    assert!(t1 > t0 && cols >= 1);
    let dt = (t1 - t0) / cols as f64;
    let mut out = String::new();
    for machine in 0..schedule.machines.max(1) {
        out.push_str(&format!("m{machine:<2} |"));
        for c in 0..cols {
            let (a, b) = (t0 + c as f64 * dt, t0 + (c + 1) as f64 * dt);
            // Majority job in this cell on this machine.
            let mut best: Option<(u32, f64)> = None;
            for s in schedule.slices.iter().filter(|s| s.machine == machine) {
                let overlap = (s.end.min(b) - s.start.max(a)).max(0.0);
                if overlap > 0.0 {
                    match &mut best {
                        Some((job, acc)) if *job == s.job => *acc += overlap,
                        Some((_, acc)) if overlap > *acc => best = Some((s.job, overlap)),
                        None => best = Some((s.job, overlap)),
                        _ => {}
                    }
                }
            }
            match best {
                Some((job, acc)) if acc >= 0.5 * dt => {
                    out.push(GLYPHS[job as usize % GLYPHS.len()] as char)
                }
                Some(_) => out.push('·'),
                None => out.push('.'),
            }
        }
        out.push_str("|\n");
    }
    out.push_str(&format!("    t = {t0:.2} … {t1:.2}\n"));
    out
}

/// Renders a speed profile as a sparkline of `cols` cells using eight
/// vertical levels, normalized to the profile's maximum speed.
pub fn sparkline(profile: &SpeedProfile, cols: usize) -> String {
    const LEVELS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    assert!(cols >= 1);
    let (t0, t1) = (profile.start(), profile.end());
    let max = profile.max_speed();
    if max <= 0.0 || t1 <= t0 {
        return " ".repeat(cols);
    }
    let dt = (t1 - t0) / cols as f64;
    (0..cols)
        .map(|c| {
            let t = t0 + (c as f64 + 0.5) * dt;
            let frac = profile.speed_at(t) / max;
            LEVELS[((frac * 8.0).round() as usize).min(8)]
        })
        .collect()
}

/// A combined report: sparkline of every machine plus the Gantt chart,
/// over the schedule's natural time span.
pub fn schedule_report(schedule: &Schedule) -> String {
    let times: Vec<f64> = schedule
        .slices
        .iter()
        .flat_map(|s| [s.start, s.end])
        .collect();
    let times = dedup_times(times);
    if times.len() < 2 {
        return "(empty schedule)\n".to_string();
    }
    let (t0, t1) = (times[0], *times.last().expect("non-empty"));
    let mut out = String::new();
    for machine in 0..schedule.machines {
        let p = schedule.machine_profile(machine);
        out.push_str(&format!(
            "m{machine:<2} speed [{}] peak {:.3}\n",
            sparkline(&p, 60),
            p.max_speed()
        ));
    }
    out.push_str(&gantt(schedule, t0, t1, 60));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{Instance, Job};
    use crate::schedule::Slice;

    fn sched() -> Schedule {
        let mut s = Schedule::empty(2);
        s.push(Slice { job: 0, machine: 0, start: 0.0, end: 1.0, speed: 2.0 });
        s.push(Slice { job: 1, machine: 0, start: 1.0, end: 2.0, speed: 1.0 });
        s.push(Slice { job: 2, machine: 1, start: 0.5, end: 1.5, speed: 3.0 });
        s
    }

    #[test]
    fn gantt_shows_jobs_and_idle() {
        let g = gantt(&sched(), 0.0, 2.0, 20);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3); // two machines + time axis
        assert!(lines[0].contains('0') && lines[0].contains('1'));
        assert!(lines[1].contains('2'));
        assert!(
            lines[1].starts_with("m1") && lines[1].contains("|."),
            "machine 1 idles at the start: {}",
            lines[1]
        );
    }

    #[test]
    fn gantt_cycles_glyphs() {
        let mut s = Schedule::empty(1);
        s.push(Slice { job: 62, machine: 0, start: 0.0, end: 1.0, speed: 1.0 }); // wraps to '0'
        let g = gantt(&s, 0.0, 1.0, 4);
        assert!(g.lines().next().unwrap().contains('0'));
    }

    #[test]
    fn sparkline_levels() {
        // Speed 1 then 2: second half must use taller glyphs.
        let p = SpeedProfile::new(vec![0.0, 1.0, 2.0], vec![1.0, 2.0]);
        let s = sparkline(&p, 10);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars.len(), 10);
        assert!(chars[9] as u32 > chars[0] as u32);
        assert_eq!(chars[9], '█');
    }

    #[test]
    fn sparkline_zero_profile() {
        let s = sparkline(&SpeedProfile::zero(), 5);
        assert_eq!(s, "     ");
    }

    #[test]
    fn report_runs_on_real_schedule() {
        let inst = Instance::new(vec![
            Job::new(0, 0.0, 2.0, 2.0),
            Job::new(1, 1.0, 3.0, 2.0),
        ]);
        let yds = crate::yds::yds(&inst);
        let report = schedule_report(&yds.schedule);
        assert!(report.contains("peak"));
        assert!(report.lines().count() >= 3);
    }

    #[test]
    fn report_empty_schedule() {
        assert_eq!(schedule_report(&Schedule::empty(2)), "(empty schedule)\n");
    }
}
