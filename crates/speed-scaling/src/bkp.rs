//! The BKP online algorithm (Bansal, Kimbrel, Pruhs 2007).
//!
//! At any time `t` BKP runs at speed
//! `s^{BKP}(t) = e · max_{t1 < t ≤ t2} w(t, t1, t2) / (t2 − t1)`,
//! where `w(t, t1, t2)` is the total work of jobs that have **arrived by
//! `t`**, have release `≥ t1` and deadline `≤ t2`; it executes the
//! released unfinished job with the earliest deadline. BKP is
//! `2(α/(α−1))^α e^α`-competitive for energy and `e`-competitive for
//! maximum speed (best possible for deterministic online algorithms).
//!
//! The inner maximum over real `(t1, t2)` is attained with `t1` at a
//! release time and `t2` at a deadline of an arrived job: shrinking the
//! window to the tightest one containing the same job set can only
//! increase the ratio. Between two consecutive event times the arrived
//! set — and hence the maximum — is constant, so the profile is exact on
//! the event grid.

use crate::edf::{edf_schedule, EdfTask};
use crate::job::Instance;
use crate::profile::SpeedProfile;
use crate::schedule::Schedule;
use crate::stream::{intensity_over, release_ordered, BkpStream};
use crate::time::EPS;

/// Output of [`bkp`].
#[derive(Debug, Clone)]
pub struct BkpResult {
    /// The BKP speed profile.
    pub profile: SpeedProfile,
    /// Explicit EDF schedule under that profile.
    pub schedule: Schedule,
}

impl BkpResult {
    /// Energy consumed by BKP at exponent `alpha`.
    pub fn energy(&self, alpha: f64) -> f64 {
        self.profile.energy(alpha)
    }

    /// Maximum speed used by BKP.
    pub fn max_speed(&self) -> f64 {
        self.profile.max_speed()
    }
}

/// The *intensity seen at time `t`*:
/// `max_{t1 < t ≤ t2} w(t, t1, t2)/(t2 − t1)` — BKP's speed is `e` times
/// this. Exposed separately because the QBSS analysis (Theorem 5.4)
/// reasons about this quantity directly.
pub fn bkp_intensity_at(instance: &Instance, t: f64) -> f64 {
    // Candidate t1: release times (strictly below t); candidate t2:
    // deadlines (at or above t). Only jobs arrived by t count; the sweep
    // itself lives in `stream::intensity_over` (O(k²) per query).
    let arrived: Vec<crate::job::Job> =
        instance.jobs.iter().copied().filter(|j| j.release <= t + EPS).collect();
    intensity_over(&arrived, t)
}

/// The BKP speed profile of `instance` (`e` times the running intensity).
pub fn bkp_profile(instance: &Instance) -> SpeedProfile {
    if instance.is_empty() {
        return SpeedProfile::zero();
    }
    qbss_telemetry::counter!("bkp.solves").inc();
    let _span = qbss_telemetry::span!("bkp.solve", { jobs = instance.jobs.len() });
    let mut stream = BkpStream::new();
    for job in release_ordered(instance) {
        stream.on_arrival(job);
    }
    stream.finish()
}

/// Runs BKP: profile plus explicit EDF schedule.
pub fn bkp(instance: &Instance) -> BkpResult {
    let profile = bkp_profile(instance);
    let schedule = edf_schedule(&EdfTask::from_instance(instance), &profile, 0)
        .expect("BKP profile is feasible (it dominates the critical intensity)");
    BkpResult { profile, schedule }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use crate::yds::yds_profile;
    use std::f64::consts::E;

    #[test]
    fn single_job_intensity() {
        let i = Instance::new(vec![Job::new(0, 0.0, 2.0, 4.0)]);
        // Inside the window the tightest interval is (0, 2] → density 2.
        assert!((bkp_intensity_at(&i, 1.0) - 2.0).abs() < 1e-9);
        let p = bkp_profile(&i);
        assert!((p.speed_at(1.0) - E * 2.0).abs() < 1e-9);
    }

    #[test]
    fn intensity_ignores_future_jobs() {
        let i = Instance::new(vec![
            Job::new(0, 0.0, 4.0, 4.0),
            Job::new(1, 2.0, 3.0, 10.0),
        ]);
        // Before the heavy job arrives, only job 0's intensity counts.
        assert!((bkp_intensity_at(&i, 1.0) - 1.0).abs() < 1e-9);
        // After its arrival the tight window (2,3] dominates.
        assert!(bkp_intensity_at(&i, 2.5) >= 10.0 - 1e-9);
    }

    #[test]
    fn bkp_schedule_valid() {
        let i = Instance::new(vec![
            Job::new(0, 0.0, 3.0, 3.0),
            Job::new(1, 1.0, 2.0, 1.0),
            Job::new(2, 1.5, 5.0, 2.0),
        ]);
        let r = bkp(&i);
        assert!(r.schedule.check(&Schedule::requirements_of(&i)).is_ok());
    }

    #[test]
    fn bkp_dominates_intensity_hence_feasible() {
        // The profile must always be at least the critical intensity of
        // the full instance once everything has arrived.
        let i = Instance::new(vec![
            Job::new(0, 0.0, 1.0, 2.0),
            Job::new(1, 0.0, 2.0, 1.0),
        ]);
        let p = bkp_profile(&i);
        assert!(p.speed_at(0.5) >= 3.0 - 1e-9); // e·max(2, 3/2) ≥ 3
    }

    #[test]
    fn bkp_energy_within_bound() {
        let i = Instance::new(vec![
            Job::new(0, 0.0, 4.0, 2.0),
            Job::new(1, 1.0, 2.0, 2.0),
            Job::new(2, 2.5, 5.0, 3.0),
        ]);
        for &alpha in &[2.0, 3.0] {
            let opt = yds_profile(&i).energy(alpha);
            let e = bkp_profile(&i).energy(alpha);
            let bound = 2.0 * (alpha / (alpha - 1.0)).powf(alpha) * E.powf(alpha);
            assert!(e + 1e-9 >= opt);
            assert!(e <= bound * opt * (1.0 + 1e-6), "α={alpha}: {e} vs {} · {opt}", bound);
        }
    }

    #[test]
    fn bkp_max_speed_within_e_of_opt() {
        let i = Instance::new(vec![
            Job::new(0, 0.0, 2.0, 2.0),
            Job::new(1, 0.5, 1.5, 1.0),
        ]);
        let opt_speed = yds_profile(&i).max_speed();
        let s = bkp_profile(&i).max_speed();
        assert!(s <= E * opt_speed * (1.0 + 1e-6));
    }

    #[test]
    fn empty_instance() {
        assert_eq!(bkp_profile(&Instance::default()).max_speed(), 0.0);
    }
}
