//! The Optimal Available (OA) online heuristic of Yao, Demers, Shenker.
//!
//! Whenever a job arrives, OA recomputes the optimal (YDS) schedule for
//! the *remaining* work of all released, unfinished jobs, pretending no
//! further jobs will arrive, and follows it until the next arrival. OA
//! is `α^α`-competitive for energy (Bansal, Kimbrel, Pruhs 2007).
//!
//! OA is the substrate for the OAQ extension (`qbss-core`), the paper's
//! open question (§7).

use crate::edf::{edf_schedule, EdfTask};
use crate::job::Instance;
use crate::profile::SpeedProfile;
use crate::schedule::Schedule;
use crate::stream::{release_ordered, OaStream};
use crate::time::dedup_times;

/// Output of [`oa`].
#[derive(Debug, Clone)]
pub struct OaResult {
    /// The OA speed profile.
    pub profile: SpeedProfile,
    /// Explicit EDF schedule under that profile.
    pub schedule: Schedule,
}

impl OaResult {
    /// Energy consumed by OA at exponent `alpha`.
    pub fn energy(&self, alpha: f64) -> f64 {
        self.profile.energy(alpha)
    }

    /// Maximum speed used by OA.
    pub fn max_speed(&self) -> f64 {
        self.profile.max_speed()
    }
}

/// The OA speed profile of `instance`.
///
/// Between consecutive arrival times the speed follows the common-release
/// YDS plan of the residual work at the last arrival, maintained
/// incrementally by [`OaStream`]; this is the batch adapter that feeds
/// the stream in arrival order and collects the result.
pub fn oa_profile(instance: &Instance) -> SpeedProfile {
    if instance.is_empty() {
        return SpeedProfile::zero();
    }
    let arrivals = dedup_times(instance.jobs.iter().map(|j| j.release).collect());
    qbss_telemetry::counter!("oa.solves").inc();
    let _span = qbss_telemetry::span!("oa.solve", {
        jobs = instance.jobs.len(),
        arrivals = arrivals.len(),
    });
    let mut stream = OaStream::new();
    for job in release_ordered(instance) {
        stream.on_arrival(job);
    }
    stream.finish()
}

/// Runs OA: profile plus explicit EDF schedule.
pub fn oa(instance: &Instance) -> OaResult {
    let profile = oa_profile(instance);
    let schedule = edf_schedule(&EdfTask::from_instance(instance), &profile, 0)
        .expect("OA profile is feasible by construction");
    OaResult { profile, schedule }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use crate::yds::yds_profile;

    #[test]
    fn single_job_equals_yds() {
        let i = Instance::new(vec![Job::new(0, 0.0, 2.0, 4.0)]);
        let p = oa_profile(&i);
        assert!((p.speed_at(1.0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn common_release_equals_yds() {
        // With a single arrival time OA plans once and follows YDS
        // exactly.
        let i = Instance::new(vec![
            Job::new(0, 0.0, 1.0, 3.0),
            Job::new(1, 0.0, 2.0, 1.0),
            Job::new(2, 0.0, 4.0, 1.0),
        ]);
        let oa_p = oa_profile(&i);
        let yds_p = yds_profile(&i);
        for &t in &[0.5, 1.5, 2.5, 3.5] {
            assert!(
                (oa_p.speed_at(t) - yds_p.speed_at(t)).abs() < 1e-6,
                "OA must equal YDS at t={t} for common releases"
            );
        }
    }

    #[test]
    fn oa_schedule_valid_with_staggered_arrivals() {
        let i = Instance::new(vec![
            Job::new(0, 0.0, 4.0, 2.0),
            Job::new(1, 1.0, 3.0, 2.0),
            Job::new(2, 2.0, 5.0, 1.5),
        ]);
        let r = oa(&i);
        assert!(r.schedule.check(&Schedule::requirements_of(&i)).is_ok());
    }

    #[test]
    fn oa_energy_between_opt_and_alpha_alpha_bound() {
        let i = Instance::new(vec![
            Job::new(0, 0.0, 4.0, 2.0),
            Job::new(1, 1.0, 2.0, 2.0),
            Job::new(2, 2.5, 5.0, 3.0),
            Job::new(3, 3.0, 3.5, 1.0),
        ]);
        for &alpha in &[2.0, 3.0] {
            let opt = yds_profile(&i).energy(alpha);
            let e = oa_profile(&i).energy(alpha);
            assert!(e + 1e-9 >= opt, "OA cannot beat OPT");
            assert!(
                e <= alpha.powf(alpha) * opt * (1.0 + 1e-6),
                "OA must respect its α^α bound (α={alpha}): {e} vs opt {opt}"
            );
        }
    }

    #[test]
    fn late_surprise_arrival_raises_speed() {
        // OA plans lazily, then a dense late job forces a spike.
        let i = Instance::new(vec![
            Job::new(0, 0.0, 4.0, 2.0),
            Job::new(1, 3.5, 4.0, 2.0),
        ]);
        let p = oa_profile(&i);
        assert!(p.speed_at(0.5) < p.speed_at(3.75));
        let r = oa(&i);
        assert!(r.schedule.check(&Schedule::requirements_of(&i)).is_ok());
    }

    #[test]
    fn empty_instance() {
        assert_eq!(oa_profile(&Instance::default()).max_speed(), 0.0);
    }
}
