//! The Optimal Available (OA) online heuristic of Yao, Demers, Shenker.
//!
//! Whenever a job arrives, OA recomputes the optimal (YDS) schedule for
//! the *remaining* work of all released, unfinished jobs, pretending no
//! further jobs will arrive, and follows it until the next arrival. OA
//! is `α^α`-competitive for energy (Bansal, Kimbrel, Pruhs 2007).
//!
//! OA is the substrate for the OAQ extension (`qbss-core`), the paper's
//! open question (§7).

use crate::edf::{edf_schedule, EdfTask};
use crate::job::{Instance, Job};
use crate::profile::SpeedProfile;
use crate::schedule::Schedule;
use crate::time::{dedup_times, EPS};
use crate::yds::yds_profile;

/// Output of [`oa`].
#[derive(Debug, Clone)]
pub struct OaResult {
    /// The OA speed profile.
    pub profile: SpeedProfile,
    /// Explicit EDF schedule under that profile.
    pub schedule: Schedule,
}

impl OaResult {
    /// Energy consumed by OA at exponent `alpha`.
    pub fn energy(&self, alpha: f64) -> f64 {
        self.profile.energy(alpha)
    }

    /// Maximum speed used by OA.
    pub fn max_speed(&self) -> f64 {
        self.profile.max_speed()
    }
}

/// The OA speed profile of `instance`.
///
/// Between consecutive arrival times the speed follows the YDS profile of
/// the residual instance computed at the last arrival. Work executed is
/// tracked per job so each recomputation sees the true remaining work.
pub fn oa_profile(instance: &Instance) -> SpeedProfile {
    if instance.is_empty() {
        return SpeedProfile::zero();
    }
    let arrivals = dedup_times(instance.jobs.iter().map(|j| j.release).collect());
    let horizon = instance.max_deadline();
    qbss_telemetry::counter!("oa.solves").inc();
    let _span = qbss_telemetry::span!("oa.solve", {
        jobs = instance.jobs.len(),
        arrivals = arrivals.len(),
    });

    let mut remaining: Vec<f64> = instance.jobs.iter().map(|j| j.work).collect();
    let mut pieces: Vec<(f64, f64, f64)> = Vec::new(); // (start, end, speed)

    for (k, &t0) in arrivals.iter().enumerate() {
        let t1 = arrivals.get(k + 1).copied().unwrap_or(horizon);
        if t1 <= t0 + EPS {
            continue;
        }
        // Residual instance: released jobs with positive remaining work
        // and deadline beyond t0; their windows start "now".
        let residual: Instance = instance
            .jobs
            .iter()
            .enumerate()
            .filter(|(i, j)| {
                j.release <= t0 + EPS && remaining[*i] > EPS && j.deadline > t0 + EPS
            })
            .map(|(i, j)| Job::new(i as u32, t0, j.deadline, remaining[i]))
            .collect();
        if residual.is_empty() {
            continue;
        }
        let plan = yds_profile(&residual);
        // Follow the plan on (t0, t1]; consume work in EDF (earliest
        // residual deadline first) order, exactly like the plan does.
        let mut events: Vec<f64> = plan
            .breakpoints()
            .iter()
            .copied()
            .filter(|&t| t > t0 + EPS && t < t1 - EPS)
            .collect();
        events.push(t0);
        events.push(t1);
        let events = dedup_times(events);
        for wseg in events.windows(2) {
            let (a, b) = (wseg[0], wseg[1]);
            let speed = plan.speed_at(0.5 * (a + b));
            if speed <= EPS {
                continue;
            }
            pieces.push((a, b, speed));
            // Drain work from residual jobs in EDF order.
            let mut budget = (b - a) * speed;
            let mut order: Vec<usize> = instance
                .jobs
                .iter()
                .enumerate()
                .filter(|(i, j)| j.release <= t0 + EPS && remaining[*i] > EPS && j.deadline > a)
                .map(|(i, _)| i)
                .collect();
            order.sort_by(|&x, &y| {
                instance.jobs[x]
                    .deadline
                    .partial_cmp(&instance.jobs[y].deadline)
                    .expect("finite")
            });
            for i in order {
                if budget <= EPS {
                    break;
                }
                let take = budget.min(remaining[i]);
                remaining[i] -= take;
                budget -= take;
            }
        }
    }

    if pieces.is_empty() {
        return SpeedProfile::zero();
    }
    let mut events: Vec<f64> = vec![instance.min_release(), horizon];
    for &(a, b, _) in &pieces {
        events.push(a);
        events.push(b);
    }
    SpeedProfile::from_events(events, |t| {
        pieces
            .iter()
            .find(|&&(a, b, _)| a < t && t <= b)
            .map_or(0.0, |&(_, _, s)| s)
    })
    .simplify()
}

/// Runs OA: profile plus explicit EDF schedule.
pub fn oa(instance: &Instance) -> OaResult {
    let profile = oa_profile(instance);
    let schedule = edf_schedule(&EdfTask::from_instance(instance), &profile, 0)
        .expect("OA profile is feasible by construction");
    OaResult { profile, schedule }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::yds::yds_profile;

    #[test]
    fn single_job_equals_yds() {
        let i = Instance::new(vec![Job::new(0, 0.0, 2.0, 4.0)]);
        let p = oa_profile(&i);
        assert!((p.speed_at(1.0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn common_release_equals_yds() {
        // With a single arrival time OA plans once and follows YDS
        // exactly.
        let i = Instance::new(vec![
            Job::new(0, 0.0, 1.0, 3.0),
            Job::new(1, 0.0, 2.0, 1.0),
            Job::new(2, 0.0, 4.0, 1.0),
        ]);
        let oa_p = oa_profile(&i);
        let yds_p = yds_profile(&i);
        for &t in &[0.5, 1.5, 2.5, 3.5] {
            assert!(
                (oa_p.speed_at(t) - yds_p.speed_at(t)).abs() < 1e-6,
                "OA must equal YDS at t={t} for common releases"
            );
        }
    }

    #[test]
    fn oa_schedule_valid_with_staggered_arrivals() {
        let i = Instance::new(vec![
            Job::new(0, 0.0, 4.0, 2.0),
            Job::new(1, 1.0, 3.0, 2.0),
            Job::new(2, 2.0, 5.0, 1.5),
        ]);
        let r = oa(&i);
        assert!(r.schedule.check(&Schedule::requirements_of(&i)).is_ok());
    }

    #[test]
    fn oa_energy_between_opt_and_alpha_alpha_bound() {
        let i = Instance::new(vec![
            Job::new(0, 0.0, 4.0, 2.0),
            Job::new(1, 1.0, 2.0, 2.0),
            Job::new(2, 2.5, 5.0, 3.0),
            Job::new(3, 3.0, 3.5, 1.0),
        ]);
        for &alpha in &[2.0, 3.0] {
            let opt = yds_profile(&i).energy(alpha);
            let e = oa_profile(&i).energy(alpha);
            assert!(e + 1e-9 >= opt, "OA cannot beat OPT");
            assert!(
                e <= alpha.powf(alpha) * opt * (1.0 + 1e-6),
                "OA must respect its α^α bound (α={alpha}): {e} vs opt {opt}"
            );
        }
    }

    #[test]
    fn late_surprise_arrival_raises_speed() {
        // OA plans lazily, then a dense late job forces a spike.
        let i = Instance::new(vec![
            Job::new(0, 0.0, 4.0, 2.0),
            Job::new(1, 3.5, 4.0, 2.0),
        ]);
        let p = oa_profile(&i);
        assert!(p.speed_at(0.5) < p.speed_at(3.75));
        let r = oa(&i);
        assert!(r.schedule.check(&Schedule::requirements_of(&i)).is_ok());
    }

    #[test]
    fn empty_instance() {
        assert_eq!(oa_profile(&Instance::default()).max_speed(), 0.0);
    }
}
