//! Piecewise-constant speed profiles.
//!
//! Every algorithm in this crate (and every QBSS algorithm built on top)
//! produces machine speeds that are piecewise constant: speeds can only
//! change at event times (releases, deadlines, splitting points). A
//! [`SpeedProfile`] stores the breakpoints and the speed on each open
//! segment, supports exact energy integration `∫ s(t)^α dt`, pointwise
//! evaluation, addition, scaling and comparison — everything the paper's
//! proofs do with speed functions.


use crate::time::{approx_eq, approx_le, dedup_times, Interval, EPS};

/// A piecewise-constant, non-negative speed function with bounded support.
///
/// Invariants (checked by [`SpeedProfile::new`]):
/// * `breakpoints` is strictly increasing and has `values.len() + 1`
///   entries;
/// * all values are finite and non-negative.
///
/// Outside `[breakpoints.first(), breakpoints.last()]` the speed is 0.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedProfile {
    breakpoints: Vec<f64>,
    values: Vec<f64>,
}

impl SpeedProfile {
    /// The identically-zero profile.
    pub fn zero() -> Self {
        Self { breakpoints: vec![0.0, 1.0], values: vec![0.0] }
    }

    /// Builds a profile from breakpoints `t_0 < t_1 < … < t_k` and segment
    /// speeds `v_1 … v_k` (speed `v_i` on `(t_{i-1}, t_i]`).
    ///
    /// Panics on inconsistent input — profiles are always machine-built.
    pub fn new(breakpoints: Vec<f64>, values: Vec<f64>) -> Self {
        assert!(
            breakpoints.len() == values.len() + 1 && !values.is_empty(),
            "profile needs k+1 breakpoints for k segments (got {} / {})",
            breakpoints.len(),
            values.len()
        );
        for w in breakpoints.windows(2) {
            assert!(w[0] < w[1] + EPS && w[1] > w[0], "breakpoints must increase: {w:?}");
        }
        for &v in &values {
            assert!(v.is_finite() && v >= 0.0, "speed must be finite and >= 0, got {v}");
        }
        Self { breakpoints, values }
    }

    /// Builds a profile by sampling `speed_at` on the grid induced by
    /// `events` (the speed is evaluated at each segment midpoint). This is
    /// the workhorse constructor of the event-driven online algorithms:
    /// they know their speed is constant between events and provide the
    /// pointwise rule.
    pub fn from_events(events: Vec<f64>, speed_at: impl Fn(f64) -> f64) -> Self {
        let bps = dedup_times(events);
        assert!(bps.len() >= 2, "need at least two distinct event times");
        let values = bps
            .windows(2)
            .map(|w| {
                let v = speed_at(0.5 * (w[0] + w[1]));
                assert!(v.is_finite() && v >= -EPS, "sampled speed must be >= 0, got {v}");
                v.max(0.0)
            })
            .collect();
        Self { breakpoints: bps, values }
    }

    /// The breakpoint grid.
    pub fn breakpoints(&self) -> &[f64] {
        &self.breakpoints
    }

    /// Segment speeds (speed `i` applies on
    /// `(breakpoints[i], breakpoints[i+1]]`).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterates `(Interval, speed)` over the segments.
    pub fn segments(&self) -> impl Iterator<Item = (Interval, f64)> + '_ {
        self.breakpoints
            .windows(2)
            .zip(&self.values)
            .map(|(w, &v)| (Interval::new(w[0], w[1]), v))
    }

    /// Start of the support grid.
    pub fn start(&self) -> f64 {
        self.breakpoints[0]
    }

    /// End of the support grid.
    pub fn end(&self) -> f64 {
        *self.breakpoints.last().expect("non-empty")
    }

    /// Speed at time `t`. The profile is right-continuous from the left
    /// in the paper's `(a, b]` convention: `speed_at(t)` for `t` exactly
    /// on a breakpoint returns the value of the segment *ending* at `t`.
    /// Outside the support the speed is 0.
    pub fn speed_at(&self, t: f64) -> f64 {
        if t <= self.start() + EPS || t > self.end() + EPS {
            // On `(a, b]` segments, the instant `start` itself carries the
            // first segment's value only for t slightly above it; at or
            // before the grid start the machine is idle.
            if approx_le(t, self.start()) {
                return 0.0;
            }
            return 0.0;
        }
        // Binary search for the segment with breakpoints[i] < t <= breakpoints[i+1].
        let mut lo = 0usize;
        let mut hi = self.values.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.breakpoints[mid + 1] + EPS >= t {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        self.values[lo.min(self.values.len() - 1)]
    }

    /// Total energy `∫ s(t)^α dt`.
    pub fn energy(&self, alpha: f64) -> f64 {
        assert!(alpha > 1.0, "the power exponent must satisfy α > 1, got {alpha}");
        self.segments().map(|(iv, s)| iv.len() * s.powf(alpha)).sum()
    }

    /// Maximum speed `max_t s(t)`.
    pub fn max_speed(&self) -> f64 {
        self.values.iter().copied().fold(0.0, f64::max)
    }

    /// Total work `∫ s(t) dt`.
    pub fn total_work(&self) -> f64 {
        self.segments().map(|(iv, s)| iv.len() * s).sum()
    }

    /// Work executed inside the interval `(a, b]`:
    /// `∫_a^b s(t) dt` (clipped to the support).
    pub fn work_in(&self, window: &Interval) -> f64 {
        self.segments().map(|(iv, s)| iv.overlap_len(window) * s).sum()
    }

    /// Pointwise sum of two profiles (the grid is the union of grids).
    pub fn add(&self, other: &SpeedProfile) -> SpeedProfile {
        let mut events: Vec<f64> = self.breakpoints.clone();
        events.extend_from_slice(&other.breakpoints);
        SpeedProfile::from_events(events, |t| self.speed_at(t) + other.speed_at(t))
    }

    /// Pointwise scaling by `factor >= 0`.
    pub fn scale(&self, factor: f64) -> SpeedProfile {
        assert!(factor.is_finite() && factor >= 0.0);
        SpeedProfile::new(
            self.breakpoints.clone(),
            self.values.iter().map(|v| v * factor).collect(),
        )
    }

    /// Checks the pointwise domination `self(t) <= factor * other(t)`
    /// (up to relative tolerance) on the union grid; returns the first
    /// violating time if any. This is how tests verify the paper's
    /// speed-comparison theorems (Theorem 5.2, Theorem 5.4, Theorem 6.3).
    pub fn dominated_by(&self, other: &SpeedProfile, factor: f64) -> Result<(), f64> {
        let mut events: Vec<f64> = self.breakpoints.clone();
        events.extend_from_slice(&other.breakpoints);
        let events = dedup_times(events);
        for w in events.windows(2) {
            let t = 0.5 * (w[0] + w[1]);
            let mine = self.speed_at(t);
            let theirs = other.speed_at(t);
            if mine > factor * theirs + crate::time::REL_TOL * (1.0 + mine.abs()) {
                return Err(t);
            }
        }
        Ok(())
    }

    /// Removes zero-length segments and merges adjacent segments with
    /// (numerically) equal speed. The result is semantically identical.
    pub fn simplify(&self) -> SpeedProfile {
        let mut bps = vec![self.breakpoints[0]];
        let mut vals: Vec<f64> = Vec::new();
        for (iv, v) in self.segments() {
            if iv.is_empty() {
                continue;
            }
            match vals.last() {
                Some(&last) if approx_eq(last, v) => {
                    *bps.last_mut().expect("non-empty") = iv.end;
                }
                _ => {
                    vals.push(v);
                    bps.push(iv.end);
                }
            }
        }
        if vals.is_empty() {
            return SpeedProfile::zero();
        }
        SpeedProfile { breakpoints: bps, values: vals }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step() -> SpeedProfile {
        // Speed 2 on (0,1], speed 1 on (1,3].
        SpeedProfile::new(vec![0.0, 1.0, 3.0], vec![2.0, 1.0])
    }

    #[test]
    fn energy_and_work() {
        let p = step();
        // E = 1·2^2 + 2·1^2 = 6 for α = 2.
        assert!((p.energy(2.0) - 6.0).abs() < 1e-12);
        // E = 1·8 + 2·1 = 10 for α = 3.
        assert!((p.energy(3.0) - 10.0).abs() < 1e-12);
        assert!((p.total_work() - 4.0).abs() < 1e-12);
        assert_eq!(p.max_speed(), 2.0);
    }

    #[test]
    fn pointwise_evaluation() {
        let p = step();
        assert_eq!(p.speed_at(0.5), 2.0);
        assert_eq!(p.speed_at(1.0), 2.0); // (0,1] convention
        assert_eq!(p.speed_at(1.5), 1.0);
        assert_eq!(p.speed_at(3.0), 1.0);
        assert_eq!(p.speed_at(3.5), 0.0);
        assert_eq!(p.speed_at(0.0), 0.0);
        assert_eq!(p.speed_at(-1.0), 0.0);
    }

    #[test]
    fn work_in_window() {
        let p = step();
        assert!((p.work_in(&Interval::new(0.5, 2.0)) - (0.5 * 2.0 + 1.0)).abs() < 1e-12);
        assert_eq!(p.work_in(&Interval::new(10.0, 11.0)), 0.0);
    }

    #[test]
    fn add_profiles() {
        let p = step();
        let q = SpeedProfile::new(vec![0.5, 2.0], vec![3.0]);
        let sum = p.add(&q);
        assert!((sum.speed_at(0.75) - 5.0).abs() < 1e-12);
        assert!((sum.speed_at(1.5) - 4.0).abs() < 1e-12);
        assert!((sum.speed_at(2.5) - 1.0).abs() < 1e-12);
        assert!((sum.total_work() - (4.0 + 4.5)).abs() < 1e-12);
    }

    #[test]
    fn scale_profile() {
        let p = step().scale(2.0);
        assert_eq!(p.max_speed(), 4.0);
        assert!((p.total_work() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn domination() {
        let p = step();
        assert!(p.dominated_by(&p, 1.0).is_ok());
        assert!(p.dominated_by(&p.scale(0.5), 2.0).is_ok());
        let err = p.dominated_by(&p.scale(0.5), 1.5);
        assert!(err.is_err());
    }

    #[test]
    fn simplify_merges() {
        let p = SpeedProfile::new(vec![0.0, 1.0, 2.0, 3.0], vec![1.0, 1.0, 2.0]);
        let s = p.simplify();
        assert_eq!(s.breakpoints(), &[0.0, 2.0, 3.0]);
        assert_eq!(s.values(), &[1.0, 2.0]);
        assert!((p.energy(3.0) - s.energy(3.0)).abs() < 1e-12);
    }

    #[test]
    fn from_events_dedups() {
        let p = SpeedProfile::from_events(vec![0.0, 1.0, 1.0, 2.0], |t| if t < 1.0 { 1.0 } else { 2.0 });
        assert_eq!(p.breakpoints().len(), 3);
        assert_eq!(p.speed_at(0.5), 1.0);
        assert_eq!(p.speed_at(1.5), 2.0);
    }

    #[test]
    #[should_panic(expected = "α > 1")]
    fn energy_requires_valid_alpha() {
        let _ = step().energy(1.0);
    }
}
