//! Benches for the multi-machine path: AVR(m) on classical instances
//! and AVRQ(m) end-to-end, sweeping the machine count.

use qbss_bench::BenchGroup;
use qbss_core::online::avrq_m;
use qbss_instances::gen::{generate, GenConfig};
use speed_scaling::multi::avr_m;

fn main() {
    let mut g = BenchGroup::new("avr_m");
    let inst = generate(&GenConfig::online_default(100, 5)).clairvoyant_instance();
    for &m in &[2usize, 8, 32] {
        g.case(format!("m={m}"), || avr_m(&inst, m));
    }
    g.finish();

    let mut g = BenchGroup::new("avrq_m");
    let qinst = generate(&GenConfig::online_default(100, 5));
    for &m in &[2usize, 8, 32] {
        g.case(format!("m={m}"), || avrq_m(&qinst, m));
    }
    g.finish();

    // Many small jobs sharing machines — the assignment-dominated
    // regime.
    let mut g = BenchGroup::new("avr_m_small_jobs");
    let small = generate(&GenConfig::common_deadline(500, 4.0, 9)).clairvoyant_instance();
    for &m in &[4usize, 16] {
        g.case(format!("m={m}"), || avr_m(&small, m));
    }
    g.finish();

    // The multi-machine OPT baseline: cost per planning call as the
    // iteration budget grows (n = 40 jobs, m = 4).
    let mut g = BenchGroup::new("frank_wolfe");
    let fw = generate(&GenConfig::online_default(40, 5)).clairvoyant_instance();
    for &iters in &[20usize, 60, 200] {
        g.case(format!("iters={iters}"), || {
            speed_scaling::multi::multi_opt_frank_wolfe(&fw, 4, 3.0, iters)
        });
    }
    g.finish();

    let mut g = BenchGroup::new("oa_m");
    let oa = generate(&GenConfig::online_default(30, 5)).clairvoyant_instance();
    for &m in &[2usize, 8] {
        g.case(format!("m={m}"), || speed_scaling::multi::oa_m(&oa, m, 3.0, 40));
    }
    g.finish();
}
