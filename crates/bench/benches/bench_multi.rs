//! Criterion benches for the multi-machine path: AVR(m) on classical
//! instances and AVRQ(m) end-to-end, sweeping the machine count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qbss_core::online::avrq_m;
use qbss_instances::gen::{generate, GenConfig};
use speed_scaling::multi::avr_m;

fn bench_avr_m(c: &mut Criterion) {
    let mut g = c.benchmark_group("avr_m");
    let inst = generate(&GenConfig::online_default(100, 5)).clairvoyant_instance();
    for &m in &[2usize, 8, 32] {
        g.bench_with_input(BenchmarkId::from_parameter(m), &inst, |b, inst| {
            b.iter(|| avr_m(std::hint::black_box(inst), m))
        });
    }
    g.finish();
}

fn bench_avrq_m(c: &mut Criterion) {
    let mut g = c.benchmark_group("avrq_m");
    let inst = generate(&GenConfig::online_default(100, 5));
    for &m in &[2usize, 8, 32] {
        g.bench_with_input(BenchmarkId::from_parameter(m), &inst, |b, inst| {
            b.iter(|| avrq_m(std::hint::black_box(inst), m))
        });
    }
    g.finish();
}

fn bench_mcnaughton_heavy(c: &mut Criterion) {
    // Many small jobs sharing machines — the assignment-dominated
    // regime.
    let mut g = c.benchmark_group("avr_m_small_jobs");
    let inst = generate(&GenConfig::common_deadline(500, 4.0, 9)).clairvoyant_instance();
    for &m in &[4usize, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(m), &inst, |b, inst| {
            b.iter(|| avr_m(std::hint::black_box(inst), m))
        });
    }
    g.finish();
}

fn bench_frank_wolfe(c: &mut Criterion) {
    // The multi-machine OPT baseline: cost per planning call as the
    // iteration budget grows (n = 40 jobs, m = 4).
    let mut g = c.benchmark_group("frank_wolfe");
    let inst = generate(&GenConfig::online_default(40, 5)).clairvoyant_instance();
    for &iters in &[20usize, 60, 200] {
        g.bench_with_input(BenchmarkId::from_parameter(iters), &inst, |b, inst| {
            b.iter(|| {
                speed_scaling::multi::multi_opt_frank_wolfe(
                    std::hint::black_box(inst),
                    4,
                    3.0,
                    iters,
                )
            })
        });
    }
    g.finish();
}

fn bench_oa_m(c: &mut Criterion) {
    let mut g = c.benchmark_group("oa_m");
    g.sample_size(10);
    let inst = generate(&GenConfig::online_default(30, 5)).clairvoyant_instance();
    for &m in &[2usize, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(m), &inst, |b, inst| {
            b.iter(|| speed_scaling::multi::oa_m(std::hint::black_box(inst), m, 3.0, 40))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_avr_m,
    bench_avrq_m,
    bench_mcnaughton_heavy,
    bench_frank_wolfe,
    bench_oa_m
);
criterion_main!(benches);
