//! Benches for the classical substrate: YDS, AVR, OA, BKP profile
//! computation and EDF realization as the instance size grows.
//!
//! These are the performance-engineering counterpart of the paper
//! experiments: the `exp_*` binaries regenerate the paper's tables; the
//! benches here track that the substrate scales well enough to run
//! thousand-job ensembles (YDS is O(n³) worst case, AVR O(n²),
//! BKP O(n³) — all instantaneous at experiment sizes).

use qbss_bench::BenchGroup;
use qbss_instances::gen::{generate, GenConfig};
use speed_scaling::edf::{edf_schedule, EdfTask};
use speed_scaling::{avr::avr_profile, bkp::bkp_profile, oa::oa_profile, yds::yds_profile};

fn classical_instance(n: usize, seed: u64) -> speed_scaling::Instance {
    // Reuse the QBSS generator and take the clairvoyant projection.
    generate(&GenConfig::online_default(n, seed)).clairvoyant_instance()
}

fn main() {
    let mut g = BenchGroup::new("yds_profile");
    for &n in &[10usize, 50, 100, 200] {
        let inst = classical_instance(n, 7);
        g.case(format!("n={n}"), || yds_profile(&inst));
    }
    g.finish();

    let mut g = BenchGroup::new("avr_profile");
    for &n in &[10usize, 100, 1000] {
        let inst = classical_instance(n, 7);
        g.case(format!("n={n}"), || avr_profile(&inst));
    }
    g.finish();

    let mut g = BenchGroup::new("oa_profile");
    for &n in &[10usize, 50, 100] {
        let inst = classical_instance(n, 7);
        g.case(format!("n={n}"), || oa_profile(&inst));
    }
    g.finish();

    let mut g = BenchGroup::new("bkp_profile");
    for &n in &[10usize, 50, 100] {
        let inst = classical_instance(n, 7);
        g.case(format!("n={n}"), || bkp_profile(&inst));
    }
    g.finish();

    let mut g = BenchGroup::new("edf_schedule");
    for &n in &[100usize, 1000] {
        let inst = classical_instance(n, 7);
        let profile = avr_profile(&inst);
        let tasks = EdfTask::from_instance(&inst);
        g.case(format!("n={n}"), || {
            edf_schedule(&tasks, &profile, 0).expect("feasible")
        });
    }
    g.finish();
}
