//! Criterion benches for the classical substrate: YDS, AVR, OA, BKP
//! profile computation and EDF realization as the instance size grows.
//!
//! These are the performance-engineering counterpart of the paper
//! experiments: the `exp_*` binaries regenerate the paper's tables; the
//! benches here track that the substrate scales well enough to run
//! thousand-job ensembles (YDS is O(n³) worst case, AVR O(n²),
//! BKP O(n³) — all instantaneous at experiment sizes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qbss_instances::gen::{generate, GenConfig};
use speed_scaling::edf::{edf_schedule, EdfTask};
use speed_scaling::{avr::avr_profile, bkp::bkp_profile, oa::oa_profile, yds::yds_profile};

fn classical_instance(n: usize, seed: u64) -> speed_scaling::Instance {
    // Reuse the QBSS generator and take the clairvoyant projection.
    generate(&GenConfig::online_default(n, seed)).clairvoyant_instance()
}

fn bench_yds(c: &mut Criterion) {
    let mut g = c.benchmark_group("yds_profile");
    for &n in &[10usize, 50, 100, 200] {
        let inst = classical_instance(n, 7);
        g.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| yds_profile(std::hint::black_box(inst)))
        });
    }
    g.finish();
}

fn bench_avr(c: &mut Criterion) {
    let mut g = c.benchmark_group("avr_profile");
    for &n in &[10usize, 100, 1000] {
        let inst = classical_instance(n, 7);
        g.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| avr_profile(std::hint::black_box(inst)))
        });
    }
    g.finish();
}

fn bench_oa(c: &mut Criterion) {
    let mut g = c.benchmark_group("oa_profile");
    for &n in &[10usize, 50, 100] {
        let inst = classical_instance(n, 7);
        g.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| oa_profile(std::hint::black_box(inst)))
        });
    }
    g.finish();
}

fn bench_bkp(c: &mut Criterion) {
    let mut g = c.benchmark_group("bkp_profile");
    for &n in &[10usize, 50, 100] {
        let inst = classical_instance(n, 7);
        g.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| bkp_profile(std::hint::black_box(inst)))
        });
    }
    g.finish();
}

fn bench_edf(c: &mut Criterion) {
    let mut g = c.benchmark_group("edf_schedule");
    for &n in &[100usize, 1000] {
        let inst = classical_instance(n, 7);
        let profile = avr_profile(&inst);
        let tasks = EdfTask::from_instance(&inst);
        g.bench_with_input(BenchmarkId::from_parameter(n), &(), |b, _| {
            b.iter(|| {
                edf_schedule(
                    std::hint::black_box(&tasks),
                    std::hint::black_box(&profile),
                    0,
                )
                .expect("feasible")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_yds, bench_avr, bench_oa, bench_bkp, bench_edf);
criterion_main!(benches);
