//! Benches for the QBSS algorithms themselves: the offline family
//! (CRCD / CRP2D / CRAD) and the single-machine online family
//! (AVRQ / BKPQ / OAQ), end-to-end (decisions + profile + explicit
//! schedule).

use qbss_bench::BenchGroup;
use qbss_core::offline::{crad, crcd, crp2d};
use qbss_core::online::{avrq, bkpq, oaq};
use qbss_instances::gen::{generate, GenConfig, TimeModel};

fn main() {
    let mut g = BenchGroup::new("offline");
    for &n in &[20usize, 100] {
        let common = generate(&GenConfig::common_deadline(n, 8.0, 3));
        g.case(format!("crcd/n={n}"), || crcd(&common));

        let p2 = generate(&GenConfig {
            time: TimeModel::PowersOfTwo { min_exp: 0, max_exp: 5 },
            ..GenConfig::common_deadline(n, 1.0, 3)
        });
        g.case(format!("crp2d/n={n}"), || crp2d(&p2));

        let arb = generate(&GenConfig {
            time: TimeModel::ArbitraryDeadlines { min_d: 1.0, max_d: 50.0 },
            ..GenConfig::common_deadline(n, 1.0, 3)
        });
        g.case(format!("crad/n={n}"), || crad(&arb));
    }
    g.finish();

    let mut g = BenchGroup::new("online");
    for &n in &[20usize, 100] {
        let inst = generate(&GenConfig::online_default(n, 3));
        g.case(format!("avrq/n={n}"), || avrq(&inst));
        g.case(format!("bkpq/n={n}"), || bkpq(&inst));
        g.case(format!("oaq/n={n}"), || oaq(&inst));
    }
    g.finish();

    // The baseline every ratio experiment recomputes: YDS on the
    // clairvoyant projection.
    let mut g = BenchGroup::new("clairvoyant_opt");
    for &n in &[20usize, 100] {
        let inst = generate(&GenConfig::online_default(n, 3));
        g.case(format!("n={n}"), || inst.opt_energy(3.0));
    }
    g.finish();
}
