//! Criterion benches for the QBSS algorithms themselves: the offline
//! family (CRCD / CRP2D / CRAD) and the single-machine online family
//! (AVRQ / BKPQ / OAQ), end-to-end (decisions + profile + explicit
//! schedule).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qbss_core::offline::{crad, crcd, crp2d};
use qbss_core::online::{avrq, bkpq, oaq};
use qbss_instances::gen::{generate, GenConfig, TimeModel};

fn bench_offline(c: &mut Criterion) {
    let mut g = c.benchmark_group("offline");
    for &n in &[20usize, 100] {
        let common = generate(&GenConfig::common_deadline(n, 8.0, 3));
        g.bench_with_input(BenchmarkId::new("crcd", n), &common, |b, inst| {
            b.iter(|| crcd(std::hint::black_box(inst)))
        });

        let p2 = generate(&GenConfig {
            time: TimeModel::PowersOfTwo { min_exp: 0, max_exp: 5 },
            ..GenConfig::common_deadline(n, 1.0, 3)
        });
        g.bench_with_input(BenchmarkId::new("crp2d", n), &p2, |b, inst| {
            b.iter(|| crp2d(std::hint::black_box(inst)))
        });

        let arb = generate(&GenConfig {
            time: TimeModel::ArbitraryDeadlines { min_d: 1.0, max_d: 50.0 },
            ..GenConfig::common_deadline(n, 1.0, 3)
        });
        g.bench_with_input(BenchmarkId::new("crad", n), &arb, |b, inst| {
            b.iter(|| crad(std::hint::black_box(inst)))
        });
    }
    g.finish();
}

fn bench_online(c: &mut Criterion) {
    let mut g = c.benchmark_group("online");
    for &n in &[20usize, 100] {
        let inst = generate(&GenConfig::online_default(n, 3));
        g.bench_with_input(BenchmarkId::new("avrq", n), &inst, |b, inst| {
            b.iter(|| avrq(std::hint::black_box(inst)))
        });
        g.bench_with_input(BenchmarkId::new("bkpq", n), &inst, |b, inst| {
            b.iter(|| bkpq(std::hint::black_box(inst)))
        });
        g.bench_with_input(BenchmarkId::new("oaq", n), &inst, |b, inst| {
            b.iter(|| oaq(std::hint::black_box(inst)))
        });
    }
    g.finish();
}

fn bench_clairvoyant_opt(c: &mut Criterion) {
    // The baseline every ratio experiment recomputes: YDS on the
    // clairvoyant projection.
    let mut g = c.benchmark_group("clairvoyant_opt");
    for &n in &[20usize, 100] {
        let inst = generate(&GenConfig::online_default(n, 3));
        g.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| std::hint::black_box(inst).opt_energy(3.0))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_offline, bench_online, bench_clairvoyant_opt);
criterion_main!(benches);
