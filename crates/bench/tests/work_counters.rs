//! The determinism contract of the work-counter observatory: op counts
//! are a pure function of the code under test. Same workload → same
//! counts, whatever the shard layout, log level, or batch/streaming
//! entry point. The CI `complexity-gate` job proves the byte-level
//! version of the same contract across two *cold* processes with
//! `cmp`; these tests pin the in-process invariants the gate's
//! exactness rests on.
//!
//! All tests share the process-global counter registry, so they
//! serialize on one lock and compare snapshot *deltas*, never absolute
//! counts.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, PoisonError};

use qbss_bench::complexity;
use qbss_bench::engine::{run_sweep, InstanceSource, SweepSpec};
use qbss_core::pipeline::Algorithm;
use qbss_core::work::is_work_counter;
use qbss_instances::gen::{generate, GenConfig};
use qbss_telemetry::{Filter, RingSink, SinkTarget};
use speed_scaling::job::{Instance, Job};
use speed_scaling::oa::oa_profile;
use speed_scaling::stream::{release_ordered, OaStream};

/// Serializes the tests in this binary: counter deltas are only
/// meaningful when no other workload moves the global registry.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Runs `f` and returns the positive work-counter deltas it caused.
fn work_delta<F: FnOnce()>(f: F) -> BTreeMap<String, u64> {
    let before = qbss_telemetry::metrics().counter_values();
    f();
    qbss_telemetry::metrics()
        .counter_values()
        .into_iter()
        .filter(|(name, _)| is_work_counter(name))
        .map(|(name, v)| {
            let b = before.get(&name).copied().unwrap_or(0);
            (name, v - b)
        })
        .filter(|&(_, d)| d > 0)
        .collect()
}

/// The classical view of the pinned online family — the same mapping
/// `complexity::record`'s scenarios use.
fn online_instance(n: usize, seed: u64) -> Instance {
    let q = generate(&GenConfig::online_default(n, seed));
    Instance::new(
        q.jobs
            .iter()
            .map(|j| Job::new(j.id, j.release, j.deadline, j.upper_bound))
            .collect(),
    )
}

#[test]
fn complexity_record_is_byte_identical_across_runs() {
    let _guard = lock();
    let names = vec!["avr-stream".to_string(), "oa-stream".to_string()];
    let first = complexity::record(&names).expect("first record");
    let second = complexity::record(&names).expect("second record");
    // Counters are cumulative process globals, but the record brackets
    // every cell with snapshots and stores deltas — so a re-record in
    // the same (now warm) process must still serialize byte-for-byte.
    assert_eq!(first.to_json(), second.to_json(), "records must be byte-identical");
}

#[test]
fn sweep_counter_totals_are_shard_independent() {
    let _guard = lock();
    let spec = || SweepSpec {
        source: InstanceSource::Generated {
            base: GenConfig::online_default(60, 0),
            seeds: 0..4,
        },
        algorithms: vec![Algorithm::Avrq, Algorithm::Oaq],
        alphas: vec![3.0],
        opt_fw_iters: 0,
    };
    let one = work_delta(|| {
        run_sweep(&spec(), 1).expect("sweep shards=1");
    });
    let two = work_delta(|| {
        run_sweep(&spec(), 2).expect("sweep shards=2");
    });
    let four = work_delta(|| {
        run_sweep(&spec(), 4).expect("sweep shards=4");
    });
    assert!(!one.is_empty(), "the sweep must move work counters");
    assert_eq!(one, two, "shards=2 must do identical work");
    assert_eq!(one, four, "shards=4 must do identical work");
}

#[test]
fn log_level_does_not_change_op_counts() {
    let _guard = lock();
    let workload = || {
        let inst = online_instance(250, 0);
        let mut s = OaStream::new();
        for job in release_ordered(&inst) {
            s.on_arrival(job);
        }
        let _ = s.finish();
        run_sweep(
            &SweepSpec {
                source: InstanceSource::Generated {
                    base: GenConfig::online_default(40, 0),
                    seeds: 0..2,
                },
                algorithms: vec![Algorithm::Avrq],
                alphas: vec![3.0],
                opt_fw_iters: 0,
            },
            1,
        )
        .expect("sweep");
    };
    // Telemetry disabled (the default test state) …
    qbss_telemetry::shutdown();
    let silent = work_delta(workload);
    // … versus a verbose `QBSS_LOG=debug`-equivalent pipeline with
    // spans on: counters count algorithmic progress, not log traffic.
    let ring = RingSink::default();
    qbss_telemetry::init(qbss_telemetry::Config {
        filter: Filter::parse("debug").expect("valid filter"),
        sink: SinkTarget::Ring(ring),
        spans: true,
    })
    .expect("fresh init");
    let verbose = work_delta(workload);
    qbss_telemetry::shutdown();
    assert!(!silent.is_empty(), "the workload must move work counters");
    assert_eq!(silent, verbose, "log level must not change op counts");
}

#[test]
fn streaming_and_batch_oa_do_identical_hull_work() {
    let _guard = lock();
    let inst = online_instance(300, 0);
    let batch = work_delta(|| {
        let _ = oa_profile(&inst);
    });
    let streamed = work_delta(|| {
        let mut s = OaStream::new();
        for job in release_ordered(&inst) {
            s.on_arrival(job);
        }
        let _ = s.finish();
    });
    for counter in ["oa.hull_updates", "oa.hull_pops"] {
        assert_eq!(
            batch.get(counter),
            streamed.get(counter),
            "`{counter}` must be identical batch vs streamed"
        );
    }
    assert!(batch.get("oa.hull_updates").copied().unwrap_or(0) > 0, "hull must move: {batch:?}");
}
