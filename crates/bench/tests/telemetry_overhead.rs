//! The overhead gate for disabled telemetry.
//!
//! The contract (DESIGN.md §10): with no `init`, every `event!`/`span!`
//! expansion is one relaxed atomic load and a predicted branch — no
//! formatting, no allocation, no locks. The instrumented hot loops
//! (per-cell evaluation, YDS critical-interval rounds) depend on this,
//! so the gate measures the *absolute* per-probe overhead against a
//! bare loop and fails if it exceeds a bound two orders of magnitude
//! above the real cost. The generous bound keeps the gate meaningful
//! (a regression to formatting or locking costs microseconds, not
//! nanoseconds) without flaking on loaded CI machines.

use std::time::Instant;

const ITERS: u64 = 1_000_000;
/// Per-iteration overhead ceiling for two disabled probes (an `event!`
/// and a `span!`). Real cost is a few ns; formatting-by-accident costs
/// hundreds.
const MAX_OVERHEAD_NS: f64 = 150.0;

fn bare_loop(n: u64) -> u64 {
    let mut acc = 0_u64;
    for i in 0..n {
        acc = acc.wrapping_add(std::hint::black_box(i));
    }
    acc
}

fn probed_loop(n: u64) -> u64 {
    let mut acc = 0_u64;
    for i in 0..n {
        // A representative hot-loop probe pair: a leveled event with
        // fields and a span guard. Disabled, neither may evaluate its
        // arguments.
        qbss_telemetry::trace!("overhead.gate", { i = i }, "iteration {i}");
        let _span = qbss_telemetry::span!("overhead.gate", { i = i });
        acc = acc.wrapping_add(std::hint::black_box(i));
    }
    acc
}

/// Min-of-k wall time for `f(ITERS)`.
fn min_secs(f: impl Fn(u64) -> u64) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t = Instant::now();
        std::hint::black_box(f(std::hint::black_box(ITERS)));
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

#[test]
fn disabled_probes_cost_nanoseconds_not_microseconds() {
    // This test binary never calls `init`, so telemetry is off — the
    // exact state every untraced `qbss` run is in.
    assert!(!qbss_telemetry::active());

    // Warm both paths once before timing.
    std::hint::black_box(bare_loop(ITERS / 10));
    std::hint::black_box(probed_loop(ITERS / 10));

    let bare = min_secs(bare_loop);
    let probed = min_secs(probed_loop);
    let overhead_ns = (probed - bare).max(0.0) * 1e9 / ITERS as f64;
    eprintln!("disabled probe-pair overhead: {overhead_ns:.2} ns/iter (bound {MAX_OVERHEAD_NS})");
    assert!(
        overhead_ns < MAX_OVERHEAD_NS,
        "disabled telemetry costs {overhead_ns:.1} ns per probe pair \
         (bound {MAX_OVERHEAD_NS} ns): the disabled path is no longer \
         a single relaxed atomic load"
    );
}
