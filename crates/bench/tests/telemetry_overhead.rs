//! The overhead gate for disabled telemetry.
//!
//! The contract (DESIGN.md §10): with no `init`, every `event!`/`span!`
//! expansion is one relaxed atomic load and a predicted branch — no
//! formatting, no allocation, no locks. The instrumented hot loops
//! (per-cell evaluation, YDS critical-interval rounds) depend on this,
//! so the gate measures the *absolute* per-probe overhead against a
//! bare loop and fails if it exceeds a bound two orders of magnitude
//! above the real cost. The generous bound keeps the gate meaningful
//! (a regression to formatting or locking costs microseconds, not
//! nanoseconds) without flaking on loaded CI machines.
//!
//! The profiling plane rides on the same probes (spans into a ring,
//! folded after the run), so the second gate proves a profiling
//! session taxes the hot path only while it is live: after `shutdown`
//! the probe pair must be back inside the same budget as a process
//! that never profiled.

use std::sync::Mutex;
use std::time::Instant;

/// Telemetry is process-global: the gates serialize on this lock so
/// one test's live pipeline can never leak probes into the other's
/// disabled-path measurement.
static GATE: Mutex<()> = Mutex::new(());

const ITERS: u64 = 1_000_000;
/// Per-iteration overhead ceiling for two disabled probes (an `event!`
/// and a `span!`). Real cost is a few ns; formatting-by-accident costs
/// hundreds.
const MAX_OVERHEAD_NS: f64 = 150.0;

fn bare_loop(n: u64) -> u64 {
    let mut acc = 0_u64;
    for i in 0..n {
        acc = acc.wrapping_add(std::hint::black_box(i));
    }
    acc
}

fn probed_loop(n: u64) -> u64 {
    let mut acc = 0_u64;
    for i in 0..n {
        // A representative hot-loop probe pair: a leveled event with
        // fields and a span guard. Disabled, neither may evaluate its
        // arguments.
        qbss_telemetry::trace!("overhead.gate", { i = i }, "iteration {i}");
        let _span = qbss_telemetry::span!("overhead.gate", { i = i });
        acc = acc.wrapping_add(std::hint::black_box(i));
    }
    acc
}

/// Min-of-k wall time for `f(ITERS)`.
fn min_secs(f: impl Fn(u64) -> u64) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t = Instant::now();
        std::hint::black_box(f(std::hint::black_box(ITERS)));
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

#[test]
fn disabled_probes_cost_nanoseconds_not_microseconds() {
    let _serial = GATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    // No pipeline is live here (the profiling gate shuts its own
    // down), so telemetry is off — the exact state every untraced
    // `qbss` run is in.
    assert!(!qbss_telemetry::active());

    // Warm both paths once before timing.
    std::hint::black_box(bare_loop(ITERS / 10));
    std::hint::black_box(probed_loop(ITERS / 10));

    let bare = min_secs(bare_loop);
    let probed = min_secs(probed_loop);
    let overhead_ns = (probed - bare).max(0.0) * 1e9 / ITERS as f64;
    eprintln!("disabled probe-pair overhead: {overhead_ns:.2} ns/iter (bound {MAX_OVERHEAD_NS})");
    assert!(
        overhead_ns < MAX_OVERHEAD_NS,
        "disabled telemetry costs {overhead_ns:.1} ns per probe pair \
         (bound {MAX_OVERHEAD_NS} ns): the disabled path is no longer \
         a single relaxed atomic load"
    );
}

#[test]
fn a_profiling_session_leaves_the_disabled_path_untaxed() {
    let _serial = GATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    // Bring up the exact pipeline `--profile` installs: spans into a
    // private ring, leveled events off.
    let ring = qbss_telemetry::RingSink::new(1 << 16);
    qbss_telemetry::init(qbss_telemetry::Config {
        filter: qbss_telemetry::Filter::off(),
        sink: qbss_telemetry::SinkTarget::Ring(ring.clone()),
        spans: true,
    })
    .expect("fresh pipeline");
    assert!(qbss_telemetry::spans_enabled());

    // Live, the probe pair really collects: one span record per
    // iteration lands in the ring (the trace! event stays filtered).
    std::hint::black_box(probed_loop(1_000));
    assert!(ring.len() >= 1_000, "profiling captured {} of 1000 spans", ring.len());

    qbss_telemetry::shutdown();
    assert!(!qbss_telemetry::active());

    // Off again, the same probes must be back inside the same budget
    // as a process that never profiled — the profiler taxes the hot
    // path only while a run is being profiled.
    std::hint::black_box(bare_loop(ITERS / 10));
    std::hint::black_box(probed_loop(ITERS / 10));
    let bare = min_secs(bare_loop);
    let probed = min_secs(probed_loop);
    let overhead_ns = (probed - bare).max(0.0) * 1e9 / ITERS as f64;
    eprintln!(
        "post-profiling probe-pair overhead: {overhead_ns:.2} ns/iter (bound {MAX_OVERHEAD_NS})"
    );
    assert!(
        overhead_ns < MAX_OVERHEAD_NS,
        "after a profiling session, disabled telemetry costs {overhead_ns:.1} ns per \
         probe pair (bound {MAX_OVERHEAD_NS} ns): shutdown left residue on the hot path"
    );
}
