//! The pinned determinism contract of the profiling plane: profiled
//! runs of the same seeded scenario fold to **byte-identical**
//! call-path counts, independent of the shard count.
//!
//! Wall-clock columns are measurement, not identity — they differ on
//! every run. What is pinned is the *shape*: the counts-only folded
//! form (`a;b;c count`) after collapsing `par.shard`, the one frame
//! whose multiplicity is a scheduling artifact (one span per shard)
//! rather than seeded work. CI re-checks the same property end to end
//! by byte-`cmp`ing two `qbss prof record --counts-only --collapse
//! par.shard` outputs.

use qbss_bench::perf::{self, PerfConfig};
use qbss_telemetry::{Config, Filter, RingSink, SinkTarget};

/// A single test function: telemetry is process-global, so every run
/// shares one deliberately-installed pipeline.
#[test]
fn folded_counts_are_deterministic_and_shard_independent() {
    let ring = RingSink::new(1 << 18);
    qbss_telemetry::init(Config {
        filter: Filter::off(),
        sink: SinkTarget::Ring(ring.clone()),
        spans: true,
    })
    .expect("fresh pipeline");

    let fold = |shards: usize| -> String {
        let config = PerfConfig { warmup: 0, repeats: 1, shards };
        let mut b = perf::record_profiled(&["ci-small".to_string()], config, Some(&ring))
            .expect("scenario runs");
        assert_eq!(ring.dropped(), 0, "the ring must hold a full repeat");
        let profile = b.profiles.remove("ci-small").expect("profiled");
        // `par.shard` is the scheduling fan-out layer — the only
        // shard-count-dependent structure in the span tree. Collapsed,
        // what remains is the seeded work itself.
        profile.collapse(&["par.shard"]).fold_counts()
    };

    let one = fold(1);
    let again = fold(1);
    let four = fold(4);
    assert!(!one.is_empty(), "ci-small produced no call paths");
    assert!(one.contains("engine.cell"), "expected engine spans in:\n{one}");
    assert_eq!(one, again, "same seed, same config must fold identically");
    assert_eq!(one, four, "folded counts must not depend on the shard count");

    qbss_telemetry::shutdown();
}
