//! Telemetry acceptance: span parenting across the work-stealing
//! fan-out, a full traced sweep whose JSONL stream is schema-valid with
//! spans covering (essentially all of) the wall clock, and — the
//! determinism contract — aggregates that are byte-identical whether
//! telemetry is off, streaming events, or recording a full trace.
//!
//! These tests share the process-global telemetry pipeline, so they
//! serialize on one lock and tear the pipeline down before asserting.

use std::sync::{Mutex, MutexGuard, PoisonError};

use qbss_bench::engine::{run_sweep, InstanceSource, SweepSpec};
use qbss_bench::par::par_map_stealing;
use qbss_core::pipeline::Algorithm;
use qbss_instances::gen::{Compressibility, GenConfig};
use qbss_telemetry::trace::{parse_trace, summarize, SpanRec, TraceRecord};
use qbss_telemetry::{Config, Filter, RingSink, SinkTarget};

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Runs `f` with a fresh ring-sink pipeline and returns the JSONL it
/// recorded, with the pipeline torn down again. The default ring
/// capacity (4096) comfortably holds a small traced sweep, so nothing
/// these tests assert on is ever evicted.
fn with_memory_telemetry(filter: Filter, spans: bool, f: impl FnOnce()) -> String {
    qbss_telemetry::shutdown();
    let sink = RingSink::default();
    qbss_telemetry::init(Config { filter, sink: SinkTarget::Ring(sink.clone()), spans })
        .expect("fresh init");
    f();
    qbss_telemetry::shutdown();
    assert_eq!(sink.dropped(), 0, "test traces must fit the ring");
    sink.contents()
}

fn small_spec() -> SweepSpec {
    SweepSpec {
        source: InstanceSource::Generated {
            base: GenConfig {
                compress: Compressibility::Bimodal { p_compressible: 0.5 },
                ..GenConfig::common_deadline(8, 8.0, 0)
            },
            seeds: 0..6,
        },
        algorithms: vec![Algorithm::Avrq, Algorithm::Bkpq, Algorithm::Oaq],
        alphas: vec![2.0, 3.0],
        opt_fw_iters: 4,
    }
}

fn spans_of(records: &[TraceRecord]) -> Vec<&SpanRec> {
    records
        .iter()
        .filter_map(|r| match r {
            TraceRecord::Span(s) => Some(s),
            _ => None,
        })
        .collect()
}

#[test]
fn shard_spans_stitch_into_the_callers_tree() {
    let _guard = lock();
    let out = with_memory_telemetry(Filter::off(), true, || {
        let root = qbss_telemetry::span!("test.root");
        let _ = par_map_stealing(16, 3, |_, i| i * i);
        drop(root);
    });
    let records = parse_trace(&out).expect("schema-valid trace");
    let spans = spans_of(&records);
    let root = spans.iter().find(|s| s.name == "test.root").expect("root span recorded");
    let shards: Vec<&&SpanRec> = spans.iter().filter(|s| s.name == "par.shard").collect();
    assert_eq!(shards.len(), 3, "one span per work-stealing shard");
    let mut items = 0;
    for s in &shards {
        assert_eq!(
            s.parent,
            Some(root.id),
            "worker-thread span must parent onto the calling thread's span"
        );
        items += s
            .fields
            .get("items")
            .and_then(qbss_telemetry::JsonValue::as_u64)
            .expect("items field");
    }
    assert_eq!(items, 16, "every index claimed by exactly one shard");
}

#[test]
fn traced_sweep_is_schema_valid_and_covers_the_wall_clock() {
    let _guard = lock();
    let spec = small_spec();
    let out = with_memory_telemetry(Filter::parse("debug").expect("valid spec"), true, || {
        run_sweep(&spec, 2).expect("valid spec");
    });
    let records = parse_trace(&out).expect("every emitted line is schema-valid");
    let spans = spans_of(&records);
    let n_cells = 6 * 3 * 2;

    let sweep = spans.iter().find(|s| s.name == "engine.sweep").expect("sweep root span");
    assert_eq!(sweep.parent, None);
    assert_eq!(
        spans.iter().filter(|s| s.name == "engine.cell").count(),
        n_cells,
        "one span per evaluated cell"
    );
    assert!(
        spans.iter().filter(|s| s.name == "pipeline.run").count() >= n_cells,
        "every cell runs the evaluated pipeline under a span"
    );

    // Per-job query-decision events at debug level, attributed to an
    // enclosing span.
    let decisions: Vec<_> = records
        .iter()
        .filter_map(|r| match r {
            TraceRecord::Event(e) if e.target == "qbss.decision" => Some(e),
            _ => None,
        })
        .collect();
    assert_eq!(decisions.len(), n_cells * 8, "one decision event per job per cell");
    assert!(decisions.iter().all(|e| e.span.is_some()));
    assert!(decisions.iter().all(|e| e.fields.get("tau").is_some()));

    // The engine's registry snapshot rides along in the stream.
    let metrics = records
        .iter()
        .find_map(|r| match r {
            TraceRecord::Metrics(m) if m.scope == "engine" => Some(m),
            _ => None,
        })
        .expect("engine metrics record");
    let hits = metrics.counters.get("engine.ctx.hits").copied().unwrap_or(0);
    let misses = metrics.counters.get("engine.ctx.misses").copied().unwrap_or(0);
    assert_eq!(hits + misses, n_cells as u64, "every cell hit or missed the context cache");

    // Acceptance: spans cover ≥95% of the trace's wall clock.
    let summary = summarize(&records);
    assert!(
        summary.coverage >= 0.95,
        "span coverage {:.3} below the 95% acceptance floor",
        summary.coverage
    );
}

#[test]
fn aggregates_are_byte_identical_with_telemetry_on_or_off() {
    let _guard = lock();
    qbss_telemetry::shutdown();
    let spec = small_spec();
    let baseline = run_sweep(&spec, 2).expect("valid spec").aggregate_json();

    // Full trace: spans on, debug events, memory sink.
    let mut traced = String::new();
    let _ = with_memory_telemetry(Filter::parse("debug").expect("valid"), true, || {
        traced = run_sweep(&spec, 2).expect("valid spec").aggregate_json();
    });
    assert_eq!(baseline, traced, "tracing must not perturb the deterministic aggregate");

    // Events-only stream (no spans), different shard count on top.
    let mut streamed = String::new();
    let _ = with_memory_telemetry(Filter::parse("trace").expect("valid"), false, || {
        streamed = run_sweep(&spec, 5).expect("valid spec").aggregate_json();
    });
    assert_eq!(baseline, streamed, "event streaming must not perturb the aggregate");
}
