//! Edge coverage for the lock-free aggregation layer: `StreamAgg`'s
//! IEEE-bit `fetch_max` under concurrency, bound-violation counting,
//! `BenchGroup`/histogram snapshot edges (NaN/∞ clamping, empty
//! groups), and the perf layer's single-sample statistics.

use std::sync::atomic::Ordering;

use qbss_bench::perf::{mad, median};
use qbss_bench::{BenchGroup, CellMetrics, StreamAgg};
use qbss_telemetry::{JsonValue, Registry, DURATION_US_BOUNDS};

fn metrics(energy_ratio: f64, peak_speed: f64, speed_ratio: Option<f64>) -> CellMetrics {
    CellMetrics { energy: 1.0, peak_speed, energy_ratio, speed_ratio, queried: 0 }
}

#[test]
fn ieee_bit_fetch_max_orders_like_the_numbers() {
    // The streaming maxima rely on `fetch_max` over raw f64 bits being
    // equivalent to a numeric max for non-negative floats. Check the
    // order isomorphism explicitly across magnitudes, subnormals and 0.
    let values = [
        0.0,
        f64::MIN_POSITIVE / 2.0, // subnormal
        f64::MIN_POSITIVE,
        1e-10,
        0.5,
        1.0,
        1.0 + f64::EPSILON,
        1e10,
        f64::MAX,
    ];
    for w in values.windows(2) {
        assert!(w[0].to_bits() < w[1].to_bits(), "{} vs {}", w[0], w[1]);
    }

    let agg = StreamAgg::default();
    std::thread::scope(|s| {
        let agg = &agg;
        for (c, chunk) in values.chunks(3).enumerate() {
            s.spawn(move || {
                for (i, &v) in chunk.iter().enumerate() {
                    agg.record_ok(c * 3 + i, &metrics(v, v, None), None, None);
                }
            });
        }
    });
    assert_eq!(agg.ok.load(Ordering::Relaxed), values.len() as u64);
    let max = f64::from_bits(agg.max_energy_ratio_bits.load(Ordering::Relaxed));
    assert_eq!(max, f64::MAX, "interleaving must not lose the true max");
    let max_speed = f64::from_bits(agg.max_peak_speed_bits.load(Ordering::Relaxed));
    assert_eq!(max_speed, f64::MAX);
    // The argmax cell survives the interleaving too: f64::MAX is the
    // last value, cell id 8, no matter which thread got there first.
    let arg = agg.max_energy_cell.lock().unwrap();
    assert_eq!(*arg, Some((8, f64::MAX)), "argmax must name the winning cell");
}

#[test]
fn argmax_breaks_ratio_ties_toward_the_lowest_cell() {
    // Equal ratios fold to the lowest cell id regardless of arrival
    // order — the property that makes the fold order-independent.
    let agg = StreamAgg::default();
    agg.record_ok(5, &metrics(2.0, 1.0, None), None, None);
    agg.record_ok(3, &metrics(2.0, 1.0, None), None, None);
    agg.record_ok(7, &metrics(2.0, 1.0, None), None, None);
    assert_eq!(*agg.max_energy_cell.lock().unwrap(), Some((3, 2.0)));
    // A strictly larger ratio still wins over a lower cell id.
    agg.record_ok(9, &metrics(2.5, 1.0, None), None, None);
    assert_eq!(*agg.max_energy_cell.lock().unwrap(), Some((9, 2.5)));
}

#[test]
fn bound_violations_respect_the_slack() {
    let agg = StreamAgg::default();
    // Exactly at the bound: no violation (slack absorbs it).
    agg.record_ok(0, &metrics(2.0, 1.0, Some(2.0)), Some(2.0), Some(2.0));
    assert_eq!(agg.energy_violations.load(Ordering::Relaxed), 0);
    assert_eq!(agg.speed_violations.load(Ordering::Relaxed), 0);
    // Clearly above: both counted.
    agg.record_ok(1, &metrics(3.0, 1.0, Some(3.0)), Some(2.0), Some(2.0));
    assert_eq!(agg.energy_violations.load(Ordering::Relaxed), 1);
    assert_eq!(agg.speed_violations.load(Ordering::Relaxed), 1);
    // No bound for the group: nothing to violate.
    agg.record_ok(2, &metrics(100.0, 100.0, Some(100.0)), None, None);
    assert_eq!(agg.energy_violations.load(Ordering::Relaxed), 1);
}

#[test]
fn empty_bench_group_snapshot_is_valid_and_empty() {
    let g = BenchGroup::new("empty");
    let json = g.snapshot_json();
    let parsed = qbss_telemetry::json_parse(&json).expect("valid JSON");
    match parsed.get("histograms") {
        Some(JsonValue::Obj(h)) => assert!(h.is_empty(), "{json}"),
        other => panic!("histograms must be an object: {other:?}"),
    }
}

#[test]
fn histogram_clamps_nan_and_infinity_to_zero() {
    let reg = Registry::new();
    let h = reg.histogram("edge.dur_us", &DURATION_US_BOUNDS);
    h.record(f64::NAN);
    h.record(f64::INFINITY);
    h.record(f64::NEG_INFINITY);
    h.record(-5.0);
    assert_eq!(h.count(), 4, "clamped samples still count");
    assert_eq!(h.max(), 0.0, "non-finite/negative values clamp to 0");
    for q in [0.5, 0.95, 0.99] {
        let est = h.quantile(q);
        assert!(est.is_finite() && est == 0.0, "q={q}: {est}");
    }
    let json = reg.snapshot_json();
    assert!(!json.contains("NaN") && !json.contains("inf"), "{json}");
}

#[test]
fn single_sample_stats_are_degenerate_but_defined() {
    assert_eq!(median(&[42.0]), 42.0);
    assert_eq!(mad(&[42.0], 42.0), 0.0, "single sample has MAD 0");
    // A single-sample histogram pins min == max == the sample, and the
    // interpolated quantiles collapse onto it.
    let reg = Registry::new();
    let h = reg.histogram("one.dur_us", &DURATION_US_BOUNDS);
    h.record(7.0);
    assert_eq!((h.min(), h.max()), (7.0, 7.0));
    for q in [0.0, 0.5, 0.99, 1.0] {
        assert_eq!(h.quantile(q), 7.0, "q={q}");
    }
}
