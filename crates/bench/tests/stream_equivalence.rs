//! Batch ≡ streaming equivalence suite (ISSUE 7 acceptance).
//!
//! Every streamable algorithm × every seeded generator family: feeding
//! the canonical arrival order through a [`StreamSession`] must produce
//! a [`QbssOutcome`](qbss_core::QbssOutcome) **bit-identical** to the
//! batch pipeline on the same instance — same `Debug` rendering, same
//! energy and peak-speed bits — and the runtime auditor must count zero
//! violations on the streamed results.

use qbss_bench::StreamSession;
use qbss_core::audit::Auditor;
use qbss_core::pipeline::{run_audited, run_evaluated, Algorithm, Evaluated};
use qbss_core::stream::arrival_ordered;
use qbss_core::QbssInstance;
use qbss_instances::gen::{generate, GenConfig, TimeModel};

const STREAMABLE: [Algorithm; 3] = [Algorithm::Avrq, Algorithm::Bkpq, Algorithm::Oaq];
const SEEDS: std::ops::Range<u64> = 0..12;
const ALPHA: f64 = 3.0;

/// One instance per (family, seed): the family's default time model
/// with the generator's stock workload/query models.
fn family_instance(family: &str, seed: u64) -> QbssInstance {
    let time = TimeModel::from_name(family, 24).expect("known family");
    generate(&GenConfig { time, ..GenConfig::online_default(24, seed) })
}

/// Streams an instance in canonical arrival order and finishes.
fn streamed(inst: &QbssInstance, algorithm: Algorithm) -> Evaluated {
    let mut session = StreamSession::new(algorithm, ALPHA).expect("streamable");
    for job in arrival_ordered(inst) {
        session.arrive(job).expect("arrive");
    }
    session.finish().expect("finish")
}

fn assert_bit_identical(batch: &Evaluated, stream: &Evaluated, context: &str) {
    assert_eq!(
        format!("{:?}", batch.outcome),
        format!("{:?}", stream.outcome),
        "outcome drift: {context}"
    );
    assert_eq!(batch.energy.to_bits(), stream.energy.to_bits(), "energy drift: {context}");
    assert_eq!(
        batch.max_speed.to_bits(),
        stream.max_speed.to_bits(),
        "max-speed drift: {context}"
    );
}

#[test]
fn streaming_matches_batch_bitwise_across_families() {
    for family in TimeModel::NAMES {
        for seed in SEEDS {
            let inst = family_instance(family, seed);
            for algorithm in STREAMABLE {
                let context = format!("{algorithm} on {family}/seed={seed}");
                let batch = run_evaluated(&inst, ALPHA, algorithm)
                    .unwrap_or_else(|e| panic!("batch {context}: {e}"));
                assert_bit_identical(&batch, &streamed(&inst, algorithm), &context);
            }
        }
    }
}

#[test]
fn streaming_matches_audited_batch_with_zero_violations() {
    // The audited path must agree too (auditing is observe-only), and
    // the streamed outcomes must satisfy every runtime invariant.
    let auditor = Auditor::new();
    for family in TimeModel::NAMES {
        for seed in SEEDS.step_by(3) {
            let inst = family_instance(family, seed);
            let opt = inst.opt_cache();
            for algorithm in STREAMABLE {
                let context = format!("{algorithm} on {family}/seed={seed} (audited)");
                let batch = run_audited(&inst, ALPHA, algorithm, &opt, &auditor)
                    .unwrap_or_else(|e| panic!("batch {context}: {e}"));
                let stream = streamed(&inst, algorithm);
                assert_bit_identical(&batch, &stream, &context);
                // Audit the streamed result itself: zero violations is
                // part of the acceptance bar.
                auditor.audit(&inst, ALPHA, algorithm, &stream, &opt);
            }
        }
    }
    assert!(auditor.checked() > 0, "the auditor must actually run");
    assert_eq!(auditor.violations(), 0, "streamed outcomes must audit clean");
}

#[test]
fn interleaved_advances_do_not_change_the_outcome() {
    // Clock advances between arrivals are pure observation: a stream
    // with `advance_to` interleaved at each arrival's release finishes
    // bit-identical to the arrivals-only stream.
    for algorithm in STREAMABLE {
        let inst = family_instance("online", 5);
        let plain = streamed(&inst, algorithm);
        let mut session = StreamSession::new(algorithm, ALPHA).expect("streamable");
        for job in arrival_ordered(&inst) {
            session.advance_to(job.release).expect("advance");
            session.arrive(job).expect("arrive");
        }
        let advanced = session.finish().expect("finish");
        assert_bit_identical(&plain, &advanced, &format!("{algorithm} with advances"));
    }
}
