//! Engine acceptance tests: shard-count-independent determinism, the
//! profile cache's bit-equality with cold recomputation, and a golden
//! aggregate the CI smoke job compares against.
//!
//! Bless the golden file after an intentional change with
//! `QBSS_BLESS=1 cargo test -p qbss-bench --test engine`.

use qbss_bench::engine::{run_sweep, InstanceSource, SweepSpec};
use qbss_core::pipeline::{run_evaluated, Algorithm};
use qbss_instances::gen::{generate, Compressibility, GenConfig};
use speed_scaling::multi::{multi_opt_frank_wolfe, opt_lower_bound};
use speed_scaling::yds::yds_profile;

/// The spec the committed golden aggregate was produced from. Touch it
/// only together with a re-bless.
fn golden_spec() -> SweepSpec {
    SweepSpec {
        source: InstanceSource::Generated {
            base: GenConfig {
                compress: Compressibility::Bimodal { p_compressible: 0.5 },
                ..GenConfig::common_deadline(10, 8.0, 0)
            },
            seeds: 0..12,
        },
        algorithms: Algorithm::all(2, 4),
        alphas: vec![2.0, 3.0],
        opt_fw_iters: 4,
    }
}

#[test]
fn aggregate_json_is_byte_identical_across_shard_counts() {
    let spec = golden_spec();
    let reference = run_sweep(&spec, 1).expect("shards=1").aggregate_json();
    for shards in [2, 8] {
        let json = run_sweep(&spec, shards).expect("valid spec").aggregate_json();
        assert_eq!(json, reference, "aggregate diverged at {shards} shards");
    }
}

#[test]
fn memoized_profiles_are_bit_equal_to_cold_runs() {
    // Every cached quantity the engine serves — per-α YDS energies, the
    // YDS peak speed, multi-machine OPT lower bounds — must be the
    // *same bits* a from-scratch evaluation produces.
    let spec = golden_spec();
    let rep = run_sweep(&spec, 4).expect("valid spec");
    let (algs, alphas) = (&spec.algorithms, &spec.alphas);
    for rec in &rep.records {
        let inst = match &spec.source {
            InstanceSource::Generated { base, seeds } => {
                generate(&GenConfig { seed: seeds.start + rec.instance as u64, ..*base })
            }
            InstanceSource::Explicit(v) => v[rec.instance].clone(),
        };
        let alg = algs[rec.algorithm];
        let alpha = alphas[rec.alpha];
        let cold = run_evaluated(&inst, alpha, alg);
        match (&rec.result, cold) {
            (Err(recorded), Err(cold)) => assert_eq!(recorded, &cold.to_string()),
            (Ok(m), Ok(ev)) => {
                assert_eq!(m.energy.to_bits(), ev.energy.to_bits(), "{alg} α={alpha}");
                assert_eq!(m.peak_speed.to_bits(), ev.max_speed.to_bits(), "{alg} α={alpha}");
                let clair = inst.clairvoyant_instance();
                let cold_ratio = if alg.machines() <= 1 {
                    let profile = yds_profile(&clair);
                    let opt_s = profile.max_speed();
                    let cold_speed =
                        if opt_s <= 0.0 { 1.0 } else { ev.max_speed / opt_s };
                    assert_eq!(
                        m.speed_ratio.expect("single-machine").to_bits(),
                        cold_speed.to_bits(),
                        "{alg} α={alpha}"
                    );
                    let opt_e = profile.energy(alpha);
                    if opt_e <= 0.0 { 1.0 } else { ev.energy / opt_e }
                } else {
                    let lb = opt_lower_bound(&clair, alg.machines(), alpha).max(
                        multi_opt_frank_wolfe(&clair, alg.machines(), alpha, spec.opt_fw_iters)
                            .lower_bound(),
                    );
                    if lb <= 0.0 { 1.0 } else { ev.energy / lb }
                };
                assert_eq!(
                    m.energy_ratio.to_bits(),
                    cold_ratio.to_bits(),
                    "{alg} α={alpha}: cached baseline drifted from cold recomputation"
                );
            }
            (recorded, cold) => {
                panic!("ok/err disagreement: recorded {recorded:?}, cold {:?}", cold.is_ok())
            }
        }
    }
    assert!(rep.instrumentation.cache_hit_rate() > 0.0, "sweep exercised the cache");
}

#[test]
fn golden_aggregate_matches() {
    let json = run_sweep(&golden_spec(), 2).expect("valid spec").aggregate_json();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/sweep_smoke.json");
    if std::env::var_os("QBSS_BLESS").is_some() {
        std::fs::write(path, &json).expect("write golden");
        eprintln!("blessed {path}");
        return;
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden file missing — run with QBSS_BLESS=1 to create it");
    assert_eq!(
        json, golden,
        "aggregate diverged from the committed golden \
         (if intentional: QBSS_BLESS=1 cargo test -p qbss-bench --test engine)"
    );
}
