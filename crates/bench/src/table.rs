//! Minimal aligned-table printing for experiment output.

/// A right-aligned ASCII table with a header row.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Adds a row; must match the header arity.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                let pad = widths[i].saturating_sub(cell.chars().count());
                for _ in 0..pad {
                    line.push(' ');
                }
                line.push_str(cell);
            }
            line
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with 3 significant decimals, the harness-wide
/// convention.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["1", "2"]);
        t.row(vec!["100", "20000"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows equally wide.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1", "2"]);
    }

    #[test]
    fn fmt_conventions() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(1.23456), "1.235");
        assert_eq!(fmt(12345.6), "12346");
    }
}
