//! The sharded batch-evaluation engine.
//!
//! Every table and figure of the paper is an ensemble sweep: a grid of
//! *(instance, algorithm, α)* cells, each pushed through the checked
//! pipeline and digested into ratio statistics. This module is the one
//! implementation of that loop:
//!
//! * a declarative [`SweepSpec`] names the grid (instance source ×
//!   algorithm set × α grid — machine counts ride on the
//!   [`Algorithm`] values themselves);
//! * [`run_sweep`] fans the cells out over work-stealing shards
//!   ([`crate::par::par_map_stealing`]), dispatching every cell through
//!   [`qbss_core::pipeline::run_evaluated`] — so a sweep is also a
//!   no-panic, fully validated end-to-end pass;
//! * a per-instance **profile cache** ([`std::sync::OnceLock`] slots,
//!   lock-free on the hot path) builds each instance and its clairvoyant
//!   [`OptCache`] once, shared by all algorithms and α values of that
//!   instance; multi-machine OPT lower bounds are memoized per
//!   `(m, α)` inside the same entry;
//! * shards feed a [`StreamAgg`] per *(algorithm, α)* group: exact
//!   counters (cells, errors, bound violations) and exact maxima
//!   (`AtomicU64::fetch_max` over IEEE bits — order-independent for
//!   non-negative floats) stay lock-free; the argmax *cell* of the
//!   energy ratio rides behind a micro-mutex folding an
//!   order-independent lexicographic max, so every reported worst
//!   ratio names a reproducible (instance, seed) pair;
//! * the final [`EngineReport`] combines the streaming counters with a
//!   canonical-order pass over the per-cell records (means and
//!   percentiles are computed in cell order), so the aggregate JSON is
//!   **byte-identical for any shard count**. Wall-clock numbers live in
//!   a separate instrumentation JSON, which is the only
//!   non-deterministic output.
//!
//! ## Baselines
//!
//! Single-machine algorithms are measured against the clairvoyant YDS
//! optimum (energy at the cell's α, and peak speed). Multi-machine
//! algorithms are measured against a certified lower bound on the
//! `m`-machine optimum — the max of the closed-form fluid/per-job
//! bounds and the Frank–Wolfe duality certificate at
//! [`SweepSpec::opt_fw_iters`] iterations (0 disables the certificate) —
//! and carry no speed-ratio baseline.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use qbss_analysis::bounds;
use qbss_analysis::stats::percentile_sorted;
use qbss_core::model::QbssInstance;
use qbss_core::pipeline::{run_evaluated, Algorithm};
use qbss_instances::gen::{generate, GenConfig};
use qbss_telemetry::{Registry, DURATION_US_BOUNDS};
use speed_scaling::cache::OptCache;
use speed_scaling::multi::{multi_opt_frank_wolfe, opt_lower_bound};

/// Numeric slack for bound-violation counting, matching
/// [`crate::ensemble::check_bound`].
const BOUND_SLACK: f64 = 1e-6;

// ---------------------------------------------------------------------
// Spec
// ---------------------------------------------------------------------

/// Where a sweep's instances come from.
#[derive(Debug, Clone)]
pub enum InstanceSource {
    /// `seeds.len()` instances generated from `base` with the seed
    /// substituted (`seed = seeds.start + index`).
    Generated {
        /// Generator family; its `seed` field is ignored.
        base: GenConfig,
        /// Seed range, one instance per seed.
        seeds: std::ops::Range<u64>,
    },
    /// Explicitly provided instances (e.g. loaded from files).
    Explicit(Vec<QbssInstance>),
}

/// A declarative batch sweep: instance source × algorithm set × α grid.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Instance source.
    pub source: InstanceSource,
    /// Algorithm configurations (machine counts ride on the values).
    pub algorithms: Vec<Algorithm>,
    /// Power exponents; every `(instance, algorithm)` pair runs at each.
    pub alphas: Vec<f64>,
    /// Frank–Wolfe iterations for the multi-machine OPT lower-bound
    /// certificate (0 = closed-form bounds only). Irrelevant when no
    /// multi-machine algorithm is in the set.
    pub opt_fw_iters: usize,
}

impl SweepSpec {
    /// Number of instances in the source.
    pub fn n_instances(&self) -> usize {
        match &self.source {
            InstanceSource::Generated { seeds, .. } => {
                usize::try_from(seeds.end.saturating_sub(seeds.start)).unwrap_or(usize::MAX)
            }
            InstanceSource::Explicit(v) => v.len(),
        }
    }

    /// Total cell count `instances × algorithms × alphas`.
    pub fn n_cells(&self) -> usize {
        self.n_instances() * self.algorithms.len() * self.alphas.len()
    }

    /// Materializes instance `index` (deterministic in `index`).
    fn instance(&self, index: usize) -> QbssInstance {
        match &self.source {
            InstanceSource::Generated { base, seeds } => {
                generate(&GenConfig { seed: seeds.start + index as u64, ..*base })
            }
            InstanceSource::Explicit(v) => v[index].clone(),
        }
    }

    /// Rejects structurally empty or out-of-model specs.
    pub fn validate(&self) -> Result<(), EngineError> {
        if self.algorithms.is_empty() {
            return Err(EngineError::EmptySpec("no algorithms"));
        }
        if self.alphas.is_empty() {
            return Err(EngineError::EmptySpec("no alphas"));
        }
        if self.n_instances() == 0 {
            return Err(EngineError::EmptySpec("no instances"));
        }
        if let InstanceSource::Generated { base, .. } = &self.source {
            if base.n == 0 {
                return Err(EngineError::EmptySpec("generator family with n = 0 jobs"));
            }
        }
        if let Some(&alpha) = self.alphas.iter().find(|a| !a.is_finite() || **a <= 1.0) {
            return Err(EngineError::InvalidAlpha { alpha });
        }
        Ok(())
    }
}

/// A structurally invalid [`SweepSpec`].
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A grid dimension is empty.
    EmptySpec(&'static str),
    /// An exponent outside the model's `α > 1` (finite) contract.
    InvalidAlpha {
        /// The offending exponent.
        alpha: f64,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::EmptySpec(what) => write!(f, "empty sweep spec: {what}"),
            EngineError::InvalidAlpha { alpha } => {
                write!(f, "alpha must be finite and exceed 1, got {alpha}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

// ---------------------------------------------------------------------
// Per-instance profile cache
// ---------------------------------------------------------------------

/// Everything the engine derives from one instance, built once and
/// shared by all of the instance's cells.
struct InstanceCtx {
    inst: QbssInstance,
    /// Clairvoyant YDS optimum, per-α energies memoized inside.
    opt: OptCache,
    /// Multi-machine OPT lower bounds memoized per `(m, α bits)`.
    multi_lb: Mutex<Vec<((usize, u64), f64)>>,
}

impl InstanceCtx {
    fn new(inst: QbssInstance) -> Self {
        let opt = inst.opt_cache();
        Self { inst, opt, multi_lb: Mutex::new(Vec::new()) }
    }

    /// Certified lower bound on the `m`-machine clairvoyant optimum at
    /// `alpha`; memoized. Returns `(value, was_cache_hit)`.
    fn multi_lower_bound(&self, m: usize, alpha: f64, fw_iters: usize) -> (f64, bool) {
        let key = (m, alpha.to_bits());
        let mut memo =
            self.multi_lb.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(&(_, lb)) = memo.iter().find(|&&(k, _)| k == key) {
            return (lb, true);
        }
        let clair = self.inst.clairvoyant_instance();
        let mut lb = opt_lower_bound(&clair, m, alpha);
        if fw_iters > 0 {
            lb = lb.max(multi_opt_frank_wolfe(&clair, m, alpha, fw_iters).lower_bound());
        }
        memo.push((key, lb));
        (lb, false)
    }
}

// ---------------------------------------------------------------------
// Streaming aggregation
// ---------------------------------------------------------------------

/// Per-group accumulator the shards feed as cells complete.
///
/// Everything in here is exact and order-independent: counters are
/// integer atomics and maxima use `fetch_max` over IEEE-754 bits, whose
/// ordering coincides with the numeric one for non-negative floats; the
/// argmax cell of the energy ratio rides behind a micro-mutex but folds
/// the order-independent lexicographic max of `(ratio, lowest cell id)`,
/// so it too is deterministic at any shard count. The order-*dependent*
/// statistics (mean, percentiles) are deliberately not accumulated here
/// — [`run_sweep`] derives them from the per-cell records in canonical
/// cell order, keeping aggregates byte-identical across shard counts.
#[derive(Debug, Default)]
pub struct StreamAgg {
    /// Successfully evaluated cells.
    pub ok: AtomicU64,
    /// Cells that came back as typed pipeline errors.
    pub errors: AtomicU64,
    /// Max energy ratio seen, as non-negative f64 bits.
    pub max_energy_ratio_bits: AtomicU64,
    /// Max peak speed seen, as non-negative f64 bits.
    pub max_peak_speed_bits: AtomicU64,
    /// Cells whose energy ratio exceeded the group's proven bound.
    pub energy_violations: AtomicU64,
    /// Cells whose speed ratio exceeded the group's proven bound.
    pub speed_violations: AtomicU64,
    /// Argmax of the energy ratio: `(canonical cell id, ratio)`, the
    /// lowest cell id on ties — so every reported worst ratio names a
    /// reproducible cell.
    pub max_energy_cell: Mutex<Option<(usize, f64)>>,
}

impl StreamAgg {
    /// Feeds one successful cell: bumps `ok`, folds the IEEE-bit maxima
    /// and the argmax cell, and counts bound violations against the
    /// group's proven bounds (with the engine's relative slack).
    /// `cell` is the canonical cell id (ties on the ratio keep the
    /// lowest id, which keeps the fold order-independent).
    pub fn record_ok(
        &self,
        cell: usize,
        metrics: &CellMetrics,
        energy_bound: Option<f64>,
        speed_bound: Option<f64>,
    ) {
        self.ok.fetch_add(1, Ordering::Relaxed);
        self.max_energy_ratio_bits
            .fetch_max(metrics.energy_ratio.to_bits(), Ordering::Relaxed);
        self.max_peak_speed_bits.fetch_max(metrics.peak_speed.to_bits(), Ordering::Relaxed);
        {
            let mut arg = self
                .max_energy_cell
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if arg.is_none_or(|(best_cell, best)| {
                metrics.energy_ratio > best || (metrics.energy_ratio == best && cell < best_cell)
            }) {
                *arg = Some((cell, metrics.energy_ratio));
            }
        }
        if let Some(b) = energy_bound {
            if metrics.energy_ratio > b * (1.0 + BOUND_SLACK) {
                self.energy_violations.fetch_add(1, Ordering::Relaxed);
            }
        }
        if let (Some(b), Some(s)) = (speed_bound, metrics.speed_ratio) {
            if s > b * (1.0 + BOUND_SLACK) {
                self.speed_violations.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Results
// ---------------------------------------------------------------------

/// Metrics of one successfully evaluated cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellMetrics {
    /// Schedule energy at the cell's α (from the pipeline's finiteness
    /// gate — never re-integrated).
    pub energy: f64,
    /// Peak speed over all machines and times.
    pub peak_speed: f64,
    /// Energy over the cell's baseline (YDS optimum for single-machine
    /// algorithms, certified multi-machine OPT lower bound otherwise).
    pub energy_ratio: f64,
    /// Peak speed over the YDS optimal peak speed; `None` for
    /// multi-machine algorithms (no proven speed baseline).
    pub speed_ratio: Option<f64>,
    /// Jobs the algorithm chose to query.
    pub queried: usize,
}

/// One cell of the sweep grid: indices into the spec plus the result.
#[derive(Debug, Clone)]
pub struct CellRecord {
    /// Instance index in the source.
    pub instance: usize,
    /// Algorithm index in `spec.algorithms`.
    pub algorithm: usize,
    /// α index in `spec.alphas`.
    pub alpha: usize,
    /// Metrics, or the typed pipeline error rendered to a string.
    pub result: Result<CellMetrics, String>,
}

/// Order statistics of one metric over a group's successful cells.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Digest {
    /// Sample size.
    pub n: usize,
    /// Minimum.
    pub min: f64,
    /// Arithmetic mean (accumulated in canonical cell order).
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Digest {
    /// Digests `values` (in canonical cell order); `None` when empty.
    fn of(values: &[f64]) -> Option<Digest> {
        if values.is_empty() {
            return None;
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite metric"));
        Some(Digest {
            n: values.len(),
            min: sorted[0],
            mean,
            p50: percentile_sorted(&sorted, 0.50),
            p99: percentile_sorted(&sorted, 0.99),
            max: sorted[sorted.len() - 1],
        })
    }
}

/// The reproducible argmax cell of a group's energy ratio: enough to
/// regenerate the offending instance (`seed` for generated sources,
/// the index for explicit ones) and re-run the cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorstCell {
    /// Instance index in the sweep's source.
    pub instance: usize,
    /// Generator seed of that instance (`None` for explicit sources).
    pub seed: Option<u64>,
    /// The energy ratio measured there.
    pub energy_ratio: f64,
}

/// Aggregate of one *(algorithm, α)* group.
#[derive(Debug, Clone)]
pub struct GroupAggregate {
    /// Canonical algorithm string (round-trips through `FromStr`).
    pub algorithm: String,
    /// The group's power exponent.
    pub alpha: f64,
    /// Successfully evaluated cells.
    pub ok: usize,
    /// Cells rejected with a typed pipeline error.
    pub errors: usize,
    /// Energy-ratio digest (`None` when no cell succeeded).
    pub energy_ratio: Option<Digest>,
    /// Peak-speed digest.
    pub peak_speed: Option<Digest>,
    /// Speed-ratio digest (`None` for multi-machine groups).
    pub speed_ratio: Option<Digest>,
    /// The proven energy bound for this family at this α, if any.
    pub energy_bound: Option<f64>,
    /// Cells with `energy_ratio` above `energy_bound` (with slack).
    pub energy_violations: u64,
    /// The proven speed bound for this family, if any.
    pub speed_bound: Option<f64>,
    /// Cells with `speed_ratio` above `speed_bound` (with slack).
    pub speed_violations: u64,
    /// The argmax cell of `energy_ratio` (`None` when no cell
    /// succeeded) — the group's worst ratio, reproducibly named.
    pub worst_cell: Option<WorstCell>,
}

/// Per-shard execution statistics.
#[derive(Debug, Clone, Copy)]
pub struct ShardStats {
    /// Cells this shard evaluated.
    pub cells: u64,
    /// Wall-clock time this shard spent inside cells.
    pub busy: Duration,
}

/// Wall-clock and cache instrumentation of one engine run. This is the
/// only part of a report that is *not* deterministic.
#[derive(Debug, Clone)]
pub struct Instrumentation {
    /// Work-stealing shard count actually used.
    pub shards: usize,
    /// End-to-end wall-clock time of the sweep.
    pub wall: Duration,
    /// Total cells evaluated (ok + errors).
    pub cells: usize,
    /// `cells / wall` throughput.
    pub cells_per_sec: f64,
    /// Instance-context cache: cells that found their instance's
    /// profiles already built.
    pub ctx_hits: u64,
    /// Instance-context cache: contexts built (one per instance).
    pub ctx_misses: u64,
    /// Per-α YDS energy memo hits (inside [`OptCache`]).
    pub opt_energy_hits: u64,
    /// Per-α YDS energy memo misses.
    pub opt_energy_misses: u64,
    /// Multi-machine lower-bound memo hits.
    pub multi_lb_hits: u64,
    /// Multi-machine lower-bound memo misses.
    pub multi_lb_misses: u64,
    /// Per-shard timers.
    pub per_shard: Vec<ShardStats>,
}

impl Instrumentation {
    /// Combined hit rate over all cache layers, in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        let hits = self.ctx_hits + self.opt_energy_hits + self.multi_lb_hits;
        let total = hits + self.ctx_misses + self.opt_energy_misses + self.multi_lb_misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

/// The result of [`run_sweep`]: deterministic aggregates, the raw cell
/// records, and (separately) the run's instrumentation.
#[derive(Debug)]
pub struct EngineReport {
    /// One aggregate per *(algorithm, α)*, in spec order (algorithms
    /// outer, alphas inner).
    pub groups: Vec<GroupAggregate>,
    /// Every cell, in canonical cell order.
    pub records: Vec<CellRecord>,
    /// Wall-clock and cache statistics.
    pub instrumentation: Instrumentation,
    /// The run-local metrics registry behind [`Instrumentation`]:
    /// `engine.*` counters plus the per-cell duration histogram. Local
    /// to the run (not the process-global registry) so concurrent
    /// sweeps never bleed into each other's numbers.
    pub metrics: Registry,
}

impl EngineReport {
    /// Looks up the aggregate of `(algorithm, alpha)`.
    pub fn group(&self, algorithm: Algorithm, alpha: f64) -> Option<&GroupAggregate> {
        let name = algorithm.to_string();
        self.groups.iter().find(|g| g.algorithm == name && g.alpha == alpha)
    }

    /// Bound-violation messages over all groups, in the style of
    /// [`crate::ensemble::check_bound`] — empty means every proven
    /// bound held and no cell errored.
    pub fn violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        for g in &self.groups {
            if g.errors > 0 {
                out.push(format!(
                    "{} α={}: {} cell(s) failed the checked pipeline",
                    g.algorithm, g.alpha, g.errors
                ));
            }
            if g.energy_violations > 0 {
                let max = g.energy_ratio.map_or(f64::NAN, |d| d.max);
                out.push(format!(
                    "BOUND VIOLATION: {} energy α={}: measured max {} > proven bound {} \
                     ({} cell(s))",
                    g.algorithm,
                    g.alpha,
                    max,
                    g.energy_bound.unwrap_or(f64::NAN),
                    g.energy_violations
                ));
            }
            if g.speed_violations > 0 {
                let max = g.speed_ratio.map_or(f64::NAN, |d| d.max);
                out.push(format!(
                    "BOUND VIOLATION: {} max-speed α={}: measured max {} > proven bound {} \
                     ({} cell(s))",
                    g.algorithm,
                    g.alpha,
                    max,
                    g.speed_bound.unwrap_or(f64::NAN),
                    g.speed_violations
                ));
            }
        }
        out
    }

    /// The sweep-wide argmax cell of the energy ratio: the group whose
    /// worst cell tops every other group's (first group in spec order
    /// on ties — deterministic like everything else in the aggregate).
    pub fn worst_cell(&self) -> Option<(&GroupAggregate, WorstCell)> {
        let mut best: Option<(&GroupAggregate, WorstCell)> = None;
        for g in &self.groups {
            if let Some(w) = g.worst_cell {
                if best.is_none_or(|(_, b)| w.energy_ratio > b.energy_ratio) {
                    best = Some((g, w));
                }
            }
        }
        best
    }

    /// The deterministic aggregate as JSON: byte-identical for the same
    /// spec at any shard count.
    pub fn aggregate_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n  \"groups\": [");
        for (i, g) in self.groups.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    {");
            s.push_str(&format!("\"algorithm\": \"{}\", ", g.algorithm));
            s.push_str(&format!("\"alpha\": {}, ", g.alpha));
            s.push_str(&format!("\"ok\": {}, \"errors\": {}, ", g.ok, g.errors));
            s.push_str(&format!("\"energy_ratio\": {}, ", json_digest(g.energy_ratio)));
            s.push_str(&format!("\"peak_speed\": {}, ", json_digest(g.peak_speed)));
            s.push_str(&format!("\"speed_ratio\": {}, ", json_digest(g.speed_ratio)));
            s.push_str(&format!(
                "\"energy_bound\": {}, \"energy_violations\": {}, ",
                json_opt(g.energy_bound),
                g.energy_violations
            ));
            s.push_str(&format!(
                "\"speed_bound\": {}, \"speed_violations\": {}, ",
                json_opt(g.speed_bound),
                g.speed_violations
            ));
            s.push_str(&format!("\"worst_cell\": {}", json_worst(g.worst_cell)));
            s.push('}');
        }
        s.push_str("\n  ],\n  \"worst_cell\": ");
        match self.worst_cell() {
            None => s.push_str("null"),
            Some((g, w)) => s.push_str(&format!(
                "{{\"algorithm\": \"{}\", \"alpha\": {}, \"instance\": {}, \"seed\": {}, \
                 \"energy_ratio\": {}}}",
                g.algorithm,
                g.alpha,
                w.instance,
                w.seed.map_or_else(|| "null".to_string(), |s| s.to_string()),
                w.energy_ratio
            )),
        }
        s.push_str("\n}\n");
        s
    }

    /// The run's instrumentation as JSON (wall-clock numbers — dump
    /// this *next to* results, never into them).
    pub fn instrumentation_json(&self) -> String {
        let i = &self.instrumentation;
        let mut s = String::with_capacity(1024);
        s.push_str("{\n");
        s.push_str(&format!("  \"shards\": {},\n", i.shards));
        s.push_str(&format!("  \"cells\": {},\n", i.cells));
        s.push_str(&format!("  \"wall_ms\": {:.3},\n", i.wall.as_secs_f64() * 1e3));
        s.push_str(&format!("  \"cells_per_sec\": {:.1},\n", i.cells_per_sec));
        s.push_str(&format!("  \"cache_hit_rate\": {:.4},\n", i.cache_hit_rate()));
        s.push_str(&format!(
            "  \"cache\": {{\"ctx_hits\": {}, \"ctx_misses\": {}, \"opt_energy_hits\": {}, \
             \"opt_energy_misses\": {}, \"multi_lb_hits\": {}, \"multi_lb_misses\": {}}},\n",
            i.ctx_hits,
            i.ctx_misses,
            i.opt_energy_hits,
            i.opt_energy_misses,
            i.multi_lb_hits,
            i.multi_lb_misses
        ));
        s.push_str("  \"per_shard\": [");
        for (k, sh) in i.per_shard.iter().enumerate() {
            if k > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"cells\": {}, \"busy_ms\": {:.3}}}",
                sh.cells,
                sh.busy.as_secs_f64() * 1e3
            ));
        }
        s.push_str("]\n}\n");
        s
    }
}

/// Shortest-round-trip float or `null`.
fn json_opt(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_string(), |x| format!("{x}"))
}

/// A [`WorstCell`] as a JSON object, or `null`.
fn json_worst(w: Option<WorstCell>) -> String {
    match w {
        None => "null".to_string(),
        Some(w) => format!(
            "{{\"instance\": {}, \"seed\": {}, \"energy_ratio\": {}}}",
            w.instance,
            w.seed.map_or_else(|| "null".to_string(), |s| s.to_string()),
            w.energy_ratio
        ),
    }
}

/// A [`Digest`] as a JSON object, or `null`.
fn json_digest(d: Option<Digest>) -> String {
    match d {
        None => "null".to_string(),
        Some(d) => format!(
            "{{\"n\": {}, \"min\": {}, \"mean\": {}, \"p50\": {}, \"p99\": {}, \"max\": {}}}",
            d.n, d.min, d.mean, d.p50, d.p99, d.max
        ),
    }
}

// ---------------------------------------------------------------------
// The executor
// ---------------------------------------------------------------------

/// Runs the sweep over `shards` work-stealing workers (0 = number of
/// available cores). See the module docs for the full contract; in
/// short: every cell goes through the checked pipeline, per-instance
/// profiles are computed once, and the returned aggregates are
/// deterministic in the spec — independent of `shards`.
pub fn run_sweep(spec: &SweepSpec, shards: usize) -> Result<EngineReport, EngineError> {
    run_sweep_audited(spec, shards, None)
}

/// [`run_sweep`] with an optional runtime invariant auditor threaded
/// through every cell (`qbss sweep --audit`). Each successful cell is
/// re-checked against the paper's guarantees using the instance's
/// memoized [`OptCache`]; findings go to the auditor's tallies and
/// `error!`-level telemetry only, so the returned report — and its
/// serialized bytes — are identical with auditing on or off.
pub fn run_sweep_audited(
    spec: &SweepSpec,
    shards: usize,
    auditor: Option<&qbss_core::audit::Auditor>,
) -> Result<EngineReport, EngineError> {
    spec.validate()?;
    let n_inst = spec.n_instances();
    let n_algs = spec.algorithms.len();
    let n_alphas = spec.alphas.len();
    let n_cells = n_inst * n_algs * n_alphas;
    let shards_used = if shards == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        shards
    }
    .min(n_cells.max(1));

    // Per-group proven bounds, resolved once.
    let group_bounds: Vec<(Option<f64>, Option<f64>)> = spec
        .algorithms
        .iter()
        .flat_map(|alg| {
            spec.alphas.iter().map(move |&alpha| {
                (bounds::energy_ub_for(alg.family(), alpha), bounds::speed_ub_for(alg.family()))
            })
        })
        .collect();

    let contexts: Vec<OnceLock<InstanceCtx>> = (0..n_inst).map(|_| OnceLock::new()).collect();
    let live: Vec<StreamAgg> = (0..n_algs * n_alphas).map(|_| StreamAgg::default()).collect();
    // Run-local registry: the cache counters that used to be a pile of
    // ad-hoc `AtomicU64`s, plus a per-cell latency histogram. The
    // handles are `Arc`s over atomics, so the hot path stays lock-free.
    let metrics = Registry::new();
    let ctx_hits = metrics.counter("engine.ctx.hits");
    let ctx_misses = metrics.counter("engine.ctx.misses");
    let multi_hits = metrics.counter("engine.multi_lb.hits");
    let multi_misses = metrics.counter("engine.multi_lb.misses");
    let cell_errors = metrics.counter("engine.cell.errors");
    let cell_dur_us = metrics.histogram("engine.cell.dur_us", &DURATION_US_BOUNDS);
    let shard_cells: Vec<AtomicU64> = (0..shards_used).map(|_| AtomicU64::new(0)).collect();
    let shard_busy_ns: Vec<AtomicU64> = (0..shards_used).map(|_| AtomicU64::new(0)).collect();

    let mut sweep_span = qbss_telemetry::span!("engine.sweep", {
        cells = n_cells,
        shards = shards_used,
        instances = n_inst,
    });
    let t0 = Instant::now();
    let records: Vec<CellRecord> = crate::par::par_map_stealing(n_cells, shards_used, |shard, id| {
        let started = Instant::now();
        // Canonical cell order: instance outer, algorithm middle, α inner.
        let inst_idx = id / (n_algs * n_alphas);
        let alg_idx = (id / n_alphas) % n_algs;
        let alpha_idx = id % n_alphas;
        let alg = spec.algorithms[alg_idx];
        let alpha = spec.alphas[alpha_idx];
        let cell_span = qbss_telemetry::span!("engine.cell", {
            cell = id,
            instance = inst_idx,
            algorithm = alg.to_string(),
            alpha = alpha,
        });

        // Profile cache: build the instance context exactly once.
        let slot = &contexts[inst_idx];
        let ctx = match slot.get() {
            Some(ctx) => {
                ctx_hits.inc();
                ctx
            }
            None => {
                let mut built_here = false;
                let ctx = slot.get_or_init(|| {
                    built_here = true;
                    InstanceCtx::new(spec.instance(inst_idx))
                });
                if built_here {
                    ctx_misses.inc();
                } else {
                    ctx_hits.inc();
                }
                ctx
            }
        };

        let result = match run_evaluated(&ctx.inst, alpha, alg) {
            Err(e) => {
                cell_errors.inc();
                qbss_telemetry::warn!(
                    "engine.cell",
                    { cell = id, instance = inst_idx, algorithm = alg.to_string() },
                    "cell rejected by the checked pipeline: {e}"
                );
                Err(e.to_string())
            }
            Ok(ev) => {
                if let Some(auditor) = auditor {
                    auditor.audit(&ctx.inst, alpha, alg, &ev, &ctx.opt);
                }
                let queried = ev.outcome.decisions.iter().filter(|d| d.queried).count();
                let (energy_ratio, speed_ratio) = if alg.machines() <= 1 {
                    let opt_e = ctx.opt.energy(alpha);
                    let opt_s = ctx.opt.max_speed();
                    (
                        if opt_e <= 0.0 { 1.0 } else { ev.energy / opt_e },
                        Some(if opt_s <= 0.0 { 1.0 } else { ev.max_speed / opt_s }),
                    )
                } else {
                    let (lb, hit) =
                        ctx.multi_lower_bound(alg.machines(), alpha, spec.opt_fw_iters);
                    if hit {
                        multi_hits.inc();
                    } else {
                        multi_misses.inc();
                    }
                    (if lb <= 0.0 { 1.0 } else { ev.energy / lb }, None)
                };
                Ok(CellMetrics {
                    energy: ev.energy,
                    peak_speed: ev.max_speed,
                    energy_ratio,
                    speed_ratio,
                    queried,
                })
            }
        };

        // Feed the streaming aggregator.
        let group = alg_idx * n_alphas + alpha_idx;
        let (energy_bound, speed_bound) = group_bounds[group];
        match &result {
            Ok(m) => live[group].record_ok(id, m, energy_bound, speed_bound),
            Err(_) => {
                live[group].errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard_cells[shard].fetch_add(1, Ordering::Relaxed);
        let elapsed = started.elapsed();
        shard_busy_ns[shard]
            .fetch_add(elapsed.as_nanos().min(u128::from(u64::MAX)) as u64, Ordering::Relaxed);
        cell_dur_us.record(elapsed.as_secs_f64() * 1e6);
        drop(cell_span);

        CellRecord { instance: inst_idx, algorithm: alg_idx, alpha: alpha_idx, result }
    });
    let wall = t0.elapsed();

    // Canonical-order finalization: means/percentiles in cell order,
    // exact counters and maxima from the streaming aggregator.
    let mut groups = Vec::with_capacity(n_algs * n_alphas);
    for (alg_idx, alg) in spec.algorithms.iter().enumerate() {
        for (alpha_idx, &alpha) in spec.alphas.iter().enumerate() {
            let group = alg_idx * n_alphas + alpha_idx;
            let agg = &live[group];
            let mut energy_ratios = Vec::new();
            let mut peak_speeds = Vec::new();
            let mut speed_ratios = Vec::new();
            let mut worst: Option<(f64, usize)> = None;
            for rec in records
                .iter()
                .filter(|r| r.algorithm == alg_idx && r.alpha == alpha_idx)
            {
                if let Ok(m) = &rec.result {
                    // Strict `>` keeps the first (lowest) instance on ties,
                    // matching the streaming argmax's lowest-cell rule.
                    if worst.is_none_or(|(best, _)| m.energy_ratio > best) {
                        worst = Some((m.energy_ratio, rec.instance));
                    }
                    energy_ratios.push(m.energy_ratio);
                    peak_speeds.push(m.peak_speed);
                    if let Some(s) = m.speed_ratio {
                        speed_ratios.push(s);
                    }
                }
            }
            let energy_ratio = Digest::of(&energy_ratios);
            debug_assert_eq!(
                energy_ratio.map(|d| d.max.to_bits()),
                (agg.ok.load(Ordering::Relaxed) > 0)
                    .then(|| agg.max_energy_ratio_bits.load(Ordering::Relaxed)),
                "streaming max must agree with the canonical pass"
            );
            debug_assert_eq!(
                agg.max_energy_cell
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .map(|(cell, _)| cell / (n_algs * n_alphas)),
                worst.map(|(_, inst)| inst),
                "streaming argmax cell must agree with the canonical pass"
            );
            let worst_cell = worst.map(|(ratio, instance)| WorstCell {
                instance,
                seed: match &spec.source {
                    InstanceSource::Generated { seeds, .. } => Some(seeds.start + instance as u64),
                    InstanceSource::Explicit(_) => None,
                },
                energy_ratio: ratio,
            });
            let (energy_bound, speed_bound) = group_bounds[group];
            groups.push(GroupAggregate {
                algorithm: alg.to_string(),
                alpha,
                ok: agg.ok.load(Ordering::Relaxed) as usize,
                errors: agg.errors.load(Ordering::Relaxed) as usize,
                energy_ratio,
                peak_speed: Digest::of(&peak_speeds),
                speed_ratio: Digest::of(&speed_ratios),
                energy_bound,
                energy_violations: agg.energy_violations.load(Ordering::Relaxed),
                speed_bound,
                speed_violations: agg.speed_violations.load(Ordering::Relaxed),
                worst_cell,
            });
        }
    }

    // OptCache traffic accumulated inside the contexts, mirrored into
    // the run registry so one snapshot covers every cache layer.
    let (opt_hits, opt_misses) = contexts
        .iter()
        .filter_map(OnceLock::get)
        .map(|c| c.opt.counters())
        .fold((0, 0), |(h, m), (ch, cm)| (h + ch, m + cm));
    metrics.counter("engine.opt_energy.hits").add(opt_hits);
    metrics.counter("engine.opt_energy.misses").add(opt_misses);
    let cells_per_sec = if wall.as_secs_f64() > 0.0 {
        n_cells as f64 / wall.as_secs_f64()
    } else {
        f64::INFINITY
    };
    metrics.gauge("engine.cells_per_sec").set(cells_per_sec);
    let instrumentation = Instrumentation {
        shards: shards_used,
        wall,
        cells: n_cells,
        cells_per_sec,
        ctx_hits: ctx_hits.get(),
        ctx_misses: ctx_misses.get(),
        opt_energy_hits: opt_hits,
        opt_energy_misses: opt_misses,
        multi_lb_hits: multi_hits.get(),
        multi_lb_misses: multi_misses.get(),
        per_shard: shard_cells
            .iter()
            .zip(&shard_busy_ns)
            .map(|(c, b)| ShardStats {
                cells: c.load(Ordering::Relaxed),
                busy: Duration::from_nanos(b.load(Ordering::Relaxed)),
            })
            .collect(),
    };
    sweep_span.record("wall_us", wall.as_micros().min(u128::from(u64::MAX)) as u64);
    sweep_span.record("cache_hit_rate", instrumentation.cache_hit_rate());
    drop(sweep_span);
    qbss_telemetry::info!(
        "engine.sweep",
        { cells = n_cells, shards = shards_used, wall_us = wall.as_micros() as u64 },
        "sweep complete: {n_cells} cells in {}",
        qbss_telemetry::fmt_duration(wall)
    );
    qbss_telemetry::emit_metrics("engine", &metrics);

    Ok(EngineReport { groups, records, instrumentation, metrics })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> SweepSpec {
        SweepSpec {
            source: InstanceSource::Generated {
                base: GenConfig::online_default(8, 0),
                seeds: 0..6,
            },
            algorithms: vec![Algorithm::Avrq, Algorithm::Bkpq, Algorithm::AvrqM { m: 2 }],
            alphas: vec![2.0, 3.0],
            opt_fw_iters: 4,
        }
    }

    #[test]
    fn sweep_covers_the_grid_and_caches_profiles() {
        let rep = run_sweep(&small_spec(), 2).expect("valid spec");
        assert_eq!(rep.records.len(), 6 * 3 * 2);
        assert_eq!(rep.groups.len(), 3 * 2);
        for g in &rep.groups {
            assert_eq!(g.ok + g.errors, 6, "{}: every instance accounted for", g.algorithm);
            assert_eq!(g.errors, 0, "{}", g.algorithm);
            let d = g.energy_ratio.expect("ok cells");
            assert!(d.min >= 1.0 - 1e-9, "{}: no algorithm beats its baseline", g.algorithm);
        }
        let i = &rep.instrumentation;
        assert_eq!(i.ctx_misses, 6, "one context per instance");
        assert_eq!(i.ctx_hits, (6 * 3 * 2 - 6) as u64);
        assert!(i.cache_hit_rate() > 0.5, "hit rate {}", i.cache_hit_rate());
        // Multi-machine LB: 2 α values per instance, first is a miss.
        assert_eq!(i.multi_lb_hits + i.multi_lb_misses, 12);
    }

    #[test]
    fn aggregates_are_shard_count_independent() {
        let spec = small_spec();
        let base = run_sweep(&spec, 1).expect("shards=1").aggregate_json();
        for shards in [2, 3, 8] {
            let json = run_sweep(&spec, shards).expect("valid").aggregate_json();
            assert_eq!(json, base, "shards={shards}");
        }
    }

    #[test]
    fn group_lookup_and_violations() {
        let rep = run_sweep(&small_spec(), 2).expect("valid spec");
        let g = rep.group(Algorithm::Avrq, 3.0).expect("group exists");
        assert_eq!(g.algorithm, "avrq");
        assert!(g.energy_bound.is_some());
        assert_eq!(g.energy_violations, 0);
        assert!(rep.group(Algorithm::Oaq, 3.0).is_none());
        assert!(rep.violations().is_empty());
    }

    #[test]
    fn out_of_scope_cells_are_recorded_not_fatal() {
        // Online releases fed to the offline family: typed errors per
        // cell, sweep completes.
        let spec = SweepSpec {
            source: InstanceSource::Generated {
                base: GenConfig::online_default(6, 0),
                seeds: 0..4,
            },
            algorithms: vec![Algorithm::Crad, Algorithm::Avrq],
            alphas: vec![3.0],
            opt_fw_iters: 0,
        };
        let rep = run_sweep(&spec, 2).expect("valid spec");
        let crad = rep.group(Algorithm::Crad, 3.0).expect("group");
        assert_eq!(crad.errors, 4);
        assert!(crad.energy_ratio.is_none());
        let avrq = rep.group(Algorithm::Avrq, 3.0).expect("group");
        assert_eq!(avrq.ok, 4);
        assert!(!rep.violations().is_empty(), "errored cells are reported");
    }

    #[test]
    fn bad_specs_are_typed_errors() {
        let mut spec = small_spec();
        spec.algorithms.clear();
        assert!(matches!(run_sweep(&spec, 1), Err(EngineError::EmptySpec(_))));
        let mut spec = small_spec();
        spec.alphas = vec![1.0];
        assert!(matches!(run_sweep(&spec, 1), Err(EngineError::InvalidAlpha { .. })));
        let spec = SweepSpec {
            source: InstanceSource::Explicit(vec![]),
            algorithms: vec![Algorithm::Avrq],
            alphas: vec![3.0],
            opt_fw_iters: 0,
        };
        assert!(matches!(run_sweep(&spec, 1), Err(EngineError::EmptySpec(_))));
    }

    #[test]
    fn audited_sweep_is_clean_and_byte_identical_for_every_algorithm() {
        // Common-deadline instances keep all nine configurations in
        // scope; a clean sweep must audit every cell with zero
        // violations and identical aggregate bytes.
        let spec = SweepSpec {
            source: InstanceSource::Generated {
                base: GenConfig::common_deadline(8, 8.0, 0),
                seeds: 0..4,
            },
            algorithms: Algorithm::all(2, 6),
            alphas: vec![2.0, 3.0],
            opt_fw_iters: 4,
        };
        let auditor = qbss_core::audit::Auditor::new();
        let audited = run_sweep_audited(&spec, 2, Some(&auditor)).expect("valid spec");
        let n_ok: usize = audited.groups.iter().map(|g| g.ok).sum();
        assert_eq!(n_ok, 4 * 9 * 2, "every cell in scope: {:?}", audited.violations());
        assert_eq!(auditor.checked(), (4 * 9 * 2) as u64);
        assert_eq!(auditor.violations(), 0, "clean runs must audit clean");
        let plain = run_sweep(&spec, 2).expect("valid spec");
        assert_eq!(
            audited.aggregate_json(),
            plain.aggregate_json(),
            "auditing must not perturb aggregate bytes"
        );
    }

    #[test]
    fn explicit_instances_are_supported() {
        let inst = generate(&GenConfig::online_default(5, 7));
        let spec = SweepSpec {
            source: InstanceSource::Explicit(vec![inst]),
            algorithms: vec![Algorithm::Bkpq],
            alphas: vec![3.0],
            opt_fw_iters: 0,
        };
        let rep = run_sweep(&spec, 1).expect("valid spec");
        assert_eq!(rep.records.len(), 1);
        assert!(rep.records[0].result.is_ok());
    }
}
