//! Dependency-free data parallelism for the experiment sweeps.
//!
//! The harness's ensembles are embarrassingly parallel; [`par_map`]
//! fans a slice out over scoped OS threads in contiguous chunks and
//! returns results in input order — the replacement for the rayon
//! parallel iterators this workspace cannot depend on.
//!
//! [`par_map_stealing`] is the batch engine's fan-out: instead of
//! static chunks it hands out indices one at a time from a shared
//! atomic counter, so shards steal work from the common pool and a few
//! slow cells (a large instance, an expensive Frank–Wolfe baseline)
//! cannot strand an entire chunk's worth of idle time on one thread.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Maps `f` over `items` in parallel, preserving order.
///
/// Chunks the input evenly over `available_parallelism` scoped threads;
/// panics in `f` propagate to the caller once all threads are joined.
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let threads = std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .min(items.len().max(1));
    let chunk = items.len().div_ceil(threads).max(1);
    let mut out: Vec<Option<R>> = Vec::new();
    out.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        for (in_chunk, out_chunk) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(|| {
                for (item, slot) in in_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    out.into_iter().map(|r| r.expect("every slot is filled before the scope joins")).collect()
}

/// [`par_map`] over a seed range — the harness's most common shape.
pub fn par_map_seeds<R: Send>(seeds: std::ops::Range<u64>, f: impl Fn(u64) -> R + Sync) -> Vec<R> {
    let list: Vec<u64> = seeds.collect();
    par_map(&list, |&s| f(s))
}

/// Maps `f(shard, index)` over `0..n_items` with `shards` work-stealing
/// workers, returning results in index order.
///
/// Each worker repeatedly claims the next unclaimed index from a shared
/// counter, so load balances dynamically regardless of how uneven the
/// per-index cost is. Exactly one worker evaluates each index; `shard`
/// is the worker's id in `0..shards` (for per-shard instrumentation).
/// `shards == 0` means `available_parallelism`. Panics in `f` propagate
/// once the scope joins.
pub fn par_map_stealing<R: Send>(
    n_items: usize,
    shards: usize,
    f: impl Fn(usize, usize) -> R + Sync,
) -> Vec<R> {
    let shards = if shards == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        shards
    }
    .min(n_items.max(1));
    let next = AtomicUsize::new(0);
    // Worker threads have empty span stacks; capture the caller's span
    // here so each shard's span stitches into the caller's trace tree.
    let parent = qbss_telemetry::current_span_id();
    let mut buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards)
            .map(|shard| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut span =
                        qbss_telemetry::span!(parent: parent, "par.shard", { shard = shard });
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n_items {
                            break;
                        }
                        local.push((i, f(shard, i)));
                    }
                    span.record("items", local.len());
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked; propagating"))
            .collect()
    });
    let mut out: Vec<Option<R>> = Vec::new();
    out.resize_with(n_items, || None);
    for (i, r) in buckets.drain(..).flatten() {
        out[i] = Some(r);
    }
    out.into_iter().map(|r| r.expect("every index is claimed exactly once")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_covers_all_items() {
        let items: Vec<u64> = (0..1000).collect();
        let doubled = par_map(&items, |&x| 2 * x);
        assert_eq!(doubled, items.iter().map(|x| 2 * x).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        assert!(par_map::<u64, u64>(&[], |&x| x).is_empty());
        assert_eq!(par_map(&[7u64], |&x| x + 1), vec![8]);
        assert_eq!(par_map_seeds(0..3, |s| s * s), vec![0, 1, 4]);
    }

    #[test]
    fn stealing_covers_every_index_in_order() {
        for shards in [1, 2, 3, 8] {
            let out = par_map_stealing(100, shards, |_, i| 3 * i);
            assert_eq!(out, (0..100).map(|i| 3 * i).collect::<Vec<_>>(), "{shards} shards");
        }
    }

    #[test]
    fn stealing_claims_each_index_exactly_once() {
        use std::sync::atomic::AtomicU64;
        let claims: Vec<AtomicU64> = (0..64).map(|_| AtomicU64::new(0)).collect();
        let _ = par_map_stealing(64, 4, |shard, i| {
            claims[i].fetch_add(1, Ordering::Relaxed);
            assert!(shard < 4);
            i
        });
        assert!(claims.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn stealing_edge_cases() {
        assert!(par_map_stealing::<u64>(0, 4, |_, i| i as u64).is_empty());
        assert_eq!(par_map_stealing(1, 8, |_, i| i + 1), vec![1]);
        // shards = 0 → auto parallelism.
        assert_eq!(par_map_stealing(5, 0, |_, i| i), vec![0, 1, 2, 3, 4]);
    }
}
