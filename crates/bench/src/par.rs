//! Dependency-free data parallelism for the experiment sweeps.
//!
//! The harness's ensembles are embarrassingly parallel; [`par_map`]
//! fans a slice out over scoped OS threads in contiguous chunks and
//! returns results in input order — the replacement for the rayon
//! parallel iterators this workspace cannot depend on.

/// Maps `f` over `items` in parallel, preserving order.
///
/// Chunks the input evenly over `available_parallelism` scoped threads;
/// panics in `f` propagate to the caller once all threads are joined.
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let threads = std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .min(items.len().max(1));
    let chunk = items.len().div_ceil(threads).max(1);
    let mut out: Vec<Option<R>> = Vec::new();
    out.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        for (in_chunk, out_chunk) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(|| {
                for (item, slot) in in_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    out.into_iter().map(|r| r.expect("every slot is filled before the scope joins")).collect()
}

/// [`par_map`] over a seed range — the harness's most common shape.
pub fn par_map_seeds<R: Send>(seeds: std::ops::Range<u64>, f: impl Fn(u64) -> R + Sync) -> Vec<R> {
    let list: Vec<u64> = seeds.collect();
    par_map(&list, |&s| f(s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_covers_all_items() {
        let items: Vec<u64> = (0..1000).collect();
        let doubled = par_map(&items, |&x| 2 * x);
        assert_eq!(doubled, items.iter().map(|x| 2 * x).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        assert!(par_map::<u64, u64>(&[], |&x| x).is_empty());
        assert_eq!(par_map(&[7u64], |&x| x + 1), vec![8]);
        assert_eq!(par_map_seeds(0..3, |s| s * s), vec![0, 1, 4]);
    }
}
