//! # qbss-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §4):
//!
//! | binary | experiment | paper artifact |
//! |--------|------------|----------------|
//! | `exp_lower_bounds` | E1 | Table 1 lower bounds; Lemmas 4.1–4.5 |
//! | `exp_table1_offline` | E2–E4 | Table 1, CRCD/CRP2D/CRAD rows |
//! | `exp_rho_table` | E5 | §4.2 ρ-comparison table |
//! | `exp_table1_online` | E6–E7 | Table 1, AVRQ/BKPQ rows; Thms 5.2/5.4 |
//! | `exp_multimachine` | E8 | Table 1, AVRQ(m) row; Thm 6.3 |
//! | `exp_fig1_transform` | E9 | Figure 1 + the Lemma 4.9/4.10 chain |
//! | `exp_ablation_split` | E10 | splitting-point sweep |
//! | `exp_ablation_threshold` | E10 | query-threshold sweep + OAQ |
//!
//! Run all of them with `cargo run --release -p qbss-bench --bin <name>`;
//! each prints the paper's rows next to the measured values and exits
//! non-zero if a *proven* bound is violated by a measurement (so the
//! harness doubles as an acceptance test).
//!
//! This crate also hosts the performance benches
//! (`cargo bench -p qbss-bench`), built on the dependency-free
//! [`timing`] harness.

#![warn(missing_docs)]

pub mod complexity;
pub mod engine;
pub mod ensemble;
pub mod par;
pub mod perf;
pub mod quality;
pub mod request;
pub mod search;
pub mod stream;
pub mod table;
pub mod timing;

pub use engine::{
    run_sweep, run_sweep_audited, CellMetrics, CellRecord, Digest, EngineError, EngineReport,
    GroupAggregate, InstanceSource, Instrumentation, StreamAgg, SweepSpec,
};
pub use engine::WorstCell;
pub use complexity::{ComplexityBaseline, ComplexityCompare, ComplexityError};
pub use ensemble::{measure_ensemble, EnsembleReport};
pub use quality::{BuildInfo, QualityBaseline, QualityCompare, QualityError};
pub use par::{par_map, par_map_seeds, par_map_stealing};
pub use request::{RequestError, SweepRequest};
pub use search::coordinate_ascent;
pub use stream::StreamSession;
pub use table::Table;
pub use timing::BenchGroup;
