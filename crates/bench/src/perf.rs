//! Statistical perf baselines: named sweep scenarios, warmup + repeat
//! measurement, and a noise-aware regression gate.
//!
//! `qbss perf record` runs every requested [`Scenario`] through the
//! sharded engine with `warmup` discarded runs followed by `repeats`
//! timed ones, and serializes median / MAD / min wall times plus an
//! environment fingerprint into a canonical baseline JSON
//! (`BENCH_baseline.json` in the repo root). `qbss perf compare` diffs
//! two baselines; `qbss perf gate` turns a regression into exit code 3
//! so CI can enforce it.
//!
//! The regression rule is deliberately noise-aware: a scenario regresses
//! only when the new median exceeds the old one by more than
//! `max(mad_factor · MAD, min_rel · median)` — MAD (median absolute
//! deviation) is a robust spread estimate, and the relative floor keeps
//! 1-core CI hosts with near-zero MAD from flaking. Defaults
//! ([`Threshold::default`]) are 3×MAD with a 25% floor.

use std::collections::BTreeMap;
use std::fmt;
use std::time::Instant;

use qbss_core::model::QbssInstance;
use qbss_core::pipeline::{run_evaluated, Algorithm};
use qbss_instances::gen::{generate, Compressibility, GenConfig, QueryModel, TimeModel};
use qbss_telemetry::profile::{PathDelta, Profile, PROFILE_SCHEMA};
use qbss_telemetry::{json_escape, json_f64, json_parse, JsonValue, RingSink};

use crate::engine::{run_sweep, EngineError, InstanceSource, SweepSpec};

/// The on-disk schema tag; bump on incompatible baseline changes.
pub const BASELINE_SCHEMA: &str = "qbss-perf-baseline/1";

// ---------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------

/// A named, fully pinned workload. Everything about it is deterministic
/// (seeded generators, fixed grids); only wall time varies between runs.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Stable name (the baseline JSON key and the `--scenarios` token).
    pub name: &'static str,
    /// One-line description for `qbss perf record` output.
    pub description: &'static str,
    kind: Kind,
}

/// What a scenario actually runs when timed.
#[derive(Debug, Clone, Copy)]
enum Kind {
    /// A sweep through the sharded engine (OPT substrate, caches,
    /// aggregation — the end-to-end cost a `qbss sweep` user pays).
    Sweep(fn() -> SweepSpec),
    /// Direct `run_evaluated` calls on pre-generated instances, with no
    /// engine OPT substrate: the solver's own arrival path dominates
    /// the wall time, so solver-level wins and regressions are not
    /// diluted by the (identical-on-both-sides) clairvoyant YDS cost.
    Eval(fn() -> EvalSpec),
}

/// A pinned direct-evaluation workload (see [`Kind::Eval`]).
pub struct EvalSpec {
    /// Pre-generated instances; generation happens at build time and is
    /// excluded from the timed region.
    pub instances: Vec<QbssInstance>,
    /// The configuration under measurement.
    pub alg: Algorithm,
    /// Energy exponent.
    pub alpha: f64,
}

/// A scenario's built workload, constructed once before warmup.
enum Prepared {
    Sweep(SweepSpec),
    Eval(EvalSpec),
}

impl Prepared {
    /// Grid size recorded in the baseline (`cells` in the JSON): sweep
    /// cells, or instances × 1 algorithm × 1 α for eval scenarios.
    fn cells(&self) -> usize {
        match self {
            Prepared::Sweep(spec) => spec.n_cells(),
            Prepared::Eval(spec) => spec.instances.len(),
        }
    }

    /// Runs the workload once (one timed or warmup repetition).
    fn run_once(&self, shards: usize) -> Result<(), PerfError> {
        match self {
            Prepared::Sweep(spec) => {
                run_sweep(spec, shards)?;
            }
            Prepared::Eval(spec) => {
                for inst in &spec.instances {
                    run_evaluated(inst, spec.alpha, spec.alg)
                        .map_err(|e| PerfError::Cell(e.to_string()))?;
                }
            }
        }
        Ok(())
    }
}

impl Scenario {
    /// The pinned sweep spec this scenario measures, or `None` for
    /// direct-evaluation scenarios that bypass the engine.
    pub fn spec(&self) -> Option<SweepSpec> {
        match self.kind {
            Kind::Sweep(build) => Some(build()),
            Kind::Eval(_) => None,
        }
    }

    /// Builds the workload (generating instances for eval scenarios).
    fn prepare(&self) -> Prepared {
        match self.kind {
            Kind::Sweep(build) => Prepared::Sweep(build()),
            Kind::Eval(build) => Prepared::Eval(build()),
        }
    }
}

// Sized so one run takes tens of milliseconds even on a slow 1-core
// host: long enough that scheduler noise amortizes below the gate's
// 25% floor, short enough that warmup + 5 repeats stays under a second.
fn ci_small() -> SweepSpec {
    SweepSpec {
        source: InstanceSource::Generated {
            base: GenConfig::common_deadline(10, 8.0, 0),
            seeds: 0..400,
        },
        algorithms: vec![Algorithm::Avrq, Algorithm::Bkpq, Algorithm::Oaq],
        alphas: vec![2.0, 3.0],
        opt_fw_iters: 0,
    }
}

fn engine_all() -> SweepSpec {
    SweepSpec {
        source: InstanceSource::Generated {
            base: GenConfig::common_deadline(8, 8.0, 0),
            seeds: 0..8,
        },
        algorithms: Algorithm::all(2, 6),
        alphas: vec![2.0, 3.0],
        opt_fw_iters: 4,
    }
}

fn online_large() -> SweepSpec {
    SweepSpec {
        source: InstanceSource::Generated {
            base: GenConfig::online_default(40, 0),
            seeds: 0..16,
        },
        algorithms: vec![Algorithm::Avrq, Algorithm::Bkpq, Algorithm::Oaq],
        alphas: vec![3.0],
        opt_fw_iters: 0,
    }
}

fn multi_machine() -> SweepSpec {
    SweepSpec {
        source: InstanceSource::Generated {
            base: GenConfig::online_default(16, 0),
            seeds: 0..8,
        },
        algorithms: vec![
            Algorithm::AvrqM { m: 3 },
            Algorithm::AvrqMNonmig { m: 3 },
            Algorithm::OaqM { m: 3, fw_iters: 10 },
        ],
        alphas: vec![3.0],
        opt_fw_iters: 4,
    }
}

/// The exact sweep shape `qbss loadgen` POSTs to `/sweep` (count 3,
/// avrq+bkpq, α ∈ {2, 3}), so the serve plane's per-request work has a
/// pinned offline twin the perf gate can hold: if this cell gets
/// slower, serve-mode p99 moves with it.
fn serve_sweep() -> SweepSpec {
    SweepSpec {
        source: InstanceSource::Generated {
            base: GenConfig {
                n: 8,
                seed: 0,
                time: TimeModel::from_name("common", 8).expect("known family"),
                min_w: 0.5,
                max_w: 4.0,
                query: QueryModel::UniformFraction { lo: 0.1, hi: 0.6 },
                compress: Compressibility::Uniform,
            },
            seeds: 0..3,
        },
        algorithms: vec![Algorithm::Avrq, Algorithm::Bkpq],
        alphas: vec![2.0, 3.0],
        opt_fw_iters: 8,
    }
}

/// The OA arrival path at session scale: two dense online instances of
/// 1200 jobs each (≈ 60 jobs active at any time), evaluated directly so
/// the per-arrival solver cost *is* the measurement. This is the
/// scenario that holds the incremental (streaming) OA win: a regression
/// back to per-event re-solves blows far past the gate limit.
fn stream_large() -> EvalSpec {
    let base = GenConfig {
        n: 1200,
        seed: 0,
        time: TimeModel::Online { horizon: 100.0, min_len: 2.0, max_len: 8.0 },
        min_w: 0.5,
        max_w: 4.0,
        query: QueryModel::UniformFraction { lo: 0.1, hi: 0.6 },
        compress: Compressibility::Uniform,
    };
    EvalSpec {
        instances: (0..2).map(|seed| generate(&GenConfig { seed, ..base })).collect(),
        alg: Algorithm::Oaq,
        alpha: 3.0,
    }
}

/// Every named scenario, in canonical order.
pub fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "ci-small",
            description: "3 online algorithms × 2 α × 400 common-deadline instances (n=10)",
            kind: Kind::Sweep(ci_small),
        },
        Scenario {
            name: "engine-all",
            description: "all 9 configurations × 2 α × 8 common-deadline instances (n=8)",
            kind: Kind::Sweep(engine_all),
        },
        Scenario {
            name: "online-large",
            description: "3 online algorithms × 16 online instances (n=40)",
            kind: Kind::Sweep(online_large),
        },
        Scenario {
            name: "multi-machine",
            description: "3 multi-machine configurations (m=3) × 8 online instances (n=16)",
            kind: Kind::Sweep(multi_machine),
        },
        Scenario {
            name: "serve-sweep",
            description: "the loadgen /sweep payload: avrq+bkpq × 2 α × 3 instances (n=8)",
            kind: Kind::Sweep(serve_sweep),
        },
        Scenario {
            name: "stream-large",
            description: "the OA arrival path: oaq × 2 dense online instances (n=1200)",
            kind: Kind::Eval(stream_large),
        },
    ]
}

/// Looks up a scenario by name.
pub fn scenario(name: &str) -> Option<Scenario> {
    scenarios().into_iter().find(|s| s.name == name)
}

// ---------------------------------------------------------------------
// Recording
// ---------------------------------------------------------------------

/// How a recording run measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerfConfig {
    /// Discarded warmup runs per scenario.
    pub warmup: usize,
    /// Timed runs per scenario (the sample set).
    pub repeats: usize,
    /// Engine shard count (0 = available cores).
    pub shards: usize,
}

impl Default for PerfConfig {
    fn default() -> Self {
        Self { warmup: 1, repeats: 5, shards: 1 }
    }
}

/// Robust statistics of one scenario's timed runs.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioStats {
    /// Grid size of the measured sweep (`spec.n_cells()`).
    pub cells: usize,
    /// Every timed sample, ms, in run order.
    pub samples_ms: Vec<f64>,
    /// Median of the samples, ms.
    pub median_ms: f64,
    /// Median absolute deviation of the samples, ms.
    pub mad_ms: f64,
    /// Fastest sample, ms.
    pub min_ms: f64,
}

/// Where and how a baseline was recorded. Compared baselines from
/// different environments are still diffable — the fingerprint is
/// informational, surfaced in reports so cross-host noise is explicable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvFingerprint {
    /// Hostname (best effort; `"unknown"` when undiscoverable).
    pub host: String,
    /// `std::env::consts::OS`.
    pub os: String,
    /// `std::env::consts::ARCH`.
    pub arch: String,
    /// Available cores at record time.
    pub cores: usize,
    /// `rustc --version` output (best effort).
    pub rustc: String,
}

impl EnvFingerprint {
    /// Captures the current environment.
    pub fn capture() -> Self {
        let host = std::env::var("HOSTNAME")
            .ok()
            .filter(|h| !h.is_empty())
            .or_else(|| {
                std::fs::read_to_string("/proc/sys/kernel/hostname")
                    .ok()
                    .map(|h| h.trim().to_string())
                    .filter(|h| !h.is_empty())
            })
            .unwrap_or_else(|| "unknown".to_string());
        let rustc = std::process::Command::new("rustc")
            .arg("--version")
            .output()
            .ok()
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string());
        Self {
            host,
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            cores: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            rustc,
        }
    }
}

/// A recorded perf baseline: fingerprint, recording config, and one
/// [`ScenarioStats`] per scenario. Serializes canonically (sorted
/// scenario keys, fixed field order) so re-recording an identical
/// machine state diffs cleanly.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Environment the baseline was recorded on.
    pub env: EnvFingerprint,
    /// The recording configuration.
    pub config: PerfConfig,
    /// Stats by scenario name (sorted).
    pub scenarios: BTreeMap<String, ScenarioStats>,
    /// Per-scenario span profiles folded over the timed repeats —
    /// present only when recorded with profiling (`qbss perf record
    /// --profile`); the schema-versioned `profiles` section of the
    /// JSON. Gate attribution needs both sides to carry one.
    pub profiles: BTreeMap<String, Profile>,
    /// Per-scenario deterministic work-counter snapshot — one run's
    /// exact op counts (see [`qbss_core::work::WORK_COUNTERS`]),
    /// captured beside the timings. The gate cross-references them:
    /// a wall-clock regression with byte-identical counters is timer
    /// noise, one with moved counters is real extra work. Optional
    /// schema-versioned section; pre-observatory baselines omit it.
    pub work_counters: BTreeMap<String, BTreeMap<String, u64>>,
}

/// Schema tag of the optional `work_counters` baseline section.
pub const WORK_SCHEMA: &str = "qbss-perf-work/1";

/// Failures of the perf layer.
#[derive(Debug)]
pub enum PerfError {
    /// `--scenarios` named something that doesn't exist.
    UnknownScenario(String),
    /// A baseline file didn't match the schema.
    Parse(String),
    /// The engine rejected a scenario spec (a bug in the scenario
    /// table).
    Engine(EngineError),
    /// A direct-evaluation scenario cell failed (a bug in the scenario
    /// table).
    Cell(String),
}

impl fmt::Display for PerfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PerfError::UnknownScenario(name) => {
                let known: Vec<&str> = scenarios().iter().map(|s| s.name).collect();
                write!(f, "unknown scenario `{name}` (expected one of: {})", known.join(", "))
            }
            PerfError::Parse(reason) => write!(f, "invalid perf baseline: {reason}"),
            PerfError::Engine(e) => write!(f, "scenario failed to run: {e}"),
            PerfError::Cell(reason) => write!(f, "scenario cell failed to run: {reason}"),
        }
    }
}

impl std::error::Error for PerfError {}

impl From<EngineError> for PerfError {
    fn from(e: EngineError) -> Self {
        PerfError::Engine(e)
    }
}

/// Median of `xs` (0 when empty). Robust location estimate: the average
/// of the two middle order statistics for even lengths.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// Median absolute deviation of `xs` around `center` (0 for fewer than
/// two samples).
pub fn mad(xs: &[f64], center: f64) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let devs: Vec<f64> = xs.iter().map(|&x| (x - center).abs()).collect();
    median(&devs)
}

/// Runs `names` (all scenarios when empty) under `config` and returns
/// the recorded baseline (no profiles — see [`record_profiled`]).
pub fn record(names: &[String], config: PerfConfig) -> Result<Baseline, PerfError> {
    record_profiled(names, config, None)
}

/// [`record`], optionally folding a span profile per scenario.
///
/// `profile_ring` is the live ring sink the caller installed as the
/// telemetry pipeline (spans on): the recorder drains it after warmup
/// — discarding warmup spans — and once per timed repeat, so each
/// scenario's [`Profile`] folds exactly the spans of its own
/// `repeats` timed runs. Pass `None` to record timings only.
pub fn record_profiled(
    names: &[String],
    config: PerfConfig,
    profile_ring: Option<&RingSink>,
) -> Result<Baseline, PerfError> {
    let picked: Vec<Scenario> = if names.is_empty() {
        scenarios()
    } else {
        names
            .iter()
            .map(|n| scenario(n).ok_or_else(|| PerfError::UnknownScenario(n.clone())))
            .collect::<Result<_, _>>()?
    };
    let mut stats = BTreeMap::new();
    let mut profiles = BTreeMap::new();
    let mut work_counters = BTreeMap::new();
    for sc in picked {
        let prepared = sc.prepare();
        let cells = prepared.cells();
        let _span = qbss_telemetry::span!("perf.scenario", {
            scenario = sc.name,
            cells = cells,
            repeats = config.repeats,
        });
        for _ in 0..config.warmup {
            prepared.run_once(config.shards)?;
        }
        // Warmup (and any previous scenario's tail) is not profiled.
        if let Some(ring) = profile_ring {
            ring.drain_contents();
        }
        let mut samples_ms = Vec::with_capacity(config.repeats);
        let mut span_records = Vec::new();
        for rep in 0..config.repeats.max(1) {
            // Work counters are deterministic per run, so bracketing
            // the first timed repeat captures the scenario's exact
            // per-run op counts with no extra execution.
            let counters_before =
                (rep == 0).then(|| qbss_telemetry::metrics().counter_values());
            let t0 = Instant::now();
            prepared.run_once(config.shards)?;
            samples_ms.push(t0.elapsed().as_secs_f64() * 1e3);
            if let Some(before) = counters_before {
                let after = qbss_telemetry::metrics().counter_values();
                let delta: BTreeMap<String, u64> = after
                    .into_iter()
                    .filter(|(name, _)| qbss_core::work::is_work_counter(name))
                    .map(|(name, v)| {
                        let d = v - before.get(&name).copied().unwrap_or(0);
                        (name, d)
                    })
                    .filter(|&(_, d)| d > 0)
                    .collect();
                work_counters.insert(sc.name.to_string(), delta);
            }
            if let Some(ring) = profile_ring {
                let jsonl = ring.drain_contents();
                let records = qbss_telemetry::trace::parse_trace(&jsonl)
                    .map_err(|e| PerfError::Parse(format!("profile ring: {e}")))?;
                span_records.extend(records);
            }
        }
        let median_ms = median(&samples_ms);
        let mad_ms = mad(&samples_ms, median_ms);
        let min_ms = samples_ms.iter().copied().fold(f64::INFINITY, f64::min);
        qbss_telemetry::info!(
            "perf.scenario",
            { scenario = sc.name, median_ms = median_ms, mad_ms = mad_ms },
            "{}: median {median_ms:.1} ms over {} runs",
            sc.name,
            samples_ms.len()
        );
        if profile_ring.is_some() {
            profiles.insert(sc.name.to_string(), Profile::from_records(&span_records));
        }
        stats.insert(
            sc.name.to_string(),
            ScenarioStats { cells, samples_ms, median_ms, mad_ms, min_ms },
        );
    }
    Ok(Baseline {
        env: EnvFingerprint::capture(),
        config,
        scenarios: stats,
        profiles,
        work_counters,
    })
}

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

impl Baseline {
    /// Canonical, human-diffable JSON (trailing newline included).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema\": \"{}\",\n", json_escape(BASELINE_SCHEMA)));
        out.push_str(&format!(
            "  \"env\": {{\"host\": \"{}\", \"os\": \"{}\", \"arch\": \"{}\", \
             \"cores\": {}, \"rustc\": \"{}\"}},\n",
            json_escape(&self.env.host),
            json_escape(&self.env.os),
            json_escape(&self.env.arch),
            self.env.cores,
            json_escape(&self.env.rustc),
        ));
        out.push_str(&format!(
            "  \"config\": {{\"warmup\": {}, \"repeats\": {}, \"shards\": {}}},\n",
            self.config.warmup, self.config.repeats, self.config.shards
        ));
        out.push_str("  \"scenarios\": {\n");
        let n = self.scenarios.len();
        for (i, (name, s)) in self.scenarios.iter().enumerate() {
            let samples = s
                .samples_ms
                .iter()
                .map(|&x| json_f64(x))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "    \"{}\": {{\"cells\": {}, \"median_ms\": {}, \"mad_ms\": {}, \
                 \"min_ms\": {}, \"samples_ms\": [{samples}]}}{}\n",
                json_escape(name),
                s.cells,
                json_f64(s.median_ms),
                json_f64(s.mad_ms),
                json_f64(s.min_ms),
                if i + 1 < n { "," } else { "" },
            ));
        }
        out.push_str("  }");
        if !self.profiles.is_empty() {
            // Schema-versioned, optional: baselines recorded without
            // --profile (and every pre-profiling baseline) omit it.
            out.push_str(",\n  \"profiles\": {\n");
            out.push_str(&format!("    \"schema\": \"{}\",\n", json_escape(PROFILE_SCHEMA)));
            out.push_str("    \"scenarios\": {\n");
            let n = self.profiles.len();
            for (i, (name, p)) in self.profiles.iter().enumerate() {
                out.push_str(&format!(
                    "      \"{}\": {}{}\n",
                    json_escape(name),
                    p.to_json(),
                    if i + 1 < n { "," } else { "" },
                ));
            }
            out.push_str("    }\n  }");
        }
        if !self.work_counters.is_empty() {
            // Same optional-section shape as `profiles`: pre-observatory
            // baselines omit it and still parse.
            out.push_str(",\n  \"work_counters\": {\n");
            out.push_str(&format!("    \"schema\": \"{}\",\n", json_escape(WORK_SCHEMA)));
            out.push_str("    \"scenarios\": {\n");
            let n = self.work_counters.len();
            for (i, (name, counters)) in self.work_counters.iter().enumerate() {
                let body: Vec<String> = counters
                    .iter()
                    .map(|(c, v)| format!("\"{}\": {v}", json_escape(c)))
                    .collect();
                out.push_str(&format!(
                    "      \"{}\": {{{}}}{}\n",
                    json_escape(name),
                    body.join(", "),
                    if i + 1 < n { "," } else { "" },
                ));
            }
            out.push_str("    }\n  }");
        }
        out.push_str("\n}\n");
        out
    }

    /// Parses a baseline produced by [`Baseline::to_json`].
    pub fn parse(input: &str) -> Result<Baseline, PerfError> {
        let bad = |reason: &str| PerfError::Parse(reason.to_string());
        let v = json_parse(input).map_err(|e| PerfError::Parse(e.to_string()))?;
        let schema = v.get("schema").and_then(JsonValue::as_str).unwrap_or_default();
        if schema != BASELINE_SCHEMA {
            return Err(PerfError::Parse(format!(
                "schema `{schema}` (expected `{BASELINE_SCHEMA}`)"
            )));
        }
        let env = v.get("env").ok_or_else(|| bad("missing `env`"))?;
        let get_str = |obj: &JsonValue, key: &str| -> String {
            obj.get(key).and_then(JsonValue::as_str).unwrap_or("unknown").to_string()
        };
        let env = EnvFingerprint {
            host: get_str(env, "host"),
            os: get_str(env, "os"),
            arch: get_str(env, "arch"),
            cores: env.get("cores").and_then(JsonValue::as_u64).unwrap_or(1) as usize,
            rustc: get_str(env, "rustc"),
        };
        let cfg = v.get("config").ok_or_else(|| bad("missing `config`"))?;
        let get_usize = |obj: &JsonValue, key: &str, default: usize| -> usize {
            obj.get(key).and_then(JsonValue::as_u64).map_or(default, |n| n as usize)
        };
        let config = PerfConfig {
            warmup: get_usize(cfg, "warmup", 0),
            repeats: get_usize(cfg, "repeats", 0),
            shards: get_usize(cfg, "shards", 1),
        };
        let JsonValue::Obj(entries) = v.get("scenarios").ok_or_else(|| bad("missing `scenarios`"))?
        else {
            return Err(bad("`scenarios` must be an object"));
        };
        let mut scenarios = BTreeMap::new();
        for (name, s) in entries {
            let need_f64 = |key: &str| -> Result<f64, PerfError> {
                s.get(key).and_then(JsonValue::as_f64).ok_or_else(|| {
                    PerfError::Parse(format!("scenario `{name}`: missing number `{key}`"))
                })
            };
            let samples_ms = match s.get("samples_ms") {
                Some(JsonValue::Arr(items)) => items
                    .iter()
                    .map(|x| {
                        x.as_f64().ok_or_else(|| {
                            PerfError::Parse(format!("scenario `{name}`: non-numeric sample"))
                        })
                    })
                    .collect::<Result<Vec<f64>, _>>()?,
                _ => {
                    return Err(PerfError::Parse(format!(
                        "scenario `{name}`: missing `samples_ms` array"
                    )))
                }
            };
            scenarios.insert(
                name.clone(),
                ScenarioStats {
                    cells: s.get("cells").and_then(JsonValue::as_u64).unwrap_or(0) as usize,
                    samples_ms,
                    median_ms: need_f64("median_ms")?,
                    mad_ms: need_f64("mad_ms")?,
                    min_ms: need_f64("min_ms")?,
                },
            );
        }
        let mut profiles = BTreeMap::new();
        if let Some(section) = v.get("profiles") {
            let schema =
                section.get("schema").and_then(JsonValue::as_str).unwrap_or_default();
            if schema != PROFILE_SCHEMA {
                return Err(PerfError::Parse(format!(
                    "profiles schema `{schema}` (expected `{PROFILE_SCHEMA}`)"
                )));
            }
            let JsonValue::Obj(entries) = section
                .get("scenarios")
                .ok_or_else(|| bad("`profiles` missing `scenarios`"))?
            else {
                return Err(bad("`profiles.scenarios` must be an object"));
            };
            for (name, p) in entries {
                let profile = Profile::from_json(p).map_err(|e| {
                    PerfError::Parse(format!("profile for scenario `{name}`: {e}"))
                })?;
                profiles.insert(name.clone(), profile);
            }
        }
        let mut work_counters = BTreeMap::new();
        if let Some(section) = v.get("work_counters") {
            let schema =
                section.get("schema").and_then(JsonValue::as_str).unwrap_or_default();
            if schema != WORK_SCHEMA {
                return Err(PerfError::Parse(format!(
                    "work_counters schema `{schema}` (expected `{WORK_SCHEMA}`)"
                )));
            }
            let JsonValue::Obj(entries) = section
                .get("scenarios")
                .ok_or_else(|| bad("`work_counters` missing `scenarios`"))?
            else {
                return Err(bad("`work_counters.scenarios` must be an object"));
            };
            for (name, c) in entries {
                let JsonValue::Obj(counters) = c else {
                    return Err(PerfError::Parse(format!(
                        "work counters for scenario `{name}` must be an object"
                    )));
                };
                let mut map = BTreeMap::new();
                for (counter, value) in counters {
                    let v = value.as_u64().ok_or_else(|| {
                        PerfError::Parse(format!(
                            "scenario `{name}` counter `{counter}`: non-integer count"
                        ))
                    })?;
                    map.insert(counter.clone(), v);
                }
                work_counters.insert(name.clone(), map);
            }
        }
        Ok(Baseline { env, config, scenarios, profiles, work_counters })
    }
}

// ---------------------------------------------------------------------
// Comparison / gating
// ---------------------------------------------------------------------

/// The noise-aware regression threshold (see module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Threshold {
    /// How many base-MADs of slack a scenario gets.
    pub mad_factor: f64,
    /// Relative floor on the slack, as a fraction of the base median.
    pub min_rel: f64,
}

impl Default for Threshold {
    fn default() -> Self {
        Self { mad_factor: 3.0, min_rel: 0.25 }
    }
}

impl Threshold {
    /// The slowest acceptable new median for a scenario with base
    /// statistics `(median, mad)`.
    pub fn limit_ms(&self, base_median_ms: f64, base_mad_ms: f64) -> f64 {
        base_median_ms
            + (self.mad_factor * base_mad_ms).max(self.min_rel * base_median_ms)
    }
}

/// How many call paths a regression is attributed to at most.
pub const BLAME_TOP_K: usize = 5;

/// One call path blamed for a scenario regression: its per-run self
/// time moved by more than the scenario's own noise threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct PathBlame {
    /// The call path in folded spelling (`a;b;c`).
    pub path: String,
    /// Base self time per timed run, ms.
    pub base_self_ms: f64,
    /// New self time per timed run, ms.
    pub new_self_ms: f64,
    /// Call count in the base profile (all repeats).
    pub base_count: u64,
    /// Call count in the new profile (all repeats).
    pub new_count: u64,
}

impl PathBlame {
    /// Per-run self-time change, ms (positive = slower).
    pub fn delta_ms(&self) -> f64 {
        self.new_self_ms - self.base_self_ms
    }
}

/// One scenario's diff between two baselines.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioDelta {
    /// Scenario name.
    pub name: String,
    /// Base median, ms (`None` when the scenario is new).
    pub base_ms: Option<f64>,
    /// Base MAD, ms (`None` when the scenario is new).
    pub base_mad_ms: Option<f64>,
    /// New median, ms (`None` when the scenario disappeared).
    pub new_ms: Option<f64>,
    /// The threshold the new median had to stay under, ms.
    pub limit_ms: Option<f64>,
    /// Whether this scenario regressed.
    pub regressed: bool,
    /// Both baselines carried a profile for this scenario.
    pub has_profiles: bool,
    /// The *base* baseline carried a profile for this scenario —
    /// distinguishes a pre-profiling committed baseline ("no profile
    /// data in baseline") from a new run recorded without `--profile`.
    pub base_has_profile: bool,
    /// For a regressed, profiled scenario: the top call paths (at
    /// most [`BLAME_TOP_K`]) whose per-run self time grew past the
    /// noise threshold, largest delta first.
    pub blame: Vec<PathBlame>,
    /// Work-counter cross-reference, for a regressed scenario where
    /// both baselines carry a counter snapshot: the counters whose
    /// per-run op counts differ. `Some(vec![])` means every counter is
    /// byte-identical — the wall-clock regression is timer noise, not
    /// extra work. `None` when either side lacks a snapshot.
    pub counter_moves: Option<Vec<CounterMove>>,
}

/// One work counter whose per-run count changed between two baselines.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterMove {
    /// Catalogued counter name.
    pub counter: String,
    /// Count in the base snapshot (0 when absent).
    pub base: u64,
    /// Count in the new snapshot (0 when absent).
    pub new: u64,
}

impl CounterMove {
    /// Relative change in percent, when the base count is positive.
    pub fn percent(&self) -> Option<f64> {
        (self.base > 0)
            .then(|| (self.new as f64 - self.base as f64) / self.base as f64 * 100.0)
    }
}

/// The counters whose counts differ between two snapshots, name order.
fn counter_moves(
    base: &BTreeMap<String, u64>,
    new: &BTreeMap<String, u64>,
) -> Vec<CounterMove> {
    let mut names: Vec<&String> = base.keys().collect();
    names.extend(new.keys().filter(|k| !base.contains_key(*k)));
    names.sort();
    names
        .into_iter()
        .filter_map(|name| {
            let b = base.get(name).copied().unwrap_or(0);
            let n = new.get(name).copied().unwrap_or(0);
            (b != n).then(|| CounterMove { counter: name.clone(), base: b, new: n })
        })
        .collect()
}

/// Everything `qbss perf compare` / `gate` reports.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompareReport {
    /// Per-scenario deltas, in name order.
    pub deltas: Vec<ScenarioDelta>,
}

impl CompareReport {
    /// The regressed scenarios.
    pub fn regressions(&self) -> Vec<&ScenarioDelta> {
        self.deltas.iter().filter(|d| d.regressed).collect()
    }

    /// Human-readable table: one line per scenario plus a verdict.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.deltas {
            let fmt_opt = |v: Option<f64>| {
                v.map_or("-".to_string(), |x| format!("{x:.1}"))
            };
            let verdict = match (d.regressed, d.new_ms, d.base_ms) {
                (true, _, _) => "REGRESSED",
                (false, None, _) => "removed",
                (false, _, None) => "new",
                (false, _, _) => "ok",
            };
            out.push_str(&format!(
                "{}  base {} ms  new {} ms  limit {} ms  {}\n",
                d.name,
                fmt_opt(d.base_ms),
                fmt_opt(d.new_ms),
                fmt_opt(d.limit_ms),
                verdict
            ));
        }
        let regressed = self.regressions().len();
        if regressed == 0 {
            out.push_str("no perf regression\n");
        } else {
            out.push_str(&format!("{regressed} scenario(s) regressed\n"));
        }
        out
    }

    /// Diagnostic table: every number that feeds the gate decision, so
    /// a CI failure can be understood from the log alone. Columns are
    /// the base median/MAD, the new median, the computed limit
    /// (`base + max(mad_factor×MAD, min_rel×base)`), and the delta of
    /// the new median against the base.
    pub fn render_explain(&self, threshold: Threshold) -> String {
        let fmt_opt = |v: Option<f64>| v.map_or("-".to_string(), |x| format!("{x:.2}"));
        let fmt_delta = |d: &ScenarioDelta| match (d.base_ms, d.new_ms) {
            (Some(b), Some(n)) => format!("{:+.2}", n - b),
            _ => "-".to_string(),
        };
        let verdict = |d: &ScenarioDelta| match (d.regressed, d.new_ms, d.base_ms) {
            (true, _, _) => "REGRESSED",
            (false, None, _) => "removed",
            (false, _, None) => "new",
            (false, _, _) => "ok",
        };
        let mut rows: Vec<[String; 7]> = vec![[
            "scenario".into(),
            "base ms".into(),
            "mad ms".into(),
            "new ms".into(),
            "limit ms".into(),
            "delta ms".into(),
            "verdict".into(),
        ]];
        for d in &self.deltas {
            rows.push([
                d.name.clone(),
                fmt_opt(d.base_ms),
                fmt_opt(d.base_mad_ms),
                fmt_opt(d.new_ms),
                fmt_opt(d.limit_ms),
                fmt_delta(d),
                verdict(d).to_string(),
            ]);
        }
        let mut widths = [0usize; 7];
        for row in &rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        for row in &rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(cell, w)| format!("{cell:<w$}"))
                .collect();
            out.push_str(line.join("  ").trim_end());
            out.push('\n');
        }
        out.push_str(&format!(
            "limit = base + max({}×mad, {}×base)\n",
            threshold.mad_factor, threshold.min_rel
        ));
        for d in self.regressions() {
            if d.base_ms.is_none() || d.new_ms.is_none() {
                continue; // appeared/disappeared — nothing to attribute
            }
            if !d.blame.is_empty() {
                out.push_str(&format!(
                    "{}: self-time attribution (per-run, movers past the noise threshold):\n",
                    d.name
                ));
                for b in &d.blame {
                    out.push_str(&format!(
                        "  {}  {:+.2} ms self ({:.2} → {:.2})  count {} → {}\n",
                        b.path, b.delta_ms(), b.base_self_ms, b.new_self_ms,
                        b.base_count, b.new_count
                    ));
                }
            } else if d.has_profiles {
                out.push_str(&format!(
                    "{}: no single call path moved past the noise threshold\n",
                    d.name
                ));
            } else if !d.base_has_profile {
                out.push_str(&format!(
                    "{}: no profile data in baseline (it predates profiling; \
                     re-record it with --profile to enable blame)\n",
                    d.name
                ));
            } else {
                out.push_str(&format!(
                    "{}: no profile attribution (record both baselines with --profile)\n",
                    d.name
                ));
            }
            // The deterministic cross-check: op counts either moved
            // (real extra work) or didn't (timer noise).
            match &d.counter_moves {
                Some(moves) if moves.is_empty() => {
                    out.push_str(&format!(
                        "{}: work counters unchanged — likely timer noise, not extra work\n",
                        d.name
                    ));
                }
                Some(moves) => {
                    out.push_str(&format!("{}: real work change — op counts moved:\n", d.name));
                    for m in moves {
                        let rel = m
                            .percent()
                            .map_or_else(String::new, |p| format!(" ({p:+.0}%)"));
                        out.push_str(&format!(
                            "  {}  {} → {}{rel}\n",
                            m.counter, m.base, m.new
                        ));
                    }
                }
                None => {} // no snapshots on one side; nothing to say
            }
        }
        let regressed = self.regressions().len();
        if regressed == 0 {
            out.push_str("no perf regression\n");
        } else {
            out.push_str(&format!("{regressed} scenario(s) regressed\n"));
        }
        out
    }
}

/// Attributes a regressed scenario to call paths: per-run self-time
/// deltas larger than the scenario's own noise scale.
///
/// Profiles fold *all* timed repeats, so self times are normalized by
/// each side's `repeats` before comparing. A path is blamed when its
/// per-run self time grew by more than
/// `max(mad_factor × base MAD, min_rel × base per-run self)` — the
/// same slack shape the gate grants the scenario median, applied
/// per path. Top [`BLAME_TOP_K`] by delta, largest first.
fn blame_paths(
    base: &Profile,
    base_repeats: usize,
    base_mad_ms: f64,
    new: &Profile,
    new_repeats: usize,
    threshold: Threshold,
) -> Vec<PathBlame> {
    let base_runs = base_repeats.max(1) as f64;
    let new_runs = new_repeats.max(1) as f64;
    let mut blamed: Vec<PathBlame> = Profile::diff(base, new)
        .into_iter()
        .filter_map(|d: PathDelta| {
            let base_self_ms = d.base_self_us as f64 / 1e3 / base_runs;
            let new_self_ms = d.new_self_us as f64 / 1e3 / new_runs;
            let slack_ms =
                (threshold.mad_factor * base_mad_ms).max(threshold.min_rel * base_self_ms);
            if new_self_ms - base_self_ms <= slack_ms {
                return None;
            }
            Some(PathBlame {
                path: d.path_str(),
                base_self_ms,
                new_self_ms,
                base_count: d.base_count,
                new_count: d.new_count,
            })
        })
        .collect();
    blamed.sort_by(|a, b| b.delta_ms().total_cmp(&a.delta_ms()));
    blamed.truncate(BLAME_TOP_K);
    blamed
}

/// Diffs `new` against `base` under `threshold`. A scenario present in
/// `base` but missing from `new` counts as regressed (coverage must not
/// silently shrink); a scenario only in `new` is informational.
pub fn compare(base: &Baseline, new: &Baseline, threshold: Threshold) -> CompareReport {
    let mut names: Vec<&String> = base.scenarios.keys().collect();
    for k in new.scenarios.keys() {
        if !base.scenarios.contains_key(k) {
            names.push(k);
        }
    }
    names.sort();
    let deltas = names
        .into_iter()
        .map(|name| {
            let b = base.scenarios.get(name);
            let n = new.scenarios.get(name);
            let base_prof = base.profiles.get(name);
            let new_prof = new.profiles.get(name);
            let has_profiles = base_prof.is_some() && new_prof.is_some();
            let base_has_profile = base_prof.is_some();
            match (b, n) {
                (Some(b), Some(n)) => {
                    let limit = threshold.limit_ms(b.median_ms, b.mad_ms);
                    let regressed = n.median_ms > limit;
                    let blame = match (regressed, base_prof, new_prof) {
                        (true, Some(bp), Some(np)) => blame_paths(
                            bp,
                            base.config.repeats,
                            b.mad_ms,
                            np,
                            new.config.repeats,
                            threshold,
                        ),
                        _ => Vec::new(),
                    };
                    // Counter cross-reference: only meaningful for a
                    // regression, and only when both sides snapshot.
                    let moves = match (
                        regressed,
                        base.work_counters.get(name),
                        new.work_counters.get(name),
                    ) {
                        (true, Some(bc), Some(nc)) => Some(counter_moves(bc, nc)),
                        _ => None,
                    };
                    ScenarioDelta {
                        name: name.clone(),
                        base_ms: Some(b.median_ms),
                        base_mad_ms: Some(b.mad_ms),
                        new_ms: Some(n.median_ms),
                        limit_ms: Some(limit),
                        regressed,
                        has_profiles,
                        base_has_profile,
                        blame,
                        counter_moves: moves,
                    }
                }
                (Some(b), None) => ScenarioDelta {
                    name: name.clone(),
                    base_ms: Some(b.median_ms),
                    base_mad_ms: Some(b.mad_ms),
                    new_ms: None,
                    limit_ms: None,
                    regressed: true,
                    has_profiles,
                    base_has_profile,
                    blame: Vec::new(),
                    counter_moves: None,
                },
                (None, n) => ScenarioDelta {
                    name: name.clone(),
                    base_ms: None,
                    base_mad_ms: None,
                    new_ms: n.map(|n| n.median_ms),
                    limit_ms: None,
                    regressed: false,
                    has_profiles,
                    base_has_profile,
                    blame: Vec::new(),
                    counter_moves: None,
                },
            }
        })
        .collect();
    CompareReport { deltas }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(samples: &[f64]) -> ScenarioStats {
        let median_ms = median(samples);
        ScenarioStats {
            cells: 10,
            samples_ms: samples.to_vec(),
            median_ms,
            mad_ms: mad(samples, median_ms),
            min_ms: samples.iter().copied().fold(f64::INFINITY, f64::min),
        }
    }

    fn baseline(entries: &[(&str, &[f64])]) -> Baseline {
        Baseline {
            env: EnvFingerprint {
                host: "h".into(),
                os: "linux".into(),
                arch: "x86_64".into(),
                cores: 1,
                rustc: "rustc test".into(),
            },
            config: PerfConfig::default(),
            scenarios: entries
                .iter()
                .map(|(name, s)| (name.to_string(), stats(s)))
                .collect(),
            profiles: BTreeMap::new(),
            work_counters: BTreeMap::new(),
        }
    }

    /// Attaches a work-counter snapshot to one scenario.
    fn with_counters(mut b: Baseline, name: &str, counters: &[(&str, u64)]) -> Baseline {
        b.work_counters.insert(
            name.to_string(),
            counters.iter().map(|&(c, v)| (c.to_string(), v)).collect(),
        );
        b
    }

    /// Attaches a profile parsed from folded text to one scenario.
    fn with_profile(mut b: Baseline, name: &str, folded: &str) -> Baseline {
        b.profiles.insert(
            name.to_string(),
            Profile::parse_folded(folded).expect("valid folded text"),
        );
        b
    }

    #[test]
    fn median_and_mad_basics() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[7.0]), 7.0);
        assert_eq!(median(&[1.0, 3.0]), 2.0);
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
        assert_eq!(mad(&[7.0], 7.0), 0.0, "single sample has MAD 0");
        assert_eq!(mad(&[1.0, 3.0, 5.0], 3.0), 2.0);
    }

    #[test]
    fn baseline_round_trips_through_json() {
        let b = baseline(&[("ci-small", &[10.0, 11.0, 10.5]), ("engine-all", &[100.0, 98.0])]);
        let json = b.to_json();
        let back = Baseline::parse(&json).expect("round trip");
        assert_eq!(back, b);
        // Canonical form is stable: serialize → parse → serialize.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn parse_rejects_foreign_or_broken_documents() {
        assert!(matches!(Baseline::parse("{}"), Err(PerfError::Parse(_))));
        assert!(matches!(Baseline::parse("not json"), Err(PerfError::Parse(_))));
        let wrong = "{\"schema\": \"qbss-perf-baseline/999\", \"env\": {}, \
                     \"config\": {}, \"scenarios\": {}}";
        let err = Baseline::parse(wrong).expect_err("wrong schema");
        assert!(err.to_string().contains("schema"), "{err}");
    }

    #[test]
    fn compare_flags_only_real_regressions() {
        let base = baseline(&[("a", &[100.0, 102.0, 98.0])]);
        // Within the 25% floor: not a regression.
        let ok = baseline(&[("a", &[110.0, 112.0, 108.0])]);
        let report = compare(&base, &ok, Threshold::default());
        assert!(report.regressions().is_empty(), "{}", report.render());
        // 2× slowdown: regression.
        let slow = baseline(&[("a", &[200.0, 202.0, 198.0])]);
        let report = compare(&base, &slow, Threshold::default());
        assert_eq!(report.regressions().len(), 1);
        assert!(report.render().contains("REGRESSED"), "{}", report.render());
    }

    #[test]
    fn identical_baselines_never_regress() {
        let b = baseline(&[("a", &[50.0, 51.0]), ("b", &[7.0, 7.0, 7.0])]);
        let report = compare(&b, &b.clone(), Threshold::default());
        assert!(report.regressions().is_empty());
        assert!(report.render().contains("no perf regression"));
    }

    #[test]
    fn missing_scenario_is_a_regression_new_scenario_is_not() {
        let base = baseline(&[("a", &[50.0]), ("b", &[60.0])]);
        let new = baseline(&[("a", &[50.0]), ("c", &[10.0])]);
        let report = compare(&base, &new, Threshold::default());
        let regressed: Vec<&str> =
            report.regressions().iter().map(|d| d.name.as_str()).collect();
        assert_eq!(regressed, ["b"], "dropped coverage must fail the gate");
        let c = report.deltas.iter().find(|d| d.name == "c").expect("new scenario listed");
        assert!(!c.regressed);
    }

    #[test]
    fn explain_table_carries_every_gate_input() {
        let base = baseline(&[("a", &[100.0, 102.0, 98.0]), ("gone", &[5.0])]);
        let new = baseline(&[("a", &[200.0, 202.0, 198.0]), ("fresh", &[1.0])]);
        let t = Threshold::default();
        let out = compare(&base, &new, t).render_explain(t);
        // Header plus the three scenarios, then the limit formula.
        for needle in [
            "scenario", "base ms", "mad ms", "new ms", "limit ms", "delta ms", "verdict",
            "REGRESSED", "new", "+100.00",
            "limit = base + max(3×mad, 0.25×base)",
            "2 scenario(s) regressed",
        ] {
            assert!(out.contains(needle), "missing `{needle}` in:\n{out}");
        }
        // The MAD column carries the base MAD: mad([100,102,98]) = 2.
        let a_row = out.lines().find(|l| l.starts_with("a ")).expect("row for a");
        assert!(a_row.contains("2.00"), "{a_row}");
    }

    #[test]
    fn profiled_baseline_round_trips_and_plain_format_is_unchanged() {
        let plain = baseline(&[("a", &[10.0, 11.0])]);
        assert!(!plain.to_json().contains("profiles"), "no empty section");
        let profiled = with_profile(plain.clone(), "a", "root 30 1\nroot;x 50 2\n");
        let json = profiled.to_json();
        assert!(json.contains("\"profiles\""), "{json}");
        assert!(json.contains(PROFILE_SCHEMA), "{json}");
        let back = Baseline::parse(&json).expect("round trip");
        assert_eq!(back, profiled);
        assert_eq!(back.to_json(), json, "canonical form is stable");
        // Pre-profiling baselines still parse (back-compat).
        assert_eq!(Baseline::parse(&plain.to_json()).expect("old format"), plain);
    }

    #[test]
    fn work_counter_baseline_round_trips_and_plain_format_is_unchanged() {
        let plain = baseline(&[("a", &[10.0, 11.0])]);
        assert!(!plain.to_json().contains("work_counters"), "no empty section");
        let counted = with_counters(
            plain.clone(),
            "a",
            &[("yds.intervals_scanned", 1234), ("oa.hull_updates", 56)],
        );
        let json = counted.to_json();
        assert!(json.contains("\"work_counters\""), "{json}");
        assert!(json.contains(WORK_SCHEMA), "{json}");
        let back = Baseline::parse(&json).expect("round trip");
        assert_eq!(back, counted);
        assert_eq!(back.to_json(), json, "canonical form is stable");
        // Pre-observatory baselines still parse (back-compat), and the
        // sections compose: profiles + work_counters together.
        assert_eq!(Baseline::parse(&plain.to_json()).expect("old format"), plain);
        let both = with_profile(counted, "a", "root 30 1\n");
        let json = both.to_json();
        assert_eq!(Baseline::parse(&json).expect("both sections"), both);
        let err = Baseline::parse(&json.replace(WORK_SCHEMA, "qbss-perf-work/999"))
            .expect_err("wrong work schema");
        assert!(err.to_string().contains("work_counters schema"), "{err}");
    }

    #[test]
    fn gate_cross_references_work_counters() {
        // A 3× wall regression with byte-identical counters: explain
        // must call it timer noise.
        let base = with_counters(
            baseline(&[("a", &[100.0, 100.0])]),
            "a",
            &[("yds.intervals_scanned", 1000)],
        );
        let noisy = with_counters(
            baseline(&[("a", &[300.0, 300.0])]),
            "a",
            &[("yds.intervals_scanned", 1000)],
        );
        let t = Threshold::default();
        let report = compare(&base, &noisy, t);
        assert_eq!(report.deltas[0].counter_moves, Some(vec![]));
        let out = report.render_explain(t);
        assert!(out.contains("work counters unchanged — likely timer noise"), "{out}");
        // Same regression with moved counts: explain must name the
        // counter with old → new and the relative change.
        let real = with_counters(
            baseline(&[("a", &[300.0, 300.0])]),
            "a",
            &[("yds.intervals_scanned", 1380)],
        );
        let report = compare(&base, &real, t);
        let moves = report.deltas[0].counter_moves.as_ref().expect("both sides snapshot");
        assert_eq!(moves.len(), 1);
        assert_eq!(moves[0].counter, "yds.intervals_scanned");
        let out = report.render_explain(t);
        assert!(out.contains("real work change"), "{out}");
        assert!(out.contains("yds.intervals_scanned  1000 → 1380 (+38%)"), "{out}");
        // No snapshot on one side: neither note appears.
        let bare = baseline(&[("a", &[300.0, 300.0])]);
        let out = compare(&base, &bare, t).render_explain(t);
        assert!(!out.contains("timer noise") && !out.contains("real work change"), "{out}");
        // Non-regressed scenarios never carry the cross-reference.
        let fine = with_counters(
            baseline(&[("a", &[101.0, 101.0])]),
            "a",
            &[("yds.intervals_scanned", 1380)],
        );
        assert_eq!(compare(&base, &fine, t).deltas[0].counter_moves, None);
    }

    #[test]
    fn record_snapshots_work_counters_beside_timings() {
        let cfg = PerfConfig { warmup: 0, repeats: 2, shards: 1 };
        let b = record(&["ci-small".to_string()], cfg).expect("scenario runs");
        let counters = b.work_counters.get("ci-small").expect("snapshot captured");
        assert!(
            counters.keys().all(|k| qbss_core::work::is_work_counter(k)),
            "only catalogued work counters belong in the snapshot: {counters:?}"
        );
        assert!(
            counters.values().all(|&v| v > 0),
            "zero-delta counters are omitted: {counters:?}"
        );
        // ci-small runs YDS (via the OPT cache) on common-deadline
        // instances, so the YDS scan counters must be present.
        assert!(counters.contains_key("yds.intervals_scanned"), "{counters:?}");
    }

    #[test]
    fn parse_rejects_unknown_profile_schema() {
        let profiled = with_profile(baseline(&[("a", &[10.0])]), "a", "r 1 1\n");
        let json = profiled.to_json().replace(PROFILE_SCHEMA, "qbss-prof/999");
        let err = Baseline::parse(&json).expect_err("wrong profile schema");
        assert!(err.to_string().contains("profiles schema"), "{err}");
    }

    #[test]
    fn gate_blame_names_the_regressed_call_path() {
        // Scenario regresses 100 → 200 ms; the profile says all of it
        // is `root;hot` (per-run self 90 → 190 ms), while `root;cold`
        // stays flat and must not be blamed.
        // PerfConfig::default() repeats = 5, so self times are ÷5.
        let base = with_profile(
            baseline(&[("a", &[100.0, 100.0, 100.0])]),
            "a",
            "root 0 5\nroot;hot 450000 50\nroot;cold 50000 50\n",
        );
        let new = with_profile(
            baseline(&[("a", &[200.0, 200.0, 200.0])]),
            "a",
            "root 0 5\nroot;hot 950000 50\nroot;cold 50000 50\n",
        );
        let t = Threshold::default();
        let report = compare(&base, &new, t);
        let d = &report.deltas[0];
        assert!(d.regressed && d.has_profiles);
        assert_eq!(d.blame.len(), 1, "{:?}", d.blame);
        assert_eq!(d.blame[0].path, "root;hot");
        assert!((d.blame[0].delta_ms() - 100.0).abs() < 1e-9);
        let out = report.render_explain(t);
        assert!(out.contains("self-time attribution"), "{out}");
        assert!(out.contains("root;hot  +100.00 ms self (90.00 → 190.00)  count 50 → 50"), "{out}");
        assert!(!out.contains("root;cold"), "flat path must not be blamed:\n{out}");
    }

    #[test]
    fn gate_blame_notes_missing_profiles() {
        // The committed baseline predates the profiles section: the
        // explain output must say so, not just ask for --profile.
        let base = baseline(&[("a", &[100.0, 100.0])]);
        let new = baseline(&[("a", &[300.0, 300.0])]);
        let t = Threshold::default();
        let out = compare(&base, &new, t).render_explain(t);
        assert!(out.contains("no profile data in baseline"), "{out}");
        // The base carries a profile, only the new run lacks one: the
        // fix lives on the recording side, and the note says which.
        let base = with_profile(base, "a", "root;hot 300000 3\n");
        let out = compare(&base, &new, t).render_explain(t);
        assert!(out.contains("record both baselines with --profile"), "{out}");
        assert!(!out.contains("no profile data in baseline"), "{out}");
    }

    #[test]
    fn gate_blame_respects_the_noise_threshold() {
        // Regressed scenario, but every path's movement stays inside
        // max(3×MAD, 25%×self): attribution reports no single culprit.
        let base = with_profile(
            baseline(&[("a", &[100.0, 90.0, 110.0])]),  // MAD 10
            "a",
            "root;hot 300000 3\n",
        );
        let new = with_profile(
            baseline(&[("a", &[200.0, 190.0, 210.0])]),
            "a",
            "root;hot 360000 3\n",  // +20 ms/run < 3×MAD = 30 ms
        );
        let t = Threshold::default();
        let report = compare(&base, &new, t);
        assert!(report.deltas[0].regressed);
        assert!(report.deltas[0].blame.is_empty());
        let out = report.render_explain(t);
        assert!(out.contains("no single call path moved past the noise threshold"), "{out}");
    }

    #[test]
    fn threshold_uses_the_larger_of_mad_and_relative_floor() {
        let t = Threshold::default();
        // MAD-dominated: 3×10 = 30 > 25% of 100.
        assert_eq!(t.limit_ms(100.0, 10.0), 130.0);
        // Floor-dominated: MAD 0 (quiet host) still gets 25%.
        assert_eq!(t.limit_ms(100.0, 0.0), 125.0);
    }

    #[test]
    fn scenario_table_is_well_formed() {
        let all = scenarios();
        assert!(all.len() >= 4);
        let mut names: Vec<&str> = all.iter().map(|s| s.name).collect();
        names.dedup();
        assert_eq!(names.len(), all.len(), "names must be unique");
        assert!(scenario("ci-small").is_some());
        assert!(scenario("stream-large").is_some());
        assert!(scenario("nope").is_none());
        for s in &all {
            match s.spec() {
                Some(spec) => {
                    assert!(spec.n_cells() > 0, "{}: empty grid", s.name);
                    spec.validate().unwrap_or_else(|e| panic!("{}: {e}", s.name));
                }
                None => match s.prepare() {
                    Prepared::Eval(spec) => {
                        assert!(!spec.instances.is_empty(), "{}: no instances", s.name);
                        for inst in &spec.instances {
                            inst.validate().unwrap_or_else(|e| panic!("{}: {e}", s.name));
                        }
                    }
                    Prepared::Sweep(_) => panic!("{}: spec() disagrees with prepare()", s.name),
                },
            }
        }
    }

    #[test]
    fn stream_large_is_session_scale() {
        // The acceptance bar for the streaming engine: the blessed
        // scenario must exercise ≥ 1k-job instances through OA.
        let Prepared::Eval(spec) = scenario("stream-large").expect("known").prepare() else {
            panic!("stream-large must be a direct-evaluation scenario");
        };
        assert!(matches!(spec.alg, Algorithm::Oaq));
        for inst in &spec.instances {
            assert!(inst.len() >= 1000, "stream-large instances must be >= 1k jobs");
        }
    }

    #[test]
    fn record_measures_a_tiny_scenario() {
        // One repeat, no warmup, on the smallest scenario: checks the
        // wiring, not the numbers.
        let cfg = PerfConfig { warmup: 0, repeats: 1, shards: 1 };
        let b = record(&["ci-small".to_string()], cfg).expect("scenario runs");
        let s = b.scenarios.get("ci-small").expect("recorded");
        assert_eq!(s.samples_ms.len(), 1);
        assert_eq!(s.mad_ms, 0.0, "single sample has MAD 0");
        assert!(s.median_ms > 0.0 && s.min_ms == s.median_ms);
        assert!(b.env.cores >= 1);
        let err = record(&["bogus".to_string()], cfg).expect_err("unknown scenario");
        assert!(matches!(err, PerfError::UnknownScenario(_)));
    }
}
