//! Adversary search: maximize a measured ratio over instance
//! parameters.
//!
//! The paper's online lower bounds (Lemma 5.1's `(2α)^α`, Lemma 4.5's
//! `3^{α−1}`) are asymptotic constructions; on finite instances the
//! sharpest achievable ratios come from *searching* the construction's
//! free parameters. Coordinate ascent with a golden-section line search
//! per coordinate (in log-space, since works are positive scales) is
//! simple and robust for these smooth-ish ratio landscapes.

use qbss_analysis::numeric::golden_max;

/// Maximizes `f` over positive coordinate vectors by cyclic coordinate
/// ascent: each pass line-searches every coordinate over
/// `[x_i/span, x_i·span]` (log-scale). Returns the best vector and
/// value. Deterministic.
pub fn coordinate_ascent(
    mut x: Vec<f64>,
    span: f64,
    passes: usize,
    f: impl Fn(&[f64]) -> f64,
) -> (Vec<f64>, f64) {
    assert!(span > 1.0, "span must exceed 1");
    assert!(x.iter().all(|&v| v > 0.0), "coordinates must be positive");
    let mut best = f(&x);
    let ln_span = span.ln();
    for _ in 0..passes {
        let mut improved = false;
        for i in 0..x.len() {
            let center = x[i].ln();
            let (arg, val) = golden_max(center - ln_span, center + ln_span, 60, |lv| {
                let mut y = x.clone();
                y[i] = lv.exp();
                f(&y)
            });
            if val > best * (1.0 + 1e-9) {
                x[i] = arg.exp();
                best = val;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    (x, best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascends_to_separable_optimum() {
        // f = -Σ (ln x_i - ln t_i)²: optimum at x = t.
        let targets = [2.0f64, 0.5, 7.0];
        let (x, v) = coordinate_ascent(vec![1.0, 1.0, 1.0], 16.0, 10, |x| {
            -x.iter()
                .zip(&targets)
                .map(|(&a, &t)| (a.ln() - t.ln()).powi(2))
                .sum::<f64>()
        });
        assert!(v > -1e-8);
        for (a, t) in x.iter().zip(&targets) {
            assert!((a.ln() - t.ln()).abs() < 1e-3, "{a} vs {t}");
        }
    }

    #[test]
    fn respects_determinism() {
        let f = |x: &[f64]| -(x[0] - 3.0).powi(2) - (x[1] - 1.0).powi(2);
        let a = coordinate_ascent(vec![1.0, 1.0], 8.0, 5, f);
        let b = coordinate_ascent(vec![1.0, 1.0], 8.0, 5, f);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }
}
