//! Parallel ensemble measurement: run an algorithm over many seeded
//! instances and digest the energy / max-speed ratios.
//!
//! The sweep is embarrassingly parallel and fans out over scoped OS
//! threads (`std::thread::scope` — the workspace is dependency-free, so
//! no rayon); every outcome is validated before its ratio is counted,
//! so a harness run is also an end-to-end correctness pass over
//! thousands of schedules.

use qbss_analysis::stats::Summary;
use qbss_core::model::QbssInstance;
use qbss_core::outcome::QbssOutcome;

/// Digest of an algorithm over an instance ensemble at one `α`.
#[derive(Debug, Clone, Copy)]
pub struct EnsembleReport {
    /// Digest of `E_ALG / E_OPT`.
    pub energy: Summary,
    /// Digest of `s_ALG / s_OPT`.
    pub speed: Summary,
}

/// Runs `algorithm` on `make_instance(seed)` for every seed, validates
/// each outcome, and digests the ratios against the clairvoyant YDS
/// optimum.
///
/// Panics if any outcome fails validation — a harness run doubles as an
/// acceptance test.
pub fn measure_ensemble(
    seeds: std::ops::Range<u64>,
    alpha: f64,
    make_instance: impl Fn(u64) -> QbssInstance + Sync,
    algorithm: impl Fn(&QbssInstance) -> QbssOutcome + Sync,
) -> EnsembleReport {
    let ratios = crate::par::par_map_seeds(seeds, |seed| {
        let inst = make_instance(seed);
        let out = algorithm(&inst);
        out.validate(&inst)
            .unwrap_or_else(|e| panic!("outcome validation failed on seed {seed}: {e}"));
        (out.energy_ratio(&inst, alpha), out.speed_ratio(&inst))
    });
    let energy: Vec<f64> = ratios.iter().map(|r| r.0).collect();
    let speed: Vec<f64> = ratios.iter().map(|r| r.1).collect();
    EnsembleReport { energy: Summary::of(&energy), speed: Summary::of(&speed) }
}

/// Asserts that an ensemble never exceeded a proven bound (with a small
/// numeric slack), returning the violation message instead of panicking
/// so binaries can collect all violations before exiting non-zero.
pub fn check_bound(name: &str, measured_max: f64, bound: f64) -> Result<(), String> {
    if measured_max <= bound * (1.0 + 1e-6) {
        Ok(())
    } else {
        Err(format!(
            "BOUND VIOLATION: {name}: measured max {measured_max} > proven bound {bound}"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbss_core::online::bkpq;
    use qbss_instances::gen::{generate, GenConfig};

    #[test]
    fn ensemble_runs_and_validates() {
        let rep = measure_ensemble(
            0..16,
            3.0,
            |seed| generate(&GenConfig::online_default(10, seed)),
            bkpq,
        );
        assert_eq!(rep.energy.n, 16);
        assert!(rep.energy.min >= 1.0 - 1e-9, "no algorithm beats OPT");
        assert!(rep.speed.min >= 1.0 - 1e-9);
    }

    #[test]
    fn check_bound_behaviour() {
        assert!(check_bound("x", 1.9, 2.0).is_ok());
        assert!(check_bound("x", 2.0, 2.0).is_ok());
        assert!(check_bound("x", 2.1, 2.0).is_err());
    }
}
