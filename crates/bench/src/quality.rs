//! Quality baselines: pinned competitive-ratio scenarios and an
//! **exact** regression gate.
//!
//! The perf observatory ([`crate::perf`]) watches wall time, which is
//! noisy, so its gate is statistical (MAD slack + a relative floor).
//! Solution quality is different: every quality scenario pins its
//! generator seeds and the engine's aggregates are byte-deterministic
//! at any shard count, so two runs of the same code produce *identical*
//! ratio statistics. That lets the quality gate be exact — **any**
//! increase of a group's max ALG/OPT ratio or of its bound headroom
//! (measured max ÷ the proven Table 1 bound) against the committed
//! `BENCH_quality.json` is a regression, with no noise threshold to
//! hide behind.
//!
//! `qbss quality record` evaluates the scenario table through
//! [`run_sweep`] and serializes per-group `max / mean / p95` energy
//! ratios, the proven bound, the headroom, and the reproducible worst
//! cell (seed, instance) into a canonical `qbss-quality-baseline/1`
//! document. `qbss quality compare` diffs two baselines; `qbss quality
//! gate` records fresh numbers, diffs them against the committed
//! baseline, and exits 3 on any worsened group — `--explain` names the
//! offending scenario, seed, and instance.

use std::collections::BTreeMap;
use std::fmt;

use qbss_analysis::stats::percentile_sorted;
use qbss_core::pipeline::Algorithm;
use qbss_instances::gen::{Compressibility, GenConfig, QueryModel, TimeModel};
use qbss_telemetry::{json_escape, json_f64, json_parse, JsonValue};

use crate::engine::{run_sweep, EngineError, InstanceSource, SweepSpec, WorstCell};

/// The on-disk schema tag; bump on incompatible baseline changes.
pub const QUALITY_SCHEMA: &str = "qbss-quality-baseline/1";

// ---------------------------------------------------------------------
// Build fingerprint
// ---------------------------------------------------------------------

/// The build that produced an artifact: crate version plus a best-effort
/// `git describe` string. Embedded in quality baselines, loadgen
/// reports, and the serve plane's `/healthz` so a number on disk can be
/// traced back to the code that computed it. Informational only — the
/// gate never compares fingerprints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildInfo {
    /// Workspace crate version (`CARGO_PKG_VERSION`).
    pub version: String,
    /// `git describe --always --dirty --tags` output, or `"unknown"`
    /// outside a git checkout.
    pub git: String,
}

impl BuildInfo {
    /// Captures the current build's fingerprint.
    pub fn capture() -> Self {
        let git = std::process::Command::new("git")
            .args(["describe", "--always", "--dirty", "--tags"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string());
        Self { version: env!("CARGO_PKG_VERSION").to_string(), git }
    }

    /// One-line rendering, e.g. `qbss 0.1.0 (1fdad51)`.
    pub fn render(&self) -> String {
        format!("qbss {} ({})", self.version, self.git)
    }
}

// ---------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------

/// A named, fully pinned quality workload: generator family × algorithm
/// set × α grid × seed range. Everything is deterministic, so the
/// recorded statistics are a pure function of the code under test.
#[derive(Debug, Clone, Copy)]
pub struct QualityScenario {
    /// Stable name (the baseline JSON key and the `--scenarios` token).
    pub name: &'static str,
    /// One-line description for `qbss quality record` output.
    pub description: &'static str,
    build: fn() -> SweepSpec,
}

impl QualityScenario {
    /// The pinned sweep spec this scenario evaluates.
    pub fn spec(&self) -> SweepSpec {
        (self.build)()
    }
}

fn golden_common() -> SweepSpec {
    SweepSpec {
        source: InstanceSource::Generated {
            base: GenConfig::common_deadline(10, 8.0, 0),
            seeds: 0..50,
        },
        algorithms: vec![Algorithm::Crcd, Algorithm::Avrq, Algorithm::Bkpq],
        alphas: vec![2.0, 3.0],
        opt_fw_iters: 0,
    }
}

fn golden_online() -> SweepSpec {
    SweepSpec {
        source: InstanceSource::Generated {
            base: GenConfig::online_default(24, 0),
            seeds: 0..40,
        },
        algorithms: vec![Algorithm::Avrq, Algorithm::Bkpq, Algorithm::Oaq],
        alphas: vec![2.0, 3.0],
        opt_fw_iters: 0,
    }
}

/// Heavy-tailed compressibility: most payloads compress a lot, so the
/// query decision dominates the ratio — the family most sensitive to
/// changes in the golden-ratio query rule.
fn heavytail_online() -> SweepSpec {
    SweepSpec {
        source: InstanceSource::Generated {
            base: GenConfig {
                n: 16,
                seed: 0,
                time: TimeModel::Online { horizon: 4.0, min_len: 0.5, max_len: 4.0 },
                min_w: 0.5,
                max_w: 4.0,
                query: QueryModel::UniformFraction { lo: 0.1, hi: 0.6 },
                compress: Compressibility::HeavyTail,
            },
            seeds: 0..40,
        },
        algorithms: vec![Algorithm::Avrq, Algorithm::Bkpq],
        alphas: vec![2.0, 3.0],
        opt_fw_iters: 0,
    }
}

fn multi_machine() -> SweepSpec {
    SweepSpec {
        source: InstanceSource::Generated {
            base: GenConfig::online_default(12, 0),
            seeds: 0..16,
        },
        algorithms: vec![Algorithm::AvrqM { m: 3 }, Algorithm::AvrqMNonmig { m: 3 }],
        alphas: vec![3.0],
        opt_fw_iters: 4,
    }
}

/// Every named quality scenario, in canonical order.
pub fn scenarios() -> Vec<QualityScenario> {
    vec![
        QualityScenario {
            name: "golden-common",
            description: "crcd+avrq+bkpq × 2 α × 50 common-deadline instances (n=10)",
            build: golden_common,
        },
        QualityScenario {
            name: "golden-online",
            description: "avrq+bkpq+oaq × 2 α × 40 online instances (n=24)",
            build: golden_online,
        },
        QualityScenario {
            name: "heavytail-online",
            description: "avrq+bkpq × 2 α × 40 heavy-tail online instances (n=16)",
            build: heavytail_online,
        },
        QualityScenario {
            name: "multi-machine",
            description: "avrq-m:3 + avrq-m-nonmig:3 × 16 online instances (n=12)",
            build: multi_machine,
        },
    ]
}

/// Looks up a quality scenario by name.
pub fn scenario(name: &str) -> Option<QualityScenario> {
    scenarios().into_iter().find(|s| s.name == name)
}

// ---------------------------------------------------------------------
// Recording
// ---------------------------------------------------------------------

/// Ratio statistics of one *(algorithm, α)* group of a scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupQuality {
    /// Canonical algorithm string.
    pub algorithm: String,
    /// The group's power exponent.
    pub alpha: f64,
    /// Max ALG/OPT energy ratio over the pinned seeds.
    pub max: f64,
    /// Mean energy ratio (canonical cell order).
    pub mean: f64,
    /// 95th percentile of the energy ratio.
    pub p95: f64,
    /// The proven Table 1 bound for this family at this α, if any.
    pub bound: Option<f64>,
    /// `max / bound` — how much of the proven bound the measured worst
    /// case consumes. `None` when no bound is proven for the family.
    pub headroom: Option<f64>,
    /// The reproducible argmax cell behind `max`.
    pub worst: Option<WorstCell>,
}

/// One recorded scenario: grid size plus per-group statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioQuality {
    /// Total cells evaluated (`spec.n_cells()`).
    pub cells: usize,
    /// Per-group stats, in spec order (algorithms outer, alphas inner).
    pub groups: Vec<GroupQuality>,
}

/// A recorded quality baseline. Serializes canonically (sorted scenario
/// keys, fixed field order), and — because every input is pinned — two
/// records of the same build are byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityBaseline {
    /// The build that produced these numbers (informational; the gate
    /// ignores it, so re-records on another commit still byte-compare
    /// per scenario).
    pub build: BuildInfo,
    /// Stats by scenario name (sorted).
    pub scenarios: BTreeMap<String, ScenarioQuality>,
}

/// Failures of the quality layer.
#[derive(Debug)]
pub enum QualityError {
    /// `--scenarios` named something that doesn't exist.
    UnknownScenario(String),
    /// A baseline file didn't match the schema.
    Parse(String),
    /// The engine rejected a scenario spec (a bug in the scenario
    /// table).
    Engine(EngineError),
    /// A scenario produced cell errors; quality statistics over a
    /// partially failed grid would silently shrink coverage.
    Dirty {
        /// The scenario whose grid did not evaluate cleanly.
        scenario: String,
        /// Number of failed cells.
        errors: usize,
    },
}

impl fmt::Display for QualityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QualityError::UnknownScenario(name) => {
                let known: Vec<&str> = scenarios().iter().map(|s| s.name).collect();
                write!(f, "unknown scenario `{name}` (expected one of: {})", known.join(", "))
            }
            QualityError::Parse(reason) => write!(f, "invalid quality baseline: {reason}"),
            QualityError::Engine(e) => write!(f, "scenario failed to run: {e}"),
            QualityError::Dirty { scenario, errors } => {
                write!(f, "scenario `{scenario}` had {errors} failed cell(s)")
            }
        }
    }
}

impl std::error::Error for QualityError {}

impl From<EngineError> for QualityError {
    fn from(e: EngineError) -> Self {
        QualityError::Engine(e)
    }
}

/// Evaluates `names` (all scenarios when empty) through the engine and
/// returns the recorded baseline. `shards = 0` uses all cores — the
/// statistics are byte-identical either way.
pub fn record(names: &[String], shards: usize) -> Result<QualityBaseline, QualityError> {
    let picked: Vec<QualityScenario> = if names.is_empty() {
        scenarios()
    } else {
        names
            .iter()
            .map(|n| scenario(n).ok_or_else(|| QualityError::UnknownScenario(n.clone())))
            .collect::<Result<_, _>>()?
    };
    let mut out = BTreeMap::new();
    for sc in picked {
        let spec = sc.spec();
        let report = run_sweep(&spec, shards)?;
        let n_alphas = spec.alphas.len();
        let mut groups = Vec::with_capacity(report.groups.len());
        for (gi, g) in report.groups.iter().enumerate() {
            if g.errors > 0 {
                return Err(QualityError::Dirty {
                    scenario: sc.name.to_string(),
                    errors: g.errors,
                });
            }
            let (alg_idx, alpha_idx) = (gi / n_alphas, gi % n_alphas);
            // p95 is not part of the engine digest; derive it from the
            // per-cell records the same canonical way the digest is.
            let mut ratios: Vec<f64> = report
                .records
                .iter()
                .filter(|r| r.algorithm == alg_idx && r.alpha == alpha_idx)
                .filter_map(|r| r.result.as_ref().ok().map(|m| m.energy_ratio))
                .collect();
            ratios.sort_by(f64::total_cmp);
            let digest = g.energy_ratio.as_ref().ok_or_else(|| QualityError::Dirty {
                scenario: sc.name.to_string(),
                errors: 0,
            })?;
            groups.push(GroupQuality {
                algorithm: g.algorithm.clone(),
                alpha: g.alpha,
                max: digest.max,
                mean: digest.mean,
                p95: percentile_sorted(&ratios, 0.95),
                bound: g.energy_bound,
                headroom: g.energy_bound.map(|b| digest.max / b),
                worst: g.worst_cell,
            });
        }
        out.insert(sc.name.to_string(), ScenarioQuality { cells: spec.n_cells(), groups });
    }
    Ok(QualityBaseline { build: BuildInfo::capture(), scenarios: out })
}

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

fn json_opt(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_string(), json_f64)
}

fn json_worst(w: Option<WorstCell>) -> String {
    match w {
        None => "null".to_string(),
        Some(w) => format!(
            "{{\"instance\": {}, \"seed\": {}, \"energy_ratio\": {}}}",
            w.instance,
            w.seed.map_or_else(|| "null".to_string(), |s| s.to_string()),
            json_f64(w.energy_ratio)
        ),
    }
}

impl QualityBaseline {
    /// Canonical, human-diffable JSON (trailing newline included).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema\": \"{}\",\n", json_escape(QUALITY_SCHEMA)));
        out.push_str(&format!(
            "  \"build\": {{\"version\": \"{}\", \"git\": \"{}\"}},\n",
            json_escape(&self.build.version),
            json_escape(&self.build.git),
        ));
        out.push_str("  \"scenarios\": {\n");
        let n = self.scenarios.len();
        for (i, (name, s)) in self.scenarios.iter().enumerate() {
            out.push_str(&format!(
                "    \"{}\": {{\"cells\": {}, \"groups\": [\n",
                json_escape(name),
                s.cells
            ));
            let m = s.groups.len();
            for (j, g) in s.groups.iter().enumerate() {
                out.push_str(&format!(
                    "      {{\"algorithm\": \"{}\", \"alpha\": {}, \"max\": {}, \
                     \"mean\": {}, \"p95\": {}, \"bound\": {}, \"headroom\": {}, \
                     \"worst\": {}}}{}\n",
                    json_escape(&g.algorithm),
                    json_f64(g.alpha),
                    json_f64(g.max),
                    json_f64(g.mean),
                    json_f64(g.p95),
                    json_opt(g.bound),
                    json_opt(g.headroom),
                    json_worst(g.worst),
                    if j + 1 < m { "," } else { "" },
                ));
            }
            out.push_str(&format!("    ]}}{}\n", if i + 1 < n { "," } else { "" }));
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Parses a baseline produced by [`QualityBaseline::to_json`].
    pub fn parse(input: &str) -> Result<QualityBaseline, QualityError> {
        let bad = |reason: &str| QualityError::Parse(reason.to_string());
        let v = json_parse(input).map_err(|e| QualityError::Parse(e.to_string()))?;
        let schema = v.get("schema").and_then(JsonValue::as_str).unwrap_or_default();
        if schema != QUALITY_SCHEMA {
            return Err(QualityError::Parse(format!(
                "schema `{schema}` (expected `{QUALITY_SCHEMA}`)"
            )));
        }
        let build = match v.get("build") {
            Some(b) => BuildInfo {
                version: b
                    .get("version")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("unknown")
                    .to_string(),
                git: b.get("git").and_then(JsonValue::as_str).unwrap_or("unknown").to_string(),
            },
            None => BuildInfo { version: "unknown".into(), git: "unknown".into() },
        };
        let JsonValue::Obj(entries) = v.get("scenarios").ok_or_else(|| bad("missing `scenarios`"))?
        else {
            return Err(bad("`scenarios` must be an object"));
        };
        let mut out = BTreeMap::new();
        for (name, s) in entries {
            let JsonValue::Arr(raw_groups) = s
                .get("groups")
                .ok_or_else(|| QualityError::Parse(format!("scenario `{name}`: missing `groups`")))?
            else {
                return Err(QualityError::Parse(format!(
                    "scenario `{name}`: `groups` must be an array"
                )));
            };
            let mut groups = Vec::with_capacity(raw_groups.len());
            for g in raw_groups {
                let need_f64 = |key: &str| -> Result<f64, QualityError> {
                    g.get(key).and_then(JsonValue::as_f64).ok_or_else(|| {
                        QualityError::Parse(format!("scenario `{name}`: missing number `{key}`"))
                    })
                };
                let worst = match g.get("worst") {
                    None | Some(JsonValue::Null) => None,
                    Some(w) => Some(WorstCell {
                        instance: w.get("instance").and_then(JsonValue::as_u64).ok_or_else(
                            || {
                                QualityError::Parse(format!(
                                    "scenario `{name}`: worst cell missing `instance`"
                                ))
                            },
                        )? as usize,
                        seed: w.get("seed").and_then(JsonValue::as_u64),
                        energy_ratio: w
                            .get("energy_ratio")
                            .and_then(JsonValue::as_f64)
                            .unwrap_or(f64::NAN),
                    }),
                };
                groups.push(GroupQuality {
                    algorithm: g
                        .get("algorithm")
                        .and_then(JsonValue::as_str)
                        .ok_or_else(|| {
                            QualityError::Parse(format!(
                                "scenario `{name}`: group missing `algorithm`"
                            ))
                        })?
                        .to_string(),
                    alpha: need_f64("alpha")?,
                    max: need_f64("max")?,
                    mean: need_f64("mean")?,
                    p95: need_f64("p95")?,
                    bound: g.get("bound").and_then(JsonValue::as_f64),
                    headroom: g.get("headroom").and_then(JsonValue::as_f64),
                    worst,
                });
            }
            out.insert(
                name.clone(),
                ScenarioQuality {
                    cells: s.get("cells").and_then(JsonValue::as_u64).unwrap_or(0) as usize,
                    groups,
                },
            );
        }
        Ok(QualityBaseline { build, scenarios: out })
    }
}

// ---------------------------------------------------------------------
// Comparison / gating
// ---------------------------------------------------------------------

/// One exact quality regression: a group whose worst ratio or headroom
/// got worse, or coverage that silently disappeared.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityRegression {
    /// Scenario name.
    pub scenario: String,
    /// Algorithm of the offending group (empty for scenario-level
    /// regressions).
    pub algorithm: String,
    /// α of the offending group (`None` for scenario-level regressions).
    pub alpha: Option<f64>,
    /// What worsened: `"max ratio"`, `"bound headroom"`, `"scenario
    /// removed"`, `"group removed"`, or `"bound removed"`.
    pub what: &'static str,
    /// The committed value.
    pub base: Option<f64>,
    /// The freshly measured value.
    pub new: Option<f64>,
    /// The new run's argmax cell — the seed/instance that exhibits the
    /// regression, reproducible via `qbss explain`.
    pub worst: Option<WorstCell>,
}

/// Everything `qbss quality compare` / `gate` reports.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QualityCompare {
    /// Groups checked (both sides present).
    pub checked: usize,
    /// Exact regressions, in scenario/group order.
    pub regressions: Vec<QualityRegression>,
}

impl QualityCompare {
    /// `true` when no group worsened.
    pub fn is_clean(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Human-readable summary: one line per regression plus a verdict.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.regressions {
            let group = match r.alpha {
                Some(a) => format!("{} @ α={a}", r.algorithm),
                None => "-".to_string(),
            };
            let fmt = |v: Option<f64>| v.map_or("-".to_string(), |x| format!("{x:.6}"));
            out.push_str(&format!(
                "{}  {}  {}  {} -> {}  WORSE\n",
                r.scenario,
                group,
                r.what,
                fmt(r.base),
                fmt(r.new)
            ));
        }
        if self.is_clean() {
            out.push_str(&format!("no quality regression ({} group(s) checked)\n", self.checked));
        } else {
            out.push_str(&format!("{} quality regression(s)\n", self.regressions.len()));
        }
        out
    }

    /// Diagnostic rendering: every regression with the reproducible
    /// worst cell (scenario, seed, instance) so the offending run can
    /// be regenerated and explained offline.
    pub fn render_explain(&self) -> String {
        let mut out = String::new();
        for r in &self.regressions {
            let group = match r.alpha {
                Some(a) => format!("{} @ α={a}", r.algorithm),
                None => "(scenario)".to_string(),
            };
            let fmt = |v: Option<f64>| v.map_or("-".to_string(), |x| format!("{x:.9}"));
            out.push_str(&format!(
                "scenario `{}` {}: {} worsened {} -> {}\n",
                r.scenario,
                group,
                r.what,
                fmt(r.base),
                fmt(r.new)
            ));
            if let Some(w) = r.worst {
                let seed = w.seed.map_or("-".to_string(), |s| s.to_string());
                out.push_str(&format!(
                    "  worst cell: seed {seed}, instance {}, ratio {:.9}\n",
                    w.instance, w.energy_ratio
                ));
            }
        }
        if self.is_clean() {
            out.push_str(&format!(
                "no quality regression ({} group(s) checked, exact comparison)\n",
                self.checked
            ));
        } else {
            out.push_str(&format!("{} quality regression(s)\n", self.regressions.len()));
        }
        out
    }
}

/// Diffs `new` against `base`, exactly. A group regresses on **any**
/// increase of its max ratio or headroom — seeds are pinned and
/// aggregates byte-deterministic, so equal code must produce equal
/// numbers and every difference is a real behavior change. Dropped
/// scenarios, groups, or bounds also regress (coverage must not
/// silently shrink); scenarios or groups only present in `new` are
/// informational.
pub fn compare(base: &QualityBaseline, new: &QualityBaseline) -> QualityCompare {
    let mut report = QualityCompare::default();
    for (name, b) in &base.scenarios {
        let Some(n) = new.scenarios.get(name) else {
            report.regressions.push(QualityRegression {
                scenario: name.clone(),
                algorithm: String::new(),
                alpha: None,
                what: "scenario removed",
                base: None,
                new: None,
                worst: None,
            });
            continue;
        };
        for bg in &b.groups {
            let found = n
                .groups
                .iter()
                .find(|g| g.algorithm == bg.algorithm && g.alpha.to_bits() == bg.alpha.to_bits());
            let Some(ng) = found else {
                report.regressions.push(QualityRegression {
                    scenario: name.clone(),
                    algorithm: bg.algorithm.clone(),
                    alpha: Some(bg.alpha),
                    what: "group removed",
                    base: Some(bg.max),
                    new: None,
                    worst: None,
                });
                continue;
            };
            report.checked += 1;
            if ng.max > bg.max {
                report.regressions.push(QualityRegression {
                    scenario: name.clone(),
                    algorithm: bg.algorithm.clone(),
                    alpha: Some(bg.alpha),
                    what: "max ratio",
                    base: Some(bg.max),
                    new: Some(ng.max),
                    worst: ng.worst,
                });
            }
            match (bg.headroom, ng.headroom) {
                (Some(bh), Some(nh)) if nh > bh => {
                    report.regressions.push(QualityRegression {
                        scenario: name.clone(),
                        algorithm: bg.algorithm.clone(),
                        alpha: Some(bg.alpha),
                        what: "bound headroom",
                        base: Some(bh),
                        new: Some(nh),
                        worst: ng.worst,
                    });
                }
                (Some(bh), None) => {
                    report.regressions.push(QualityRegression {
                        scenario: name.clone(),
                        algorithm: bg.algorithm.clone(),
                        alpha: Some(bg.alpha),
                        what: "bound removed",
                        base: Some(bh),
                        new: None,
                        worst: ng.worst,
                    });
                }
                _ => {}
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(algorithm: &str, alpha: f64, max: f64, bound: Option<f64>) -> GroupQuality {
        GroupQuality {
            algorithm: algorithm.to_string(),
            alpha,
            max,
            mean: max * 0.8,
            p95: max * 0.95,
            bound,
            headroom: bound.map(|b| max / b),
            worst: Some(WorstCell { instance: 3, seed: Some(3), energy_ratio: max }),
        }
    }

    fn baseline(entries: &[(&str, Vec<GroupQuality>)]) -> QualityBaseline {
        QualityBaseline {
            build: BuildInfo { version: "0.0.0-test".into(), git: "deadbeef".into() },
            scenarios: entries
                .iter()
                .map(|(name, groups)| {
                    (name.to_string(), ScenarioQuality { cells: 10, groups: groups.clone() })
                })
                .collect(),
        }
    }

    #[test]
    fn scenario_table_is_well_formed() {
        let all = scenarios();
        assert!(all.len() >= 4);
        let mut names: Vec<&str> = all.iter().map(|s| s.name).collect();
        names.dedup();
        assert_eq!(names.len(), all.len(), "names must be unique");
        assert!(scenario("golden-common").is_some());
        assert!(scenario("nope").is_none());
        for s in &all {
            let spec = s.spec();
            assert!(spec.n_cells() > 0, "{}: empty grid", s.name);
            spec.validate().unwrap_or_else(|e| panic!("{}: {e}", s.name));
        }
    }

    #[test]
    fn baseline_round_trips_through_json() {
        let b = baseline(&[
            ("a", vec![group("avrq", 2.0, 2.1, Some(32.0)), group("oaq", 3.0, 3.4, None)]),
            ("b", vec![group("crcd", 2.0, 1.8, Some(4.0))]),
        ]);
        let json = b.to_json();
        let back = QualityBaseline::parse(&json).expect("round trip");
        assert_eq!(back, b);
        assert_eq!(back.to_json(), json, "canonical form is stable");
    }

    #[test]
    fn parse_rejects_foreign_or_broken_documents() {
        assert!(matches!(QualityBaseline::parse("{}"), Err(QualityError::Parse(_))));
        assert!(matches!(QualityBaseline::parse("not json"), Err(QualityError::Parse(_))));
        let wrong = "{\"schema\": \"qbss-quality-baseline/999\", \"scenarios\": {}}";
        let err = QualityBaseline::parse(wrong).expect_err("wrong schema");
        assert!(err.to_string().contains("schema"), "{err}");
    }

    #[test]
    fn identical_baselines_are_clean() {
        let b = baseline(&[("a", vec![group("avrq", 2.0, 2.1, Some(32.0))])]);
        let report = compare(&b, &b.clone());
        assert!(report.is_clean());
        assert_eq!(report.checked, 1);
        assert!(report.render().contains("no quality regression"));
    }

    #[test]
    fn any_increase_of_the_max_is_a_regression() {
        // The gate is exact: even a 1-ulp-ish increase regresses, with
        // no noise threshold to hide behind.
        let base = baseline(&[("a", vec![group("avrq", 2.0, 2.1, Some(32.0))])]);
        let new = baseline(&[("a", vec![group("avrq", 2.0, 2.1 + 1e-12, Some(32.0))])]);
        let report = compare(&base, &new);
        // Both the max and the headroom worsen (the bound is unchanged).
        assert_eq!(report.regressions.len(), 2, "{report:?}");
        assert_eq!(report.regressions[0].what, "max ratio");
        assert_eq!(report.regressions[1].what, "bound headroom");
        // A *decrease* is an improvement, not a regression.
        let better = baseline(&[("a", vec![group("avrq", 2.0, 2.0, Some(32.0))])]);
        assert!(compare(&base, &better).is_clean());
    }

    #[test]
    fn lost_coverage_is_a_regression() {
        let base = baseline(&[
            ("a", vec![group("avrq", 2.0, 2.1, Some(32.0)), group("bkpq", 2.0, 3.8, None)]),
            ("gone", vec![group("oaq", 3.0, 3.4, None)]),
        ]);
        let new = baseline(&[("a", vec![group("avrq", 2.0, 2.1, Some(32.0))])]);
        let report = compare(&base, &new);
        let whats: Vec<&str> = report.regressions.iter().map(|r| r.what).collect();
        assert!(whats.contains(&"scenario removed"), "{whats:?}");
        assert!(whats.contains(&"group removed"), "{whats:?}");
        // Losing a proven bound while keeping the group also regresses.
        let unbounded = baseline(&[
            ("a", vec![group("avrq", 2.0, 2.1, None), group("bkpq", 2.0, 3.8, None)]),
            ("gone", vec![group("oaq", 3.0, 3.4, None)]),
        ]);
        let report = compare(&base, &unbounded);
        assert!(report.regressions.iter().any(|r| r.what == "bound removed"), "{report:?}");
    }

    #[test]
    fn explain_names_the_scenario_seed_and_instance() {
        let base = baseline(&[("golden-online", vec![group("avrq", 2.0, 2.1, Some(32.0))])]);
        let new = baseline(&[("golden-online", vec![group("avrq", 2.0, 2.5, Some(32.0))])]);
        let out = compare(&base, &new).render_explain();
        for needle in ["scenario `golden-online`", "avrq @ α=2", "max ratio", "seed 3",
            "instance 3"]
        {
            assert!(out.contains(needle), "missing `{needle}` in:\n{out}");
        }
    }

    #[test]
    fn record_is_deterministic_and_within_proven_bounds() {
        // The smallest scenario, recorded twice at different shard
        // counts: statistics must be byte-identical, every bounded
        // group must sit inside its Table 1 bound (headroom ≤ 1), and
        // every group must carry a reproducible worst cell.
        let names = vec!["multi-machine".to_string()];
        let a = record(&names, 1).expect("record");
        let b = record(&names, 2).expect("record");
        assert_eq!(a.scenarios, b.scenarios, "shard count must not matter");
        let s = a.scenarios.get("multi-machine").expect("recorded");
        assert!(!s.groups.is_empty());
        for g in &s.groups {
            assert!(g.max >= 1.0 && g.max >= g.p95 && g.p95 >= 0.0, "{g:?}");
            if let Some(h) = g.headroom {
                assert!(h <= 1.0, "measured max exceeds the proven bound: {g:?}");
            }
            let w = g.worst.expect("worst cell recorded");
            assert_eq!(w.energy_ratio, g.max, "worst cell must carry the max");
            assert!(w.seed.is_some(), "generated sources pin seeds");
        }
        let err = record(&["bogus".to_string()], 1).expect_err("unknown scenario");
        assert!(matches!(err, QualityError::UnknownScenario(_)));
    }

    #[test]
    fn build_info_captures_something() {
        let b = BuildInfo::capture();
        assert_eq!(b.version, env!("CARGO_PKG_VERSION"));
        assert!(!b.git.is_empty());
        assert!(b.render().starts_with("qbss "));
    }
}
