//! E9 — Figure 1 of the paper: the analysis instances `I*`, `I'`,
//! `I'_{1/2}` behind CRP2D's proof, rendered as interval diagrams for a
//! concrete instance, plus an empirical verification of the proof chain
//!
//!   `E' ≤ φ^α E*`  (Lemma 4.9),
//!   `E'_{1/2} ≤ 2^α E'`  (Lemma 4.10),
//!   `E(CRP2D) ≤ 2^α E'_{1/2}`  (Corollary 4.12),
//!   and hence `E(CRP2D) ≤ (4φ)^α E*`  (Theorem 4.13),
//!
//! over random power-of-two ensembles.

use qbss_bench::table::{fmt, Table};
use qbss_core::model::{QJob, QbssInstance};
use qbss_core::offline::{crp2d, energy_chain, in_query_set};
use qbss_core::PHI;
use qbss_instances::gen::{generate, Compressibility, GenConfig, QueryModel, TimeModel};

/// The concrete 4-deadline example the diagram renders (matching the
/// figure's geometry: deadlines 1, 2, 4, 8; a mix of A and B jobs).
fn figure_instance() -> QbssInstance {
    QbssInstance::new(vec![
        QJob::new(0, 0.0, 1.0, 0.2, 1.0, 0.3),  // B
        QJob::new(1, 0.0, 2.0, 0.5, 1.5, 0.8),  // B
        QJob::new(2, 0.0, 4.0, 3.5, 4.0, 2.0),  // A (3.5φ > 4)
        QJob::new(3, 0.0, 8.0, 1.0, 6.0, 0.5),  // B
    ])
}

/// Renders one job's interval layout as an ASCII bar over (0, horizon].
fn bar(start: f64, end: f64, horizon: f64, ch: char) -> String {
    const COLS: usize = 64;
    let mut s: Vec<char> = vec!['.'; COLS];
    let a = ((start / horizon) * COLS as f64).round() as usize;
    let b = (((end / horizon) * COLS as f64).round() as usize).min(COLS);
    for c in s.iter_mut().take(b).skip(a.min(b)) {
        *c = ch;
    }
    s.into_iter().collect()
}

fn main() {
    let inst = figure_instance();
    let horizon = inst.max_deadline();

    println!("E9: Figure 1 — the three analysis instances for CRP2D's proof");
    println!("(jobs released at 0; deadlines 1, 2, 4, 8; Q = query, W = exact/upper work)\n");

    println!("I*  (clairvoyant: p* over the full window)");
    for j in &inst.jobs {
        println!(
            "  job {} [{}]  (0, {}]  p* = {}",
            j.id,
            bar(0.0, j.deadline, horizon, 'W'),
            j.deadline,
            fmt(j.p_star()),
        );
    }

    println!("\nI'  (relaxed: query and exact load may use the whole window)");
    for j in &inst.jobs {
        if in_query_set(j) {
            println!(
                "  job {} [{}]  (0, {}]  c  = {}",
                j.id,
                bar(0.0, j.deadline, horizon, 'Q'),
                j.deadline,
                fmt(j.query_load),
            );
            println!(
                "  job {} [{}]  (0, {}]  w* = {}",
                j.id,
                bar(0.0, j.deadline, horizon, 'W'),
                j.deadline,
                fmt(j.reveal_exact()),
            );
        } else {
            println!(
                "  job {} [{}]  (0, {}]  w  = {}",
                j.id,
                bar(0.0, j.deadline, horizon, 'W'),
                j.deadline,
                fmt(j.upper_bound),
            );
        }
    }

    println!("\nI'_1/2  (committed: query in the first half, exact load in the second)");
    for j in &inst.jobs {
        if in_query_set(j) {
            let mid = 0.5 * j.deadline;
            println!(
                "  job {} [{}]  (0, {}]  c  = {}",
                j.id,
                bar(0.0, mid, horizon, 'Q'),
                mid,
                fmt(j.query_load),
            );
            println!(
                "  job {} [{}]  ({}, {}]  w* = {}",
                j.id,
                bar(mid, j.deadline, horizon, 'W'),
                mid,
                j.deadline,
                fmt(j.reveal_exact()),
            );
        } else {
            println!(
                "  job {} [{}]  (0, {}]  w  = {}",
                j.id,
                bar(0.0, j.deadline, horizon, 'W'),
                j.deadline,
                fmt(j.upper_bound),
            );
        }
    }

    // The energy chain on the figure instance.
    println!("\nEnergy chain on the figure instance (alpha = 3):");
    let alpha = 3.0;
    let (e_star, e_prime, e_half) = energy_chain(&inst, alpha);
    let out = crp2d(&inst);
    if let Err(e) = out.validate(&inst) {
        eprintln!("CRP2D outcome invalid: {e}");
        std::process::exit(1);
    }
    let e_alg = out.energy(alpha);
    let mut t = Table::new(vec!["quantity", "value", "chain bound", "bound value", "holds"]);
    t.row(vec!["E*".to_string(), fmt(e_star), "-".into(), "-".into(), "-".into()]);
    t.row(vec![
        "E'".to_string(),
        fmt(e_prime),
        "phi^a E*".into(),
        fmt(PHI.powf(alpha) * e_star),
        (e_prime <= PHI.powf(alpha) * e_star * (1.0 + 1e-9)).to_string(),
    ]);
    t.row(vec![
        "E'_1/2".to_string(),
        fmt(e_half),
        "2^a E'".into(),
        fmt(2.0f64.powf(alpha) * e_prime),
        (e_half <= 2.0f64.powf(alpha) * e_prime * (1.0 + 1e-9)).to_string(),
    ]);
    t.row(vec![
        "E(CRP2D)".to_string(),
        fmt(e_alg),
        "(4phi)^a E*".into(),
        fmt((4.0 * PHI).powf(alpha) * e_star),
        (e_alg <= (4.0 * PHI).powf(alpha) * e_star * (1.0 + 1e-9)).to_string(),
    ]);
    t.print();

    // The chain over a random power-of-two ensemble.
    println!("\nChain over 300 random power-of-2 instances, worst factors observed:");
    let mut violations = 0usize;
    let mut t = Table::new(vec![
        "alpha",
        "max E'/E*",
        "phi^a",
        "max E'_1/2 / E'",
        "2^a",
        "max E(alg)/E*",
        "(4phi)^a",
    ]);
    for &alpha in &[1.5, 2.0, 2.5, 3.0] {
        let rows: Vec<(f64, f64, f64)> = qbss_bench::par_map_seeds(0..300u64, |seed| {
                let cfg = GenConfig {
                    n: 30,
                    seed,
                    time: TimeModel::PowersOfTwo { min_exp: 0, max_exp: 5 },
                    min_w: 0.5,
                    max_w: 4.0,
                    query: QueryModel::UniformFraction { lo: 0.05, hi: 0.95 },
                    compress: Compressibility::Uniform,
                };
                let inst = generate(&cfg);
                let (e_star, e_prime, e_half) = energy_chain(&inst, alpha);
                let out = crp2d(&inst);
                (e_prime / e_star, e_half / e_prime, out.energy(alpha) / e_star)
            });
        let m1 = rows.iter().map(|r| r.0).fold(0.0, f64::max);
        let m2 = rows.iter().map(|r| r.1).fold(0.0, f64::max);
        let m3 = rows.iter().map(|r| r.2).fold(0.0, f64::max);
        if m1 > PHI.powf(alpha) * (1.0 + 1e-6)
            || m2 > 2.0f64.powf(alpha) * (1.0 + 1e-6)
            || m3 > (4.0 * PHI).powf(alpha) * (1.0 + 1e-6)
        {
            violations += 1;
            eprintln!("CHAIN VIOLATION at alpha = {alpha}: {m1} {m2} {m3}");
        }
        t.row(vec![
            format!("{alpha}"),
            fmt(m1),
            fmt(PHI.powf(alpha)),
            fmt(m2),
            fmt(2.0f64.powf(alpha)),
            fmt(m3),
            fmt((4.0 * PHI).powf(alpha)),
        ]);
    }
    t.print();

    if violations == 0 {
        println!("\nOK: Lemma 4.9 / Lemma 4.10 / Theorem 4.13 chain holds everywhere.");
    } else {
        std::process::exit(1);
    }
}
