//! Supplementary experiment: how the measured competitive ratios scale
//! with (a) the instance size `n` and (b) the query-cost fraction
//! `c/w` — the two knobs the paper's bounds are *uniform* over, so the
//! interesting question is where real instances sit inside the bound.
//!
//! Findings this reproduces reliably:
//! * worst-case ratios *shrink* as `n` grows on i.i.d. traces (the
//!   law of large numbers flattens the density pile-ups; the bounds'
//!   bad instances are adversarial, not typical) and sit far below the
//!   bounds throughout;
//! * the golden rule's behaviour flips exactly at `c/w = 1/φ`: below
//!   it BKPQ queries everything and tracks the query cost, above it it
//!   stops querying and its ratio decouples, while always-querying
//!   AVRQ keeps degrading — Lemma 3.1's φ threshold made visible.
//!
//! Each grid point is a batch-engine sweep: AVRQ/BKPQ/OAQ share each
//! instance's cached clairvoyant profile, and bound checks come from
//! the engine's per-cell violation counters.

use qbss_analysis::bounds;
use qbss_bench::engine::{run_sweep, EngineReport, InstanceSource, SweepSpec};
use qbss_bench::table::{fmt, Table};
use qbss_core::pipeline::Algorithm;
use qbss_instances::gen::{GenConfig, QueryModel};

const SEEDS: std::ops::Range<u64> = 0..120;
const ALPHA: f64 = 3.0;

fn sweep(base: GenConfig, violations: &mut Vec<String>) -> EngineReport {
    let spec = SweepSpec {
        source: InstanceSource::Generated { base, seeds: SEEDS },
        algorithms: vec![Algorithm::Avrq, Algorithm::Bkpq, Algorithm::Oaq],
        alphas: vec![ALPHA],
        opt_fw_iters: 0,
    };
    let rep = run_sweep(&spec, 0).expect("sweep spec is valid");
    violations.extend(rep.violations());
    rep
}

fn max_mean(rep: &EngineReport, alg: Algorithm) -> String {
    let d = rep
        .group(alg, ALPHA)
        .and_then(|g| g.energy_ratio)
        .expect("no cell errored");
    format!("{} / {}", fmt(d.max), fmt(d.mean))
}

fn main() {
    let mut violations: Vec<String> = Vec::new();

    // ---------------- ratio vs n ----------------
    println!("Scaling with instance size (alpha = 3, uniform compressibility)\n");
    let mut t = Table::new(vec![
        "n",
        "AVRQ max/mean",
        "BKPQ max/mean",
        "OAQ max/mean",
        "AVRQ bound",
    ]);
    for &n in &[5usize, 10, 20, 40, 80] {
        let rep = sweep(GenConfig::online_default(n, 0), &mut violations);
        t.row(vec![
            format!("{n}"),
            max_mean(&rep, Algorithm::Avrq),
            max_mean(&rep, Algorithm::Bkpq),
            max_mean(&rep, Algorithm::Oaq),
            fmt(bounds::avrq_energy_ub(ALPHA)),
        ]);
    }
    t.print();

    // ---------------- ratio vs query-cost fraction ----------------
    println!("\nScaling with the query-cost fraction c/w (n = 25, alpha = 3)\n");
    let mut t = Table::new(vec![
        "c/w",
        "AVRQ (always) max/mean",
        "BKPQ (golden) max/mean",
        "golden queries?",
    ]);
    for &frac in &[0.05, 0.2, 0.4, 0.618, 0.7, 0.9] {
        let rep = sweep(
            GenConfig {
                query: QueryModel::FixedFraction(frac),
                ..GenConfig::online_default(25, 0)
            },
            &mut violations,
        );
        let golden_queries = frac <= 1.0 / qbss_core::PHI + 1e-9;
        t.row(vec![
            format!("{frac}"),
            max_mean(&rep, Algorithm::Avrq),
            max_mean(&rep, Algorithm::Bkpq),
            if golden_queries { "yes (c <= w/phi)".into() } else { "no".to_string() },
        ]);
    }
    t.print();
    println!("\n(the golden rule's behaviour flips exactly at c/w = 1/phi = 0.618 — above");
    println!(" it BKPQ stops querying and its ratio decouples from the query cost, while");
    println!(" AVRQ keeps paying for queries that reveal nothing worth the price.)");

    if violations.is_empty() {
        println!("\nOK: no proven bound violated.");
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        std::process::exit(1);
    }
}
