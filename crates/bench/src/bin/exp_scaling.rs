//! Supplementary experiment: how the measured competitive ratios scale
//! with (a) the instance size `n` and (b) the query-cost fraction
//! `c/w` — the two knobs the paper's bounds are *uniform* over, so the
//! interesting question is where real instances sit inside the bound.
//!
//! Findings this reproduces reliably:
//! * worst-case ratios *shrink* as `n` grows on i.i.d. traces (the
//!   law of large numbers flattens the density pile-ups; the bounds'
//!   bad instances are adversarial, not typical) and sit far below the
//!   bounds throughout;
//! * the golden rule's behaviour flips exactly at `c/w = 1/φ`: below
//!   it BKPQ queries everything and tracks the query cost, above it it
//!   stops querying and its ratio decouples, while always-querying
//!   AVRQ keeps degrading — Lemma 3.1's φ threshold made visible.

use qbss_analysis::bounds;
use qbss_bench::ensemble::{check_bound, measure_ensemble};
use qbss_bench::table::{fmt, Table};
use qbss_core::online::{avrq, bkpq, oaq};
use qbss_instances::gen::{generate, GenConfig, QueryModel};

const SEEDS: std::ops::Range<u64> = 0..120;

fn main() {
    let alpha = 3.0;
    let mut violations: Vec<String> = Vec::new();

    // ---------------- ratio vs n ----------------
    println!("Scaling with instance size (alpha = 3, uniform compressibility)\n");
    let mut t = Table::new(vec![
        "n",
        "AVRQ max/mean",
        "BKPQ max/mean",
        "OAQ max/mean",
        "AVRQ bound",
    ]);
    for &n in &[5usize, 10, 20, 40, 80] {
        let make = |seed: u64| generate(&GenConfig::online_default(n, seed));
        let a = measure_ensemble(SEEDS, alpha, make, avrq);
        let b = measure_ensemble(SEEDS, alpha, make, bkpq);
        let o = measure_ensemble(SEEDS, alpha, make, oaq);
        violations.extend(
            check_bound(&format!("AVRQ n={n}"), a.energy.max, bounds::avrq_energy_ub(alpha))
                .err(),
        );
        violations.extend(
            check_bound(&format!("BKPQ n={n}"), b.energy.max, bounds::bkpq_energy_ub(alpha))
                .err(),
        );
        t.row(vec![
            format!("{n}"),
            format!("{} / {}", fmt(a.energy.max), fmt(a.energy.mean)),
            format!("{} / {}", fmt(b.energy.max), fmt(b.energy.mean)),
            format!("{} / {}", fmt(o.energy.max), fmt(o.energy.mean)),
            fmt(bounds::avrq_energy_ub(alpha)),
        ]);
    }
    t.print();

    // ---------------- ratio vs query-cost fraction ----------------
    println!("\nScaling with the query-cost fraction c/w (n = 25, alpha = 3)\n");
    let mut t = Table::new(vec![
        "c/w",
        "AVRQ (always) max/mean",
        "BKPQ (golden) max/mean",
        "golden queries?",
    ]);
    for &frac in &[0.05, 0.2, 0.4, 0.618, 0.7, 0.9] {
        let make = |seed: u64| {
            generate(&GenConfig {
                query: QueryModel::FixedFraction(frac),
                ..GenConfig::online_default(25, seed)
            })
        };
        let a = measure_ensemble(SEEDS, alpha, make, avrq);
        let b = measure_ensemble(SEEDS, alpha, make, bkpq);
        let golden_queries = frac <= 1.0 / qbss_core::PHI + 1e-9;
        t.row(vec![
            format!("{frac}"),
            format!("{} / {}", fmt(a.energy.max), fmt(a.energy.mean)),
            format!("{} / {}", fmt(b.energy.max), fmt(b.energy.mean)),
            if golden_queries { "yes (c <= w/phi)".into() } else { "no".to_string() },
        ]);
    }
    t.print();
    println!("\n(the golden rule's behaviour flips exactly at c/w = 1/phi = 0.618 — above");
    println!(" it BKPQ stops querying and its ratio decouples from the query cost, while");
    println!(" AVRQ keeps paying for queries that reveal nothing worth the price.)");

    if violations.is_empty() {
        println!("\nOK: no proven bound violated.");
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        std::process::exit(1);
    }
}
