//! E1 — Table 1's offline lower bounds, reproduced by *playing* the
//! paper's adversary games (Lemmas 4.1–4.5) against real policies.
//!
//! | lemma | game | proven LB (speed, energy) |
//! |-------|------|----------------------------|
//! | 4.1 | never query vs ε-compressible job | unbounded |
//! | 4.2 | query decision vs adaptive w* (oracle split) | φ, φ^α |
//! | 4.3 | split point vs adaptive w* | 2, 2^{α−1} |
//! | 4.4 | randomized query prob. vs adaptive w* | 4/3, (1+φ^α)/2 |
//! | 4.5 | equal-window algorithm vs nested cascade | 3, 3^{α−1} |

use qbss_analysis::bounds;
use qbss_bench::table::{fmt, Table};
use qbss_core::oracle::{cost_no_query, cost_opt, cost_query_at, cost_query_oracle, ratios};
use qbss_core::{online::bkpq, PHI};
use qbss_instances::adversary::{
    equal_window_cascade, lemma_4_1_instance, lemma_4_2_instance, lemma_4_3_instance,
    RandomizedGame,
};

const ALPHAS: [f64; 4] = [1.5, 2.0, 2.5, 3.0];

fn main() {
    let mut violations: Vec<String> = Vec::new();

    // ---------------- Lemma 4.1 ----------------
    println!("Lemma 4.1: never querying is unboundedly bad (ratio = 1/(2eps))\n");
    let mut t = Table::new(vec!["eps", "speed ratio", "energy ratio (a=3)", "predicted speed"]);
    for &eps in &[0.1, 0.01, 0.001, 0.0001] {
        let inst = lemma_4_1_instance(eps);
        let j = &inst.jobs[0];
        let r = ratios(cost_no_query(j, 3.0), cost_opt(j, 3.0));
        t.row(vec![format!("{eps}"), fmt(r.speed), fmt(r.energy), fmt(1.0 / (2.0 * eps))]);
    }
    t.print();

    // ---------------- Lemma 4.2 ----------------
    println!("\nLemma 4.2: oracle-model game (c=1, w=phi) — both branches give phi / phi^a\n");
    let mut t = Table::new(vec![
        "alpha", "branch", "speed ratio", "energy ratio", "LB speed", "LB energy",
    ]);
    for &alpha in &ALPHAS {
        for queried in [false, true] {
            let inst = lemma_4_2_instance(queried);
            let j = &inst.jobs[0];
            let alg = if queried { cost_query_oracle(j, alpha) } else { cost_no_query(j, alpha) };
            let r = ratios(alg, cost_opt(j, alpha));
            let lb_e = bounds::oracle_energy_lb(alpha);
            if r.speed < PHI - 1e-9 || r.energy < lb_e - 1e-9 {
                violations.push(format!(
                    "Lemma 4.2 α={alpha} queried={queried}: adversary under-delivers ({}, {})",
                    r.speed, r.energy
                ));
            }
            t.row(vec![
                format!("{alpha}"),
                if queried { "query".into() } else { "skip".to_string() },
                fmt(r.speed),
                fmt(r.energy),
                fmt(PHI),
                fmt(lb_e),
            ]);
        }
    }
    t.print();

    // ---------------- Lemma 4.3 ----------------
    println!("\nLemma 4.3: split game (c=1, w=2) — every split loses 2 / 2^(a-1)\n");
    let mut t = Table::new(vec!["alpha", "alg split x", "speed ratio", "energy ratio", "LB speed", "LB energy"]);
    for &alpha in &ALPHAS {
        for &x in &[0.25, 0.5, 0.75] {
            let inst = lemma_4_3_instance(Some(x));
            let j = &inst.jobs[0];
            let r = ratios(cost_query_at(j, x, alpha), cost_opt(j, alpha));
            let (lb_s, lb_e) = (2.0, 2.0f64.powf(alpha - 1.0));
            if r.speed < lb_s - 1e-9 || r.energy < lb_e - 1e-9 {
                violations.push(format!(
                    "Lemma 4.3 α={alpha} x={x}: adversary under-delivers ({}, {})",
                    r.speed, r.energy
                ));
            }
            t.row(vec![
                format!("{alpha}"),
                format!("{x}"),
                fmt(r.speed),
                fmt(r.energy),
                fmt(lb_s),
                fmt(lb_e),
            ]);
        }
        // The no-query branch is punished at least as hard.
        let inst = lemma_4_3_instance(None);
        let j = &inst.jobs[0];
        let r = ratios(cost_no_query(j, alpha), cost_opt(j, alpha));
        t.row(vec![
            format!("{alpha}"),
            "no query".into(),
            fmt(r.speed),
            fmt(r.energy),
            fmt(2.0),
            fmt(2.0f64.powf(alpha - 1.0)),
        ]);
    }
    t.print();

    // ---------------- Lemma 4.4 ----------------
    println!("\nLemma 4.4: randomized game values (optimal query probability rho*)\n");
    let mut t = Table::new(vec!["objective", "alpha", "rho*", "game value", "paper LB"]);
    let sg = RandomizedGame::speed_game();
    let (rho, value) = sg.speed_game_value();
    if (value - bounds::randomized_speed_lb()).abs() > 1e-6 {
        violations.push(format!("Lemma 4.4 speed game value {value} != 4/3"));
    }
    t.row(vec![
        "max speed".to_string(),
        "-".into(),
        fmt(rho),
        fmt(value),
        fmt(bounds::randomized_speed_lb()),
    ]);
    let eg = RandomizedGame::energy_game();
    for &alpha in &ALPHAS {
        let (rho, value) = eg.energy_game_value(alpha);
        let paper = bounds::randomized_energy_lb(alpha);
        if (value - paper).abs() > 1e-6 * paper {
            violations.push(format!("Lemma 4.4 energy game α={alpha}: {value} vs {paper}"));
        }
        t.row(vec!["energy".to_string(), format!("{alpha}"), fmt(rho), fmt(value), fmt(paper)]);
    }
    t.print();

    // Monte-Carlo cross-check of the closed-form game values: play the
    // randomized policy with actual coins against both adversary
    // branches and compare the estimated expected ratio.
    println!("\nLemma 4.4 Monte-Carlo cross-check (100k coins per cell):");
    {
        use rand::Rng as _;
        use rand::SeedableRng as _;
        let alpha = 3.0;
        let game = RandomizedGame::energy_game();
        let (rho, closed_form) = game.energy_game_value(alpha);
        let mut rng = rand::rngs::StdRng::seed_from_u64(44);
        let trials = 100_000;
        let mut worst = 0.0f64;
        for adversary_full in [false, true] {
            let inst = game.instance(adversary_full);
            let j = &inst.jobs[0];
            let mut acc = 0.0;
            for _ in 0..trials {
                let cost = if rng.gen_bool(rho) {
                    cost_query_oracle(j, alpha)
                } else {
                    cost_no_query(j, alpha)
                };
                acc += ratios(cost, cost_opt(j, alpha)).energy;
            }
            worst = worst.max(acc / trials as f64);
        }
        println!(
            "  estimated worst-branch expected ratio {} vs closed form {} (rho* = {})",
            fmt(worst),
            fmt(closed_form),
            fmt(rho)
        );
        if (worst - closed_form).abs() > 0.02 * closed_form {
            violations.push(format!(
                "Lemma 4.4 Monte-Carlo estimate {worst} far from closed form {closed_form}"
            ));
        }
    }

    // ---------------- Lemma 4.5 ----------------
    println!("\nLemma 4.5: equal-window adversary (nested cascade, works searched)\n");
    let mut t = Table::new(vec![
        "alpha", "levels", "speed ratio", "energy ratio", "paper LB speed", "paper LB energy",
    ]);
    for &alpha in &ALPHAS {
        for levels in [2usize, 3, 4] {
            // Equal-window online algorithm (BKPQ queries everything
            // here since c = εw), measured against clairvoyant OPT via
            // the outcome machinery; works maximized by ascent.
            let eval = |works: &[f64]| {
                let inst = equal_window_cascade(works, 2.0, 1e-7);
                let out = bkpq(&inst);
                out.validate(&inst).unwrap_or_else(|e| {
                    eprintln!("invalid cascade outcome: {e}");
                    std::process::exit(1);
                });
                // The cascade punishes the *structure* (equal windows);
                // compare the schedule's peak speed to OPT's.
                out.speed_ratio(&inst)
            };
            let x0 = vec![1.0; levels];
            let (best_w, speed_ratio) = qbss_bench::coordinate_ascent(x0, 16.0, 6, |w| eval(w));
            let inst = equal_window_cascade(&best_w, 2.0, 1e-7);
            let out = bkpq(&inst);
            let energy_ratio = out.energy_ratio(&inst, alpha);
            t.row(vec![
                format!("{alpha}"),
                format!("{levels}"),
                fmt(speed_ratio),
                fmt(energy_ratio),
                fmt(bounds::equal_window_speed_lb()),
                fmt(bounds::equal_window_energy_lb(alpha)),
            ]);
        }
    }
    t.print();
    println!("(BKP's own e-factor inflates its absolute speed; the lemma's pure geometric");
    println!(" factor-3 stacking is visible in the 2-level cascade: the paper's bound is");
    println!(" matched in structure — query halves idle, exact loads pile near the deadline.)");

    // Pure equal-window split geometry (no BKP factor): the 2-job
    // cascade with direct density scheduling.
    println!("\nLemma 4.5 (pure split geometry, 2 jobs, w* = (a, b), eps -> 0):");
    let mut t = Table::new(vec!["(a, b)", "speed ratio", "limit"]);
    for &(a, b) in &[(1.0, 1.0), (2.0, 2.0), (1.0, 2.0)] {
        // Equal-window: job 1's exact work a runs on (1, 2] at speed a;
        // job 2's on (1.5, 2] at speed 2b: peak = a + 2b.
        // OPT: query instantly, spread: peak ~ max over YDS of
        // {(0,2,a),(1,2,b)}.
        let alg_peak = a + 2.0 * b;
        let inst = equal_window_cascade(&[a, b], 2.0, 1e-9);
        let opt_peak = inst.opt_max_speed();
        let ratio = alg_peak / opt_peak;
        t.row(vec![format!("({a}, {b})"), fmt(ratio), "3".to_string()]);
        if ratio > 3.0 + 1e-6 {
            violations.push(format!("Lemma 4.5 geometry exceeded its own limit: {ratio}"));
        }
    }
    t.print();

    // Pure density-stacking energy (AVR substrate — no e-factor): the
    // equal-window cascade's energy ratio vs the claimed 3^(a-1) LB,
    // works optimized by coordinate ascent.
    println!("\nLemma 4.5 (pure density energy, AVRQ substrate, works searched):");
    let mut t = Table::new(vec!["alpha", "levels", "best energy ratio", "paper LB 3^(a-1)"]);
    for &alpha in &ALPHAS {
        for levels in [2usize, 3, 4] {
            let eval = |works: &[f64]| {
                let inst = equal_window_cascade(works, 2.0, 1e-7);
                let out = qbss_core::online::avrq(&inst);
                out.energy_ratio(&inst, alpha)
            };
            let (_, ratio) =
                qbss_bench::coordinate_ascent(vec![1.0; levels], 16.0, 6, |w| eval(w));
            t.row(vec![
                format!("{alpha}"),
                format!("{levels}"),
                fmt(ratio),
                fmt(bounds::equal_window_energy_lb(alpha)),
            ]);
        }
    }
    t.print();
    println!("(2 levels reach ~83% of the 3^(a-1) LB; 3-4 level cascades EXCEED it —");
    println!(" consistent with the lemma, which only claims a lower bound (the proof is");
    println!(" omitted in the paper): equal-window algorithms are at least 3^(a-1)-bad,");
    println!(" and the nested geometry compounds beyond it.)");

    if violations.is_empty() {
        println!("\nOK: every adversary delivered at least its proven bound.");
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        std::process::exit(1);
    }
}
