//! Supplementary artifact: every Table 1 bound as a *curve* over α,
//! emitted as CSV — the series behind any bounds-vs-α figure (log-scale
//! recommended; the regime crossings at α ≈ 1.44 and α ≈ 3.27 are the
//! interesting landmarks, printed at the end).

use qbss_analysis::bounds as b;
use qbss_analysis::rho::{offline_lb_crossover, rho1_rho2_crossover, rho3};

fn main() {
    println!(
        "alpha,oracle_lb,offline_lb,randomized_lb,crcd_ub,crcd_refined,crp2d_ub,crad_ub,\
         avrq_lb,avrq_ub,bkpq_lb,bkpq_ub,avrqm_ub,avr,oa,bkp"
    );
    let mut alpha = 1.05;
    while alpha <= 4.0 + 1e-9 {
        let refined = rho3(alpha).map_or(f64::NAN, |v| v.min(b::crcd_energy_ub(alpha)));
        println!(
            "{alpha:.2},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6}",
            b::oracle_energy_lb(alpha),
            b::offline_energy_lb(alpha),
            b::randomized_energy_lb(alpha),
            b::crcd_energy_ub(alpha),
            refined,
            b::crp2d_energy_ub(alpha),
            b::crad_energy_ub(alpha),
            b::avrq_energy_lb(alpha),
            b::avrq_energy_ub(alpha),
            b::bkpq_energy_lb(alpha),
            b::bkpq_energy_ub(alpha),
            b::avrq_m_energy_ub(alpha),
            b::avr_energy(alpha),
            b::oa_energy(alpha),
            b::bkp_energy(alpha),
        );
        alpha += 0.05;
    }
    eprintln!("# regime landmarks:");
    eprintln!("#   rho1 = rho2 (CRCD analyses cross) at alpha = {:.4}", rho1_rho2_crossover());
    eprintln!(
        "#   phi^a = 2^(a-1) (offline LB switches)  at alpha = {:.4}",
        offline_lb_crossover()
    );
}
