//! Supplementary artifact: the *speed-profile series* of every
//! algorithm on a reference instance, emitted as CSV — the raw data
//! behind any speed-vs-time figure a reader would want to draw (the
//! paper's proofs constantly argue about these curves: AVRQ being
//! pointwise within 2× of AVR*, BKPQ within (2+φ)× of BKP*, …).
//!
//! Output: one CSV block per machine count on stdout with columns
//! `t, OPT, AVR*, AVRQ, BKP*, BKPQ, OAQ` sampled on the union event
//! grid. Pipe to a file and plot with anything.

use qbss_core::online::{
    avr_star_profile, avrq_profile, bkp_star_profile, bkpq_profile, oaq_profile,
};
use qbss_core::QbssInstance;
use qbss_instances::gen::{generate, GenConfig};
use speed_scaling::profile::SpeedProfile;
use speed_scaling::yds::yds_profile;

fn union_grid(profiles: &[&SpeedProfile]) -> Vec<f64> {
    let mut events: Vec<f64> = Vec::new();
    for p in profiles {
        events.extend_from_slice(p.breakpoints());
    }
    speed_scaling::time::dedup_times(events)
}

fn main() {
    let inst: QbssInstance = generate(&GenConfig::online_default(12, 2021));
    println!("# reference instance: 12 online jobs, seed 2021 (qbss-instances online_default)");
    println!("# columns: midpoint time, then machine speed of each algorithm at that time");

    let opt = yds_profile(&inst.clairvoyant_instance());
    let avr_star = avr_star_profile(&inst);
    let avrq = avrq_profile(&inst);
    let bkp_star = bkp_star_profile(&inst);
    let bkpq = bkpq_profile(&inst);
    let oaq = oaq_profile(&inst);

    let profiles: Vec<(&str, &SpeedProfile)> = vec![
        ("OPT", &opt),
        ("AVR*", &avr_star),
        ("AVRQ", &avrq),
        ("BKP*", &bkp_star),
        ("BKPQ", &bkpq),
        ("OAQ", &oaq),
    ];
    let grid = union_grid(&profiles.iter().map(|(_, p)| *p).collect::<Vec<_>>());

    print!("t");
    for (name, _) in &profiles {
        print!(",{name}");
    }
    println!();
    for w in grid.windows(2) {
        let t = 0.5 * (w[0] + w[1]);
        print!("{t:.6}");
        for (_, p) in &profiles {
            print!(",{:.6}", p.speed_at(t));
        }
        println!();
    }

    // Sanity rails (the two pointwise theorems on this very series).
    let mut ok = true;
    for w in grid.windows(2) {
        let t = 0.5 * (w[0] + w[1]);
        if avrq.speed_at(t) > 2.0 * avr_star.speed_at(t) + 1e-6 {
            eprintln!("Theorem 5.2 violated at t = {t}");
            ok = false;
        }
        if bkpq.speed_at(t) > (2.0 + qbss_core::PHI) * bkp_star.speed_at(t) + 1e-6 {
            eprintln!("Theorem 5.4 violated at t = {t}");
            ok = false;
        }
    }
    if !ok {
        std::process::exit(1);
    }
    eprintln!("# OK: Theorems 5.2/5.4 hold pointwise on the emitted series.");
}
