//! E2–E4 — Table 1, offline rows: measured approximation ratios of
//! CRCD, CRP2D and CRAD against the clairvoyant YDS optimum, next to
//! the proven bounds, across the α grid and several instance families.
//!
//! What the paper's theory predicts (and this harness checks):
//! * every measured ratio ≤ the proven bound (hard assertion);
//! * CRCD additionally is ≤ 2 on maximum speed;
//! * the ordering CRCD ≤ CRP2D ≤ CRAD of worst cases by construction
//!   generality (more general deadlines → looser bound).

use qbss_analysis::bounds;
use qbss_bench::ensemble::{check_bound, measure_ensemble};
use qbss_bench::table::{fmt, Table};
use qbss_core::offline::{crad, crcd, crp2d};
use qbss_instances::gen::{generate, Compressibility, GenConfig, QueryModel, TimeModel};

const SEEDS: std::ops::Range<u64> = 0..300;
const ALPHAS: [f64; 4] = [1.5, 2.0, 2.5, 3.0];

fn families(n: usize, time: TimeModel) -> Vec<(&'static str, GenConfig)> {
    let base = GenConfig {
        n,
        seed: 0,
        time,
        min_w: 0.5,
        max_w: 4.0,
        query: QueryModel::UniformFraction { lo: 0.05, hi: 0.95 },
        compress: Compressibility::Uniform,
    };
    vec![
        ("uniform", base),
        ("bimodal", GenConfig { compress: Compressibility::Bimodal { p_compressible: 0.5 }, ..base }),
        ("heavy-tail", GenConfig { compress: Compressibility::HeavyTail, ..base }),
        ("incompress", GenConfig { compress: Compressibility::Incompressible, ..base }),
        ("fully-compress", GenConfig { compress: Compressibility::FullyCompressible, ..base }),
    ]
}

fn main() {
    let mut violations: Vec<String> = Vec::new();

    // ---------------- E2: CRCD ----------------
    println!("E2: CRCD (common release, common deadline) — Theorem 4.6");
    println!("bound(energy) = min(2^(a-1)*phi^a, 2^a); bound(speed) = 2\n");
    let mut t = Table::new(vec![
        "alpha", "family", "max E-ratio", "mean E-ratio", "bound", "max s-ratio", "s-bound",
    ]);
    for &alpha in &ALPHAS {
        for (name, cfg) in families(40, TimeModel::CommonDeadline { d: 8.0 }) {
            let rep = measure_ensemble(
                SEEDS,
                alpha,
                |seed| generate(&GenConfig { seed, ..cfg }),
                crcd,
            );
            let bound = bounds::crcd_energy_ub(alpha);
            violations.extend(
                check_bound(&format!("CRCD energy α={alpha} {name}"), rep.energy.max, bound)
                    .err(),
            );
            violations.extend(
                check_bound(&format!("CRCD speed α={alpha} {name}"), rep.speed.max, 2.0).err(),
            );
            t.row(vec![
                format!("{alpha}"),
                name.to_string(),
                fmt(rep.energy.max),
                fmt(rep.energy.mean),
                fmt(bound),
                fmt(rep.speed.max),
                "2".to_string(),
            ]);
        }
    }
    t.print();

    // ---------------- E3: CRP2D ----------------
    println!("\nE3: CRP2D (power-of-2 deadlines) — Theorem 4.13");
    println!("bound(energy) = (4*phi)^a\n");
    let mut t = Table::new(vec!["alpha", "family", "max E-ratio", "mean E-ratio", "bound"]);
    for &alpha in &ALPHAS {
        for (name, cfg) in families(40, TimeModel::PowersOfTwo { min_exp: 0, max_exp: 5 }) {
            let rep = measure_ensemble(
                SEEDS,
                alpha,
                |seed| generate(&GenConfig { seed, ..cfg }),
                crp2d,
            );
            let bound = bounds::crp2d_energy_ub(alpha);
            violations.extend(
                check_bound(&format!("CRP2D energy α={alpha} {name}"), rep.energy.max, bound)
                    .err(),
            );
            t.row(vec![
                format!("{alpha}"),
                name.to_string(),
                fmt(rep.energy.max),
                fmt(rep.energy.mean),
                fmt(bound),
            ]);
        }
    }
    t.print();

    // ---------------- E4: CRAD ----------------
    println!("\nE4: CRAD (arbitrary deadlines) — Corollary 4.15");
    println!("bound(energy) = (8*phi)^a\n");
    let mut t = Table::new(vec!["alpha", "family", "max E-ratio", "mean E-ratio", "bound"]);
    for &alpha in &ALPHAS {
        for (name, cfg) in families(40, TimeModel::ArbitraryDeadlines { min_d: 1.0, max_d: 50.0 })
        {
            let rep = measure_ensemble(
                SEEDS,
                alpha,
                |seed| generate(&GenConfig { seed, ..cfg }),
                crad,
            );
            let bound = bounds::crad_energy_ub(alpha);
            violations.extend(
                check_bound(&format!("CRAD energy α={alpha} {name}"), rep.energy.max, bound)
                    .err(),
            );
            t.row(vec![
                format!("{alpha}"),
                name.to_string(),
                fmt(rep.energy.max),
                fmt(rep.energy.mean),
                fmt(bound),
            ]);
        }
    }
    t.print();

    println!("\nPaper bounds at alpha = 3:");
    println!(
        "  CRCD {} | CRP2D {} | CRAD {}",
        fmt(bounds::crcd_energy_ub(3.0)),
        fmt(bounds::crp2d_energy_ub(3.0)),
        fmt(bounds::crad_energy_ub(3.0)),
    );

    if violations.is_empty() {
        println!("\nOK: no proven bound violated across {} runs.", 3 * ALPHAS.len() * 5 * 300);
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        std::process::exit(1);
    }
}
