//! E2–E4 — Table 1, offline rows: measured approximation ratios of
//! CRCD, CRP2D and CRAD against the clairvoyant YDS optimum, next to
//! the proven bounds, across the α grid and several instance families.
//!
//! What the paper's theory predicts (and this harness checks):
//! * every measured ratio ≤ the proven bound (hard assertion);
//! * CRCD additionally is ≤ 2 on maximum speed;
//! * the ordering CRCD ≤ CRP2D ≤ CRAD of worst cases by construction
//!   generality (more general deadlines → looser bound).
//!
//! Each section is a batch-engine sweep per instance family: the
//! clairvoyant YDS profile of every instance is computed once and its
//! per-α energies memoized, so the α grid rides on cached profiles.

use qbss_analysis::bounds;
use qbss_bench::engine::{run_sweep, EngineReport, InstanceSource, SweepSpec};
use qbss_bench::table::{fmt, Table};
use qbss_core::pipeline::Algorithm;
use qbss_instances::gen::{Compressibility, GenConfig, QueryModel, TimeModel};

const SEEDS: std::ops::Range<u64> = 0..300;
const ALPHAS: [f64; 4] = [1.5, 2.0, 2.5, 3.0];

fn families(n: usize, time: TimeModel) -> Vec<(&'static str, GenConfig)> {
    let base = GenConfig {
        n,
        seed: 0,
        time,
        min_w: 0.5,
        max_w: 4.0,
        query: QueryModel::UniformFraction { lo: 0.05, hi: 0.95 },
        compress: Compressibility::Uniform,
    };
    vec![
        ("uniform", base),
        ("bimodal", GenConfig { compress: Compressibility::Bimodal { p_compressible: 0.5 }, ..base }),
        ("heavy-tail", GenConfig { compress: Compressibility::HeavyTail, ..base }),
        ("incompress", GenConfig { compress: Compressibility::Incompressible, ..base }),
        ("fully-compress", GenConfig { compress: Compressibility::FullyCompressible, ..base }),
    ]
}

/// One engine sweep per instance family for `algorithm`, all α at once.
fn sweep_families(
    algorithm: Algorithm,
    time: TimeModel,
    violations: &mut Vec<String>,
) -> Vec<(&'static str, EngineReport)> {
    families(40, time)
        .into_iter()
        .map(|(name, cfg)| {
            let spec = SweepSpec {
                source: InstanceSource::Generated { base: cfg, seeds: SEEDS },
                algorithms: vec![algorithm],
                alphas: ALPHAS.to_vec(),
                opt_fw_iters: 0,
            };
            let rep = run_sweep(&spec, 0).expect("sweep spec is valid");
            violations.extend(rep.violations());
            (name, rep)
        })
        .collect()
}

fn main() {
    let mut violations: Vec<String> = Vec::new();

    // ---------------- E2: CRCD ----------------
    println!("E2: CRCD (common release, common deadline) — Theorem 4.6");
    println!("bound(energy) = min(2^(a-1)*phi^a, 2^a); bound(speed) = 2\n");
    let mut t = Table::new(vec![
        "alpha", "family", "max E-ratio", "mean E-ratio", "bound", "max s-ratio", "s-bound",
    ]);
    let reports = sweep_families(Algorithm::Crcd, TimeModel::CommonDeadline { d: 8.0 }, &mut violations);
    for &alpha in &ALPHAS {
        for (name, rep) in &reports {
            let g = rep.group(Algorithm::Crcd, alpha).expect("group in spec");
            let energy = g.energy_ratio.expect("no cell errored");
            let speed = g.speed_ratio.expect("single-machine group");
            t.row(vec![
                format!("{alpha}"),
                (*name).to_string(),
                fmt(energy.max),
                fmt(energy.mean),
                fmt(g.energy_bound.expect("CRCD has a proven bound")),
                fmt(speed.max),
                "2".to_string(),
            ]);
        }
    }
    t.print();

    // ---------------- E3: CRP2D ----------------
    println!("\nE3: CRP2D (power-of-2 deadlines) — Theorem 4.13");
    println!("bound(energy) = (4*phi)^a\n");
    let mut t = Table::new(vec!["alpha", "family", "max E-ratio", "mean E-ratio", "bound"]);
    let reports =
        sweep_families(Algorithm::Crp2d, TimeModel::PowersOfTwo { min_exp: 0, max_exp: 5 }, &mut violations);
    for &alpha in &ALPHAS {
        for (name, rep) in &reports {
            let g = rep.group(Algorithm::Crp2d, alpha).expect("group in spec");
            let energy = g.energy_ratio.expect("no cell errored");
            t.row(vec![
                format!("{alpha}"),
                (*name).to_string(),
                fmt(energy.max),
                fmt(energy.mean),
                fmt(g.energy_bound.expect("CRP2D has a proven bound")),
            ]);
        }
    }
    t.print();

    // ---------------- E4: CRAD ----------------
    println!("\nE4: CRAD (arbitrary deadlines) — Corollary 4.15");
    println!("bound(energy) = (8*phi)^a\n");
    let mut t = Table::new(vec!["alpha", "family", "max E-ratio", "mean E-ratio", "bound"]);
    let reports = sweep_families(
        Algorithm::Crad,
        TimeModel::ArbitraryDeadlines { min_d: 1.0, max_d: 50.0 },
        &mut violations,
    );
    for &alpha in &ALPHAS {
        for (name, rep) in &reports {
            let g = rep.group(Algorithm::Crad, alpha).expect("group in spec");
            let energy = g.energy_ratio.expect("no cell errored");
            t.row(vec![
                format!("{alpha}"),
                (*name).to_string(),
                fmt(energy.max),
                fmt(energy.mean),
                fmt(g.energy_bound.expect("CRAD has a proven bound")),
            ]);
        }
    }
    t.print();

    println!("\nPaper bounds at alpha = 3:");
    println!(
        "  CRCD {} | CRP2D {} | CRAD {}",
        fmt(bounds::crcd_energy_ub(3.0)),
        fmt(bounds::crp2d_energy_ub(3.0)),
        fmt(bounds::crad_energy_ub(3.0)),
    );

    if violations.is_empty() {
        println!("\nOK: no proven bound violated across {} runs.", 3 * ALPHAS.len() * 5 * 300);
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        std::process::exit(1);
    }
}
