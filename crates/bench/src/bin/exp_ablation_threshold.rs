//! E10b — query-threshold ablation: is the golden-ratio rule
//! (`query iff c ≤ w/φ`) the right threshold?
//!
//! Sweeps `θ ∈ {0 (never) … 1 (always)}` for the threshold rule
//! `query iff c ≤ θ·w` inside BKPQ over random traces, and plays each
//! threshold against the adaptive single-job adversary that knows θ
//! (the worst `(c, w, w*)` for a threshold rule — the minimax value is
//! Lemma 3.1's `φ` load factor at `θ = 1/φ`). Also compares the three
//! online algorithms AVRQ / BKPQ / OAQ head-to-head (the paper's §7
//! open question).

use qbss_analysis::numeric::grid_then_golden_max;
use qbss_bench::ensemble::measure_ensemble;
use qbss_bench::table::{fmt, Table};
use qbss_core::online::{avrq, bkpq, bkpq_with, oaq};
use qbss_core::{QueryRule, SplitRule, Strategy, INV_PHI};
use qbss_instances::gen::{generate, Compressibility, GenConfig};

const SEEDS: std::ops::Range<u64> = 0..150;

/// Worst-case *load* factor of the θ-threshold rule on a single job
/// with `w = 1`: the adversary picks `c ∈ (0, 1]` and `w* ∈ [0, 1]`.
/// If `c ≤ θ` the rule queries and executes `c + w*`, worst against
/// `p* = min(1, c + w*)`; otherwise it executes `w = 1` against
/// `p* = c + w*`. (The executed-load ratio is what Lemma 3.1 bounds by
/// φ at `θ = 1/φ`.)
fn threshold_load_factor(theta: f64) -> f64 {
    // Branch 1: queried (c ≤ θ), adversary sets w* = 1 → ratio
    // (c + 1)/1, maximized at c = θ: 1 + θ.
    let queried = 1.0 + theta.min(1.0);
    // Branch 2: not queried (c > θ), adversary sets w* = 0 → ratio
    // 1/c, supremum at c → θ: 1/θ.
    let skipped = if theta >= 1.0 { 1.0 } else { 1.0 / theta.max(1e-12) };
    queried.max(skipped)
}

fn main() {
    let alpha = 3.0;
    println!("E10b: query-threshold sweep (alpha = 3, BKPQ substrate)\n");

    let thetas = [0.0, 0.2, 0.4, 0.5, INV_PHI, 0.7, 0.8, 1.0];
    let mut t = Table::new(vec![
        "theta",
        "max E-ratio (uniform)",
        "mean",
        "max E-ratio (incompr.)",
        "mean ",
        "worst-case load factor",
    ]);
    for &theta in &thetas {
        let rule = if theta <= 0.0 {
            QueryRule::Never
        } else if theta >= 1.0 {
            QueryRule::Always
        } else {
            QueryRule::Threshold(theta)
        };
        let strat = Strategy { query: rule, split: SplitRule::EqualWindow };
        let uni = measure_ensemble(
            SEEDS,
            alpha,
            |seed| generate(&GenConfig::online_default(25, seed)),
            |inst| bkpq_with(inst, strat),
        );
        let inc = measure_ensemble(
            SEEDS,
            alpha,
            |seed| {
                generate(&GenConfig {
                    compress: Compressibility::Incompressible,
                    ..GenConfig::online_default(25, seed)
                })
            },
            |inst| bkpq_with(inst, strat),
        );
        let label = if (theta - INV_PHI).abs() < 1e-9 {
            "1/phi".to_string()
        } else {
            format!("{theta}")
        };
        t.row(vec![
            label,
            fmt(uni.energy.max),
            fmt(uni.energy.mean),
            fmt(inc.energy.max),
            fmt(inc.energy.mean),
            if theta <= 0.0 { "inf".into() } else { fmt(threshold_load_factor(theta)) },
        ]);
    }
    t.print();

    // The minimax threshold for the load factor.
    let (best_theta, neg) = grid_then_golden_max(0.05, 1.0, 1000, |th| -threshold_load_factor(th));
    println!(
        "\nMinimax threshold: theta* = {} with load factor {} (theory: 1/phi = {}, phi = {}).",
        fmt(best_theta),
        fmt(-neg),
        fmt(INV_PHI),
        fmt(qbss_core::PHI),
    );
    if (best_theta - INV_PHI).abs() > 1e-3 {
        eprintln!("UNEXPECTED: golden-ratio threshold is not the minimax");
        std::process::exit(1);
    }

    // ------- AVRQ vs BKPQ vs OAQ (the §7 open question, empirically) -------
    println!("\nHead-to-head: AVRQ vs BKPQ vs OAQ (energy ratio vs clairvoyant OPT)\n");
    let mut t = Table::new(vec!["alpha", "family", "AVRQ max/mean", "BKPQ max/mean", "OAQ max/mean"]);
    for &alpha in &[2.0, 3.0] {
        for (fam, compress) in [
            ("uniform", Compressibility::Uniform),
            ("bimodal", Compressibility::Bimodal { p_compressible: 0.5 }),
            ("heavy-tail", Compressibility::HeavyTail),
        ] {
            let make = |seed: u64| {
                generate(&GenConfig { compress, ..GenConfig::online_default(25, seed) })
            };
            let a = measure_ensemble(SEEDS, alpha, make, avrq);
            let b = measure_ensemble(SEEDS, alpha, make, bkpq);
            let o = measure_ensemble(SEEDS, alpha, make, oaq);
            t.row(vec![
                format!("{alpha}"),
                fam.to_string(),
                format!("{} / {}", fmt(a.energy.max), fmt(a.energy.mean)),
                format!("{} / {}", fmt(b.energy.max), fmt(b.energy.mean)),
                format!("{} / {}", fmt(o.energy.max), fmt(o.energy.mean)),
            ]);
        }
    }
    t.print();
    println!("\n(OAQ — the paper's open question — empirically dominates on these traces,");
    println!(" mirroring OA's α^α < AVR's 2^(α−1)α^α < BKP's practical constants in the");
    println!(" classical setting; its worst-case ratio in the QBSS model remains open.)");
}
