//! E5 — regenerates the ρ-comparison table of §4.2 (the paper's second
//! table): `ρ1 = 2^{α−1}φ^α`, `ρ2 = 2^α`, and Theorem 4.8's
//! `ρ3 = max_{r≥1} min{f1, f2}` on the α-grid 1.25 … 3, plus the regime
//! summary (ρ1 best for α ≤ 1.44, ρ2 for 1.44 < α < 2, ρ3 for α ≥ 2).

use qbss_analysis::rho::{crcd_best_ratio, rho3_argmax, rho_table};
use qbss_bench::table::{fmt, Table};

fn main() {
    println!("E5: CRCD analysis comparison (paper §4.2, table after Theorem 4.8)\n");

    let mut t = Table::new(vec!["alpha", "rho1", "rho2", "rho3", "r* (argmax)", "best"]);
    for row in rho_table() {
        let (r_star, _) = rho3_argmax(row.alpha).map_or((f64::NAN, 0.0), |x| x);
        let best = if row.rho3 > 0.0 && row.rho3 <= row.rho1 && row.rho3 <= row.rho2 {
            "rho3"
        } else if row.rho2 <= row.rho1 {
            "rho2"
        } else {
            "rho1"
        };
        t.row(vec![
            format!("{}", row.alpha),
            fmt(row.rho1),
            fmt(row.rho2),
            if row.rho3 == 0.0 { "-".into() } else { fmt(row.rho3) },
            if r_star.is_nan() { "-".into() } else { fmt(r_star) },
            best.to_string(),
        ]);
    }
    t.print();

    println!("\nPaper's printed row values:");
    println!("rho1: 2.17 2.91 3.90  5.23 7.02 9.41 12.63 16.94");
    println!("rho2: 2.37 2.82 3.36  4.00 4.75 5.65  6.72  8.00");
    println!("rho3:    -    -    -  2.76 3.70 5.25  6.72  8.00");

    // Regime boundaries (the paper: ρ1 for α ≤ 1.44, ρ2 for
    // 1.44 < α < 2, ρ3 for α ≥ 2).
    let crossing = qbss_analysis::numeric::bisect(1.0, 2.0, 100, |a| {
        qbss_analysis::rho::rho1(a) - qbss_analysis::rho::rho2(a)
    });
    println!("\nrho1/rho2 crossing at alpha = {:.4} (paper: 1.44)", crossing);
    println!("best ratio at alpha = 3: {} (paper: 8)", fmt(crcd_best_ratio(3.0)));

    // Acceptance: the regenerated table must match the paper's printed
    // values to its two decimals.
    let paper = [
        (1.25, 2.17, 2.37, 0.0),
        (1.5, 2.91, 2.82, 0.0),
        (1.75, 3.90, 3.36, 0.0),
        (2.0, 5.23, 4.0, 2.76),
        (2.25, 7.02, 4.75, 3.70),
        (2.5, 9.41, 5.65, 5.25),
        (2.75, 12.63, 6.72, 6.72),
        (3.0, 16.94, 8.0, 8.0),
    ];
    let mut failures = 0;
    for ((a, p1, p2, p3), row) in paper.iter().zip(rho_table()) {
        assert_eq!(*a, row.alpha);
        for (name, paper_v, ours) in
            [("rho1", p1, row.rho1), ("rho2", p2, row.rho2), ("rho3", p3, row.rho3)]
        {
            if (paper_v - ours).abs() > 0.011 {
                eprintln!("MISMATCH {name}(alpha={a}): paper {paper_v}, measured {ours}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
    println!("\nOK: all 24 table entries match the paper to 2 decimals.");
}
