//! E6–E7 — Table 1, online rows: AVRQ and BKPQ (plus the OAQ
//! extension) on online arrival traces.
//!
//! Measured per algorithm:
//! * energy ratio vs the clairvoyant YDS optimum (≤ proven bound);
//! * max-speed ratio (BKPQ additionally ≤ (2+φ)e);
//! * the pointwise speed-domination theorems, checked on every trace:
//!   `s^AVRQ(t) ≤ 2 s^AVR*(t)` (Theorem 5.2) and
//!   `s^BKPQ(t) ≤ (2+φ) s^BKP*(t)` (Theorem 5.4);
//! * the Lemma 5.1 adversarial family for AVRQ, with a γ-parameter
//!   search, reported next to the `(2α)^α` lower bound.

use qbss_analysis::bounds;
use qbss_analysis::numeric::grid_then_golden_max;
use qbss_bench::ensemble::check_bound;
use qbss_bench::engine::{run_sweep, InstanceSource, SweepSpec};
use qbss_bench::table::{fmt, Table};
use qbss_core::online::{avr_star_profile, avrq, avrq_profile, bkp_star_profile, bkpq_profile};
use qbss_core::pipeline::Algorithm;
use qbss_core::PHI;
use qbss_instances::adversary::{avrq_adversary, avrq_adversary_staggered};
use qbss_instances::gen::{generate, Compressibility, GenConfig};

const SEEDS: std::ops::Range<u64> = 0..200;
const ALPHAS: [f64; 4] = [1.5, 2.0, 2.5, 3.0];
const ALGORITHMS: [Algorithm; 3] = [Algorithm::Avrq, Algorithm::Bkpq, Algorithm::Oaq];

fn trace(n: usize, seed: u64, compress: Compressibility) -> qbss_core::QbssInstance {
    generate(&GenConfig { compress, ..GenConfig::online_default(n, seed) })
}

fn main() {
    let mut violations: Vec<String> = Vec::new();

    // -------- energy & speed ratios over random traces --------
    println!("E6/E7: online algorithms on random arrival traces (n = 30)\n");
    let mut t = Table::new(vec![
        "alpha", "algorithm", "family", "max E-ratio", "mean E-ratio", "E-bound", "max s-ratio",
    ]);
    let compressions = [
        ("uniform", Compressibility::Uniform),
        ("bimodal", Compressibility::Bimodal { p_compressible: 0.5 }),
        ("incompress", Compressibility::Incompressible),
    ];
    // One sweep per compressibility family; the engine dispatches every
    // (instance, algorithm, α) cell through the checked pipeline, caches
    // the clairvoyant profile per instance, and counts bound violations.
    let reports: Vec<_> = compressions
        .iter()
        .map(|&(_, compress)| {
            let spec = SweepSpec {
                source: InstanceSource::Generated {
                    base: GenConfig { compress, ..GenConfig::online_default(30, 0) },
                    seeds: SEEDS,
                },
                algorithms: ALGORITHMS.to_vec(),
                alphas: ALPHAS.to_vec(),
                opt_fw_iters: 0,
            };
            let rep = run_sweep(&spec, 0).expect("sweep spec is valid");
            violations.extend(rep.violations());
            rep
        })
        .collect();
    for &alpha in &ALPHAS {
        for (fam_idx, &(fam, _)) in compressions.iter().enumerate() {
            for alg in ALGORITHMS {
                let g = reports[fam_idx].group(alg, alpha).expect("group in spec");
                let energy = g.energy_ratio.expect("no cell errored");
                let speed = g.speed_ratio.expect("single-machine group");
                t.row(vec![
                    format!("{alpha}"),
                    alg.name().to_string(),
                    fam.to_string(),
                    fmt(energy.max),
                    fmt(energy.mean),
                    g.energy_bound.map_or_else(|| "(open)".into(), fmt),
                    fmt(speed.max),
                ]);
            }
        }
    }
    t.print();

    // -------- pointwise speed-domination theorems --------
    println!("\nTheorem 5.2 / 5.4 pointwise checks over {} traces:", SEEDS.end);
    let dom_violations: Vec<String> = qbss_bench::par_map_seeds(SEEDS, |seed| {
            let inst = trace(30, seed, Compressibility::Uniform);
            let mut errs = Vec::new();
            if let Err(t) = avrq_profile(&inst).dominated_by(&avr_star_profile(&inst), 2.0) {
                errs.push(format!("seed {seed}: s^AVRQ > 2 s^AVR* at t = {t}"));
            }
            if let Err(t) = bkpq_profile(&inst).dominated_by(&bkp_star_profile(&inst), 2.0 + PHI)
            {
                errs.push(format!("seed {seed}: s^BKPQ > (2+phi) s^BKP* at t = {t}"));
            }
            errs
        })
        .into_iter()
        .flatten()
        .collect();
    if dom_violations.is_empty() {
        println!("  OK: s^AVRQ <= 2 s^AVR* and s^BKPQ <= (2+phi) s^BKP* everywhere.");
    } else {
        violations.extend(dom_violations);
    }

    // -------- Lemma 5.1: adversarial family for AVRQ --------
    println!("\nLemma 5.1: AVRQ adversarial family — staggered releases r_i = 1 - gamma^i,");
    println!("common deadline, works optimized by coordinate-ascent adversary search");
    let mut t = Table::new(vec![
        "alpha",
        "geometric family",
        "searched staggered",
        "LB (2a)^a",
        "UB 2^(2a-1)a^a",
    ]);
    for &alpha in &ALPHAS {
        // Baseline: the plain geometric-deadline family, γ searched.
        let (_, geo) = grid_then_golden_max(0.1, 0.9, 40, |gamma| {
            let inst = avrq_adversary(20, gamma, 1e-9);
            avrq(&inst).energy_ratio(&inst, alpha)
        });
        // Sharper: staggered releases with works optimized adversarially.
        let n = 14;
        let gamma = 0.55;
        let ratio_of = |works: &[f64]| {
            let inst = avrq_adversary_staggered(works, gamma, 1e-9);
            avrq(&inst).energy_ratio(&inst, alpha)
        };
        let x0: Vec<f64> = (0..n).map(|i| 0.55f64.powi(i)).collect();
        let (_, searched) = qbss_bench::coordinate_ascent(x0, 32.0, 8, |w| ratio_of(w));
        violations.extend(
            check_bound(
                &format!("AVRQ adversary α={alpha}"),
                searched.max(geo),
                bounds::avrq_energy_ub(alpha),
            )
            .err(),
        );
        t.row(vec![
            format!("{alpha}"),
            fmt(geo),
            fmt(searched),
            fmt(bounds::avrq_energy_lb(alpha)),
            fmt(bounds::avrq_energy_ub(alpha)),
        ]);
    }
    t.print();
    println!("(the (2a)^a LB is asymptotic — it needs n → ∞ jobs; the reproduced shape:");
    println!(" the adversarial geometry drives AVRQ an order of magnitude above its");
    println!(" random-trace ratios while staying inside [1, UB].)");

    if violations.is_empty() {
        println!("\nOK: no proven bound violated.");
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        std::process::exit(1);
    }
}
