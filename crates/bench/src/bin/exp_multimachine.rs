//! E8 — Table 1, AVRQ(m) row (§6): multi-machine online QBSS.
//!
//! * Theorem 6.3, checked pointwise per machine on every trace:
//!   `s_i^{AVRQ(m)}(t) ≤ 2 s_i^{AVR*(m)}(t)`.
//! * Corollary 6.4: energy ≤ `2^α(2^{α−1}α^α + 1)` × OPT — checked
//!   against a certified lower bound on OPT: the max of the closed-form
//!   fluid/per-job bounds and the Frank–Wolfe duality certificate (see
//!   DESIGN.md §5 on this substitution).
//! * AVRQ(m) energy vs AVR*(m) energy (the pure query penalty ≤ 2^α).

use qbss_bench::ensemble::check_bound;
use qbss_bench::engine::{run_sweep, InstanceSource, SweepSpec};
use qbss_bench::table::{fmt, Table};
use qbss_core::online::{avr_star_m, avrq_m, avrq_m_nonmig, oaq_m};
use qbss_core::pipeline::Algorithm;
use qbss_instances::gen::{generate, GenConfig};
use speed_scaling::multi::{multi_opt_frank_wolfe, opt_lower_bound};

const SEEDS: std::ops::Range<u64> = 0..100;
const ALPHAS: [f64; 3] = [2.0, 2.5, 3.0];
const MACHINES: [usize; 4] = [2, 4, 8, 16];

fn main() {
    let mut violations: Vec<String> = Vec::new();

    println!("E8: AVRQ(m) on m parallel machines (online traces, n = 40)");
    println!("LB = max(fluid, per-job, Frank-Wolfe certificate) on the clairvoyant OPT\n");
    let mut t = Table::new(vec![
        "alpha",
        "m",
        "max E/LB",
        "mean E/LB",
        "bound 2^a(2^(a-1)a^a+1)",
        "max E/E(AVR*(m))",
        "2^a",
    ]);
    // One engine sweep covers the whole (seed × m × α) grid: each
    // instance is generated once, its certified OPT lower bound (fluid ∨
    // per-job ∨ 60-iteration Frank-Wolfe certificate) memoized per
    // (m, α), and the Corollary 6.4 bound checked per cell.
    let algorithms: Vec<Algorithm> = MACHINES.iter().map(|&m| Algorithm::AvrqM { m }).collect();
    let spec = SweepSpec {
        source: InstanceSource::Generated { base: GenConfig::online_default(40, 0), seeds: SEEDS },
        algorithms: algorithms.clone(),
        alphas: ALPHAS.to_vec(),
        opt_fw_iters: 60,
    };
    let rep = run_sweep(&spec, 0).expect("sweep spec is valid");
    violations.extend(rep.violations());
    // The AVR*(m) baseline (clairvoyant works, no query cost) is not an
    // engine cell; its per-α energies are computed once per (seed, m)
    // and the sweep's recorded energies are reused for the numerator —
    // AVRQ(m) is never run twice.
    let star_energy: Vec<Vec<Vec<f64>>> = qbss_bench::par_map_seeds(SEEDS, |seed| {
        let inst = generate(&GenConfig::online_default(40, seed));
        MACHINES
            .iter()
            .map(|&m| {
                let star = avr_star_m(&inst, m);
                ALPHAS.iter().map(|&a| star.energy(a)).collect()
            })
            .collect()
    });
    let n_seeds = SEEDS.end as usize;
    for (k, &alpha) in ALPHAS.iter().enumerate() {
        for (a, &m) in MACHINES.iter().enumerate() {
            let g = rep.group(algorithms[a], alpha).expect("group in spec");
            let lb_digest = g.energy_ratio.expect("no cell errored");
            let vs_star: Vec<f64> = (0..n_seeds)
                .map(|i| {
                    let rec = &rep.records[(i * MACHINES.len() + a) * ALPHAS.len() + k];
                    let metrics = rec.result.as_ref().expect("no cell errored");
                    metrics.energy / star_energy[i][a][k]
                })
                .collect();
            let s_star = qbss_analysis::Summary::of(&vs_star);
            violations.extend(
                check_bound(
                    &format!("AVRQ(m)/AVR*(m) α={alpha} m={m}"),
                    s_star.max,
                    2.0f64.powf(alpha),
                )
                .err(),
            );
            t.row(vec![
                format!("{alpha}"),
                format!("{m}"),
                fmt(lb_digest.max),
                fmt(lb_digest.mean),
                fmt(g.energy_bound.expect("AVRQ(m) has a proven bound")),
                fmt(s_star.max),
                fmt(2.0f64.powf(alpha)),
            ]);
        }
    }
    t.print();

    // Theorem 6.3 pointwise, per machine.
    println!("\nTheorem 6.3 pointwise checks (s_i^AVRQ(m) <= 2 s_i^AVR*(m)):");
    let dom: Vec<String> = qbss_bench::par_map_seeds(SEEDS, |seed| {
            let inst = generate(&GenConfig::online_default(40, seed));
            let mut errs = Vec::new();
            for &m in &MACHINES {
                let alg = avrq_m(&inst, m);
                let star = avr_star_m(&inst, m);
                for (i, (a, s)) in
                    alg.machine_profiles.iter().zip(&star.machine_profiles).enumerate()
                {
                    if let Err(t) = a.dominated_by(s, 2.0) {
                        errs.push(format!("seed {seed} m={m} machine {i}: violated at t={t}"));
                    }
                }
            }
            errs
        })
        .into_iter()
        .flatten()
        .collect();
    if dom.is_empty() {
        println!(
            "  OK over {} trace×machine-count combinations ({} machine profiles).",
            100 * MACHINES.len(),
            100 * MACHINES.iter().sum::<usize>(),
        );
    } else {
        violations.extend(dom);
    }

    // Extension: OAQ(m) vs AVRQ(m) — the multi-machine side of the §7
    // open question.
    println!("\nExtension: OAQ(m) vs AVRQ(m) (alpha = 3, energy vs certified OPT LB)\n");
    {
        let alpha = 3.0;
        let mut t = Table::new(vec![
            "m",
            "AVRQ(m) max/mean E/LB",
            "OAQ(m) max/mean E/LB",
            "mean E(OAQ)/E(AVRQ)",
        ]);
        for &m in &[2usize, 4, 8] {
            let rows: Vec<(f64, f64, f64)> = qbss_bench::par_map_seeds(0..40u64, |seed| {
                    let inst = generate(&GenConfig::online_default(30, seed));
                    let clair = inst.clairvoyant_instance();
                    let fw = multi_opt_frank_wolfe(&clair, m, alpha, 60);
                    let lb = opt_lower_bound(&clair, m, alpha).max(fw.lower_bound());
                    let a = avrq_m(&inst, m);
                    let o = oaq_m(&inst, m, alpha, 60);
                    o.outcome
                        .validate(&inst)
                        .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
                    (
                        a.energy(alpha) / lb,
                        o.energy(alpha) / lb,
                        o.energy(alpha) / a.energy(alpha),
                    )
                });
            let av: Vec<f64> = rows.iter().map(|r| r.0).collect();
            let oa: Vec<f64> = rows.iter().map(|r| r.1).collect();
            let rel: Vec<f64> = rows.iter().map(|r| r.2).collect();
            let (sa, so, sr) = (
                qbss_analysis::Summary::of(&av),
                qbss_analysis::Summary::of(&oa),
                qbss_analysis::Summary::of(&rel),
            );
            t.row(vec![
                format!("{m}"),
                format!("{} / {}", fmt(sa.max), fmt(sa.mean)),
                format!("{} / {}", fmt(so.max), fmt(so.mean)),
                fmt(sr.mean),
            ]);
        }
        t.print();
        println!("(OA-style replanning beats AVR-style density-spreading on average here,");
        println!(" matching the single-machine picture; its worst case remains open.)");
    }

    // Extension (§7 remark): migratory vs non-migratory AVRQ(m).
    println!("\nExtension: migration value — AVRQ(m) vs non-migratory AVRQ(m) (alpha = 3)\n");
    let alpha = 3.0;
    let mut t = Table::new(vec![
        "m",
        "mean E(nonmig)/E(mig)",
        "max E(nonmig)/E(mig)",
        "mean peak(nonmig)/peak(mig)",
    ]);
    for &m in &MACHINES {
        let rows: Vec<(f64, f64)> = qbss_bench::par_map_seeds(SEEDS, |seed| {
                let inst = generate(&GenConfig::online_default(40, seed));
                let mig = avrq_m(&inst, m);
                let non = avrq_m_nonmig(&inst, m);
                non.outcome
                    .validate(&inst)
                    .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
                (
                    non.energy(alpha) / mig.energy(alpha),
                    non.max_speed() / mig.max_speed(),
                )
            });
        let e: Vec<f64> = rows.iter().map(|r| r.0).collect();
        let s: Vec<f64> = rows.iter().map(|r| r.1).collect();
        let (se, ss) = (qbss_analysis::Summary::of(&e), qbss_analysis::Summary::of(&s));
        t.row(vec![format!("{m}"), fmt(se.mean), fmt(se.max), fmt(ss.mean)]);
    }
    t.print();
    println!("(the non-migratory greedy loses mostly on *big* jobs that AVR(m) would");
    println!(" isolate; the paper's §7 notes the analysis transfers to this variant.)");

    if violations.is_empty() {
        println!("\nOK: no proven bound violated.");
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        std::process::exit(1);
    }
}
