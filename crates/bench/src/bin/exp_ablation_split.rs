//! E10a — splitting-point ablation: is the paper's *equal window*
//! (`x = 1/2`) the right fixed split?
//!
//! Sweeps the fixed split fraction `x ∈ {0.1 … 0.9}` for AVRQ and BKPQ
//! over random online traces and over the adaptive Lemma 4.3 adversary,
//! reporting worst-case and mean energy ratios. The paper motivates
//! `x = 1/2` with the single-job adversary (Lemma 4.3: any other fixed
//! `x` loses `max{x, 1−x}^{1−α} > 2^{α−1}` against the adaptive
//! adversary); the sweep shows both sides — on benign random traces a
//! smaller `x` can help (queries are cheap), but the adversarial column
//! is minimized exactly at 1/2.

use qbss_bench::ensemble::measure_ensemble;
use qbss_bench::table::{fmt, Table};
use qbss_core::online::{avrq_with, bkpq_with};
use qbss_core::oracle::{cost_opt, cost_query_at, ratios};
use qbss_core::{QueryRule, SplitRule, Strategy};
use qbss_instances::adversary::lemma_4_3_instance;
use qbss_instances::gen::{generate, GenConfig};

const SEEDS: std::ops::Range<u64> = 0..150;
const XS: [f64; 9] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];

fn main() {
    let alpha = 3.0;
    println!("E10a: splitting-point sweep (alpha = 3)\n");

    let mut t = Table::new(vec![
        "x",
        "AVRQ max E-ratio",
        "AVRQ mean",
        "BKPQ max E-ratio",
        "BKPQ mean",
        "adversarial (L4.3)",
    ]);
    let mut adversarial_best = (f64::INFINITY, 0.0);
    for &x in &XS {
        let avrq_rep = measure_ensemble(
            SEEDS,
            alpha,
            |seed| generate(&GenConfig::online_default(25, seed)),
            |inst| {
                avrq_with(
                    inst,
                    Strategy { query: QueryRule::Always, split: SplitRule::Fraction(x) },
                )
            },
        );
        let bkpq_rep = measure_ensemble(
            SEEDS,
            alpha,
            |seed| generate(&GenConfig::online_default(25, seed)),
            |inst| {
                bkpq_with(
                    inst,
                    Strategy { query: QueryRule::GoldenRatio, split: SplitRule::Fraction(x) },
                )
            },
        );
        // The adaptive single-job adversary of Lemma 4.3 against this x.
        let inst = lemma_4_3_instance(Some(x));
        let j = &inst.jobs[0];
        let adv = ratios(cost_query_at(j, x, alpha), cost_opt(j, alpha)).energy;
        if adv < adversarial_best.0 {
            adversarial_best = (adv, x);
        }
        t.row(vec![
            format!("{x}"),
            fmt(avrq_rep.energy.max),
            fmt(avrq_rep.energy.mean),
            fmt(bkpq_rep.energy.max),
            fmt(bkpq_rep.energy.mean),
            fmt(adv),
        ]);
    }
    t.print();

    println!(
        "\nAdversarial column minimized at x = {} (value {}); theory: x = 0.5 with 2^(a-1) = {}.",
        adversarial_best.1,
        fmt(adversarial_best.0),
        fmt(2.0f64.powf(alpha - 1.0)),
    );
    if (adversarial_best.1 - 0.5).abs() > 1e-9 {
        eprintln!("UNEXPECTED: equal window is not the adversarial optimum");
        std::process::exit(1);
    }
    println!("OK: the equal-window split is the unique minimax fixed split.");

    // Per-job *adaptive* split: the expected-oracle heuristic
    // x_j = c_j/(c_j + w_j/2) (visible data only) vs the fixed rules.
    println!("\nAdaptive split (expected-oracle x = c/(c + w/2)) vs equal window:\n");
    let mut t = Table::new(vec!["rule", "AVRQ-style max/mean", "BKPQ-style max/mean"]);
    for (name, split) in [
        ("equal window", SplitRule::EqualWindow),
        ("expected oracle", SplitRule::ExpectedOracle),
    ] {
        let a = measure_ensemble(
            SEEDS,
            alpha,
            |seed| generate(&GenConfig::online_default(25, seed)),
            |inst| avrq_with(inst, Strategy { query: QueryRule::Always, split }),
        );
        let b = measure_ensemble(
            SEEDS,
            alpha,
            |seed| generate(&GenConfig::online_default(25, seed)),
            |inst| bkpq_with(inst, Strategy { query: QueryRule::GoldenRatio, split }),
        );
        t.row(vec![
            name.to_string(),
            format!("{} / {}", fmt(a.energy.max), fmt(a.energy.mean)),
            format!("{} / {}", fmt(b.energy.max), fmt(b.energy.mean)),
        ]);
    }
    t.print();
    println!("(queries are usually much cheaper than w/2, so the adaptive split frees");
    println!(" most of the window for the exact work — better on benign traces, but it");
    println!(" inherits Lemma 4.3's x<1/2 penalty against the adaptive adversary.)");
}
