//! E0 — **Table 1 itself**: the paper's summary-of-results table,
//! regenerated from the closed-form bound formulas in `qbss-analysis`.
//!
//! Table 1 is a table of *formulas*; this binary prints it in the
//! paper's layout with each cell evaluated on an α grid, and asserts
//! the internal consistency every theory table must satisfy (LB ≤ UB
//! per row, monotone growth in α, the advertised factorizations).

use qbss_analysis::bounds as b;
use qbss_bench::table::{fmt, Table};

const ALPHAS: [f64; 4] = [1.5, 2.0, 2.5, 3.0];

/// One Table 1 row: setting, label, formula text, bound function.
type BoundRow = (&'static str, &'static str, &'static str, fn(f64) -> f64);

fn main() {
    println!("E0: Table 1 of the paper — 'Summary of our results' (energy objective)\n");
    println!("Rows as printed in the paper; cells evaluated at alpha = 1.5, 2, 2.5, 3.\n");

    let mut t = Table::new(vec![
        "setting", "row", "formula", "a=1.5", "a=2", "a=2.5", "a=3",
    ]);
    let rows: Vec<BoundRow> = vec![
        ("offline", "Oracle LB", "phi^a", b::oracle_energy_lb),
        ("offline", "LB (det.)", "max(phi^a, 2^(a-1))", b::offline_energy_lb),
        ("offline", "CRCD UB", "min(2^(a-1) phi^a, 2^a)", b::crcd_energy_ub),
        ("offline", "CRP2D UB", "(4 phi)^a", b::crp2d_energy_ub),
        ("offline", "CRAD UB", "(8 phi)^a", b::crad_energy_ub),
        ("online", "AVRQ LB", "(2a)^a", b::avrq_energy_lb),
        ("online", "AVRQ UB", "2^a 2^(a-1) a^a", b::avrq_energy_ub),
        ("online", "BKPQ LB", "3^(a-1)", b::bkpq_energy_lb),
        ("online", "BKPQ UB", "(2+phi)^a 2(a/(a-1))^a e^a", b::bkpq_energy_ub),
        ("online", "AVRQ(m) LB", "(2a)^a", b::avrq_m_energy_lb),
        ("online", "AVRQ(m) UB", "2^a (2^(a-1) a^a + 1)", b::avrq_m_energy_ub),
    ];
    for (setting, row, formula, f) in &rows {
        t.row(vec![
            setting.to_string(),
            row.to_string(),
            formula.to_string(),
            fmt(f(ALPHAS[0])),
            fmt(f(ALPHAS[1])),
            fmt(f(ALPHAS[2])),
            fmt(f(ALPHAS[3])),
        ]);
    }
    t.print();

    println!("\nMax-speed column of Table 1 (alpha-independent):");
    let mut t = Table::new(vec!["row", "value"]);
    t.row(vec!["Oracle LB".to_string(), fmt(b::oracle_speed_lb())]);
    t.row(vec!["LB (det.)".to_string(), fmt(b::offline_speed_lb())]);
    t.row(vec!["LB (rand.)".to_string(), fmt(b::randomized_speed_lb())]);
    t.row(vec!["CRCD UB".to_string(), fmt(b::crcd_speed_ub())]);
    t.row(vec!["BKPQ UB (2+phi)e".to_string(), fmt(b::bkpq_speed_ub())]);
    t.print();

    // Consistency assertions.
    let mut bad = 0usize;
    for &a in &ALPHAS {
        let checks = [
            ("oracle LB <= det LB", b::oracle_energy_lb(a) <= b::offline_energy_lb(a) + 1e-12),
            ("det LB <= CRCD UB", b::offline_energy_lb(a) <= b::crcd_energy_ub(a) + 1e-12),
            ("CRCD <= CRP2D", b::crcd_energy_ub(a) <= b::crp2d_energy_ub(a) + 1e-12),
            ("CRP2D <= CRAD", b::crp2d_energy_ub(a) <= b::crad_energy_ub(a) + 1e-12),
            ("AVRQ LB <= UB", b::avrq_energy_lb(a) <= b::avrq_energy_ub(a) + 1e-12),
            ("BKPQ LB <= UB", b::bkpq_energy_lb(a) <= b::bkpq_energy_ub(a) + 1e-12),
            ("AVRQ(m) LB <= UB", b::avrq_m_energy_lb(a) <= b::avrq_m_energy_ub(a) + 1e-12),
            (
                "AVRQ UB = 2^a * AVR",
                (b::avrq_energy_ub(a) - 2.0f64.powf(a) * b::avr_energy(a)).abs() < 1e-9,
            ),
            (
                "BKPQ UB = (2+phi)^a * BKP",
                (b::bkpq_energy_ub(a) - (2.0 + b::PHI).powf(a) * b::bkp_energy(a)).abs()
                    < 1e-6 * b::bkpq_energy_ub(a),
            ),
        ];
        for (name, ok) in checks {
            if !ok {
                eprintln!("INCONSISTENT at alpha = {a}: {name}");
                bad += 1;
            }
        }
    }
    if bad == 0 {
        println!("\nOK: all Table 1 rows internally consistent (LB <= UB, orderings,");
        println!("    and the advertised query-penalty factorizations).");
    } else {
        std::process::exit(1);
    }
}
