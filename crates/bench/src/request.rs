//! Request-scoped sweep specs: the JSON body of `POST /sweep` parsed
//! into a validated [`SweepSpec`] — the serve-mode twin of the CLI's
//! `qbss sweep` flags.
//!
//! Both front ends speak the same vocabulary (family and
//! compressibility names from `qbss_instances::gen`, algorithm names
//! from `Algorithm::from_str`, the same defaults) so a sweep described
//! on the command line and one POSTed to a server are the same sweep.
//! Errors split along the serve-mode status-code boundary: a body that
//! is not JSON at all is a [`RequestError::Syntax`] (HTTP 400), while
//! well-formed JSON describing an impossible sweep is a
//! [`RequestError::Spec`] (HTTP 422).

use std::fmt;

use qbss_core::pipeline::{Algorithm, DEFAULT_FW_ITERS, DEFAULT_MACHINES};
use qbss_instances::gen::{Compressibility, GenConfig, QueryModel, TimeModel};
use qbss_telemetry::{json_parse, JsonValue};

use crate::engine::{InstanceSource, SweepSpec};

/// Why a sweep request body was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// The body is not valid JSON (maps to HTTP 400).
    Syntax(String),
    /// The JSON does not describe a runnable sweep (maps to HTTP 422).
    Spec(String),
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::Syntax(msg) => write!(f, "invalid JSON: {msg}"),
            RequestError::Spec(msg) => write!(f, "invalid sweep spec: {msg}"),
        }
    }
}

impl std::error::Error for RequestError {}

fn spec_err(msg: impl Into<String>) -> RequestError {
    RequestError::Spec(msg.into())
}

/// A parsed `POST /sweep` body: the sweep to run plus the shard count
/// (0 = auto, as on the CLI).
#[derive(Debug, Clone)]
pub struct SweepRequest {
    /// The validated sweep.
    pub spec: SweepSpec,
    /// Worker shards (0 lets the engine pick).
    pub shards: usize,
}

/// The admission cost of one `/evaluate` request: a single cell.
pub const EVALUATE_COST: u64 = 1;

const KNOWN_KEYS: &[&str] = &[
    "count", "n", "seed", "family", "compress", "alg", "alpha", "m", "fw_iters", "shards",
    "opt_fw_iters",
];

fn get_u64(obj: &JsonValue, key: &str, default: u64) -> Result<u64, RequestError> {
    match obj.get(key) {
        None => Ok(default),
        Some(JsonValue::Num(v)) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => {
            Ok(*v as u64)
        }
        Some(other) => Err(spec_err(format!("`{key}` must be a non-negative integer, got {other:?}"))),
    }
}

fn get_usize(obj: &JsonValue, key: &str, default: usize) -> Result<usize, RequestError> {
    usize::try_from(get_u64(obj, key, default as u64)?)
        .map_err(|_| spec_err(format!("`{key}` is out of range")))
}

fn get_str<'a>(obj: &'a JsonValue, key: &str, default: &'a str) -> Result<&'a str, RequestError> {
    match obj.get(key) {
        None => Ok(default),
        Some(JsonValue::Str(s)) => Ok(s),
        Some(other) => Err(spec_err(format!("`{key}` must be a string, got {other:?}"))),
    }
}

fn alpha_of(v: &JsonValue) -> Result<f64, RequestError> {
    match v {
        JsonValue::Num(a) if a.is_finite() && *a > 1.0 => Ok(*a),
        JsonValue::Num(a) => Err(spec_err(format!("`alpha` must be finite and exceed 1, got {a}"))),
        other => Err(spec_err(format!("`alpha` entries must be numbers, got {other:?}"))),
    }
}

fn algorithm_of(token: &str, m: usize, fw_iters: usize) -> Result<Vec<Algorithm>, RequestError> {
    if token.trim() == "all" {
        return Ok(Algorithm::all(m, fw_iters));
    }
    let alg: Algorithm = token.parse().map_err(|e| spec_err(format!("{e}")))?;
    // A bare family name takes the request-level machine count, the
    // same binding rule the CLI's `--alg` list applies.
    Ok(vec![if token.contains(':') { alg } else { alg.with_machines(m) }])
}

impl SweepRequest {
    /// Parses a request body. Every field is optional; the defaults are
    /// the CLI's (`family: "common"`, `alg: "all"`, `alpha: [3]`,
    /// `count: 100`, `n: 20`, …). Unknown keys are rejected so typos
    /// fail loudly instead of silently running the default sweep.
    pub fn from_json(body: &str) -> Result<SweepRequest, RequestError> {
        let root = json_parse(body).map_err(RequestError::Syntax)?;
        let JsonValue::Obj(fields) = &root else {
            return Err(spec_err("the request body must be a JSON object"));
        };
        for (key, _) in fields {
            if !KNOWN_KEYS.contains(&key.as_str()) {
                return Err(spec_err(format!(
                    "unknown key `{key}` (one of: {})",
                    KNOWN_KEYS.join(", ")
                )));
            }
        }

        let count = get_u64(&root, "count", 100)?;
        let n = get_usize(&root, "n", 20)?;
        let seed = get_u64(&root, "seed", 0)?;
        let family = get_str(&root, "family", "common")?;
        let time = TimeModel::from_name(family, n).ok_or_else(|| {
            spec_err(format!("unknown family `{family}` (one of: {})", TimeModel::NAMES.join(", ")))
        })?;
        let compress_name = get_str(&root, "compress", "uniform")?;
        let compress = Compressibility::from_name(compress_name).ok_or_else(|| {
            spec_err(format!(
                "unknown compressibility `{compress_name}` (one of: {})",
                Compressibility::NAMES.join(", ")
            ))
        })?;
        let m = get_usize(&root, "m", DEFAULT_MACHINES)?;
        if m == 0 {
            return Err(spec_err("`m` must be at least 1"));
        }
        let fw_iters = get_usize(&root, "fw_iters", DEFAULT_FW_ITERS)?;

        let algorithms = match root.get("alg") {
            None => Algorithm::all(m, fw_iters),
            Some(JsonValue::Str(s)) => {
                let mut algs = Vec::new();
                for token in s.split(',') {
                    algs.extend(algorithm_of(token, m, fw_iters)?);
                }
                algs
            }
            Some(JsonValue::Arr(items)) => {
                let mut algs = Vec::new();
                for item in items {
                    let JsonValue::Str(token) = item else {
                        return Err(spec_err("`alg` array entries must be strings"));
                    };
                    algs.extend(algorithm_of(token, m, fw_iters)?);
                }
                algs
            }
            Some(other) => {
                return Err(spec_err(format!(
                    "`alg` must be a string or array of strings, got {other:?}"
                )))
            }
        };

        let alphas = match root.get("alpha") {
            None => vec![3.0],
            Some(v @ JsonValue::Num(_)) => vec![alpha_of(v)?],
            Some(JsonValue::Arr(items)) => {
                items.iter().map(alpha_of).collect::<Result<Vec<f64>, RequestError>>()?
            }
            Some(other) => {
                return Err(spec_err(format!(
                    "`alpha` must be a number or array of numbers, got {other:?}"
                )))
            }
        };

        let shards = get_usize(&root, "shards", 0)?;
        let opt_fw_iters = get_usize(&root, "opt_fw_iters", 8)?;

        let spec = SweepSpec {
            source: InstanceSource::Generated {
                base: GenConfig {
                    n,
                    seed: 0,
                    time,
                    min_w: 0.5,
                    max_w: 4.0,
                    query: QueryModel::UniformFraction { lo: 0.1, hi: 0.6 },
                    compress,
                },
                seeds: seed..seed.saturating_add(count),
            },
            algorithms,
            alphas,
            opt_fw_iters,
        };
        spec.validate().map_err(|e| spec_err(e.to_string()))?;
        Ok(SweepRequest { spec, shards })
    }

    /// The admission cost of this request in cells — `instances ×
    /// algorithms × alphas`, the exact unit of work the engine will
    /// run. Known from the parsed spec *before* any cell executes, so
    /// the serve plane can shed over-budget sweeps up front.
    pub fn cost(&self) -> u64 {
        self.spec.n_cells() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_sweep;

    #[test]
    fn empty_object_is_the_default_sweep() {
        let req = SweepRequest::from_json("{}").expect("defaults");
        assert_eq!(req.spec.n_instances(), 100);
        assert_eq!(req.spec.algorithms, Algorithm::all(DEFAULT_MACHINES, DEFAULT_FW_ITERS));
        assert_eq!(req.spec.alphas, vec![3.0]);
        assert_eq!(req.shards, 0);
    }

    #[test]
    fn request_matches_the_cli_spec_byte_for_byte() {
        // The same sweep described as a request and as CLI-style
        // parameters must aggregate identically.
        let req = SweepRequest::from_json(
            r#"{"count": 4, "n": 6, "alg": "avrq,bkpq", "alpha": [2, 3], "seed": 1}"#,
        )
        .expect("valid");
        let by_hand = SweepSpec {
            source: InstanceSource::Generated {
                base: GenConfig {
                    n: 6,
                    seed: 0,
                    time: TimeModel::from_name("common", 6).expect("known"),
                    min_w: 0.5,
                    max_w: 4.0,
                    query: QueryModel::UniformFraction { lo: 0.1, hi: 0.6 },
                    compress: Compressibility::Uniform,
                },
                seeds: 1..5,
            },
            algorithms: vec![Algorithm::Avrq, Algorithm::Bkpq],
            alphas: vec![2.0, 3.0],
            opt_fw_iters: 8,
        };
        let a = run_sweep(&req.spec, 1).expect("runs").aggregate_json();
        let b = run_sweep(&by_hand, 1).expect("runs").aggregate_json();
        assert_eq!(a, b);
    }

    #[test]
    fn alg_array_and_machine_binding() {
        let req = SweepRequest::from_json(r#"{"alg": ["avrq-m", "oaq-m:4:7"], "m": 3}"#)
            .expect("valid");
        assert_eq!(
            req.spec.algorithms,
            vec![Algorithm::AvrqM { m: 3 }, Algorithm::OaqM { m: 4, fw_iters: 7 }]
        );
    }

    #[test]
    fn syntax_and_spec_errors_split() {
        assert!(matches!(
            SweepRequest::from_json("{not json").unwrap_err(),
            RequestError::Syntax(_)
        ));
        for bad in [
            r#"{"alg": "yds"}"#,
            r#"{"family": "nope"}"#,
            r#"{"compress": "nope"}"#,
            r#"{"alpha": 1.0}"#,
            r#"{"alpha": "three"}"#,
            r#"{"m": 0}"#,
            r#"{"count": -1}"#,
            r#"{"typo_key": 1}"#,
            r#"{"count": 0}"#,
            "[1, 2]",
        ] {
            assert!(
                matches!(SweepRequest::from_json(bad), Err(RequestError::Spec(_))),
                "{bad}"
            );
        }
    }

    #[test]
    fn shards_pass_through() {
        let req = SweepRequest::from_json(r#"{"shards": 4, "count": 2, "n": 4}"#).expect("valid");
        assert_eq!(req.shards, 4);
    }

    #[test]
    fn cost_is_the_engine_cell_count() {
        // 4 instances × 2 algorithms × 2 alphas = 16 cells.
        let req = SweepRequest::from_json(
            r#"{"count": 4, "n": 6, "alg": "avrq,bkpq", "alpha": [2, 3]}"#,
        )
        .expect("valid");
        assert_eq!(req.cost(), 16);
        assert_eq!(req.cost(), req.spec.n_cells() as u64);
        // The default sweep: 100 instances × |all| algorithms × 1 α.
        let req = SweepRequest::from_json("{}").expect("defaults");
        let n_algs = Algorithm::all(DEFAULT_MACHINES, DEFAULT_FW_ITERS).len() as u64;
        assert_eq!(req.cost(), 100 * n_algs);
    }
}
