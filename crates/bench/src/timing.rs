//! A minimal wall-clock micro-benchmark harness.
//!
//! The workspace is dependency-free, so the `cargo bench` targets
//! (`harness = false`) run on this instead of criterion: each case is
//! warmed up, then timed over enough iterations to fill a fixed
//! measurement window, and the per-iteration median/min over several
//! samples is printed as one table row.
//!
//! Measurements feed a [`qbss_telemetry::Registry`] histogram per case
//! (`<group>.<label>`, microseconds), so duration formatting and the
//! JSON emission both come from the telemetry layer — one clock, one
//! set of histogram buckets, one JSON dialect across bench output and
//! traces.

use std::time::{Duration, Instant};

use qbss_telemetry::{fmt_duration, Registry, DURATION_US_BOUNDS};

/// Target wall-clock time for one measurement sample.
const SAMPLE_WINDOW: Duration = Duration::from_millis(60);
/// Samples per benchmark case (median over these is reported).
const SAMPLES: usize = 7;

/// A named group of benchmark cases, printed as an aligned table.
pub struct BenchGroup {
    name: &'static str,
    rows: Vec<(String, Duration, Duration)>,
    registry: Registry,
}

impl BenchGroup {
    /// Starts a new group; call [`BenchGroup::case`] per parameter and
    /// [`BenchGroup::finish`] to print.
    pub fn new(name: &'static str) -> Self {
        Self { name, rows: Vec::new(), registry: Registry::new() }
    }

    /// Measures `f`, keeping its result alive via `black_box`.
    pub fn case<T>(&mut self, label: impl Into<String>, mut f: impl FnMut() -> T) -> &mut Self {
        // Warm-up and iteration-count calibration: run until the clock
        // moves, then scale to the sample window.
        let start = Instant::now();
        let mut calib_iters = 0u64;
        while start.elapsed() < SAMPLE_WINDOW / 4 {
            std::hint::black_box(f());
            calib_iters += 1;
        }
        let per_iter = (start.elapsed() / u32::try_from(calib_iters.max(1)).unwrap_or(u32::MAX))
            .max(Duration::from_nanos(1));
        let iters = u32::try_from(
            (SAMPLE_WINDOW.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000),
        )
        .unwrap_or(1_000_000);

        let label = label.into();
        let hist = self
            .registry
            .histogram(&format!("{}.{label}", self.name), &DURATION_US_BOUNDS);
        let mut samples: Vec<Duration> = (0..SAMPLES)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                let per_iter = t.elapsed() / iters;
                hist.record(per_iter.as_secs_f64() * 1e6);
                per_iter
            })
            .collect();
        samples.sort();
        let median = samples[samples.len() / 2];
        let min = samples[0];
        self.rows.push((label, median, min));
        self
    }

    /// Prints the group as a table: `name/label  median  min`.
    pub fn finish(&self) {
        println!("{}", self.name);
        for (label, median, min) in &self.rows {
            println!(
                "  {label:<24} median {:>12}  min {:>12}",
                fmt_duration(*median),
                fmt_duration(*min)
            );
        }
        println!();
    }

    /// All samples of all cases as one canonical-order JSON snapshot
    /// (per-case histograms in µs) — the machine-readable counterpart
    /// of [`BenchGroup::finish`], in the telemetry metrics dialect.
    pub fn snapshot_json(&self) -> String {
        self.registry.snapshot_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_prints() {
        let mut g = BenchGroup::new("smoke");
        g.case("noop", || 1 + 1);
        assert_eq!(g.rows.len(), 1);
        assert!(g.rows[0].1 >= Duration::from_nanos(0));
        g.finish();
    }

    #[test]
    fn snapshot_carries_per_case_histograms() {
        let mut g = BenchGroup::new("grp");
        g.case("a", || std::hint::black_box(3u64.pow(7)));
        let json = g.snapshot_json();
        assert!(json.contains("\"grp.a\""), "{json}");
        let parsed = qbss_telemetry::json_parse(&json).expect("valid JSON");
        let hist = parsed
            .get("histograms")
            .and_then(|h| h.get("grp.a"))
            .expect("histogram present");
        assert_eq!(
            hist.get("count").and_then(qbss_telemetry::JsonValue::as_u64),
            Some(SAMPLES as u64)
        );
    }
}
