//! A minimal wall-clock micro-benchmark harness.
//!
//! The workspace is dependency-free, so the `cargo bench` targets
//! (`harness = false`) run on this instead of criterion: each case is
//! warmed up, then timed over enough iterations to fill a fixed
//! measurement window, and the per-iteration median/min over several
//! samples is printed as one table row.

use std::time::{Duration, Instant};

/// Target wall-clock time for one measurement sample.
const SAMPLE_WINDOW: Duration = Duration::from_millis(60);
/// Samples per benchmark case (median over these is reported).
const SAMPLES: usize = 7;

/// A named group of benchmark cases, printed as an aligned table.
pub struct BenchGroup {
    name: &'static str,
    rows: Vec<(String, Duration, Duration)>,
}

impl BenchGroup {
    /// Starts a new group; call [`BenchGroup::case`] per parameter and
    /// [`BenchGroup::finish`] to print.
    pub fn new(name: &'static str) -> Self {
        Self { name, rows: Vec::new() }
    }

    /// Measures `f`, keeping its result alive via `black_box`.
    pub fn case<T>(&mut self, label: impl Into<String>, mut f: impl FnMut() -> T) -> &mut Self {
        // Warm-up and iteration-count calibration: run until the clock
        // moves, then scale to the sample window.
        let start = Instant::now();
        let mut calib_iters = 0u64;
        while start.elapsed() < SAMPLE_WINDOW / 4 {
            std::hint::black_box(f());
            calib_iters += 1;
        }
        let per_iter = (start.elapsed() / u32::try_from(calib_iters.max(1)).unwrap_or(u32::MAX))
            .max(Duration::from_nanos(1));
        let iters = u32::try_from(
            (SAMPLE_WINDOW.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000),
        )
        .unwrap_or(1_000_000);

        let mut samples: Vec<Duration> = (0..SAMPLES)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                t.elapsed() / iters
            })
            .collect();
        samples.sort();
        let median = samples[samples.len() / 2];
        let min = samples[0];
        self.rows.push((label.into(), median, min));
        self
    }

    /// Prints the group as a table: `name/label  median  min`.
    pub fn finish(&self) {
        println!("{}", self.name);
        for (label, median, min) in &self.rows {
            println!("  {label:<24} median {:>12}  min {:>12}", fmt_dur(*median), fmt_dur(*min));
        }
        println!();
    }
}

/// Formats a duration with an adaptive unit (ns/µs/ms/s).
fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_prints() {
        let mut g = BenchGroup::new("smoke");
        g.case("noop", || 1 + 1);
        assert_eq!(g.rows.len(), 1);
        assert!(g.rows[0].1 >= Duration::from_nanos(0));
        g.finish();
    }

    #[test]
    fn formats_units() {
        assert_eq!(fmt_dur(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_dur(Duration::from_micros(12)), "12.00 µs");
        assert_eq!(fmt_dur(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_dur(Duration::from_secs(2)), "2.00 s");
    }
}
