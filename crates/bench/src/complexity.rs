//! The algorithmic work observatory: pinned scaling scenarios,
//! empirical complexity curves, and an **exact** asymptotic gate.
//!
//! The perf observatory ([`crate::perf`]) watches wall time, which on a
//! noisy CI box needs MAD slack of up to 25% — far too coarse to lock
//! in (or even detect) asymptotic wins. The solvers, however, have
//! crisp *work* profiles: YDS is interval scans, OA is hull pushes and
//! pops, BKP is window slides, Frank–Wolfe is gradient evaluations.
//! Every hot path increments a deterministic counter from the
//! [`qbss_core::work::WORK_COUNTERS`] catalog, counting algorithmic
//! progress only — never wall clock, shard layout, or log level — so
//! two runs of the same code produce *byte-identical* counts and the
//! gate can be exact, the way the quality gate (PR 9) already is.
//!
//! `qbss complexity record` sweeps each pinned scenario over its
//! n-grid, captures the per-cell counter deltas by bracketing the run
//! with two registry snapshots
//! ([`qbss_telemetry::Registry::counter_values`]), fits a log-log
//! least-squares slope per counter (the empirical exponent, with R²),
//! and serializes a canonical `qbss-complexity-baseline/1` document —
//! committed as `BENCH_complexity.json`. `qbss complexity gate`
//! re-records and diffs: **any** increased op count at any grid point,
//! any fitted-exponent increase beyond [`EXPONENT_TOL`], or lost
//! counter/scenario coverage exits 3; `--explain` names the counter,
//! grid point, and old → new counts. `QBSS_BLESS=1` re-blesses.

use std::collections::BTreeMap;
use std::fmt;

use qbss_core::pipeline::Algorithm;
use qbss_core::work::is_work_counter;
use qbss_instances::gen::{generate, GenConfig};
use qbss_telemetry::{json_escape, json_f64, json_parse, JsonValue};
use speed_scaling::job::{Instance, Job};
use speed_scaling::multi::multi_opt_frank_wolfe;
use speed_scaling::stream::{release_ordered, AvrStream, BkpStream, OaStream};
use speed_scaling::yds::yds_profile;

use crate::engine::{run_sweep, EngineError, InstanceSource, SweepSpec};
use crate::quality::BuildInfo;

/// The on-disk schema tag; bump on incompatible baseline changes.
pub const COMPLEXITY_SCHEMA: &str = "qbss-complexity-baseline/1";

/// Exact tolerance on fitted-exponent increases. Counts gate exactly;
/// the exponent is a *fit* over exact counts, so tiny grid-local wiggle
/// (a different constant term, not a different asymptotic class) is
/// allowed this much slack before it counts as a regression.
pub const EXPONENT_TOL: f64 = 0.05;

// ---------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------

/// A pinned scaling scenario: a named workload executed at each size of
/// an n-grid. Everything (generator seeds, algorithm parameters, grid)
/// is pinned, so the counter deltas are a pure function of the code
/// under test.
#[derive(Debug, Clone, Copy)]
pub struct ComplexityScenario {
    /// Stable name (the baseline JSON key and the `--scenarios` token).
    pub name: &'static str,
    /// One-line description for `qbss complexity record` output.
    pub description: &'static str,
    /// The n-grid this scenario sweeps.
    pub grid: &'static [usize],
    run: fn(usize) -> Result<(), EngineError>,
}

impl ComplexityScenario {
    /// Executes the pinned workload at size `n` (counter side effects
    /// land in the global registry; callers bracket with snapshots).
    pub fn run(&self, n: usize) -> Result<(), EngineError> {
        (self.run)(n)
    }
}

/// The shared instance family: the `online_default` generator keeps the
/// job *density* roughly constant as `n` grows (horizon scales with n,
/// window lengths don't), so the active set stays O(1) and per-arrival
/// asymptotics are visible instead of being drowned by a growing
/// frontier.
fn classical_online(n: usize, seed: u64) -> Instance {
    let q = generate(&GenConfig::online_default(n, seed));
    Instance::new(
        q.jobs
            .iter()
            .map(|j| Job::new(j.id, j.release, j.deadline, j.upper_bound))
            .collect(),
    )
}

fn run_yds(n: usize) -> Result<(), EngineError> {
    let _ = yds_profile(&classical_online(n, 0));
    Ok(())
}

fn run_avr(n: usize) -> Result<(), EngineError> {
    let mut s = AvrStream::new();
    for job in release_ordered(&classical_online(n, 0)) {
        s.on_arrival(job);
    }
    let _ = s.finish();
    Ok(())
}

fn run_oa(n: usize) -> Result<(), EngineError> {
    let mut s = OaStream::new();
    for job in release_ordered(&classical_online(n, 0)) {
        s.on_arrival(job);
    }
    let _ = s.finish();
    Ok(())
}

fn run_bkp(n: usize) -> Result<(), EngineError> {
    let mut s = BkpStream::new();
    for job in release_ordered(&classical_online(n, 0)) {
        s.on_arrival(job);
    }
    let _ = s.finish();
    Ok(())
}

fn run_fw(n: usize) -> Result<(), EngineError> {
    let _ = multi_opt_frank_wolfe(&classical_online(n, 0), 3, 3.0, 12);
    Ok(())
}

fn run_engine(n: usize) -> Result<(), EngineError> {
    // End-to-end through the engine: exercises the streaming core
    // (`solver.*`) and the OPT-energy memo (`cache.*`) on top of the
    // solver counters. Shards are pinned to 1 — counter *totals* are
    // shard-independent (see `work_counters.rs`), but the record path
    // stays maximally boring on purpose.
    let spec = SweepSpec {
        source: InstanceSource::Generated {
            base: GenConfig::online_default(n, 0),
            seeds: 0..3,
        },
        algorithms: vec![Algorithm::Avrq, Algorithm::Oaq],
        alphas: vec![3.0],
        opt_fw_iters: 0,
    };
    run_sweep(&spec, 1).map(|_| ())
}

/// Every named complexity scenario, in canonical order.
pub fn scenarios() -> Vec<ComplexityScenario> {
    vec![
        ComplexityScenario {
            name: "yds-offline",
            description: "one YDS solve per n, online family (critical-interval scans)",
            grid: &[50, 100, 200, 400, 800],
            run: run_yds,
        },
        ComplexityScenario {
            name: "avr-stream",
            description: "AVR stream fed release-ordered, one finish per n",
            grid: &[500, 1000, 2000, 4000],
            run: run_avr,
        },
        ComplexityScenario {
            name: "oa-stream",
            description: "OA stream fed release-ordered (hull maintenance per arrival)",
            grid: &[200, 400, 800, 1600],
            run: run_oa,
        },
        ComplexityScenario {
            name: "bkp-stream",
            description: "BKP stream fed release-ordered, intensity queries at finish",
            grid: &[50, 100, 200, 400],
            run: run_bkp,
        },
        ComplexityScenario {
            name: "fw-multi",
            description: "Frank-Wolfe OPT(m=3) at 12 iterations per n",
            grid: &[8, 16, 32, 64],
            run: run_fw,
        },
        ComplexityScenario {
            name: "engine-online",
            description: "avrq+oaq x 3 seeds through the engine (streaming core + OPT memo)",
            grid: &[40, 80, 160, 320],
            run: run_engine,
        },
    ]
}

/// Looks up a complexity scenario by name.
pub fn scenario(name: &str) -> Option<ComplexityScenario> {
    scenarios().into_iter().find(|s| s.name == name)
}

// ---------------------------------------------------------------------
// Exponent fit
// ---------------------------------------------------------------------

/// A log-log least-squares fit over a counter's grid series: if
/// `count ≈ C·n^e`, the slope of `ln count` against `ln n` is the
/// empirical exponent `e` and R² says how well a pure power law
/// explains the series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerFit {
    /// Fitted exponent (log-log slope).
    pub exponent: f64,
    /// Coefficient of determination of the fit, in `[0, 1]`.
    pub r2: f64,
}

/// Fits `counts[i] ≈ C·grid[i]^e` by least squares in log-log space.
/// Zero counts carry no slope information (`ln 0` is undefined) and are
/// skipped; fewer than two positive points means no fit.
pub fn fit_loglog(grid: &[usize], counts: &[u64]) -> Option<PowerFit> {
    let pts: Vec<(f64, f64)> = grid
        .iter()
        .zip(counts)
        .filter(|&(_, &c)| c > 0)
        .map(|(&n, &c)| ((n as f64).ln(), (c as f64).ln()))
        .collect();
    if pts.len() < 2 {
        return None;
    }
    let k = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = k * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None; // all points at the same n
    }
    let slope = (k * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / k;
    let mean_y = sy / k;
    let ss_tot: f64 = pts.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 =
        pts.iter().map(|p| (p.1 - (intercept + slope * p.0)).powi(2)).sum();
    let r2 = if ss_tot <= 1e-12 { 1.0 } else { (1.0 - ss_res / ss_tot).max(0.0) };
    Some(PowerFit { exponent: slope, r2 })
}

// ---------------------------------------------------------------------
// Recording
// ---------------------------------------------------------------------

/// One counter's exact grid series inside a scenario, plus its fit.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSeries {
    /// Catalogued counter name (see [`qbss_core::work::WORK_COUNTERS`]).
    pub counter: String,
    /// Exact op count at each grid point, aligned with the scenario
    /// grid.
    pub counts: Vec<u64>,
    /// Log-log fit over the positive grid points, if ≥ 2 exist.
    pub fit: Option<PowerFit>,
}

/// One recorded scenario: its grid and the per-counter series (sorted
/// by counter name).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioComplexity {
    /// The n-grid the scenario swept.
    pub grid: Vec<usize>,
    /// Per-counter series, sorted by counter name.
    pub counters: Vec<CounterSeries>,
}

/// A recorded complexity baseline. Serializes canonically; because
/// every input is pinned and the counters are deterministic, two
/// records of the same build are byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct ComplexityBaseline {
    /// The build that produced these numbers (informational; the gate
    /// ignores it).
    pub build: BuildInfo,
    /// Series by scenario name (sorted).
    pub scenarios: BTreeMap<String, ScenarioComplexity>,
}

/// Failures of the complexity layer.
#[derive(Debug)]
pub enum ComplexityError {
    /// `--scenarios` named something that doesn't exist.
    UnknownScenario(String),
    /// A baseline file didn't match the schema.
    Parse(String),
    /// A scenario workload failed to run (a bug in the scenario table).
    Engine(EngineError),
}

impl fmt::Display for ComplexityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComplexityError::UnknownScenario(name) => {
                let known: Vec<&str> = scenarios().iter().map(|s| s.name).collect();
                write!(f, "unknown scenario `{name}` (expected one of: {})", known.join(", "))
            }
            ComplexityError::Parse(reason) => {
                write!(f, "invalid complexity baseline: {reason}")
            }
            ComplexityError::Engine(e) => write!(f, "scenario failed to run: {e}"),
        }
    }
}

impl std::error::Error for ComplexityError {}

impl From<EngineError> for ComplexityError {
    fn from(e: EngineError) -> Self {
        ComplexityError::Engine(e)
    }
}

/// Sweeps `names` (all scenarios when empty) over their n-grids and
/// returns the recorded baseline. Each grid cell is bracketed by two
/// global-registry snapshots; the difference is the cell's exact op
/// counts, filtered to the catalogued work counters. Cells run
/// serially in one process, so the deltas attribute cleanly.
pub fn record(names: &[String]) -> Result<ComplexityBaseline, ComplexityError> {
    let picked: Vec<ComplexityScenario> = if names.is_empty() {
        scenarios()
    } else {
        names
            .iter()
            .map(|n| scenario(n).ok_or_else(|| ComplexityError::UnknownScenario(n.clone())))
            .collect::<Result<_, _>>()?
    };
    let mut out = BTreeMap::new();
    for sc in picked {
        let mut series: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        for (i, &n) in sc.grid.iter().enumerate() {
            let before = qbss_telemetry::metrics().counter_values();
            sc.run(n)?;
            let after = qbss_telemetry::metrics().counter_values();
            for (name, &v) in &after {
                if !is_work_counter(name) {
                    continue;
                }
                let delta = v - before.get(name).copied().unwrap_or(0);
                series
                    .entry(name.clone())
                    .or_insert_with(|| vec![0; sc.grid.len()])[i] = delta;
            }
        }
        // A counter the scenario never touches is someone else's
        // coverage; keep only series with at least one positive count.
        series.retain(|_, counts| counts.iter().any(|&c| c > 0));
        let counters = series
            .into_iter()
            .map(|(counter, counts)| {
                let fit = fit_loglog(sc.grid, &counts);
                CounterSeries { counter, counts, fit }
            })
            .collect();
        out.insert(
            sc.name.to_string(),
            ScenarioComplexity { grid: sc.grid.to_vec(), counters },
        );
    }
    Ok(ComplexityBaseline { build: BuildInfo::capture(), scenarios: out })
}

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

fn json_fit(fit: Option<PowerFit>) -> (String, String) {
    match fit {
        None => ("null".to_string(), "null".to_string()),
        Some(f) => (json_f64(f.exponent), json_f64(f.r2)),
    }
}

impl ComplexityBaseline {
    /// Canonical, human-diffable JSON (trailing newline included).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema\": \"{}\",\n", json_escape(COMPLEXITY_SCHEMA)));
        out.push_str(&format!(
            "  \"build\": {{\"version\": \"{}\", \"git\": \"{}\"}},\n",
            json_escape(&self.build.version),
            json_escape(&self.build.git),
        ));
        out.push_str("  \"scenarios\": {\n");
        let n = self.scenarios.len();
        for (i, (name, s)) in self.scenarios.iter().enumerate() {
            let grid: Vec<String> = s.grid.iter().map(|g| g.to_string()).collect();
            out.push_str(&format!(
                "    \"{}\": {{\"grid\": [{}], \"counters\": [\n",
                json_escape(name),
                grid.join(", ")
            ));
            let m = s.counters.len();
            for (j, c) in s.counters.iter().enumerate() {
                let counts: Vec<String> = c.counts.iter().map(|v| v.to_string()).collect();
                let (exponent, r2) = json_fit(c.fit);
                out.push_str(&format!(
                    "      {{\"counter\": \"{}\", \"counts\": [{}], \
                     \"exponent\": {}, \"r2\": {}}}{}\n",
                    json_escape(&c.counter),
                    counts.join(", "),
                    exponent,
                    r2,
                    if j + 1 < m { "," } else { "" },
                ));
            }
            out.push_str(&format!("    ]}}{}\n", if i + 1 < n { "," } else { "" }));
        }
        out.push_str("  }\n}\n");
        out
    }

    /// The `(scenario, n, counter, count)` grid as CSV, for offline
    /// plotting (`qbss complexity record --format csv`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("scenario,n,counter,count\n");
        for (name, s) in &self.scenarios {
            for c in &s.counters {
                for (&n, &count) in s.grid.iter().zip(&c.counts) {
                    out.push_str(&format!("{name},{n},{},{count}\n", c.counter));
                }
            }
        }
        out
    }

    /// Parses a baseline produced by [`ComplexityBaseline::to_json`].
    pub fn parse(input: &str) -> Result<ComplexityBaseline, ComplexityError> {
        let bad = |reason: &str| ComplexityError::Parse(reason.to_string());
        let v = json_parse(input).map_err(|e| ComplexityError::Parse(e.to_string()))?;
        let schema = v.get("schema").and_then(JsonValue::as_str).unwrap_or_default();
        if schema != COMPLEXITY_SCHEMA {
            return Err(ComplexityError::Parse(format!(
                "schema `{schema}` (expected `{COMPLEXITY_SCHEMA}`)"
            )));
        }
        let build = match v.get("build") {
            Some(b) => BuildInfo {
                version: b
                    .get("version")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("unknown")
                    .to_string(),
                git: b.get("git").and_then(JsonValue::as_str).unwrap_or("unknown").to_string(),
            },
            None => BuildInfo { version: "unknown".into(), git: "unknown".into() },
        };
        let JsonValue::Obj(entries) =
            v.get("scenarios").ok_or_else(|| bad("missing `scenarios`"))?
        else {
            return Err(bad("`scenarios` must be an object"));
        };
        let mut out = BTreeMap::new();
        for (name, s) in entries {
            let JsonValue::Arr(raw_grid) = s
                .get("grid")
                .ok_or_else(|| ComplexityError::Parse(format!("scenario `{name}`: missing `grid`")))?
            else {
                return Err(ComplexityError::Parse(format!(
                    "scenario `{name}`: `grid` must be an array"
                )));
            };
            let grid: Vec<usize> = raw_grid
                .iter()
                .map(|g| {
                    g.as_u64().map(|u| u as usize).ok_or_else(|| {
                        ComplexityError::Parse(format!("scenario `{name}`: non-integer grid point"))
                    })
                })
                .collect::<Result<_, _>>()?;
            let JsonValue::Arr(raw_counters) = s.get("counters").ok_or_else(|| {
                ComplexityError::Parse(format!("scenario `{name}`: missing `counters`"))
            })?
            else {
                return Err(ComplexityError::Parse(format!(
                    "scenario `{name}`: `counters` must be an array"
                )));
            };
            let mut counters = Vec::with_capacity(raw_counters.len());
            for c in raw_counters {
                let counter = c
                    .get("counter")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| {
                        ComplexityError::Parse(format!(
                            "scenario `{name}`: series missing `counter`"
                        ))
                    })?
                    .to_string();
                let JsonValue::Arr(raw_counts) = c.get("counts").ok_or_else(|| {
                    ComplexityError::Parse(format!(
                        "scenario `{name}`: `{counter}` missing `counts`"
                    ))
                })?
                else {
                    return Err(ComplexityError::Parse(format!(
                        "scenario `{name}`: `{counter}` counts must be an array"
                    )));
                };
                let counts: Vec<u64> = raw_counts
                    .iter()
                    .map(|x| {
                        x.as_u64().ok_or_else(|| {
                            ComplexityError::Parse(format!(
                                "scenario `{name}`: `{counter}` has a non-integer count"
                            ))
                        })
                    })
                    .collect::<Result<_, _>>()?;
                if counts.len() != grid.len() {
                    return Err(ComplexityError::Parse(format!(
                        "scenario `{name}`: `{counter}` has {} counts for {} grid points",
                        counts.len(),
                        grid.len()
                    )));
                }
                let fit = match (
                    c.get("exponent").and_then(JsonValue::as_f64),
                    c.get("r2").and_then(JsonValue::as_f64),
                ) {
                    (Some(exponent), Some(r2)) => Some(PowerFit { exponent, r2 }),
                    _ => None,
                };
                counters.push(CounterSeries { counter, counts, fit });
            }
            out.insert(name.clone(), ScenarioComplexity { grid, counters });
        }
        Ok(ComplexityBaseline { build, scenarios: out })
    }
}

// ---------------------------------------------------------------------
// Comparison / gating
// ---------------------------------------------------------------------

/// One exact complexity regression.
#[derive(Debug, Clone, PartialEq)]
pub struct ComplexityRegression {
    /// Scenario name.
    pub scenario: String,
    /// Counter name (empty for scenario-level regressions).
    pub counter: String,
    /// What worsened: `"op count"`, `"exponent"`, `"scenario removed"`,
    /// `"counter removed"`, or `"grid changed"`.
    pub what: &'static str,
    /// The grid point (n) for op-count regressions.
    pub n: Option<usize>,
    /// The committed value.
    pub base: Option<f64>,
    /// The freshly measured value.
    pub new: Option<f64>,
}

/// Everything `qbss complexity compare` / `gate` reports.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ComplexityCompare {
    /// Counter series checked (both sides present, same grid).
    pub checked: usize,
    /// Exact regressions, in scenario/counter order.
    pub regressions: Vec<ComplexityRegression>,
}

fn fmt_val(what: &str, v: Option<f64>) -> String {
    match v {
        None => "-".to_string(),
        Some(x) if what == "op count" => format!("{x:.0}"),
        Some(x) => format!("{x:.3}"),
    }
}

impl ComplexityCompare {
    /// `true` when no series worsened.
    pub fn is_clean(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Human-readable summary: one line per regression plus a verdict.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.regressions {
            let at = r.n.map_or(String::new(), |n| format!(" @ n={n}"));
            let counter = if r.counter.is_empty() { "-" } else { &r.counter };
            out.push_str(&format!(
                "{}  {}  {}{}  {} -> {}  WORSE\n",
                r.scenario,
                counter,
                r.what,
                at,
                fmt_val(r.what, r.base),
                fmt_val(r.what, r.new)
            ));
        }
        if self.is_clean() {
            out.push_str(&format!(
                "no complexity regression ({} counter series checked)\n",
                self.checked
            ));
        } else {
            out.push_str(&format!("{} complexity regression(s)\n", self.regressions.len()));
        }
        out
    }

    /// Diagnostic rendering: every regression with the counter, grid
    /// point, and old → new values spelled out.
    pub fn render_explain(&self) -> String {
        let mut out = String::new();
        for r in &self.regressions {
            match r.what {
                "op count" => {
                    let n = r.n.map_or("-".to_string(), |n| n.to_string());
                    out.push_str(&format!(
                        "scenario `{}` counter `{}`: op count at n={} worsened {} -> {}\n",
                        r.scenario,
                        r.counter,
                        n,
                        fmt_val(r.what, r.base),
                        fmt_val(r.what, r.new)
                    ));
                }
                "exponent" => {
                    out.push_str(&format!(
                        "scenario `{}` counter `{}`: fitted exponent worsened {} -> {} \
                         (tolerance +{EXPONENT_TOL})\n",
                        r.scenario,
                        r.counter,
                        fmt_val(r.what, r.base),
                        fmt_val(r.what, r.new)
                    ));
                }
                _ => {
                    let counter =
                        if r.counter.is_empty() { String::new() } else { format!(" `{}`", r.counter) };
                    out.push_str(&format!(
                        "scenario `{}`{}: {}\n",
                        r.scenario, counter, r.what
                    ));
                }
            }
        }
        if self.is_clean() {
            out.push_str(&format!(
                "no complexity regression ({} counter series checked, exact comparison)\n",
                self.checked
            ));
        } else {
            out.push_str(&format!("{} complexity regression(s)\n", self.regressions.len()));
        }
        out
    }
}

/// Diffs `new` against `base`, exactly. Counters are deterministic, so
/// **any** increased op count at any grid point is a regression — no
/// noise threshold. Fitted exponents get [`EXPONENT_TOL`] slack (the
/// fit is derived, not measured). Dropped scenarios or counters, or a
/// changed grid, regress too: coverage must not silently shrink.
/// Series only present in `new` are informational.
pub fn compare(base: &ComplexityBaseline, new: &ComplexityBaseline) -> ComplexityCompare {
    let mut report = ComplexityCompare::default();
    for (name, b) in &base.scenarios {
        let Some(n) = new.scenarios.get(name) else {
            report.regressions.push(ComplexityRegression {
                scenario: name.clone(),
                counter: String::new(),
                what: "scenario removed",
                n: None,
                base: None,
                new: None,
            });
            continue;
        };
        if b.grid != n.grid {
            report.regressions.push(ComplexityRegression {
                scenario: name.clone(),
                counter: String::new(),
                what: "grid changed",
                n: None,
                base: Some(b.grid.len() as f64),
                new: Some(n.grid.len() as f64),
            });
            continue; // counts at different sizes don't compare
        }
        for bc in &b.counters {
            let Some(nc) = n.counters.iter().find(|c| c.counter == bc.counter) else {
                report.regressions.push(ComplexityRegression {
                    scenario: name.clone(),
                    counter: bc.counter.clone(),
                    what: "counter removed",
                    n: None,
                    base: None,
                    new: None,
                });
                continue;
            };
            report.checked += 1;
            for ((&gn, &bv), &nv) in b.grid.iter().zip(&bc.counts).zip(&nc.counts) {
                if nv > bv {
                    report.regressions.push(ComplexityRegression {
                        scenario: name.clone(),
                        counter: bc.counter.clone(),
                        what: "op count",
                        n: Some(gn),
                        base: Some(bv as f64),
                        new: Some(nv as f64),
                    });
                }
            }
            if let (Some(bf), Some(nf)) = (bc.fit, nc.fit) {
                if nf.exponent > bf.exponent + EXPONENT_TOL {
                    report.regressions.push(ComplexityRegression {
                        scenario: name.clone(),
                        counter: bc.counter.clone(),
                        what: "exponent",
                        n: None,
                        base: Some(bf.exponent),
                        new: Some(nf.exponent),
                    });
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(counter: &str, grid: &[usize], counts: &[u64]) -> CounterSeries {
        CounterSeries {
            counter: counter.to_string(),
            counts: counts.to_vec(),
            fit: fit_loglog(grid, counts),
        }
    }

    fn baseline(entries: &[(&str, Vec<usize>, Vec<CounterSeries>)]) -> ComplexityBaseline {
        ComplexityBaseline {
            build: BuildInfo { version: "0.0.0-test".into(), git: "deadbeef".into() },
            scenarios: entries
                .iter()
                .map(|(name, grid, counters)| {
                    (
                        name.to_string(),
                        ScenarioComplexity { grid: grid.clone(), counters: counters.clone() },
                    )
                })
                .collect(),
        }
    }

    #[test]
    fn scenario_table_is_well_formed() {
        let all = scenarios();
        assert!(all.len() >= 6);
        let mut names: Vec<&str> = all.iter().map(|s| s.name).collect();
        names.dedup();
        assert_eq!(names.len(), all.len(), "names must be unique");
        assert!(scenario("yds-offline").is_some());
        assert!(scenario("nope").is_none());
        for s in &all {
            assert!(s.grid.len() >= 2, "{}: need >= 2 grid points for a fit", s.name);
            assert!(s.grid.windows(2).all(|w| w[0] < w[1]), "{}: grid must grow", s.name);
        }
    }

    #[test]
    fn fit_recovers_exact_power_laws() {
        let grid = [100usize, 200, 400, 800];
        // counts = n^2 exactly.
        let quad: Vec<u64> = grid.iter().map(|&n| (n * n) as u64).collect();
        let f = fit_loglog(&grid, &quad).expect("fit");
        assert!((f.exponent - 2.0).abs() < 1e-9, "{f:?}");
        assert!(f.r2 > 0.999999, "{f:?}");
        // counts = 7n exactly.
        let lin: Vec<u64> = grid.iter().map(|&n| 7 * n as u64).collect();
        let f = fit_loglog(&grid, &lin).expect("fit");
        assert!((f.exponent - 1.0).abs() < 1e-9, "{f:?}");
        // A constant series fits slope 0 perfectly.
        let f = fit_loglog(&grid, &[5, 5, 5, 5]).expect("fit");
        assert!(f.exponent.abs() < 1e-9 && (f.r2 - 1.0).abs() < 1e-9, "{f:?}");
    }

    #[test]
    fn fit_skips_zeros_and_degenerate_series() {
        let grid = [100usize, 200, 400, 800];
        // Zeros are skipped, not treated as ln(0).
        let f = fit_loglog(&grid, &[0, 200, 400, 800]).expect("fit");
        assert!((f.exponent - 1.0).abs() < 1e-9, "{f:?}");
        // Fewer than two positive points: no fit.
        assert!(fit_loglog(&grid, &[0, 0, 0, 7]).is_none());
        assert!(fit_loglog(&grid, &[0, 0, 0, 0]).is_none());
    }

    #[test]
    fn baseline_round_trips_through_json() {
        let grid = vec![100usize, 200, 400];
        let b = baseline(&[
            (
                "a",
                grid.clone(),
                vec![
                    series("yds.intervals_scanned", &grid, &[100, 800, 6400]),
                    series("yds.density_evals", &grid, &[0, 0, 7]), // no fit
                ],
            ),
            ("b", vec![10, 20], vec![series("oa.hull_updates", &[10, 20], &[10, 20])]),
        ]);
        let json = b.to_json();
        let back = ComplexityBaseline::parse(&json).expect("round trip");
        assert_eq!(back, b);
        assert_eq!(back.to_json(), json, "canonical form is stable");
    }

    #[test]
    fn parse_rejects_foreign_or_broken_documents() {
        assert!(matches!(ComplexityBaseline::parse("{}"), Err(ComplexityError::Parse(_))));
        assert!(matches!(
            ComplexityBaseline::parse("not json"),
            Err(ComplexityError::Parse(_))
        ));
        let wrong = "{\"schema\": \"qbss-complexity-baseline/999\", \"scenarios\": {}}";
        let err = ComplexityBaseline::parse(wrong).expect_err("wrong schema");
        assert!(err.to_string().contains("schema"), "{err}");
    }

    #[test]
    fn csv_lists_every_grid_cell() {
        let grid = vec![10usize, 20];
        let b = baseline(&[("a", grid.clone(), vec![series("oa.hull_updates", &grid, &[11, 21])])]);
        let csv = b.to_csv();
        assert!(csv.starts_with("scenario,n,counter,count\n"), "{csv}");
        assert!(csv.contains("a,10,oa.hull_updates,11\n"), "{csv}");
        assert!(csv.contains("a,20,oa.hull_updates,21\n"), "{csv}");
    }

    #[test]
    fn identical_baselines_are_clean() {
        let grid = vec![100usize, 200];
        let b = baseline(&[("a", grid.clone(), vec![series("x.ops", &grid, &[5, 10])])]);
        let report = compare(&b, &b.clone());
        assert!(report.is_clean());
        assert_eq!(report.checked, 1);
        assert!(report.render().contains("no complexity regression"));
    }

    #[test]
    fn any_count_increase_is_a_regression() {
        let grid = vec![100usize, 200];
        let base = baseline(&[("a", grid.clone(), vec![series("x.ops", &grid, &[100, 200])])]);
        let new = baseline(&[("a", grid.clone(), vec![series("x.ops", &grid, &[100, 201])])]);
        let report = compare(&base, &new);
        assert_eq!(report.regressions.len(), 1, "{report:?}");
        let r = &report.regressions[0];
        assert_eq!((r.what, r.n), ("op count", Some(200)));
        let out = report.render_explain();
        assert!(out.contains("counter `x.ops`"), "{out}");
        assert!(out.contains("n=200"), "{out}");
        assert!(out.contains("200 -> 201"), "{out}");
        // A decrease is an improvement, not a regression.
        let better = baseline(&[("a", grid.clone(), vec![series("x.ops", &grid, &[90, 180])])]);
        assert!(compare(&base, &better).is_clean());
    }

    #[test]
    fn exponent_increase_beyond_tolerance_regresses() {
        let grid = vec![100usize, 200, 400];
        // Base is linear; new is quadratic — the exponent jumps by ~1,
        // and every count at every grid point also worsens.
        let base = baseline(&[("a", grid.clone(), vec![series("x.ops", &grid, &[100, 200, 400])])]);
        let new = baseline(&[(
            "a",
            grid.clone(),
            vec![series("x.ops", &grid, &[10000, 40000, 160000])],
        )]);
        let report = compare(&base, &new);
        assert!(report.regressions.iter().any(|r| r.what == "exponent"), "{report:?}");
        // Within tolerance: counts identical, exponent equal — clean.
        assert!(compare(&base, &base).is_clean());
    }

    #[test]
    fn lost_coverage_is_a_regression() {
        let grid = vec![100usize, 200];
        let base = baseline(&[
            (
                "a",
                grid.clone(),
                vec![series("x.ops", &grid, &[1, 2]), series("y.ops", &grid, &[3, 4])],
            ),
            ("gone", grid.clone(), vec![series("z.ops", &grid, &[5, 6])]),
        ]);
        let new = baseline(&[("a", grid.clone(), vec![series("x.ops", &grid, &[1, 2])])]);
        let report = compare(&base, &new);
        let whats: Vec<&str> = report.regressions.iter().map(|r| r.what).collect();
        assert!(whats.contains(&"scenario removed"), "{whats:?}");
        assert!(whats.contains(&"counter removed"), "{whats:?}");
        // A changed grid makes counts incomparable — also a regression.
        let regridded = baseline(&[
            ("a", vec![100, 300], vec![series("x.ops", &[100, 300], &[1, 2])]),
            ("gone", grid.clone(), vec![series("z.ops", &grid, &[5, 6])]),
        ]);
        let report = compare(&base, &regridded);
        assert!(report.regressions.iter().any(|r| r.what == "grid changed"), "{report:?}");
        // New-only series are informational, never regressions.
        let extra = baseline(&[
            (
                "a",
                grid.clone(),
                vec![
                    series("x.ops", &grid, &[1, 2]),
                    series("y.ops", &grid, &[3, 4]),
                    series("w.ops", &grid, &[9, 9]),
                ],
            ),
            ("gone", grid.clone(), vec![series("z.ops", &grid, &[5, 6])]),
        ]);
        assert!(compare(&base, &extra).is_clean());
    }

    #[test]
    fn unknown_scenario_is_rejected() {
        let err = record(&["bogus".to_string()]).expect_err("unknown scenario");
        assert!(matches!(err, ComplexityError::UnknownScenario(_)));
        assert!(err.to_string().contains("yds-offline"), "{err}");
    }
}
