//! Streaming sessions — the bench/serve-facing wrapper over
//! [`qbss_core::stream::OnlineSolver`] (DESIGN.md §14).
//!
//! A [`StreamSession`] owns a boxed streaming solver plus the arrivals
//! fed so far, and finishes with the same guard chain as the batch
//! pipeline ([`qbss_core::pipeline::run_evaluated`]): outcome
//! validation against the accumulated instance, then the energy and
//! peak-speed finiteness gate at the session's `α`. A session fed the
//! canonical arrival order therefore yields an [`Evaluated`]
//! bit-identical to the batch run of the same jobs.

use qbss_core::error::QbssError;
use qbss_core::model::{QJob, QbssInstance};
use qbss_core::pipeline::{Algorithm, Evaluated};
use qbss_core::stream::{solver_for, OnlineSolver, SpeedDelta, StreamError};

/// One live streaming run: arrivals in, an [`Evaluated`] out.
pub struct StreamSession {
    solver: Box<dyn OnlineSolver + Send>,
    alpha: f64,
    jobs: Vec<QJob>,
}

impl StreamSession {
    /// Opens a session for `algorithm` at power exponent `alpha`.
    ///
    /// Rejects non-streamable algorithms
    /// ([`qbss_core::error::AlgorithmError::UnsupportedStructure`]) and
    /// invalid exponents with the same typed errors as the batch
    /// pipeline.
    pub fn new(algorithm: Algorithm, alpha: f64) -> Result<Self, QbssError> {
        if !alpha.is_finite() || alpha <= 1.0 {
            return Err(QbssError::InvalidAlpha { alpha });
        }
        let solver = solver_for(algorithm)?;
        Ok(Self { solver, alpha, jobs: Vec::new() })
    }

    /// The algorithm this session runs.
    pub fn algorithm(&self) -> Algorithm {
        self.solver.algorithm()
    }

    /// The power exponent the session will be evaluated at.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The stream clock (`−∞` before the first event).
    pub fn now(&self) -> f64 {
        self.solver.now()
    }

    /// The live speed at the stream clock.
    pub fn speed(&self) -> f64 {
        self.solver.speed()
    }

    /// Events (arrivals and advances) processed so far.
    pub fn events(&self) -> u64 {
        self.solver.events()
    }

    /// Jobs fed so far.
    pub fn jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Feeds one arriving job; on success returns the speed change at
    /// the arrival instant. Rejected arrivals leave the session
    /// unchanged.
    pub fn arrive(&mut self, job: QJob) -> Result<SpeedDelta, StreamError> {
        let delta = self.solver.on_arrival(job)?;
        self.jobs.push(job);
        Ok(delta)
    }

    /// Advances the stream clock with no arrival (releases completed
    /// queries' exact parts, commits planned speed).
    pub fn advance_to(&mut self, t: f64) -> Result<(), StreamError> {
        self.solver.advance_to(t)
    }

    /// Finishes the session: the solver runs out its horizon and the
    /// outcome passes the batch pipeline's guards (validation against
    /// the fed arrivals, finiteness at `α`).
    pub fn finish(self) -> Result<Evaluated, QbssError> {
        let Self { solver, alpha, jobs } = self;
        let inst = QbssInstance::new(jobs);
        let outcome = solver.finish()?;
        outcome.validate(&inst)?;
        let energy = outcome.energy(alpha);
        let max_speed = outcome.max_speed();
        if !energy.is_finite() || !max_speed.is_finite() {
            return Err(QbssError::NonFiniteCost { algorithm: outcome.algorithm.clone() });
        }
        Ok(Evaluated { outcome, energy, max_speed })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbss_core::pipeline::run_evaluated;
    use qbss_core::stream::arrival_ordered;

    fn inst() -> QbssInstance {
        QbssInstance::new(vec![
            QJob::new(0, 0.0, 4.0, 0.5, 2.0, 1.0),
            QJob::new(1, 1.0, 3.0, 0.9, 1.0, 0.0),
            QJob::new(2, 2.0, 6.0, 1.0, 3.0, 3.0),
        ])
    }

    #[test]
    fn session_matches_batch_pipeline_bitwise() {
        let inst = inst();
        for algorithm in [Algorithm::Avrq, Algorithm::Bkpq, Algorithm::Oaq] {
            let batch = run_evaluated(&inst, 3.0, algorithm).expect("batch");
            let mut session = StreamSession::new(algorithm, 3.0).expect("session");
            for job in arrival_ordered(&inst) {
                session.arrive(job).expect("arrive");
            }
            let streamed = session.finish().expect("finish");
            assert_eq!(
                format!("{:?}", batch.outcome),
                format!("{:?}", streamed.outcome),
                "{algorithm}"
            );
            assert_eq!(batch.energy.to_bits(), streamed.energy.to_bits());
            assert_eq!(batch.max_speed.to_bits(), streamed.max_speed.to_bits());
        }
    }

    #[test]
    fn invalid_alpha_is_rejected_at_open() {
        assert!(matches!(
            StreamSession::new(Algorithm::Oaq, 1.0),
            Err(QbssError::InvalidAlpha { .. })
        ));
    }

    #[test]
    fn batch_only_algorithms_are_rejected_at_open() {
        assert!(StreamSession::new(Algorithm::Crcd, 3.0).is_err());
    }

    #[test]
    fn live_state_tracks_the_stream() {
        let mut s = StreamSession::new(Algorithm::Avrq, 3.0).expect("session");
        assert_eq!(s.events(), 0);
        assert_eq!(s.speed(), 0.0);
        s.arrive(QJob::new(0, 0.0, 2.0, 0.5, 2.0, 1.0)).expect("arrive");
        assert_eq!(s.jobs(), 1);
        assert!(s.speed() > 0.0);
        assert_eq!(s.now(), 0.0);
    }
}
