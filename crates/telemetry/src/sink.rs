//! Record sinks: the one place emitted JSONL lines touch the outside
//! world.
//!
//! Every telemetry record — span, event, metrics snapshot — funnels
//! through [`Out::write_line`]. This module is the **only** spot in the
//! library crates allowed to write raw stderr (the
//! `scripts/check_no_direct_eprintln.sh` gate allowlists exactly this
//! file); everything else must go through the leveled event macros so a
//! `QBSS_LOG` stderr stream stays pure JSONL.

use std::collections::VecDeque;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, PoisonError};

/// Where telemetry records go.
#[derive(Debug, Clone)]
pub enum SinkTarget {
    /// One JSONL record per line on stderr.
    Stderr,
    /// A JSONL trace file (created/truncated at [`crate::init`]).
    File(PathBuf),
    /// A bounded in-memory ring of the most recent records — backs
    /// `/tracez` in serve mode and in-process inspection in tests.
    Ring(RingSink),
}

/// Default [`RingSink`] capacity (records retained).
pub const RING_DEFAULT_CAPACITY: usize = 4096;

#[derive(Debug)]
struct Ring {
    buf: VecDeque<String>,
    capacity: usize,
    /// Records evicted to make room — the ring never blocks a writer.
    dropped: u64,
}

/// A shareable bounded in-memory sink holding the most recent records.
///
/// Clone it before [`crate::init`] to keep a read handle. Writers push
/// one JSONL line per record; once `capacity` records are held the
/// oldest is evicted (and counted in [`RingSink::dropped`]) so a
/// long-lived process keeps a fresh window instead of growing without
/// bound.
#[derive(Debug, Clone)]
pub struct RingSink(Arc<Mutex<Ring>>);

impl Default for RingSink {
    fn default() -> Self {
        RingSink::new(RING_DEFAULT_CAPACITY)
    }
}

impl RingSink {
    /// A ring retaining at most `capacity` records (min 1).
    pub fn new(capacity: usize) -> Self {
        RingSink(Arc::new(Mutex::new(Ring {
            buf: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        })))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Ring> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub(crate) fn push(&self, line: &str) {
        let mut ring = self.lock();
        if ring.buf.len() == ring.capacity {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
        ring.buf.push_back(line.to_string());
    }

    /// The retained records, oldest first, one JSONL line each
    /// (trailing newline after every record — the same bytes a file
    /// sink would hold, minus anything evicted).
    pub fn contents(&self) -> String {
        let ring = self.lock();
        let mut s = String::new();
        for line in &ring.buf {
            s.push_str(line);
            s.push('\n');
        }
        s
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> Vec<String> {
        self.lock().buf.iter().cloned().collect()
    }

    /// Takes and clears the retained records (same bytes as
    /// [`RingSink::contents`]); the `dropped` counter is left
    /// cumulative. The profiler drains between perf repeats so each
    /// scenario folds exactly its own spans.
    pub fn drain_contents(&self) -> String {
        let mut ring = self.lock();
        let mut s = String::new();
        for line in ring.buf.drain(..) {
            s.push_str(&line);
            s.push('\n');
        }
        s
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.lock().buf.len()
    }

    /// Whether the ring holds no records.
    pub fn is_empty(&self) -> bool {
        self.lock().buf.is_empty()
    }

    /// Maximum records retained.
    pub fn capacity(&self) -> usize {
        self.lock().capacity
    }

    /// Records evicted so far to make room for newer ones.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }
}

/// An opened sink, held inside the global pipeline state.
pub(crate) enum Out {
    Stderr,
    File(std::io::BufWriter<std::fs::File>),
    Ring(RingSink),
}

impl Out {
    /// Opens `target` (creates/truncates file sinks).
    pub(crate) fn open(target: SinkTarget) -> Result<Out, String> {
        match target {
            SinkTarget::Stderr => Ok(Out::Stderr),
            SinkTarget::Ring(r) => Ok(Out::Ring(r)),
            SinkTarget::File(path) => {
                let file = std::fs::File::create(&path)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                Ok(Out::File(std::io::BufWriter::new(file)))
            }
        }
    }

    /// Writes one complete JSONL record.
    pub(crate) fn write_line(&mut self, line: &str) {
        match self {
            Out::Stderr => eprintln!("{line}"),
            Out::File(w) => {
                let _ = writeln!(w, "{line}");
            }
            Out::Ring(r) => r.push(line),
        }
    }

    /// Flushes buffered sinks (a no-op for stderr/ring).
    pub(crate) fn flush(&mut self) {
        if let Out::File(w) = self {
            let _ = w.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let ring = RingSink::new(3);
        for i in 0..5 {
            ring.push(&format!("r{i}"));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.capacity(), 3);
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.records(), vec!["r2", "r3", "r4"]);
        assert_eq!(ring.contents(), "r2\nr3\nr4\n");
    }

    #[test]
    fn ring_default_capacity_and_empty_state() {
        let ring = RingSink::default();
        assert_eq!(ring.capacity(), RING_DEFAULT_CAPACITY);
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
        assert_eq!(ring.contents(), "");
    }

    #[test]
    fn drain_takes_contents_and_clears() {
        let ring = RingSink::new(8);
        ring.push("a");
        ring.push("b");
        assert_eq!(ring.drain_contents(), "a\nb\n");
        assert!(ring.is_empty());
        assert_eq!(ring.drain_contents(), "");
        ring.push("c");
        assert_eq!(ring.contents(), "c\n");
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let ring = RingSink::new(0);
        ring.push("a");
        ring.push("b");
        assert_eq!(ring.records(), vec!["b"]);
        assert_eq!(ring.dropped(), 1);
    }
}
