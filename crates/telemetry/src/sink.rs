//! Record sinks: the one place emitted JSONL lines touch the outside
//! world.
//!
//! Every telemetry record — span, event, metrics snapshot — funnels
//! through [`Out::write_line`]. This module is the **only** spot in the
//! library crates allowed to write raw stderr (the
//! `scripts/check_no_direct_eprintln.sh` gate allowlists exactly this
//! file); everything else must go through the leveled event macros so a
//! `QBSS_LOG` stderr stream stays pure JSONL.

use std::io::Write as _;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, PoisonError};

/// Where telemetry records go.
#[derive(Debug, Clone)]
pub enum SinkTarget {
    /// One JSONL record per line on stderr.
    Stderr,
    /// A JSONL trace file (created/truncated at [`crate::init`]).
    File(PathBuf),
    /// An in-memory buffer — for tests.
    Memory(MemorySink),
}

/// A shareable in-memory sink; clone it before [`crate::init`] to read
/// what was recorded.
#[derive(Debug, Clone, Default)]
pub struct MemorySink(Arc<Mutex<String>>);

impl MemorySink {
    /// Everything recorded so far.
    pub fn contents(&self) -> String {
        self.0.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }
}

/// An opened sink, held inside the global pipeline state.
pub(crate) enum Out {
    Stderr,
    File(std::io::BufWriter<std::fs::File>),
    Memory(MemorySink),
}

impl Out {
    /// Opens `target` (creates/truncates file sinks).
    pub(crate) fn open(target: SinkTarget) -> Result<Out, String> {
        match target {
            SinkTarget::Stderr => Ok(Out::Stderr),
            SinkTarget::Memory(m) => Ok(Out::Memory(m)),
            SinkTarget::File(path) => {
                let file = std::fs::File::create(&path)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                Ok(Out::File(std::io::BufWriter::new(file)))
            }
        }
    }

    /// Writes one complete JSONL record.
    pub(crate) fn write_line(&mut self, line: &str) {
        match self {
            Out::Stderr => eprintln!("{line}"),
            Out::File(w) => {
                let _ = writeln!(w, "{line}");
            }
            Out::Memory(m) => {
                let mut buf = m.0.lock().unwrap_or_else(PoisonError::into_inner);
                buf.push_str(line);
                buf.push('\n');
            }
        }
    }

    /// Flushes buffered sinks (a no-op for stderr/memory).
    pub(crate) fn flush(&mut self) {
        if let Out::File(w) = self {
            let _ = w.flush();
        }
    }
}
