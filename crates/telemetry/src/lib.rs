//! # qbss-telemetry — in-tree observability for the QBSS workspace
//!
//! Zero-dependency spans, metrics, and structured events, built for a
//! workspace that resolves no external registries (DESIGN.md §6). Three
//! coordinated pieces:
//!
//! * **Spans** ([`span!`]) — a thread-local span stack with monotonic
//!   timestamps, process-unique `u64` ids and parent links. Guards
//!   emit one JSONL record when dropped; explicit parents stitch
//!   trees across the sweep engine's worker threads.
//! * **Metrics** ([`Registry`], [`counter!`]) — named counters, gauges
//!   and fixed-bucket histograms behind atomics, snapshotable to JSON
//!   in canonical key order (deterministic, shard-count independent).
//! * **Events** ([`event!`] and the [`error!`]/[`warn!`]/[`info!`]/
//!   [`debug!`]/[`trace!`] shorthands) — leveled, target-scoped JSONL
//!   records filtered by a `QBSS_LOG`-style [`Filter`].
//!
//! ## The disabled path is one relaxed atomic load
//!
//! Until [`init`] is called, every `event!` and `span!` expansion is a
//! single `Relaxed` load of one static atomic followed by a predicted
//! branch — no formatting, no allocation, no locks. The instrumented
//! hot loops (per-cell evaluation, YDS rounds) rely on this; the
//! overhead gate in `crates/bench/tests/telemetry_overhead.rs` enforces
//! it.
//!
//! ## Record schema (one JSON object per line)
//!
//! | `"t"` | fields |
//! |-------|--------|
//! | `span` | `id`, `parent` (id or `null`), `name`, `start_us`, `dur_us`, `fields` |
//! | `event` | `ts_us`, `level`, `target`, `span` (id or `null`), `msg`, `fields` |
//! | `metrics` | `ts_us`, `scope`, `counters`, `gauges`, `histograms` |
//!
//! Timestamps are microseconds on one process-wide monotonic clock
//! (the same clock `bench::timing` uses). [`mod@trace`] parses,
//! validates and summarizes these files; `qbss trace summarize` is its
//! CLI.

#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod expo;
mod filter;
mod json;
mod metrics;
pub mod profile;
mod sink;
mod span;
pub mod trace;

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use sink::Out;

pub use filter::{target_matches, Filter, FilterError, Level};
pub use json::{json_escape, json_f64, parse as json_parse, render as json_render, JsonValue};
pub use metrics::{estimate_quantile, Counter, Gauge, Histogram, Registry, DURATION_US_BOUNDS};
pub use sink::{RingSink, SinkTarget, RING_DEFAULT_CAPACITY};
pub use span::{current_span_id, SpanGuard};

// ---------------------------------------------------------------------
// Global state
// ---------------------------------------------------------------------

/// Fast-path gate for events: the most verbose enabled [`Level`] as a
/// `u8`, `0` = everything off.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(0);
/// Fast-path gate for spans.
static SPANS_ON: AtomicBool = AtomicBool::new(false);
/// Slow-path state, present between [`init`] and [`shutdown`].
static STATE: Mutex<Option<State>> = Mutex::new(None);

struct State {
    filter: Filter,
    out: Out,
}

/// Telemetry configuration for [`init`].
#[derive(Debug, Clone)]
pub struct Config {
    /// Event filter (see [`Filter::parse`] for the `QBSS_LOG` grammar).
    pub filter: Filter,
    /// Record destination.
    pub sink: SinkTarget,
    /// Whether span records are emitted (tracing); events obey the
    /// filter independently of this.
    pub spans: bool,
}

/// Failure to [`init`] the telemetry layer.
#[derive(Debug)]
pub enum InitError {
    /// [`init`] was already called (call [`shutdown`] first).
    AlreadyInitialized,
    /// The trace file could not be created.
    Io(String),
}

impl fmt::Display for InitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InitError::AlreadyInitialized => f.write_str("telemetry already initialized"),
            InitError::Io(e) => write!(f, "cannot open trace sink: {e}"),
        }
    }
}

impl std::error::Error for InitError {}

/// Installs the global telemetry pipeline. Until this is called every
/// macro is a no-op behind one relaxed atomic load.
pub fn init(config: Config) -> Result<(), InitError> {
    let mut state = STATE.lock().unwrap_or_else(PoisonError::into_inner);
    if state.is_some() {
        return Err(InitError::AlreadyInitialized);
    }
    let out = Out::open(config.sink).map_err(InitError::Io)?;
    // Pin the clock epoch before anything can be timestamped.
    let _ = epoch();
    *state = Some(State { filter: config.filter.clone(), out });
    SPANS_ON.store(config.spans, Ordering::Relaxed);
    MAX_LEVEL.store(
        config.filter.max_level().map_or(0, |l| l as u8),
        Ordering::Relaxed,
    );
    Ok(())
}

/// Flushes and tears the pipeline down, returning to the disabled
/// state. Idempotent; open [`SpanGuard`]s on other threads degrade to
/// no-ops.
pub fn shutdown() {
    MAX_LEVEL.store(0, Ordering::Relaxed);
    SPANS_ON.store(false, Ordering::Relaxed);
    let mut state = STATE.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(State { mut out, .. }) = state.take() {
        out.flush();
    }
}

/// Flushes buffered records (file sinks) without tearing down.
pub fn flush() {
    let mut state = STATE.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(State { out, .. }) = state.as_mut() {
        out.flush();
    }
}

/// Whether any telemetry (events at any level, or spans) is live.
pub fn active() -> bool {
    MAX_LEVEL.load(Ordering::Relaxed) > 0 || SPANS_ON.load(Ordering::Relaxed)
}

/// Whether records are currently going to stderr (callers that also
/// write human-readable stderr output use this to avoid corrupting a
/// JSONL stream).
pub fn stderr_sink_active() -> bool {
    if !active() {
        return false;
    }
    let state = STATE.lock().unwrap_or_else(PoisonError::into_inner);
    matches!(state.as_ref(), Some(State { out: Out::Stderr, .. }))
}

/// The cheap event gate: `level` could pass some target's filter.
#[inline(always)]
pub fn enabled(level: Level) -> bool {
    (level as u8) <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// The cheap span gate.
#[inline(always)]
pub fn spans_enabled() -> bool {
    SPANS_ON.load(Ordering::Relaxed)
}

/// The full event gate, including the per-target filter. Call after
/// [`enabled`] (the macros do) — this one takes the state lock.
pub fn event_enabled(level: Level, target: &str) -> bool {
    if !enabled(level) {
        return false;
    }
    let state = STATE.lock().unwrap_or_else(PoisonError::into_inner);
    state.as_ref().is_some_and(|s| s.filter.enabled(level, target))
}

/// The process-global metrics registry (see [`counter!`]).
pub fn metrics() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

// ---------------------------------------------------------------------
// Clock
// ---------------------------------------------------------------------

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process-wide monotonic epoch. Every span,
/// event and bench measurement shares this clock.
pub fn now_us() -> u64 {
    u64::try_from(epoch().elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Formats a duration with an adaptive unit (ns/µs/ms/s) — the one
/// duration formatter of the workspace.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

// ---------------------------------------------------------------------
// Field values
// ---------------------------------------------------------------------

/// A structured field value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (`null` in JSON when non-finite).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl Value {
    fn to_json(&self) -> String {
        match self {
            Value::U64(v) => v.to_string(),
            Value::I64(v) => v.to_string(),
            Value::F64(v) => json::json_f64(*v),
            Value::Bool(v) => v.to_string(),
            Value::Str(s) => format!("\"{}\"", json::json_escape(s)),
        }
    }
}

macro_rules! impl_value_from {
    ($($ty:ty => $variant:ident as $conv:ty),* $(,)?) => {
        $(impl From<$ty> for Value {
            fn from(v: $ty) -> Value { Value::$variant(v as $conv) }
        })*
    };
}
impl_value_from!(u64 => U64 as u64, u32 => U64 as u64, usize => U64 as u64,
                 i64 => I64 as i64, i32 => I64 as i64, f64 => F64 as f64, f32 => F64 as f64);

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

fn fields_json(fields: &[(&str, Value)]) -> String {
    let mut s = String::from("{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!("\"{}\": {}", json::json_escape(k), v.to_json()));
    }
    s.push('}');
    s
}

// ---------------------------------------------------------------------
// Emission (slow path, only reached when enabled)
// ---------------------------------------------------------------------

fn write_line(line: &str) {
    let mut state = STATE.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(s) = state.as_mut() {
        s.out.write_line(line);
    }
}

/// Emits one event record. Used by [`event!`] after both gates passed;
/// prefer the macros.
pub fn emit_event(level: Level, target: &str, msg: fmt::Arguments<'_>, fields: &[(&str, Value)]) {
    let span = span::current_span_id()
        .map_or_else(|| "null".to_string(), |id| id.to_string());
    write_line(&format!(
        "{{\"t\": \"event\", \"ts_us\": {}, \"level\": \"{}\", \"target\": \"{}\", \
         \"span\": {span}, \"msg\": \"{}\", \"fields\": {}}}",
        now_us(),
        level.as_str(),
        json::json_escape(target),
        json::json_escape(&msg.to_string()),
        fields_json(fields)
    ));
}

pub(crate) fn emit_span(
    id: u64,
    parent: Option<u64>,
    name: &str,
    start_us: u64,
    dur_us: u64,
    fields: &[(&str, Value)],
) {
    let parent = parent.map_or_else(|| "null".to_string(), |p| p.to_string());
    write_line(&format!(
        "{{\"t\": \"span\", \"id\": {id}, \"parent\": {parent}, \"name\": \"{}\", \
         \"start_us\": {start_us}, \"dur_us\": {dur_us}, \"fields\": {}}}",
        json::json_escape(name),
        fields_json(fields)
    ));
}

/// Emits a `metrics` record: a registry snapshot tagged with `scope`,
/// inline in the trace stream. No-op when telemetry is inactive.
pub fn emit_metrics(scope: &str, registry: &Registry) {
    if !active() {
        return;
    }
    let snapshot = registry.snapshot_json();
    // Splice the snapshot object into the record envelope.
    let body = snapshot
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .unwrap_or(&snapshot);
    write_line(&format!(
        "{{\"t\": \"metrics\", \"ts_us\": {}, \"scope\": \"{}\", {body}}}",
        now_us(),
        json::json_escape(scope)
    ));
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Emits a leveled structured event:
///
/// ```
/// use qbss_telemetry::{event, Level};
/// event!(Level::Info, "engine.sweep", "swept {} cells", 64);
/// event!(Level::Debug, "qbss.decision", { job = 3_u64, queried = true, tau = 1.5 },
///        "job 3 queried");
/// ```
///
/// When the level is globally disabled this is one relaxed atomic
/// load; the message and fields are not evaluated.
#[macro_export]
macro_rules! event {
    ($level:expr, $target:expr, { $($k:ident = $v:expr),* $(,)? }, $($arg:tt)+) => {{
        let level = $level;
        if $crate::enabled(level) && $crate::event_enabled(level, $target) {
            $crate::emit_event(
                level,
                $target,
                ::core::format_args!($($arg)+),
                &[$((::core::stringify!($k), $crate::Value::from($v))),*],
            );
        }
    }};
    ($level:expr, $target:expr, $($arg:tt)+) => {
        $crate::event!($level, $target, {}, $($arg)+)
    };
}

/// [`event!`] at [`Level::Error`].
#[macro_export]
macro_rules! error {
    ($target:expr, $($rest:tt)+) => { $crate::event!($crate::Level::Error, $target, $($rest)+) };
}

/// [`event!`] at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($target:expr, $($rest:tt)+) => { $crate::event!($crate::Level::Warn, $target, $($rest)+) };
}

/// [`event!`] at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($target:expr, $($rest:tt)+) => { $crate::event!($crate::Level::Info, $target, $($rest)+) };
}

/// [`event!`] at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($target:expr, $($rest:tt)+) => { $crate::event!($crate::Level::Debug, $target, $($rest)+) };
}

/// [`event!`] at [`Level::Trace`].
#[macro_export]
macro_rules! trace {
    ($target:expr, $($rest:tt)+) => { $crate::event!($crate::Level::Trace, $target, $($rest)+) };
}

/// Opens a span and returns its [`SpanGuard`]; the record is emitted
/// when the guard drops. Nesting follows the thread-local span stack;
/// pass `parent:` to stitch across threads:
///
/// ```
/// use qbss_telemetry::span;
/// let sweep = span!("engine.sweep", { cells = 128_u64 });
/// let parent = sweep.id(); // forward into worker threads
/// let _shard = span!(parent: parent, "par.shard", { shard = 0_u64 });
/// ```
///
/// Disabled (no [`crate::init`] with `spans: true`): one relaxed
/// atomic load, no allocation, and the guard is inert.
#[macro_export]
macro_rules! span {
    (parent: $parent:expr, $name:expr, { $($k:ident = $v:expr),* $(,)? }) => {
        if $crate::spans_enabled() {
            $crate::SpanGuard::enter(
                $name,
                $parent,
                ::std::vec![$((::core::stringify!($k), $crate::Value::from($v))),*],
            )
        } else {
            $crate::SpanGuard::disabled()
        }
    };
    (parent: $parent:expr, $name:expr) => {
        $crate::span!(parent: $parent, $name, {})
    };
    ($name:expr, { $($k:ident = $v:expr),* $(,)? }) => {
        if $crate::spans_enabled() {
            $crate::SpanGuard::enter(
                $name,
                $crate::current_span_id(),
                ::std::vec![$((::core::stringify!($k), $crate::Value::from($v))),*],
            )
        } else {
            $crate::SpanGuard::disabled()
        }
    };
    ($name:expr) => {
        $crate::span!($name, {})
    };
}

/// A process-global [`Counter`] cached per call site — safe for hot
/// loops (first use registers, later uses are one `Arc` deref):
///
/// ```
/// qbss_telemetry::counter!("yds.solves").inc();
/// ```
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static SITE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        SITE.get_or_init(|| $crate::metrics().counter($name)).as_ref()
    }};
}

/// A process-global [`Gauge`] cached per call site, the [`counter!`]
/// idiom for last-write-wins values (queue depths, budget in flight):
///
/// ```
/// qbss_telemetry::gauge!("serve.queue.depth").set(3.0);
/// ```
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static SITE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Gauge>> =
            ::std::sync::OnceLock::new();
        SITE.get_or_init(|| $crate::metrics().gauge($name)).as_ref()
    }};
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;

    /// Serializes tests that touch the global pipeline.
    pub fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// `init` to a fresh ring sink, returning the read handle.
    pub fn init_memory(filter: Filter, spans: bool) -> RingSink {
        shutdown();
        let sink = RingSink::default();
        init(Config { filter, sink: SinkTarget::Ring(sink.clone()), spans })
            .expect("fresh init");
        sink
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_macros_do_not_emit_or_evaluate() {
        let _guard = test_support::lock();
        shutdown();
        let mut evaluated = false;
        event!(Level::Error, "x", "{}", {
            evaluated = true;
            "boom"
        });
        assert!(!evaluated, "message must not be formatted when disabled");
        assert!(!active());
        let span = span!("x.y", { big = 1_u64 });
        assert_eq!(span.id(), None);
    }

    #[test]
    fn events_respect_the_target_filter() {
        let _guard = test_support::lock();
        let sink = test_support::init_memory(
            Filter::parse("warn,engine=debug").expect("valid"),
            false,
        );
        info!("yds.solve", "hidden");
        warn!("yds.solve", "shown warn");
        debug!("engine.cell", { cell = 7_u64 }, "shown debug");
        trace!("engine.cell", "hidden trace");
        shutdown();
        let out = sink.contents();
        assert!(!out.contains("hidden"), "{out}");
        assert!(out.contains("\"msg\": \"shown warn\""), "{out}");
        assert!(out.contains("\"cell\": 7"), "{out}");
        for line in out.lines() {
            trace::parse_line(line, 1).expect("schema-valid event");
        }
    }

    #[test]
    fn spans_nest_on_the_thread_stack() {
        let _guard = test_support::lock();
        let sink = test_support::init_memory(Filter::off(), true);
        let outer = span!("outer");
        let outer_id = outer.id().expect("enabled");
        {
            let inner = span!("inner", { alpha = 2.5 });
            assert_eq!(current_span_id(), inner.id());
        }
        assert_eq!(current_span_id(), Some(outer_id));
        drop(outer);
        shutdown();
        let out = sink.contents();
        let records: Vec<trace::TraceRecord> = trace::parse_trace(&out).expect("valid");
        let spans: Vec<&trace::SpanRec> = records
            .iter()
            .filter_map(|r| match r {
                trace::TraceRecord::Span(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(spans.len(), 2);
        // Inner closes first.
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[0].parent, Some(outer_id));
        assert_eq!(spans[1].name, "outer");
        assert_eq!(spans[1].parent, None);
    }

    #[test]
    fn explicit_parents_stitch_across_threads() {
        let _guard = test_support::lock();
        let sink = test_support::init_memory(Filter::off(), true);
        let root = span!("root");
        let root_id = root.id();
        std::thread::scope(|s| {
            s.spawn(|| {
                let _w = span!(parent: root_id, "worker", { shard = 1_u64 });
            });
        });
        drop(root);
        shutdown();
        let out = sink.contents();
        let records = trace::parse_trace(&out).expect("valid");
        let worker = records
            .iter()
            .find_map(|r| match r {
                trace::TraceRecord::Span(s) if s.name == "worker" => Some(s),
                _ => None,
            })
            .expect("worker span");
        assert_eq!(worker.parent, root_id);
    }

    #[test]
    fn metrics_record_embeds_the_snapshot() {
        let _guard = test_support::lock();
        let sink = test_support::init_memory(Filter::at(Level::Info), false);
        let reg = Registry::new();
        reg.counter("cells").add(42);
        emit_metrics("engine", &reg);
        shutdown();
        let records = trace::parse_trace(&sink.contents()).expect("valid");
        match &records[0] {
            trace::TraceRecord::Metrics(m) => {
                assert_eq!(m.scope, "engine");
                assert_eq!(m.counters.get("cells"), Some(&42));
            }
            other => panic!("expected metrics record, got {other:?}"),
        }
    }

    #[test]
    fn counter_macro_hits_the_global_registry() {
        counter!("test.lib.counter").add(2);
        counter!("test.lib.counter").inc();
        assert!(metrics().counter("test.lib.counter").get() >= 3);
    }

    #[test]
    fn gauge_macro_hits_the_global_registry() {
        gauge!("test.lib.gauge").set(4.0);
        assert_eq!(metrics().gauge("test.lib.gauge").get(), 4.0);
        gauge!("test.lib.gauge").set(2.5);
        assert_eq!(metrics().gauge("test.lib.gauge").get(), 2.5);
    }

    #[test]
    fn init_twice_is_an_error_and_shutdown_is_idempotent() {
        let _guard = test_support::lock();
        let _sink = test_support::init_memory(Filter::default(), false);
        let again = init(Config {
            filter: Filter::default(),
            sink: SinkTarget::Stderr,
            spans: false,
        });
        assert!(matches!(again, Err(InitError::AlreadyInitialized)));
        shutdown();
        shutdown();
        assert!(!active());
    }

    #[test]
    fn fmt_duration_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }
}
