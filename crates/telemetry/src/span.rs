//! Spans: timed, named regions with parent links.
//!
//! Each thread keeps a stack of open span ids; [`SpanGuard::enter`]
//! pushes, `Drop` pops and emits the JSONL record (so a trace file
//! lists spans in *close* order — readers rebuild the tree from the
//! explicit `parent` ids, not file order). Ids come from one global
//! counter and are unique per process; cross-thread work (the sweep
//! engine's worker shards) passes the parent id explicitly.

use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::{now_us, Value};

/// Global span-id source; 0 is reserved ("no span").
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// The id of the innermost span open on this thread, if any. Capture
/// this before spawning workers and pass it as `parent:` to [`span!`]
/// to stitch trees across threads.
///
/// [`span!`]: crate::span!
pub fn current_span_id() -> Option<u64> {
    SPAN_STACK.with(|s| s.borrow().last().copied())
}

/// An open span; emits its record when dropped. Construct via the
/// [`span!`] macro. Not `Send` — a span belongs to the thread whose
/// stack it is on.
///
/// [`span!`]: crate::span!
#[must_use = "a span measures the scope of its guard; dropping it immediately records nothing useful"]
pub struct SpanGuard {
    /// `None` when spans were disabled at entry: the guard is inert.
    live: Option<LiveSpan>,
    _not_send: PhantomData<*const ()>,
}

struct LiveSpan {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    start_us: u64,
    fields: Vec<(&'static str, Value)>,
}

impl SpanGuard {
    /// Opens a span with an explicit parent (`None` = root). Prefer
    /// the [`span!`] macro, which handles the disabled fast path and
    /// defaults the parent to [`current_span_id`].
    ///
    /// [`span!`]: crate::span!
    pub fn enter(
        name: &'static str,
        parent: Option<u64>,
        fields: Vec<(&'static str, Value)>,
    ) -> SpanGuard {
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        SPAN_STACK.with(|s| s.borrow_mut().push(id));
        SpanGuard {
            live: Some(LiveSpan { id, parent, name, start_us: now_us(), fields }),
            _not_send: PhantomData,
        }
    }

    /// The inert guard the [`span!`] macro returns when spans are off.
    ///
    /// [`span!`]: crate::span!
    pub fn disabled() -> SpanGuard {
        SpanGuard { live: None, _not_send: PhantomData }
    }

    /// This span's id, `None` for a disabled guard.
    pub fn id(&self) -> Option<u64> {
        self.live.as_ref().map(|l| l.id)
    }

    /// Attaches a field after entry (e.g. a result computed inside the
    /// span: rounds taken, cells swept). No-op on a disabled guard.
    pub fn record(&mut self, key: &'static str, value: impl Into<Value>) {
        if let Some(live) = self.live.as_mut() {
            live.fields.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else { return };
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Guards drop in LIFO order on a thread, so this is the top
            // — but be defensive about mem::forget'd guards.
            if let Some(pos) = stack.iter().rposition(|&id| id == live.id) {
                stack.truncate(pos);
            }
        });
        let dur_us = now_us().saturating_sub(live.start_us);
        crate::emit_span(live.id, live.parent, live.name, live.start_us, dur_us, &live.fields);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_nonzero() {
        let a = SpanGuard::enter("a", None, Vec::new());
        let b = SpanGuard::enter("b", a.id(), Vec::new());
        let (ia, ib) = (a.id().expect("live"), b.id().expect("live"));
        assert_ne!(ia, 0);
        assert_ne!(ia, ib);
    }

    #[test]
    fn disabled_guard_is_inert() {
        let before = current_span_id();
        let mut g = SpanGuard::disabled();
        g.record("k", 1_u64);
        assert_eq!(g.id(), None);
        assert_eq!(current_span_id(), before);
    }

    #[test]
    fn stack_recovers_from_out_of_order_drops() {
        let outer = SpanGuard::enter("outer", None, Vec::new());
        let inner = SpanGuard::enter("inner", outer.id(), Vec::new());
        let inner_id = inner.id();
        assert_eq!(current_span_id(), inner_id);
        drop(outer); // wrong order on purpose
        assert_eq!(current_span_id(), None, "truncation pops inner too");
        drop(inner);
        assert_eq!(current_span_id(), None);
    }
}
